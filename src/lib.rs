//! # tabjoin
//!
//! Umbrella crate for the reproduction of *"Efficiently Transforming Tables
//! for Joinability"* (Nobari & Rafiei, ICDE 2022): discovering string
//! transformations under which two differently formatted table columns become
//! equi-joinable, plus the row matcher, baselines, datasets, and the
//! end-to-end join pipeline used in the paper's evaluation.
//!
//! The workspace crates are re-exported under short module names:
//!
//! | module | contents |
//! |---|---|
//! | [`units`] | the transformation-unit language and transformation programs |
//! | [`text`] | n-grams, tokenization, common substrings, IRF / Rscore |
//! | [`datasets`] | synthetic and simulated real-world benchmark generators |
//! | [`matching`] | the representative-n-gram row matcher (Algorithm 1) |
//! | [`synthesis`] | the transformation synthesis engine (the paper's contribution) |
//! | [`baselines`] | Naive, Auto-Join, and Auto-FuzzyJoin baselines |
//! | [`join`] | the end-to-end join pipeline and its evaluation |
//!
//! ## Quick start
//!
//! ```
//! use tabjoin::prelude::*;
//!
//! // Candidate joinable pairs (here given explicitly; see `JoinPipeline`
//! // for the end-to-end flow with automatic row matching).
//! let pairs = vec![
//!     ("Rafiei, Davood", "D Rafiei"),
//!     ("Bowling, Michael", "M Bowling"),
//!     ("Gosgnach, Simon", "S Gosgnach"),
//! ];
//! let engine = SynthesisEngine::new(SynthesisConfig::default());
//! let result = engine.discover_from_strings(&pairs);
//! assert_eq!(result.cover.len(), 1);
//! let rule = &result.top[0].transformation;
//! assert_eq!(rule.apply("nascimento, mario").as_deref(), Some("m nascimento"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use tjoin_baselines as baselines;
pub use tjoin_core as synthesis;
pub use tjoin_datasets as datasets;
pub use tjoin_join as join;
pub use tjoin_matching as matching;
pub use tjoin_text as text;
pub use tjoin_units as units;

/// Commonly used types, importable with `use tabjoin::prelude::*`.
pub mod prelude {
    pub use tjoin_baselines::{AutoFuzzyJoin, AutoFuzzyJoinConfig, AutoJoin, AutoJoinConfig};
    pub use tjoin_core::{CoverageAxis, SynthesisConfig, SynthesisEngine, SynthesisResult};
    pub use tjoin_datasets::{
        BenchmarkKind, ColumnPair, DatasetError, RepositoryConfig, SyntheticConfig, Table,
        TablePair,
    };
    pub use tjoin_join::{
        BatchFaultStats, BatchJoinOutcome, BatchJoinRunner, BatchSchedulerStats,
        GuardedJoinOutcome, JoinPipeline, JoinPipelineConfig, PairError, PairPhase, PairStatus,
        RepositoryMetrics, RowMatchingStrategy,
    };
    pub use tjoin_matching::{MatchingMode, NGramMatcher, NGramMatcherConfig};
    pub use tjoin_text::{
        BudgetExceeded, CorpusStats, FaultKind, FaultPlan, FaultSite, GramCorpus, RunBudget,
    };
    pub use tjoin_units::{CharStr, Transformation, TransformationSet, Unit, UnitKind};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_reexports_are_usable() {
        let t = Transformation::single(Unit::substr(0, 2));
        assert_eq!(t.apply("abc").as_deref(), Some("ab"));
        let _ = SynthesisConfig::default();
        let _ = NGramMatcherConfig::default();
        let _ = JoinPipelineConfig::paper_default();
        assert_eq!(MatchingMode::Golden.label(), "Golden");
        let budget = RunBudget::unlimited().with_row_cap(10);
        assert!(budget.token().charge_rows(11).is_err());
        assert!(PairStatus::Ok.is_ok());
        assert!(FaultPlan::new().is_empty());
    }
}
