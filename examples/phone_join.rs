//! Joining phone-number columns formatted by different providers — the
//! paper's introductory example of a mapping a single transformation can
//! cover — including how the discovered rule generalizes to rows that were
//! never part of the discovery input.
//!
//! Run with:
//! ```text
//! cargo run --release --example phone_join
//! ```

use tabjoin::datasets::realistic::{format_phone, PhoneStyle};
use tabjoin::prelude::*;

fn main() {
    // A directory formatted "(780) 432-3636" joined against a CRM export
    // formatted "+1 780 432 3636".
    let digits = [
        "7804323636",
        "7804336545",
        "4034282108",
        "5874064565",
        "8254338303",
        "7804710427",
        "7804324814",
        "4039876543",
    ];
    let discovery_rows: Vec<(String, String)> = digits
        .iter()
        .take(5)
        .map(|d| {
            (
                format_phone(d, PhoneStyle::Parenthesized),
                format_phone(d, PhoneStyle::International),
            )
        })
        .collect();

    println!("discovery input ({} rows):", discovery_rows.len());
    for (s, t) in &discovery_rows {
        println!("  {s:<18} ->  {t}");
    }

    let engine = SynthesisEngine::new(SynthesisConfig::default());
    let result = engine.discover_from_strings(&discovery_rows);
    let best = &result.top[0];
    println!(
        "\nbest transformation (covers {}/{} rows):\n  {}",
        best.coverage(),
        discovery_rows.len(),
        best.transformation
    );

    // Generalization check: apply the rule to phone numbers the engine never saw.
    println!("\ngeneralization to unseen rows:");
    let mut correct = 0;
    for d in digits.iter().skip(5) {
        let source = format_phone(d, PhoneStyle::Parenthesized);
        let expected = format_phone(d, PhoneStyle::International);
        let produced = best
            .transformation
            .apply(&source.to_lowercase())
            .unwrap_or_else(|| "<no output>".into());
        let ok = produced == expected.to_lowercase();
        correct += ok as u32;
        println!("  {source:<18} ->  {produced:<18} ({})", if ok { "ok" } else { "MISS" });
    }
    println!("\n{correct}/3 unseen rows transformed correctly");

    // The same data joined with the similarity-based Auto-FuzzyJoin baseline:
    // reformatted digits share few n-grams, so similarity joining struggles.
    let pair = ColumnPair::aligned(
        "phones",
        digits.iter().map(|d| format_phone(d, PhoneStyle::Parenthesized)).collect(),
        digits.iter().map(|d| format_phone(d, PhoneStyle::International)).collect(),
    );
    let afj = AutoFuzzyJoin::new(AutoFuzzyJoinConfig::default());
    let afj_result = afj.join(&pair);
    let tp = afj_result
        .pairs
        .iter()
        .filter(|m| m.source_row == m.target_row)
        .count();
    println!(
        "\nAuto-FuzzyJoin (similarity only): {} predicted pairs, {} correct of {}",
        afj_result.pairs.len(),
        tp,
        digits.len()
    );

    // End-to-end transformed join on the full table pair.
    let pipeline = JoinPipeline::new(JoinPipelineConfig::paper_default());
    let outcome = pipeline.run(&pair);
    println!(
        "transformed equi-join:            precision {:.2} recall {:.2} f1 {:.2}",
        outcome.metrics.precision, outcome.metrics.recall, outcome.metrics.f1
    );
}
