//! Mapping names to email addresses: a workload where no single rule covers
//! every row and a *set* of transformations is required (the paper's second
//! problem variant, Section 2).
//!
//! The course-contact table lists instructor emails generated under two
//! different conventions ("first.last@…" and "flast@…") plus a couple of
//! aliases no string rule can explain; the engine finds a concise covering
//! set and reports what stays uncovered.
//!
//! Run with:
//! ```text
//! cargo run --release --example name_to_email
//! ```

use tabjoin::prelude::*;

fn main() {
    let rows: Vec<(&str, &str)> = vec![
        // Convention A: first.last@ualberta.ca
        ("Rafiei, Davood", "davood.rafiei@ualberta.ca"),
        ("Nascimento, Mario", "mario.nascimento@ualberta.ca"),
        ("Bowling, Michael", "michael.bowling@ualberta.ca"),
        ("Stewart, Emily", "emily.stewart@ualberta.ca"),
        ("Morales, Jordan", "jordan.morales@ualberta.ca"),
        // Convention B: first-initial + last name
        ("Gingrich, Douglas", "dgingrich@ualberta.ca"),
        ("Gosgnach, Simon", "sgosgnach@ualberta.ca"),
        ("Watson, Patricia", "pwatson@ualberta.ca"),
        ("Chavez, Walter", "wchavez@ualberta.ca"),
        // Aliases that no string transformation can produce.
        ("Prus-Czarnecki, Andrzej", "andrzej.czarnecki@ualberta.ca"),
        ("Kim, Alexander", "alex.kim@ualberta.ca"),
    ];

    println!("discovering transformations over {} name/email pairs\n", rows.len());
    let engine = SynthesisEngine::new(SynthesisConfig::default());
    let result = engine.discover_from_strings(&rows);

    println!("covering set ({} transformations):", result.cover.len());
    for t in result.cover.iter() {
        println!(
            "  covers {:>2} rows  {}",
            t.coverage(),
            t.transformation
        );
    }
    println!(
        "\ntop transformation coverage: {:.2}",
        result.top_coverage()
    );
    println!("covering set coverage:       {:.2}", result.set_coverage());

    // Which rows stay uncovered? (The aliases.)
    let mut covered = vec![false; rows.len()];
    for t in result.cover.iter() {
        for &r in &t.covered_rows {
            covered[r as usize] = true;
        }
    }
    println!("\nrows not covered by any transformation:");
    for (i, (name, email)) in rows.iter().enumerate() {
        if !covered[i] {
            println!("  {name} -> {email}");
        }
    }

    // Compare against Auto-Join under the same budget.
    println!("\n== Auto-Join baseline on the same input ==");
    let autojoin = AutoJoin::new(AutoJoinConfig {
        time_budget: std::time::Duration::from_secs(20),
        ..AutoJoinConfig::default()
    });
    let aj = autojoin.discover(&rows);
    let aj_set = aj.evaluate(&rows, &tabjoin::text::NormalizeOptions::default());
    println!(
        "auto-join: {} transformations from {} subsets ({} succeeded), coverage {:.2}, {} unit evaluations, {:?} elapsed",
        aj_set.len(),
        aj.subsets_tried,
        aj.subsets_succeeded,
        aj_set.set_coverage(),
        aj.units_enumerated,
        aj.elapsed
    );
}
