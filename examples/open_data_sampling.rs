//! The Open-data scenario: a large, noisy address join where the n-gram row
//! matcher has very low precision, and synthesis recovers by running on a
//! small sample with a support threshold (Sections 5.3 and 6.3–6.4 of the
//! paper).
//!
//! Run with:
//! ```text
//! cargo run --release --example open_data_sampling
//! ```

use tabjoin::datasets::realistic::open_data;
use tabjoin::prelude::*;
use tabjoin::synthesis::{discovery_probability, SamplingAnalysis};

fn main() {
    // A scaled-down open-data pair (the paper's is ~3 M rows; the simulated
    // generator keeps the same skew at any size).
    let pair = open_data(42, 1200).column_pair();
    println!(
        "open-data pair: {} source rows, {} target rows",
        pair.source_len(),
        pair.target_len()
    );

    // Step 1: row matching — expect a huge candidate set with low precision.
    let matcher = NGramMatcher::with_defaults();
    let candidates = matcher.find_candidates(&pair);
    let metrics = tabjoin::matching::evaluate_pairs(&candidates, &pair.golden);
    println!(
        "n-gram matching: {} candidate pairs, precision {:.3}, recall {:.3}",
        metrics.candidates, metrics.precision, metrics.recall
    );

    // Step 2: the analytic sampling argument — how big a sample is needed to
    // still discover a transformation covering 5% of the input?
    println!("\nsample-size analysis for a transformation with 5% coverage:");
    println!("  sample   P(discovered by ours)   P(one Auto-Join subset covered)");
    for s in [10usize, 50, 100, 300, 1000] {
        let a = SamplingAnalysis::compute(0.05, s);
        println!(
            "  {:>6}   {:>20.3}   {:>30.5}",
            s, a.discovery_probability, a.autojoin_subset_probability
        );
    }
    assert!(discovery_probability(0.05, 100) > 0.9);

    // Step 3: synthesis on a <1% sample of the candidate pairs with a support
    // threshold, as the paper does for this dataset.
    let candidate_values: Vec<(String, String)> = candidates
        .iter()
        .map(|m| {
            (
                pair.source[m.source_row as usize].clone(),
                pair.target[m.target_row as usize].clone(),
            )
        })
        .collect();
    let config = SynthesisConfig::default()
        .with_sample(400, 7)
        .with_min_support(0.01);
    let engine = SynthesisEngine::new(config);
    let result = engine.discover_from_strings(&candidate_values);
    println!(
        "\nsynthesis on a {}-pair sample of {} candidates:",
        result.stats.pairs_used, result.stats.pairs_total
    );
    println!("{}", result.cover);
    println!("{}", result.stats);

    // Step 4: end-to-end join quality with a 2% support threshold (Table 3's
    // Open-data row uses 2%).
    let pipeline = JoinPipeline::new(JoinPipelineConfig {
        matching: RowMatchingStrategy::NGram(NGramMatcherConfig::default()),
        synthesis: SynthesisConfig::default().with_sample(400, 7).with_min_support(0.01),
        join_min_support: 0.02,
    });
    let outcome = pipeline.run(&pair);
    println!(
        "end-to-end join: precision {:.3} recall {:.3} f1 {:.3} ({} transformations applied)",
        outcome.metrics.precision,
        outcome.metrics.recall,
        outcome.metrics.f1,
        outcome.transformations.len()
    );
}
