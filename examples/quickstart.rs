//! Quick start: discover the transformations that make two differently
//! formatted columns joinable, then run the end-to-end join.
//!
//! This reproduces the motivating example of the paper (Figure 1): a staff
//! roster with names formatted "Last, First" joined against a phone listing
//! with names formatted "F Last".
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use tabjoin::prelude::*;

fn main() {
    // The two tables of the paper's Figure 1 (right-hand side).
    let staff = Table::new(
        "staff",
        vec!["Name".into(), "Department".into()],
    );
    let mut staff = staff;
    for (name, dept) in [
        ("Rafiei, Davood", "CS (2000)"),
        ("Nascimento, Mario A", "CS (1999)"),
        ("Gingrich, Douglas M", "Physics (1993)"),
        ("Prus-Czarnecki, Andrzej", "Physics (2000)"),
        ("Bowling, Michael", "CS (2003)"),
        ("Gosgnach, Simon", "Physiology (2006)"),
    ] {
        staff.push_row(vec![name.into(), dept.into()]);
    }

    let mut phones = Table::new("phones", vec!["Name".into(), "Phone".into()]);
    for (name, phone) in [
        ("D Rafiei", "(780) 433-6545"),
        ("M A Nascimento", "(780) 428-2108"),
        ("D Gingrich", "(780) 406-4565"),
        ("A Prus-czarnecki", "(780) 433-8303"),
        ("M Bowling", "(780) 471-0427"),
        ("S Gosgnach", "(780) 432-4814"),
    ] {
        phones.push_row(vec![name.into(), phone.into()]);
    }

    let pair = TablePair {
        name: "figure-1".into(),
        source: staff,
        target: phones,
        source_join_column: 0,
        target_join_column: 0,
        golden_pairs: (0..6).map(|i| (i, i)).collect(),
    };
    let columns = pair.column_pair();

    println!("== Step 1: candidate joinable row pairs (Algorithm 1) ==");
    let matcher = NGramMatcher::with_defaults();
    let candidates = matcher.candidate_value_pairs(&columns);
    for (s, t) in &candidates {
        println!("  {s:<28} ~  {t}");
    }

    println!("\n== Step 2: transformation discovery ==");
    let engine = SynthesisEngine::new(SynthesisConfig::default());
    let result = engine.discover_from_strings(&candidates);
    println!("{}", result.cover);
    println!("stats:\n{}", result.stats);

    println!("\n== Step 3: end-to-end join ==");
    let pipeline = JoinPipeline::new(JoinPipelineConfig::paper_default());
    let outcome = pipeline.run(&columns);
    println!(
        "predicted {} pairs | precision {:.3} recall {:.3} f1 {:.3}",
        outcome.predicted_pairs.len(),
        outcome.metrics.precision,
        outcome.metrics.recall,
        outcome.metrics.f1
    );
    for &(s, t) in &outcome.predicted_pairs {
        println!(
            "  {:<28} = {}",
            columns.source[s as usize], columns.target[t as usize]
        );
    }
}
