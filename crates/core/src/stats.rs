//! Synthesis statistics and per-phase timings.
//!
//! These are the quantities the paper reports in Table 4 (generated
//! transformations, transformations to try, duplicate ratio, cache hit ratio)
//! and Figures 3–4 (per-module time: placeholder generation, unit extraction,
//! duplicate removal, applying transformations).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Wall-clock time per synthesis phase (the modules of Figure 4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Placeholder detection + skeleton enumeration ("Placeholder Gen.").
    pub placeholder_generation: Duration,
    /// Candidate unit extraction per placeholder ("Unit Extraction").
    pub unit_extraction: Duration,
    /// Cartesian-product expansion and duplicate removal ("Duplicate Removal").
    pub duplicate_removal: Duration,
    /// Applying transformations to all rows ("Applying Trans.").
    pub applying_transformations: Duration,
    /// Top-k / greedy-cover selection (small; not plotted by the paper).
    pub cover_selection: Duration,
}

impl PhaseTimings {
    /// Total time across all phases.
    pub fn total(&self) -> Duration {
        self.placeholder_generation
            + self.unit_extraction
            + self.duplicate_removal
            + self.applying_transformations
            + self.cover_selection
    }

    /// Element-wise sum (used when aggregating over many table pairs).
    pub fn merged_with(&self, other: &PhaseTimings) -> PhaseTimings {
        PhaseTimings {
            placeholder_generation: self.placeholder_generation + other.placeholder_generation,
            unit_extraction: self.unit_extraction + other.unit_extraction,
            duplicate_removal: self.duplicate_removal + other.duplicate_removal,
            applying_transformations: self.applying_transformations
                + other.applying_transformations,
            cover_selection: self.cover_selection + other.cover_selection,
        }
    }
}

impl fmt::Display for PhaseTimings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "placeholder {:.3}s, units {:.3}s, dedup {:.3}s, apply {:.3}s, cover {:.3}s",
            self.placeholder_generation.as_secs_f64(),
            self.unit_extraction.as_secs_f64(),
            self.duplicate_removal.as_secs_f64(),
            self.applying_transformations.as_secs_f64(),
            self.cover_selection.as_secs_f64(),
        )
    }
}

/// Statistics of one synthesis run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SynthesisStats {
    /// Number of input pairs provided by the caller.
    pub pairs_total: usize,
    /// Number of pairs synthesis actually ran on (after sampling).
    pub pairs_used: usize,
    /// Candidate transformations generated across all rows (before duplicate
    /// removal) — Table 4 "Generated trans.".
    pub generated_transformations: u64,
    /// Distinct transformations evaluated — Table 4 "Trans. to try".
    pub transformations_to_try: u64,
    /// (transformation, row) applications attempted in the coverage phase.
    pub coverage_trials: u64,
    /// (transformation, row) combinations skipped by the unit cache.
    pub cache_hits: u64,
    /// `transformations_to_try × pairs_used`.
    pub potential_trials: u64,
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
}

impl SynthesisStats {
    /// Fraction of generated transformations removed as duplicates —
    /// Table 4 "Duplicate trans.".
    pub fn duplicate_ratio(&self) -> f64 {
        if self.generated_transformations == 0 {
            0.0
        } else {
            1.0 - self.transformations_to_try as f64 / self.generated_transformations as f64
        }
    }

    /// Fraction of potential trials avoided by the unit cache — Table 4
    /// "Cache hit ratio".
    pub fn cache_hit_ratio(&self) -> f64 {
        if self.potential_trials == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.potential_trials as f64
        }
    }

    /// Total synthesis wall-clock time.
    pub fn total_time(&self) -> Duration {
        self.timings.total()
    }
}

impl fmt::Display for SynthesisStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "pairs: {} used of {} | generated: {} | to try: {} ({:.1}% duplicates)",
            self.pairs_used,
            self.pairs_total,
            self.generated_transformations,
            self.transformations_to_try,
            100.0 * self.duplicate_ratio()
        )?;
        writeln!(
            f,
            "trials: {} of {} potential ({:.1}% cache hits)",
            self.coverage_trials,
            self.potential_trials,
            100.0 * self.cache_hit_ratio()
        )?;
        write!(f, "timings: {}", self.timings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let s = SynthesisStats::default();
        assert_eq!(s.duplicate_ratio(), 0.0);
        assert_eq!(s.cache_hit_ratio(), 0.0);
        assert_eq!(s.total_time(), Duration::ZERO);
    }

    #[test]
    fn ratios_computed() {
        let s = SynthesisStats {
            generated_transformations: 100,
            transformations_to_try: 40,
            cache_hits: 30,
            potential_trials: 120,
            ..Default::default()
        };
        assert!((s.duplicate_ratio() - 0.6).abs() < 1e-12);
        assert!((s.cache_hit_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn timings_total_and_merge() {
        let a = PhaseTimings {
            placeholder_generation: Duration::from_millis(10),
            unit_extraction: Duration::from_millis(20),
            duplicate_removal: Duration::from_millis(30),
            applying_transformations: Duration::from_millis(40),
            cover_selection: Duration::from_millis(5),
        };
        assert_eq!(a.total(), Duration::from_millis(105));
        let b = a.merged_with(&a);
        assert_eq!(b.total(), Duration::from_millis(210));
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = SynthesisStats {
            pairs_total: 10,
            pairs_used: 10,
            generated_transformations: 100,
            transformations_to_try: 50,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("generated: 100"));
        assert!(text.contains("50.0% duplicates"));
        let t = PhaseTimings::default().to_string();
        assert!(t.contains("apply"));
    }
}
