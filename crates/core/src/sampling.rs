//! Sampling analysis (Section 5.3 of the paper).
//!
//! The synthesis engine is quadratic in the number of input pairs, so large
//! inputs are handled by running on a random sample. The paper derives the
//! probability that a transformation with coverage fraction `q` is still
//! discoverable from a sample of size `s`:
//!
//! * `P0 = (1 − q)^s` — no sampled row is covered;
//! * `P1 = s · q · (1 − q)^(s−1)` — exactly one sampled row is covered;
//! * discovery needs at least two covered rows, so
//!   `P(discover) = 1 − P0 − P1`.
//!
//! For comparison, Auto-Join needs *every* row of a subset to be covered by
//! one transformation, so a subset of size `s` covers it with probability
//! `q^s` and the expected number of subsets needed for one success is
//! `1 / q^s`.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Probability that a transformation covering a fraction `q` of the input is
/// *not* represented at all in a random sample of `s` rows.
pub fn miss_probability(q: f64, s: usize) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q must be a fraction");
    (1.0 - q).powi(s as i32)
}

/// Probability that exactly one row of a random sample of `s` rows is covered.
pub fn single_row_probability(q: f64, s: usize) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q must be a fraction");
    s as f64 * q * (1.0 - q).powi(s.saturating_sub(1) as i32)
}

/// Probability that a transformation with coverage fraction `q` is
/// discoverable from a sample of `s` rows, i.e. at least two sampled rows are
/// covered (equation of Section 5.3).
pub fn discovery_probability(q: f64, s: usize) -> f64 {
    (1.0 - miss_probability(q, s) - single_row_probability(q, s)).max(0.0)
}

/// Probability that *all* rows of an Auto-Join subset of size `s` are covered
/// by a transformation with coverage fraction `q` (`q^s`).
pub fn autojoin_subset_probability(q: f64, s: usize) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q must be a fraction");
    q.powi(s as i32)
}

/// Expected number of Auto-Join subsets of size `s` needed before one is
/// fully covered by a transformation with coverage fraction `q`; infinite
/// when `q == 0`.
pub fn autojoin_expected_subsets(q: f64, s: usize) -> f64 {
    let p = autojoin_subset_probability(q, s);
    if p == 0.0 {
        f64::INFINITY
    } else {
        1.0 / p
    }
}

/// One row of a sampling analysis table: the discovery probabilities at a
/// given sample size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingAnalysis {
    /// Sample size.
    pub sample_size: usize,
    /// Transformation coverage fraction assumed.
    pub coverage: f64,
    /// Our approach's discovery probability (≥ 2 covered rows in the sample).
    pub discovery_probability: f64,
    /// Auto-Join's probability that one subset of this size is fully covered.
    pub autojoin_subset_probability: f64,
    /// Auto-Join's expected number of subsets for one success.
    pub autojoin_expected_subsets: f64,
}

impl SamplingAnalysis {
    /// Computes the analysis row for a coverage fraction and sample size.
    pub fn compute(coverage: f64, sample_size: usize) -> Self {
        Self {
            sample_size,
            coverage,
            discovery_probability: discovery_probability(coverage, sample_size),
            autojoin_subset_probability: autojoin_subset_probability(coverage, sample_size),
            autojoin_expected_subsets: autojoin_expected_subsets(coverage, sample_size),
        }
    }
}

/// Draws `size` distinct row indices out of `total` uniformly at random
/// (deterministic for a given seed). When `size >= total` all indices are
/// returned in order.
pub fn sample_indices(total: usize, size: usize, seed: u64) -> Vec<usize> {
    if size >= total {
        return (0..total).collect();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..total).collect();
    indices.shuffle(&mut rng);
    indices.truncate(size);
    indices.sort_unstable();
    indices
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_five_percent_coverage_sample_100() {
        // Section 5.3: coverage 5%, sample of 100 -> discovery probability 0.96.
        let p = discovery_probability(0.05, 100);
        assert!((p - 0.96).abs() < 0.01, "got {p}");
    }

    #[test]
    fn paper_example_autojoin_needs_400_subsets() {
        // Section 5.3: with subsets of size 2 and coverage 5%, Auto-Join
        // needs 1 / 0.05^2 = 400 subsets in expectation.
        let expected = autojoin_expected_subsets(0.05, 2);
        assert!((expected - 400.0).abs() < 1e-9, "got {expected}");
    }

    #[test]
    fn probabilities_are_probabilities() {
        for &q in &[0.0, 0.01, 0.3, 0.5, 1.0] {
            for &s in &[0usize, 1, 2, 10, 100] {
                for p in [
                    miss_probability(q, s),
                    single_row_probability(q, s).min(1.0),
                    discovery_probability(q, s),
                    autojoin_subset_probability(q, s),
                ] {
                    assert!((0.0..=1.0 + 1e-12).contains(&p), "q={q} s={s} p={p}");
                }
            }
        }
    }

    #[test]
    fn discovery_monotone_in_sample_size() {
        let q = 0.1;
        let mut last = 0.0;
        for s in [2usize, 5, 10, 50, 100, 500] {
            let p = discovery_probability(q, s);
            assert!(p >= last - 1e-12, "not monotone at s={s}");
            last = p;
        }
        assert!(last > 0.99);
    }

    #[test]
    fn degenerate_coverages() {
        assert_eq!(discovery_probability(0.0, 100), 0.0);
        assert_eq!(discovery_probability(1.0, 2), 1.0);
        assert_eq!(autojoin_expected_subsets(0.0, 2), f64::INFINITY);
        assert_eq!(autojoin_expected_subsets(1.0, 5), 1.0);
    }

    #[test]
    fn analysis_row() {
        let a = SamplingAnalysis::compute(0.05, 100);
        assert_eq!(a.sample_size, 100);
        assert!(a.discovery_probability > 0.9);
        assert!(a.autojoin_subset_probability < 0.01);
        assert!(a.autojoin_expected_subsets > 100.0);
    }

    #[test]
    fn sample_indices_distinct_and_deterministic() {
        let a = sample_indices(100, 10, 3);
        let b = sample_indices(100, 10, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(a.iter().all(|&i| i < 100));
        // Oversized requests return everything.
        assert_eq!(sample_indices(5, 10, 0), vec![0, 1, 2, 3, 4]);
        assert_ne!(sample_indices(100, 10, 3), sample_indices(100, 10, 4));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_coverage_rejected() {
        let _ = miss_probability(1.5, 10);
    }
}
