//! Synthesis engine configuration.

use crate::coverage::plan::CoverageAxis;
use serde::{Deserialize, Serialize};
use tjoin_text::NormalizeOptions;
use tjoin_units::UnitKind;

/// Configuration of the [`crate::SynthesisEngine`].
///
/// The defaults mirror the paper's experimental setup (Section 6.2): up to 3
/// placeholders per transformation, the unit set without
/// `TwoCharSplitSubstr`, placeholder re-splitting on separators enabled, both
/// pruning strategies enabled, no sampling, and no support threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesisConfig {
    /// Maximum number of placeholders (non-constant units) per transformation
    /// (the paper's "number of placeholders / tree depth" parameter; 3 for
    /// web, open, and synthetic data, 4 for spreadsheet data).
    pub max_placeholders: usize,
    /// Unit kinds the generator may emit. `Literal` is always allowed
    /// implicitly; listing it here is harmless.
    pub unit_kinds: Vec<UnitKind>,
    /// Support threshold: transformations covering a smaller fraction of the
    /// input are dropped from the result (0.0 disables; the paper uses 1 % on
    /// Open data).
    pub min_support: f64,
    /// When set, synthesis runs on a random sample of this many pairs
    /// (Section 5.3); coverage is still reported against the sampled pairs.
    pub sample_size: Option<usize>,
    /// Seed for the sampling RNG (and any other tie-breaking randomness).
    pub sample_seed: u64,
    /// Duplicate-transformation removal (pruning strategy 1, Section 6.6).
    /// Disabling it is only useful for ablation measurements.
    pub deduplicate: bool,
    /// Per-row non-covering-unit cache (pruning strategy 2, Section 6.6).
    pub unit_cache: bool,
    /// Re-split maximal placeholders at separator characters, generating the
    /// additional skeletons of Section 4.1.3.
    pub resplit_placeholders: bool,
    /// Upper bound on skeletons enumerated per row (safety valve for
    /// pathological rows; the paper's bound is `2^p`).
    pub max_skeletons_per_row: usize,
    /// Upper bound on candidate units kept per placeholder (safety valve; the
    /// parameter space per placeholder is small in practice — Section 5.1).
    pub max_units_per_placeholder: usize,
    /// Upper bound on candidate transformations generated per row before
    /// deduplication (safety valve against pathological rows whose skeleton
    /// Cartesian products explode).
    pub max_transformations_per_row: usize,
    /// Normalization applied to both columns before synthesis.
    pub normalize: NormalizeOptions,
    /// Number of worker threads for the coverage phase (1 = sequential).
    ///
    /// This field is the workspace-wide thread-budget convention: the row
    /// matcher (`NGramMatcherConfig::threads`), the join pipeline's
    /// equi-join apply loop, and the batch join runner's shared budget all
    /// follow the same semantics — results are bit-identical at any value,
    /// only wall-clock changes. `JoinPipelineConfig::with_threads` applies
    /// one budget across every stage.
    pub threads: usize,
    /// Which axis of the coverage matrix parallel execution chunks across
    /// threads: transformations, rows, or (the default) whatever the
    /// planner picks from the shape — see
    /// [`crate::coverage::plan::plan_execution`].
    pub coverage_axis: CoverageAxis,
    /// How many of the highest-coverage transformations to report.
    pub top_k: usize,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        Self {
            max_placeholders: 3,
            unit_kinds: UnitKind::PAPER_EXPERIMENT_SET.to_vec(),
            min_support: 0.0,
            sample_size: None,
            sample_seed: 0,
            deduplicate: true,
            unit_cache: true,
            resplit_placeholders: true,
            max_skeletons_per_row: 16,
            max_units_per_placeholder: 24,
            max_transformations_per_row: 10_000,
            normalize: NormalizeOptions::default(),
            threads: 1,
            coverage_axis: CoverageAxis::Auto,
            top_k: 10,
        }
    }
}

impl SynthesisConfig {
    /// The configuration the paper uses for the spreadsheet benchmark
    /// (4 placeholders because of the "smaller textual pieces" in that data).
    pub fn spreadsheet() -> Self {
        Self {
            max_placeholders: 4,
            ..Self::default()
        }
    }

    /// The configuration the paper uses for Open data: a ≤ 3000-pair sample
    /// and a 1 % support threshold.
    pub fn open_data() -> Self {
        Self {
            sample_size: Some(3000),
            min_support: 0.01,
            ..Self::default()
        }
    }

    /// Disables both pruning strategies (for the ablation experiments of
    /// Section 6.6 / Figure 3).
    pub fn without_pruning(mut self) -> Self {
        self.deduplicate = false;
        self.unit_cache = false;
        self
    }

    /// Builder-style setter for the placeholder bound.
    pub fn with_max_placeholders(mut self, p: usize) -> Self {
        self.max_placeholders = p;
        self
    }

    /// Builder-style setter for the sample size.
    pub fn with_sample(mut self, size: usize, seed: u64) -> Self {
        self.sample_size = Some(size);
        self.sample_seed = seed;
        self
    }

    /// Builder-style setter for the support threshold.
    pub fn with_min_support(mut self, support: f64) -> Self {
        self.min_support = support;
        self
    }

    /// Builder-style setter for the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builder-style setter for the parallel coverage axis.
    pub fn with_coverage_axis(mut self, axis: CoverageAxis) -> Self {
        self.coverage_axis = axis;
        self
    }

    /// Whether a unit kind is enabled.
    pub fn kind_enabled(&self, kind: UnitKind) -> bool {
        kind == UnitKind::Literal || self.unit_kinds.contains(&kind)
    }

    /// Validates the configuration, panicking with a clear message on
    /// nonsensical values (used by the engine constructor).
    pub fn validate(&self) {
        assert!(self.max_placeholders >= 1, "max_placeholders must be >= 1");
        assert!(
            (0.0..=1.0).contains(&self.min_support),
            "min_support must be within [0, 1]"
        );
        assert!(self.max_skeletons_per_row >= 1);
        assert!(self.max_units_per_placeholder >= 1);
        assert!(self.max_transformations_per_row >= 1);
        assert!(self.top_k >= 1, "top_k must be >= 1");
        if let Some(s) = self.sample_size {
            assert!(s >= 2, "sample_size must be at least 2 (see Section 5.3)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let c = SynthesisConfig::default();
        assert_eq!(c.max_placeholders, 3);
        assert_eq!(c.coverage_axis, CoverageAxis::Auto);
        assert!(c.deduplicate && c.unit_cache && c.resplit_placeholders);
        assert!(c.kind_enabled(UnitKind::Substr));
        assert!(c.kind_enabled(UnitKind::Split));
        assert!(c.kind_enabled(UnitKind::SplitSubstr));
        assert!(c.kind_enabled(UnitKind::Literal));
        assert!(!c.kind_enabled(UnitKind::TwoCharSplitSubstr));
        c.validate();
    }

    #[test]
    fn presets() {
        assert_eq!(SynthesisConfig::spreadsheet().max_placeholders, 4);
        let od = SynthesisConfig::open_data();
        assert_eq!(od.sample_size, Some(3000));
        assert!((od.min_support - 0.01).abs() < 1e-12);
        let ablate = SynthesisConfig::default().without_pruning();
        assert!(!ablate.deduplicate && !ablate.unit_cache);
    }

    #[test]
    fn builders() {
        let c = SynthesisConfig::default()
            .with_max_placeholders(2)
            .with_sample(100, 7)
            .with_min_support(0.05)
            .with_threads(0)
            .with_coverage_axis(CoverageAxis::Rows);
        assert_eq!(c.max_placeholders, 2);
        assert_eq!(c.sample_size, Some(100));
        assert_eq!(c.sample_seed, 7);
        assert_eq!(c.threads, 1); // clamped to at least one
        assert_eq!(c.coverage_axis, CoverageAxis::Rows);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "max_placeholders")]
    fn invalid_placeholders_rejected() {
        SynthesisConfig::default().with_max_placeholders(0).validate();
    }

    #[test]
    #[should_panic(expected = "min_support")]
    fn invalid_support_rejected() {
        SynthesisConfig::default().with_min_support(1.5).validate();
    }

    #[test]
    #[should_panic(expected = "sample_size")]
    fn invalid_sample_rejected() {
        SynthesisConfig::default().with_sample(1, 0).validate();
    }
}
