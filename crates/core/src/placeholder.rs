//! Placeholder detection (Definition 4 and Section 4.1.3 of the paper).
//!
//! A placeholder is a contiguous block of the target that a non-constant unit
//! can produce from the source; with copy-based units that is a common
//! substring of the pair. The engine restricts itself to *maximal-length*
//! placeholders — blocks that cannot be extended and still occur in the
//! source — and recovers the coverage lost to over-long blocks (Lemma 4) by
//! re-splitting placeholders at natural-language separators.

use serde::{Deserialize, Serialize};
use tjoin_text::{common_substring_matches, tokenize_with_separators, TokenKind};
use tjoin_units::CharStr;

/// A placeholder: a block of the target plus every position in the source
/// where its text occurs.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Placeholder {
    /// Start character position in the target.
    pub target_start: usize,
    /// End character position (exclusive) in the target.
    pub target_end: usize,
    /// The placeholder text (the target slice).
    pub text: String,
    /// Character positions in the source where `text` occurs.
    pub source_positions: Vec<usize>,
}

impl Placeholder {
    /// Character length of the placeholder.
    pub fn char_len(&self) -> usize {
        self.target_end - self.target_start
    }
}

/// Detects the maximal-length placeholders of a (source, target) pair.
///
/// Every returned placeholder has at least one source occurrence; the list is
/// ordered by target position.
pub fn maximal_placeholders(source: &CharStr, target: &str) -> Vec<Placeholder> {
    let target_chars: Vec<char> = target.chars().collect();
    common_substring_matches(source.as_str(), target)
        .into_iter()
        .map(|m| {
            let text: String = target_chars[m.target_start..m.target_end].iter().collect();
            Placeholder {
                target_start: m.target_start,
                target_end: m.target_end,
                text,
                source_positions: m.source_positions,
            }
        })
        .collect()
}

/// Re-splits a placeholder at separator characters (Section 4.1.3): word
/// tokens become sub-placeholders (with their own source occurrence lists)
/// and separator runs become literal text, returned as
/// `(literal_or_placeholder)` parts in target order.
///
/// Returns `None` when the placeholder contains no separator (re-splitting
/// would change nothing) or when a word token no longer occurs in the source
/// (cannot happen for sub-tokens of a common block, but guarded anyway).
pub fn resplit_placeholder(
    placeholder: &Placeholder,
    source: &CharStr,
) -> Option<Vec<ResplitPart>> {
    let tokens = tokenize_with_separators(&placeholder.text);
    if tokens.len() <= 1 {
        return None;
    }
    let mut parts = Vec::with_capacity(tokens.len());
    for tok in tokens {
        match tok.kind {
            TokenKind::Separator => parts.push(ResplitPart::Literal(tok.text)),
            TokenKind::Word => {
                let source_positions = source.find_all(&tok.text);
                if source_positions.is_empty() {
                    return None;
                }
                parts.push(ResplitPart::Placeholder(Placeholder {
                    target_start: placeholder.target_start + tok.start,
                    target_end: placeholder.target_start + tok.end,
                    text: tok.text,
                    source_positions,
                }));
            }
        }
    }
    Some(parts)
}

/// One part of a re-split placeholder.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResplitPart {
    /// A separator run kept as literal text.
    Literal(String),
    /// A word token promoted to its own placeholder.
    Placeholder(Placeholder),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_email_placeholders() {
        let source = CharStr::new("bowling, michael");
        let found = maximal_placeholders(&source, "michael.bowling@ualberta.ca");
        let texts: Vec<&str> = found.iter().map(|p| p.text.as_str()).collect();
        assert!(texts.contains(&"michael"));
        assert!(texts.contains(&"bowling"));
        for p in &found {
            assert!(!p.source_positions.is_empty());
            assert_eq!(p.char_len(), p.text.chars().count());
        }
    }

    #[test]
    fn placeholders_ordered_by_target_position() {
        let source = CharStr::new("abc def");
        let found = maximal_placeholders(&source, "def-abc");
        let starts: Vec<usize> = found.iter().map(|p| p.target_start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
    }

    #[test]
    fn no_placeholders_for_disjoint_pair() {
        let source = CharStr::new("abc");
        assert!(maximal_placeholders(&source, "xyz").is_empty());
    }

    #[test]
    fn resplit_victor_example() {
        // Paper example: placeholder "Victor R" re-splits into
        // P("Victor"), L(" "), P("R").
        let source = CharStr::new("Victor Robbie Kasumba");
        let placeholders = maximal_placeholders(&source, "Victor R. Kasumba");
        let big = placeholders
            .iter()
            .find(|p| p.text == "Victor R")
            .expect("maximal placeholder 'Victor R'");
        let parts = resplit_placeholder(big, &source).expect("re-splittable");
        assert_eq!(parts.len(), 3);
        match (&parts[0], &parts[1], &parts[2]) {
            (
                ResplitPart::Placeholder(a),
                ResplitPart::Literal(sep),
                ResplitPart::Placeholder(b),
            ) => {
                assert_eq!(a.text, "Victor");
                assert_eq!(sep, " ");
                assert_eq!(b.text, "R");
                assert!(!b.source_positions.is_empty());
            }
            other => panic!("unexpected parts: {other:?}"),
        }
    }

    #[test]
    fn resplit_none_when_no_separator() {
        let source = CharStr::new("abcdef");
        let p = Placeholder {
            target_start: 0,
            target_end: 3,
            text: "abc".into(),
            source_positions: vec![0],
        };
        assert!(resplit_placeholder(&p, &source).is_none());
    }

    #[test]
    fn resplit_positions_are_absolute() {
        let source = CharStr::new("john smith");
        let p = Placeholder {
            target_start: 5,
            target_end: 15,
            text: "john smith".into(),
            source_positions: vec![0],
        };
        let parts = resplit_placeholder(&p, &source).unwrap();
        if let ResplitPart::Placeholder(last) = &parts[2] {
            assert_eq!(last.target_start, 10);
            assert_eq!(last.target_end, 15);
            assert_eq!(last.text, "smith");
        } else {
            panic!("expected placeholder part");
        }
    }
}
