//! The synthesis engine: ties the phases together (Section 4.1 end to end).

use crate::bitmap::RowBitmap;
use crate::config::SynthesisConfig;
use crate::cover::{
    lazy_greedy_cover_budgeted, min_rows_for_support, top_k, ScoredTransformation,
};
use crate::coverage::compute_coverage_planned_budgeted;
use crate::generate::generate_transformations;
use crate::pair::PairSet;
use crate::sampling::sample_indices;
use crate::stats::{PhaseTimings, SynthesisStats};
use std::time::Instant;
use tjoin_text::{fault, BudgetExceeded, BudgetToken, FaultSite};
use tjoin_units::{CoveredTransformation, TransformationSet};

/// The result of a synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The `top_k` transformations by individual coverage ("Top Cov." view).
    pub top: Vec<CoveredTransformation>,
    /// The greedy minimal covering set ("Coverage" / "#Trans." view).
    pub cover: TransformationSet,
    /// Statistics and timings of the run.
    pub stats: SynthesisStats,
}

impl SynthesisResult {
    /// Coverage fraction of the single best transformation.
    pub fn top_coverage(&self) -> f64 {
        if self.stats.pairs_used == 0 {
            return 0.0;
        }
        self.top
            .first()
            .map(|t| t.coverage() as f64 / self.stats.pairs_used as f64)
            .unwrap_or(0.0)
    }

    /// Coverage fraction of the covering set.
    pub fn set_coverage(&self) -> f64 {
        self.cover.set_coverage()
    }
}

/// The transformation synthesis engine (the paper's contribution).
///
/// See the crate-level documentation for the phase walk-through and
/// [`SynthesisConfig`] for the tunable parameters.
#[derive(Debug, Clone, Default)]
pub struct SynthesisEngine {
    config: SynthesisConfig,
}

impl SynthesisEngine {
    /// Creates an engine with the given configuration (validating it).
    pub fn new(config: SynthesisConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SynthesisConfig {
        &self.config
    }

    /// Runs synthesis on raw (source, target) string pairs.
    pub fn discover_from_strings<S: AsRef<str>, T: AsRef<str>>(
        &self,
        pairs: &[(S, T)],
    ) -> SynthesisResult {
        let set = PairSet::from_strings(pairs, &self.config.normalize);
        self.discover(&set)
    }

    /// [`Self::discover_from_strings`] under a cooperative [`BudgetToken`]
    /// (see [`Self::discover_budgeted`]).
    pub fn discover_from_strings_budgeted<S: AsRef<str>, T: AsRef<str>>(
        &self,
        pairs: &[(S, T)],
        budget: Option<&BudgetToken>,
    ) -> Result<SynthesisResult, BudgetExceeded> {
        let set = PairSet::from_strings(pairs, &self.config.normalize);
        self.discover_budgeted(&set, budget)
    }

    /// Runs synthesis on a prepared [`PairSet`].
    pub fn discover(&self, pairs: &PairSet) -> SynthesisResult {
        self.discover_budgeted(pairs, None).expect("unbudgeted synthesis cannot abort")
    }

    /// [`Self::discover`] under a cooperative [`BudgetToken`]: the token is
    /// checked between phases, at the coverage scan's row boundaries, and
    /// at the selection heap's pop boundaries, so a tripped budget (only
    /// the wall-clock deadline can trip mid-run; row/byte caps are charged
    /// at pipeline admission) aborts the synthesis cleanly with `Err`
    /// instead of running away. With `budget = None` this is exactly
    /// [`Self::discover`], bit for bit.
    pub fn discover_budgeted(
        &self,
        pairs: &PairSet,
        budget: Option<&BudgetToken>,
    ) -> Result<SynthesisResult, BudgetExceeded> {
        let total_input = pairs.len();

        // Sampling (Section 5.3): draw the working subset when configured.
        let sampled;
        let working: &PairSet = match self.config.sample_size {
            Some(size) if size < pairs.len() => {
                let idx = sample_indices(pairs.len(), size, self.config.sample_seed);
                sampled = pairs.subset(&idx);
                &sampled
            }
            _ => pairs,
        };

        // Phase 1–3: placeholders, skeletons, unit extraction, generation,
        // duplicate removal.
        let generation = generate_transformations(working, &self.config);
        if let Some(token) = budget {
            token.check()?;
        }

        // Phase 4: coverage with eager filtering, on the interned candidates
        // (no re-interning, no unit cloning). Parallel runs are planned: a
        // shared unit-output memo, then a scan chunked along the axis the
        // planner (or the `coverage_axis` knob) picks from the shape.
        fault::fire(FaultSite::CoverageScan);
        let coverage = compute_coverage_planned_budgeted(
            &generation.pool,
            &generation.transformations,
            working,
            self.config.unit_cache,
            self.config.threads,
            self.config.coverage_axis,
            budget,
        )?;

        // Phase 5: selection. Coverage arrives as sparse sorted row lists;
        // the support and all-literal filters run on the sparse form (a
        // length check plus a pooled unit-kind scan), and only the
        // survivors are densified into bitmaps and materialized back into
        // owned transformations. The mostly-empty candidate majority never
        // allocates a bitmap.
        let select_start = Instant::now();
        let rows_used = working.len();
        let min_rows = min_rows_for_support(rows_used, self.config.min_support);
        let candidates: Vec<ScoredTransformation> = generation
            .transformations
            .iter()
            .zip(coverage.covered_rows)
            .filter(|(t, rows)| {
                rows.len() >= min_rows
                    && !(rows.len() <= 1 && t.is_all_literal(&generation.pool))
            })
            .map(|(t, rows)| ScoredTransformation {
                transformation: generation.pool.resolve(t),
                covered: RowBitmap::from_sorted_rows(rows_used, &rows),
            })
            .collect();
        let top = top_k(&candidates, self.config.top_k);
        let cover = lazy_greedy_cover_budgeted(candidates, rows_used, budget)?;
        let cover_selection = select_start.elapsed();

        let stats = SynthesisStats {
            pairs_total: total_input,
            pairs_used: working.len(),
            generated_transformations: generation.generated,
            transformations_to_try: generation.unique,
            coverage_trials: coverage.trials,
            cache_hits: coverage.cache_hits,
            potential_trials: coverage.potential_trials,
            timings: PhaseTimings {
                placeholder_generation: generation.placeholder_time,
                unit_extraction: generation.unit_extraction_time,
                duplicate_removal: generation.generation_dedup_time,
                applying_transformations: coverage.apply_time,
                cover_selection,
            },
        };

        Ok(SynthesisResult { top, cover, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tjoin_units::UnitKind;

    fn engine() -> SynthesisEngine {
        SynthesisEngine::new(SynthesisConfig::default())
    }

    #[test]
    fn discovers_single_rule_for_uniform_rows() {
        let rows = vec![
            ("Rafiei, Davood", "D Rafiei"),
            ("Nascimento, Mario", "M Nascimento"),
            ("Gingrich, Douglas", "D Gingrich"),
            ("Bowling, Michael", "M Bowling"),
            ("Gosgnach, Simon", "S Gosgnach"),
        ];
        let result = engine().discover_from_strings(&rows);
        assert!(
            (result.top_coverage() - 1.0).abs() < 1e-9,
            "top coverage {}",
            result.top_coverage()
        );
        assert!((result.set_coverage() - 1.0).abs() < 1e-9);
        assert_eq!(result.cover.len(), 1, "cover: {}", result.cover);
        // The discovered rule must generalize to an unseen row.
        let t = &result.top[0].transformation;
        assert_eq!(
            t.apply("prus-czarnecki, andrzej").as_deref(),
            Some("a prus-czarnecki")
        );
    }

    #[test]
    fn discovers_multiple_rules_when_formats_mix() {
        // Half the rows map to emails, half to "F Last" abbreviations: one
        // transformation cannot cover both, the covering set needs at least 2.
        let rows = vec![
            ("Rafiei, Davood", "davood.rafiei@ualberta.ca"),
            ("Bowling, Michael", "michael.bowling@ualberta.ca"),
            ("Nascimento, Mario", "mario.nascimento@ualberta.ca"),
            ("Gingrich, Douglas", "d gingrich"),
            ("Gosgnach, Simon", "s gosgnach"),
            ("Smith, Sarah", "s smith"),
        ];
        let result = engine().discover_from_strings(&rows);
        assert!((result.set_coverage() - 1.0).abs() < 1e-9, "{}", result.cover);
        assert!(result.cover.len() >= 2);
        assert!(result.top_coverage() <= 0.51);
    }

    #[test]
    fn phone_reformatting_discovered() {
        let rows = vec![
            ("(780) 432-3636", "+1 780 432 3636"),
            ("(780) 433-6545", "+1 780 433 6545"),
            ("(403) 428-2108", "+1 403 428 2108"),
        ];
        let result = engine().discover_from_strings(&rows);
        assert!((result.set_coverage() - 1.0).abs() < 1e-9, "{}", result.cover);
        let t = &result.top[0].transformation;
        assert_eq!(t.apply("(825) 406-4565").as_deref(), Some("+1 825 406 4565"));
    }

    #[test]
    fn noise_rows_left_uncovered_but_do_not_break_discovery() {
        let rows = vec![
            ("Rafiei, Davood", "D Rafiei"),
            ("Bowling, Michael", "M Bowling"),
            ("Gosgnach, Simon", "S Gosgnach"),
            ("Smith, Sarah", "totally unrelated text 123"),
        ];
        let result = engine().discover_from_strings(&rows);
        assert!(result.top_coverage() >= 0.74, "top {}", result.top_coverage());
        assert!(result.set_coverage() < 1.0 + 1e-9);
    }

    #[test]
    fn sampling_still_discovers_high_coverage_rule() {
        let rows: Vec<(String, String)> = (0..200)
            .map(|i| {
                (
                    format!("user{i:03}, person"),
                    format!("p user{i:03}"),
                )
            })
            .collect();
        let config = SynthesisConfig::default().with_sample(20, 1);
        let result = SynthesisEngine::new(config).discover_from_strings(&rows);
        assert_eq!(result.stats.pairs_total, 200);
        assert_eq!(result.stats.pairs_used, 20);
        assert!((result.top_coverage() - 1.0).abs() < 1e-9);
        // The rule discovered on the sample generalizes to the full input.
        let t = &result.top[0].transformation;
        assert_eq!(t.apply("user999, person").as_deref(), Some("p user999"));
    }

    #[test]
    fn min_support_drops_rare_transformations() {
        let rows = vec![
            ("aaa, bbb", "bbb"),
            ("ccc, ddd", "ddd"),
            ("eee, fff", "fff"),
            ("unique-row", "completely different 42"),
        ];
        let strict = SynthesisEngine::new(SynthesisConfig::default().with_min_support(0.5));
        let result = strict.discover_from_strings(&rows);
        for t in result.cover.iter() {
            assert!(t.coverage() as f64 / rows.len() as f64 >= 0.5);
        }
    }

    #[test]
    fn pruning_toggles_do_not_change_coverage() {
        let rows = vec![
            ("Rafiei, Davood", "D Rafiei"),
            ("Bowling, Michael", "M Bowling"),
            ("Gosgnach, Simon", "S Gosgnach"),
        ];
        let pruned = engine().discover_from_strings(&rows);
        let unpruned =
            SynthesisEngine::new(SynthesisConfig::default().without_pruning())
                .discover_from_strings(&rows);
        assert!((pruned.top_coverage() - unpruned.top_coverage()).abs() < 1e-9);
        assert!((pruned.set_coverage() - unpruned.set_coverage()).abs() < 1e-9);
        // Pruning statistics must reflect the toggles.
        assert!(pruned.stats.cache_hits > 0 || pruned.stats.potential_trials < 100);
        assert_eq!(unpruned.stats.cache_hits, 0);
        assert!(unpruned.stats.duplicate_ratio() == 0.0);
        assert!(pruned.stats.duplicate_ratio() >= 0.0);
    }

    #[test]
    fn stats_are_consistent() {
        let rows = vec![("abc def", "def-abc"), ("ghi jkl", "jkl-ghi")];
        let result = engine().discover_from_strings(&rows);
        let s = &result.stats;
        assert!(s.generated_transformations >= s.transformations_to_try);
        assert_eq!(
            s.potential_trials,
            s.transformations_to_try * s.pairs_used as u64
        );
        assert!(s.coverage_trials + s.cache_hits <= s.potential_trials);
        assert!(s.total_time() > std::time::Duration::ZERO);
    }

    #[test]
    fn stats_identical_to_reference_coverage() {
        // The move-based selection and interned coverage must leave
        // `SynthesisStats` exactly as the naive clone-based pipeline would
        // have reported it: re-run generation + the retained reference
        // coverage loop and compare every pruning statistic.
        use crate::coverage::reference::compute_coverage_reference;
        use crate::generate::generate_transformations;
        use crate::pair::PairSet;

        let rows = vec![
            ("Rafiei, Davood", "D Rafiei"),
            ("Bowling, Michael", "M Bowling"),
            ("Gosgnach, Simon", "S Gosgnach"),
            ("Smith, Sarah", "totally unrelated text 123"),
        ];
        for threads in [1usize, 4] {
            let config = SynthesisConfig::default().with_threads(threads);
            let result = SynthesisEngine::new(config.clone()).discover_from_strings(&rows);

            let pairs = PairSet::from_strings(&rows, &config.normalize);
            let generation = generate_transformations(&pairs, &config);
            let resolved: Vec<_> = generation.resolved().collect();
            let reference =
                compute_coverage_reference(&resolved, &pairs, config.unit_cache, threads);

            let s = &result.stats;
            assert_eq!(s.generated_transformations, generation.generated);
            assert_eq!(s.transformations_to_try, generation.unique);
            assert_eq!(s.coverage_trials, reference.trials, "threads={threads}");
            assert_eq!(s.cache_hits, reference.cache_hits, "threads={threads}");
            assert_eq!(s.potential_trials, reference.potential_trials);
        }
    }

    #[test]
    fn empty_input_produces_empty_result() {
        let rows: Vec<(String, String)> = Vec::new();
        let result = engine().discover_from_strings(&rows);
        assert!(result.top.is_empty());
        assert!(result.cover.is_empty());
        assert_eq!(result.top_coverage(), 0.0);
        assert_eq!(result.set_coverage(), 0.0);
    }

    #[test]
    fn parallel_coverage_matches_sequential() {
        let rows: Vec<(String, String)> = (0..30)
            .map(|i| (format!("item {i:02}, group"), format!("g item {i:02}")))
            .collect();
        let seq = engine().discover_from_strings(&rows);
        let par = SynthesisEngine::new(SynthesisConfig::default().with_threads(4))
            .discover_from_strings(&rows);
        assert_eq!(seq.top_coverage(), par.top_coverage());
        assert_eq!(seq.set_coverage(), par.set_coverage());
        assert_eq!(seq.cover.len(), par.cover.len());
    }

    #[test]
    fn two_char_split_enabled_finds_parenthesized_content() {
        let mut config = SynthesisConfig::default();
        config.unit_kinds.push(UnitKind::TwoCharSplitSubstr);
        let rows = vec![
            ("alpha (one)", "one"),
            ("beta (two)", "two"),
            ("gamma (six)", "six"),
        ];
        let result = SynthesisEngine::new(config).discover_from_strings(&rows);
        assert!((result.top_coverage() - 1.0).abs() < 1e-9, "{}", result.cover);
    }
}
