//! # tjoin-core
//!
//! The transformation synthesis engine of *"Efficiently Transforming Tables
//! for Joinability"* (Nobari & Rafiei, ICDE 2022) — the paper's primary
//! contribution.
//!
//! Given a set of candidate source/target row pairs, the engine discovers a
//! concise set of [`tjoin_units::Transformation`]s under which the pairs
//! become equi-joinable:
//!
//! 1. **Placeholder detection** ([`placeholder`]): maximal common blocks of
//!    the target with respect to the source (Definition 4 + Section 4.1.3),
//!    optionally re-split at natural-language separators (Lemma 4, case 1).
//! 2. **Skeleton enumeration** ([`skeleton`]): each row yields up to `2^p`
//!    skeletons of placeholders and literals that concatenate to the target.
//! 3. **Unit extraction** ([`unitgen`]): each placeholder is replaced by the
//!    candidate units that can emit its text from the source (Section 4.1.4).
//! 4. **Generation + duplicate removal** ([`generate`]): the Cartesian
//!    product of candidate units per skeleton, deduplicated in a hash set
//!    (Section 4.1.5).
//! 5. **Coverage with eager filtering** ([`coverage`]): every surviving
//!    transformation is applied to every pair, skipping rows whose
//!    non-covering-unit cache already rules the transformation out.
//! 6. **Solution assembly** ([`cover`]): the top-k transformations by
//!    coverage and a greedy minimal covering set (Section 4.1.6).
//!
//! The [`engine::SynthesisEngine`] ties the phases together, records
//! per-phase timings and pruning statistics ([`stats`]) used by the paper's
//! Table 4 and Figures 3–4, and supports sampling (Section 5.3) and support
//! thresholds for noisy inputs.
//!
//! ## The interned coverage core
//!
//! The dominant cost of synthesis is the coverage phase — Section 4.1.5's
//! pruning strategies exist precisely because applying every candidate to
//! every row is quadratic in practice. This crate implements those
//! strategies over an *interned* representation rather than owned values:
//!
//! * **Unit pool** ([`tjoin_units::UnitPool`]): generation interns every
//!   distinct unit once and emits candidates as
//!   [`tjoin_units::IdTransformation`]s — dense `u32` id vectors. The
//!   paper's duplicate removal (strategy 1) then hashes id vectors instead
//!   of unit vectors with embedded strings.
//! * **Per-row output memoization** ([`coverage`]): candidates are Cartesian
//!   products over a small unit pool, so the same unit appears in hundreds
//!   of transformations. The engine evaluates `Unit::output_on` at most
//!   once per `(row, unit)` pair, memoizing the output *and* the
//!   is-substring-of-target verdict in a dense table indexed by
//!   [`tjoin_units::UnitId`].
//! * **Bitset non-covering cache**: the paper's per-row cache of units known
//!   not to help a row (strategy 2, the 50–99 % hit ratios of Table 4) is a
//!   dense epoch-stamped array indexed by `UnitId` — O(1), no hashing, no
//!   unit clones.
//! * **Sparse coverage collection** ([`coverage`]): covered rows are
//!   accumulated as sorted per-candidate row lists instead of a dense
//!   [`bitmap::RowBitmap`] per candidate (which would cost
//!   `candidates × rows/8` bytes up front — ~1.25 GB at 10^6 candidates ×
//!   10^4 rows — even though most candidates cover nothing). Only the
//!   candidates surviving the non-empty/support filter are densified, via
//!   [`bitmap::RowBitmap::from_sorted_rows`], into the fixed-size bitmaps
//!   the selection phase's set algebra wants, and results are moved (not
//!   cloned) from coverage into selection.
//!
//! ## Planned parallel coverage
//!
//! Parallel coverage ([`coverage::plan`]) is a two-phase *planned*
//! execution. Phase 1 builds a **shared unit-output memo**: every distinct
//! unit referenced by the candidate list is evaluated exactly once per row
//! into a write-once table (built in parallel, sharded by unit-id range,
//! then frozen), so scan workers share outputs instead of each lazily
//! re-deriving them — `rows × referenced units` evaluations total at any
//! thread count, where per-thread memos paid up to that *per worker*.
//! Phase 2 chunks the coverage matrix along one of two axes: the
//! **transformation axis** (each worker scans a candidate chunk over all
//! rows) or the **row axis** (each worker scans all candidates over a
//! contiguous row chunk, whose sorted per-candidate row lists concatenate
//! trivially because chunks are disjoint and ordered). A small planner
//! ([`coverage::plan::plan_execution`]) picks the axis from the
//! transformations × rows shape — row chunking rescues the
//! few-transformations × many-rows workloads (GXJoin-style generalized
//! pattern pools) where transformation chunking degenerates — and the
//! [`SynthesisConfig::coverage_axis`] knob ([`CoverageAxis`], default
//! `Auto`) can force either axis.
//!
//! Stats semantics under the shared memo are exact, not best-effort:
//! covered rows are bit-identical to the reference oracle under every
//! plan; row-axis trial/cache-hit counts are bit-identical to the *serial*
//! engine at any thread count (each row's transformation sequence runs in
//! order, so the per-row incremental cache evolves identically);
//! transformation-axis counts match the reference at the same thread count
//! (the per-chunk cache-restart semantics of the pre-planner engine); and
//! `unit_evaluations` is exactly `rows × referenced units` for shared-memo
//! plans. See the [`coverage`] module docs for the full contract.
//!
//! ## Lazy-greedy selection
//!
//! Selection ([`cover`]) runs the paper's greedy set cover as a CELF-style
//! **lazy-greedy priority queue**: every candidate's last known marginal
//! gain sits in a max-heap, and each round re-evaluates only the entries
//! that surface at the top until the top entry's gain is confirmed fresh.
//! Stale heap entries are safe — marginal gain is submodular (the covered
//! set only grows, so true gains only shrink), which makes every cached
//! gain an *upper bound*; a confirmed-fresh top therefore dominates every
//! other candidate's true gain and is the exact argmax, not an
//! approximation. Tie-breaks (gain, then fewer units, then lexicographic,
//! then input order) keep heap comparisons integer-only — the lexicographic
//! leg is resolved at pop time over the fresh tie group, with rendered
//! strings memoized per candidate. The full-rescan loop is retained in
//! [`cover::reference`] as the selection oracle.
//!
//! All observable results — covered rows, trial counts, cache-hit
//! accounting, selected covering sets and their order — are bit-identical
//! to the naive loops retained in [`coverage::reference`] and
//! [`cover::reference`] as differential-testing oracles and benchmark
//! baselines (see `tests/proptest_selection.rs` and the `selection`
//! benchmark's `BENCH_selection.json`).
//!
//! ```
//! use tjoin_core::{SynthesisConfig, SynthesisEngine};
//!
//! let pairs = vec![
//!     ("Rafiei, Davood".to_owned(), "D Rafiei".to_owned()),
//!     ("Bowling, Michael".to_owned(), "M Bowling".to_owned()),
//!     ("Gosgnach, Simon".to_owned(), "S Gosgnach".to_owned()),
//! ];
//! let engine = SynthesisEngine::new(SynthesisConfig::default());
//! let result = engine.discover_from_strings(&pairs);
//! assert!(result.cover.set_coverage() >= 0.99);
//! let best = result.top.first().expect("a transformation was found");
//! assert_eq!(best.coverage(), 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bitmap;
pub mod config;
pub mod cover;
pub mod coverage;
pub mod engine;
pub mod generate;
pub mod pair;
pub mod placeholder;
pub mod sampling;
pub mod skeleton;
pub mod stats;
pub mod unitgen;

pub use bitmap::RowBitmap;
pub use config::SynthesisConfig;
pub use coverage::plan::CoverageAxis;
pub use engine::{SynthesisEngine, SynthesisResult};
pub use pair::{InputPair, PairSet};
pub use sampling::{discovery_probability, SamplingAnalysis};
pub use stats::{PhaseTimings, SynthesisStats};
