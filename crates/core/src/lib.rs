//! # tjoin-core
//!
//! The transformation synthesis engine of *"Efficiently Transforming Tables
//! for Joinability"* (Nobari & Rafiei, ICDE 2022) — the paper's primary
//! contribution.
//!
//! Given a set of candidate source/target row pairs, the engine discovers a
//! concise set of [`tjoin_units::Transformation`]s under which the pairs
//! become equi-joinable:
//!
//! 1. **Placeholder detection** ([`placeholder`]): maximal common blocks of
//!    the target with respect to the source (Definition 4 + Section 4.1.3),
//!    optionally re-split at natural-language separators (Lemma 4, case 1).
//! 2. **Skeleton enumeration** ([`skeleton`]): each row yields up to `2^p`
//!    skeletons of placeholders and literals that concatenate to the target.
//! 3. **Unit extraction** ([`unitgen`]): each placeholder is replaced by the
//!    candidate units that can emit its text from the source (Section 4.1.4).
//! 4. **Generation + duplicate removal** ([`generate`]): the Cartesian
//!    product of candidate units per skeleton, deduplicated in a hash set
//!    (Section 4.1.5).
//! 5. **Coverage with eager filtering** ([`coverage`]): every surviving
//!    transformation is applied to every pair, skipping rows whose
//!    non-covering-unit cache already rules the transformation out.
//! 6. **Solution assembly** ([`cover`]): the top-k transformations by
//!    coverage and a greedy minimal covering set (Section 4.1.6).
//!
//! The [`engine::SynthesisEngine`] ties the phases together, records
//! per-phase timings and pruning statistics ([`stats`]) used by the paper's
//! Table 4 and Figures 3–4, and supports sampling (Section 5.3) and support
//! thresholds for noisy inputs.
//!
//! ```
//! use tjoin_core::{SynthesisConfig, SynthesisEngine};
//!
//! let pairs = vec![
//!     ("Rafiei, Davood".to_owned(), "D Rafiei".to_owned()),
//!     ("Bowling, Michael".to_owned(), "M Bowling".to_owned()),
//!     ("Gosgnach, Simon".to_owned(), "S Gosgnach".to_owned()),
//! ];
//! let engine = SynthesisEngine::new(SynthesisConfig::default());
//! let result = engine.discover_from_strings(&pairs);
//! assert!(result.cover.set_coverage() >= 0.99);
//! let best = result.top.first().expect("a transformation was found");
//! assert_eq!(best.coverage(), 3);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod cover;
pub mod coverage;
pub mod engine;
pub mod generate;
pub mod pair;
pub mod placeholder;
pub mod sampling;
pub mod skeleton;
pub mod stats;
pub mod unitgen;

pub use config::SynthesisConfig;
pub use engine::{SynthesisEngine, SynthesisResult};
pub use pair::{InputPair, PairSet};
pub use sampling::{discovery_probability, SamplingAnalysis};
pub use stats::{PhaseTimings, SynthesisStats};
