//! Input pairs: the candidate source/target rows synthesis runs on.

use serde::{Deserialize, Serialize};
use tjoin_text::{checked_row_count, normalize_for_matching, NormalizeOptions};
use tjoin_units::CharStr;

/// One candidate joinable row pair, already normalized.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputPair {
    /// Normalized source value.
    pub source: String,
    /// Normalized target value.
    pub target: String,
}

impl InputPair {
    /// Builds a pair, applying the given normalization to both sides.
    pub fn new(source: &str, target: &str, normalize: &NormalizeOptions) -> Self {
        Self {
            source: normalize_for_matching(source, normalize),
            target: normalize_for_matching(target, normalize),
        }
    }
}

/// The prepared set of input pairs: normalized values plus per-row
/// character-indexed views of the source (the hot structure for unit
/// application) and character counts of the target.
#[derive(Debug, Clone)]
pub struct PairSet {
    pairs: Vec<InputPair>,
    sources: Vec<CharStr>,
    target_char_lens: Vec<usize>,
}

impl PairSet {
    /// Prepares a pair set from raw (source, target) strings.
    pub fn from_strings<S: AsRef<str>, T: AsRef<str>>(
        raw: &[(S, T)],
        normalize: &NormalizeOptions,
    ) -> Self {
        let pairs: Vec<InputPair> = raw
            .iter()
            .map(|(s, t)| InputPair::new(s.as_ref(), t.as_ref(), normalize))
            .collect();
        Self::from_pairs(pairs)
    }

    /// Prepares a pair set from already-normalized pairs.
    ///
    /// Panics when the pair count exceeds the `u32` row-id space — this is
    /// the single admission check every downstream `row as u32` cast in the
    /// coverage scans relies on.
    pub fn from_pairs(pairs: Vec<InputPair>) -> Self {
        if let Err(e) = checked_row_count(pairs.len()) {
            panic!("pair set exceeds the u32 row-id space: {e}");
        }
        let sources = pairs.iter().map(|p| CharStr::new(p.source.clone())).collect();
        let target_char_lens = pairs.iter().map(|p| p.target.chars().count()).collect();
        Self {
            pairs,
            sources,
            target_char_lens,
        }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The pair at `idx`.
    pub fn pair(&self, idx: usize) -> &InputPair {
        &self.pairs[idx]
    }

    /// The prepared source view at `idx`.
    pub fn source(&self, idx: usize) -> &CharStr {
        &self.sources[idx]
    }

    /// The target string at `idx`.
    pub fn target(&self, idx: usize) -> &str {
        &self.pairs[idx].target
    }

    /// Character length of the target at `idx`.
    pub fn target_char_len(&self, idx: usize) -> usize {
        self.target_char_lens[idx]
    }

    /// Iterates over the pairs.
    pub fn iter(&self) -> impl Iterator<Item = &InputPair> {
        self.pairs.iter()
    }

    /// Average character length across source and target values (used in
    /// experiment reports).
    pub fn average_value_length(&self) -> f64 {
        if self.pairs.is_empty() {
            return 0.0;
        }
        let total: usize = self
            .pairs
            .iter()
            .map(|p| p.source.chars().count() + p.target.chars().count())
            .sum();
        total as f64 / (2 * self.pairs.len()) as f64
    }

    /// A new pair set containing only the rows at `indices` (used by
    /// sampling). Indices out of range are ignored.
    pub fn subset(&self, indices: &[usize]) -> Self {
        let pairs: Vec<InputPair> = indices
            .iter()
            .filter_map(|&i| self.pairs.get(i).cloned())
            .collect();
        Self::from_pairs(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_applied() {
        let p = InputPair::new("  Rafiei,   Davood ", "D RAFIEI", &NormalizeOptions::default());
        assert_eq!(p.source, "rafiei, davood");
        assert_eq!(p.target, "d rafiei");
        let p = InputPair::new(" A ", "B", &NormalizeOptions::none());
        assert_eq!(p.source, " A ");
    }

    #[test]
    fn pair_set_accessors() {
        let set = PairSet::from_strings(
            &[("Rafiei, Davood", "D Rafiei"), ("Bowling, Michael", "M Bowling")],
            &NormalizeOptions::default(),
        );
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.target(0), "d rafiei");
        assert_eq!(set.source(1).as_str(), "bowling, michael");
        assert_eq!(set.target_char_len(0), 8);
        assert!(set.average_value_length() > 0.0);
        assert_eq!(set.iter().count(), 2);
    }

    #[test]
    fn subset_selects_rows() {
        let set = PairSet::from_strings(
            &[("a", "1"), ("b", "2"), ("c", "3")],
            &NormalizeOptions::none(),
        );
        let sub = set.subset(&[2, 0, 99]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.pair(0).source, "c");
        assert_eq!(sub.pair(1).source, "a");
    }

    #[test]
    fn empty_set() {
        let set = PairSet::from_pairs(vec![]);
        assert!(set.is_empty());
        assert_eq!(set.average_value_length(), 0.0);
    }
}
