//! Coverage computation with eager filtering (Section 4.1.5 of the paper).
//!
//! Every candidate transformation must be applied to every input pair to
//! learn which rows it covers. Two observations keep this tractable:
//!
//! * A transformation cannot cover a row if the output of *any* of its units
//!   is not a substring of the row's target. Each row therefore remembers
//!   the units already known not to help it (the paper's "cache"); a
//!   transformation containing such a unit is skipped for that row in O(1)
//!   per unit. Because candidates are Cartesian products of a small unit
//!   pool, the same units recur across many transformations and the cache
//!   hit ratio is high (Table 4 reports 50–99 %).
//! * A cheap running length check abandons the application as soon as the
//!   concatenated output exceeds the target length.
//!
//! # The interned engine
//!
//! The production path ([`compute_coverage_interned`]) exploits the
//! [`UnitPool`] the generation phase already built:
//!
//! * **Per-row output memoization.** For each row, every unit's
//!   `output_on(source)` result is computed at most once and stored in a
//!   dense table indexed by [`UnitId`] — no matter how many transformations
//!   contain the unit. The memo also records the "is the output a substring
//!   of the target" verdict, so the repeated `target.contains(..)` scans of
//!   the naive loop collapse into one per `(row, unit)`.
//! * **Bitset cache.** The per-row non-covering-unit cache is a dense
//!   epoch-stamped array indexed by `UnitId` (O(1) lookup, zero hashing,
//!   zero cloning) instead of a `HashSet<Unit>` of cloned units. Its
//!   entries mirror the memo's `Bad` verdicts; it exists separately for
//!   pre-scan cache locality (see `BadUnitSet`).
//! * **Sparse coverage collection.** Covered rows are accumulated as sorted
//!   per-candidate row lists (`Vec<u32>`), not as a dense
//!   [`crate::bitmap::RowBitmap`] per candidate. A dense pre-allocation
//!   costs `candidates × rows/8` bytes even though the overwhelming
//!   majority of candidates cover nothing (at 10^6 candidates × 10^4 rows
//!   that is ~1.25 GB); a sparse list costs one `Vec` header (24 bytes) for
//!   an empty candidate and 4 bytes per covered row otherwise. Row-major
//!   iteration appends rows in increasing order, so each list is sorted by
//!   construction, and each worker thread accumulates the lists for its own
//!   chunk of candidates. Densification into `RowBitmap`s — the
//!   representation the selection phase's set algebra wants — happens in the
//!   engine, only for candidates surviving the non-empty/support filter
//!   (see [`crate::bitmap::RowBitmap::from_sorted_rows`]).
//!
//! The iteration order is row-major (rows outer, transformations inner) so
//! the memo table is a single pool-sized vector reset per row via epoch
//! stamps. Because the per-row cache only ever accrues entries from earlier
//! *trials on the same row*, and those happen in transformation order in
//! both orders, the reported `trials`, `cache_hits`, and covered rows are
//! bit-identical to the naive transformation-major loop retained in
//! [`reference`] — which still collects densely, making it the oracle for
//! the sparse collection as well.

use crate::pair::PairSet;
use std::time::{Duration, Instant};
use tjoin_units::{IdTransformation, Transformation, UnitId, UnitPool};

/// A candidate's covered rows as a sorted list of row indices — the sparse
/// per-chunk collection format (see the module docs).
pub type SparseRows = Vec<u32>;

/// The result of the coverage phase.
#[derive(Debug, Clone, Default)]
pub struct CoverageOutcome {
    /// For each transformation (same order as the input slice), the rows it
    /// covers, as a sorted sparse row list. Densify survivors with
    /// [`crate::bitmap::RowBitmap::from_sorted_rows`].
    pub covered_rows: Vec<SparseRows>,
    /// Number of (transformation, row) applications actually attempted.
    pub trials: u64,
    /// Number of (transformation, row) combinations skipped thanks to the
    /// non-covering-unit cache.
    pub cache_hits: u64,
    /// `transformations × rows`: what a pruning-free evaluation would cost.
    pub potential_trials: u64,
    /// Number of `Unit::output_on` evaluations performed. With memoization
    /// this is bounded by `rows × distinct units` per worker thread; the
    /// naive reference instead pays one evaluation per unit application.
    pub unit_evaluations: u64,
    /// Wall-clock time spent applying transformations.
    pub apply_time: Duration,
}

impl CoverageOutcome {
    /// Cache hit ratio over all potential trials (the paper's "Cache hit
    /// ratio" column in Table 4).
    pub fn cache_hit_ratio(&self) -> f64 {
        if self.potential_trials == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.potential_trials as f64
        }
    }

    /// Covered rows as sorted index vectors (now the native shape; retained
    /// for tests and reports written against the dense era's API).
    pub fn covered_rows_as_vecs(&self) -> Vec<Vec<u32>> {
        self.covered_rows.clone()
    }
}

/// Computes the coverage of every transformation over every pair.
///
/// Compatibility entry point over owned [`Transformation`]s: interns them
/// into a fresh [`UnitPool`] and runs the interned engine. Callers that
/// already hold a pool (the synthesis engine) should use
/// [`compute_coverage_interned`] directly and skip the re-interning.
///
/// `use_cache` toggles the non-covering-unit cache (pruning strategy 2);
/// `threads` > 1 splits the transformation list across worker threads, each
/// with its own per-row caches and memo tables (the statistics are summed,
/// so hit counts are slightly lower than a shared cache would achieve but
/// results are identical).
pub fn compute_coverage(
    transformations: &[Transformation],
    pairs: &PairSet,
    use_cache: bool,
    threads: usize,
) -> CoverageOutcome {
    let mut pool = UnitPool::new();
    let interned: Vec<IdTransformation> = transformations
        .iter()
        .map(|t| {
            IdTransformation::new(t.units().iter().map(|u| pool.intern(u.clone())).collect())
        })
        .collect();
    compute_coverage_interned(&pool, &interned, pairs, use_cache, threads)
}

/// Computes coverage over pre-interned transformations (the hot path).
///
/// See the module docs for the memoization/bitset design. Every observable
/// result (`covered_rows`, `trials`, `cache_hits`, `potential_trials`) is
/// bit-identical to [`reference::compute_coverage_reference`] with the same
/// arguments.
pub fn compute_coverage_interned(
    pool: &UnitPool,
    transformations: &[IdTransformation],
    pairs: &PairSet,
    use_cache: bool,
    threads: usize,
) -> CoverageOutcome {
    let start = Instant::now();
    let mut outcome = if threads <= 1 || transformations.len() < 256 {
        coverage_chunk_interned(pool, transformations, pairs, use_cache)
    } else {
        let threads = threads.min(transformations.len());
        let chunk_size = transformations.len().div_ceil(threads);
        let chunks: Vec<&[IdTransformation]> = transformations.chunks(chunk_size).collect();
        let results: Vec<CoverageOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || coverage_chunk_interned(pool, chunk, pairs, use_cache))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        let mut merged = CoverageOutcome::default();
        for r in results {
            merged.covered_rows.extend(r.covered_rows);
            merged.trials += r.trials;
            merged.cache_hits += r.cache_hits;
            merged.potential_trials += r.potential_trials;
            merged.unit_evaluations += r.unit_evaluations;
        }
        merged
    };
    outcome.apply_time = start.elapsed();
    outcome
}

/// The memoized outcome of one `(row, unit)` evaluation.
#[derive(Debug, Clone, Default)]
enum MemoEntry {
    /// Not evaluated on this row yet.
    #[default]
    Unknown,
    /// The unit does not apply, or its (non-empty) output is not a substring
    /// of the row's target — exactly the condition under which the naive
    /// loop inserts the unit into the row's non-covering cache.
    Bad,
    /// The unit's output, which does occur in the row's target (or is
    /// empty).
    Good(Box<str>),
}

/// Dense per-row memo over the unit pool, reset per row via epoch stamps so
/// the allocation is reused across rows.
struct RowMemo {
    entries: Vec<MemoEntry>,
    epochs: Vec<u32>,
    current_epoch: u32,
}

impl RowMemo {
    fn new(pool_len: usize) -> Self {
        Self {
            entries: vec![MemoEntry::default(); pool_len],
            epochs: vec![0; pool_len],
            current_epoch: 0,
        }
    }

    /// Starts a new row: logically clears all entries in O(1).
    fn next_row(&mut self) {
        self.current_epoch += 1;
    }

    #[inline]
    fn get(&self, id: UnitId) -> &MemoEntry {
        if self.epochs[id.index()] == self.current_epoch {
            &self.entries[id.index()]
        } else {
            &MemoEntry::Unknown
        }
    }

    #[inline]
    fn set(&mut self, id: UnitId, entry: MemoEntry) {
        self.epochs[id.index()] = self.current_epoch;
        self.entries[id.index()] = entry;
    }
}

/// Per-row set of units known not to cover the row (the paper's cache),
/// epoch-stamped like [`RowMemo`].
///
/// Logically this duplicates the memo's `Bad` entries — a unit is inserted
/// here exactly when its memo entry is set to [`MemoEntry::Bad`] — but it is
/// kept as a separate dense `u32` epoch array deliberately: the cache-skip
/// pre-scan touches it once per unit of every candidate on every row (the
/// hottest loop in coverage), and scanning a 4-byte-per-unit array is ~25 %
/// faster end-to-end than reading the 24-byte `MemoEntry` slots (measured
/// on the `coverage_interned` bench: 6.7 ms vs 8.6 ms median).
struct BadUnitSet {
    epochs: Vec<u32>,
    current_epoch: u32,
}

impl BadUnitSet {
    fn new(pool_len: usize) -> Self {
        Self {
            epochs: vec![0; pool_len],
            current_epoch: 0,
        }
    }

    fn next_row(&mut self) {
        self.current_epoch += 1;
    }

    #[inline]
    fn contains(&self, id: UnitId) -> bool {
        self.epochs[id.index()] == self.current_epoch
    }

    #[inline]
    fn insert(&mut self, id: UnitId) {
        self.epochs[id.index()] = self.current_epoch;
    }
}

fn coverage_chunk_interned(
    pool: &UnitPool,
    transformations: &[IdTransformation],
    pairs: &PairSet,
    use_cache: bool,
) -> CoverageOutcome {
    let rows = pairs.len();
    // Sparse per-chunk collection: one (initially unallocated) sorted row
    // list per candidate — empty candidates never touch the heap.
    let mut covered_rows: Vec<SparseRows> = vec![Vec::new(); transformations.len()];
    let mut trials: u64 = 0;
    let mut cache_hits: u64 = 0;
    let mut unit_evaluations: u64 = 0;
    let mut memo = RowMemo::new(pool.len());
    let mut bad = BadUnitSet::new(pool.len());
    let mut buffer = String::new();

    // Row-major iteration: the memo and the bad-unit cache live exactly one
    // row; the per-row cache state seen when transformation `t` reaches row
    // `r` is identical to the naive transformation-major loop's, because it
    // only ever accrues from earlier trials on the same row (see module
    // docs).
    for row in 0..rows {
        memo.next_row();
        bad.next_row();
        let source = pairs.source(row);
        let target = pairs.target(row);

        'transformations: for (t_idx, t) in transformations.iter().enumerate() {
            if use_cache {
                for &unit in t.unit_ids() {
                    if bad.contains(unit) {
                        cache_hits += 1;
                        continue 'transformations;
                    }
                }
            }
            trials += 1;
            buffer.clear();
            let mut failed = false;
            for &unit in t.unit_ids() {
                // Evaluate the unit on this row at most once, memoizing both
                // the output and the substring-of-target verdict.
                if matches!(memo.get(unit), MemoEntry::Unknown) {
                    unit_evaluations += 1;
                    let entry = match pool.get(unit).output_on(source) {
                        Some(out) if out.is_empty() || target.contains(out.as_ref()) => {
                            MemoEntry::Good(out.into_owned().into_boxed_str())
                        }
                        _ => MemoEntry::Bad,
                    };
                    memo.set(unit, entry);
                }
                match memo.get(unit) {
                    MemoEntry::Good(out) => {
                        buffer.push_str(out);
                        if buffer.len() > target.len() {
                            failed = true;
                            break;
                        }
                    }
                    MemoEntry::Bad => {
                        // This unit can never appear in a transformation
                        // covering this row.
                        if use_cache {
                            bad.insert(unit);
                        }
                        failed = true;
                        break;
                    }
                    MemoEntry::Unknown => unreachable!("memo entry was just filled"),
                }
            }
            if !failed && buffer == target {
                // Row-major iteration: rows arrive in increasing order, so
                // each candidate's list stays sorted by construction.
                covered_rows[t_idx].push(row as u32);
            }
        }
    }

    CoverageOutcome {
        covered_rows,
        trials,
        cache_hits,
        potential_trials: transformations.len() as u64 * rows as u64,
        unit_evaluations,
        apply_time: Duration::ZERO,
    }
}

pub mod reference {
    //! The naive transformation-major coverage loop the interned engine
    //! replaced: hash-set unit cache, no output memoization, and **dense**
    //! per-candidate `RowBitmap` collection (converted to the sparse output
    //! shape only at the edge). Retained as the differential-testing oracle
    //! for both the memoized evaluation *and* the sparse collection (see
    //! `tests/proptest_pipeline.rs` and the coverage tests below) and as the
    //! baseline leg of the `coverage_interned` benchmark.

    use super::CoverageOutcome;
    use crate::bitmap::RowBitmap;
    use crate::pair::PairSet;
    use std::time::{Duration, Instant};
    use tjoin_text::FxHashSet;
    use tjoin_units::{Transformation, Unit};

    /// Computes coverage with the pre-interning algorithm. Same contract and
    /// thread-chunking as [`super::compute_coverage`]; `unit_evaluations`
    /// counts every `output_on` call (one per unit application).
    pub fn compute_coverage_reference(
        transformations: &[Transformation],
        pairs: &PairSet,
        use_cache: bool,
        threads: usize,
    ) -> CoverageOutcome {
        let start = Instant::now();
        let mut outcome = if threads <= 1 || transformations.len() < 256 {
            coverage_chunk(transformations, pairs, use_cache)
        } else {
            let threads = threads.min(transformations.len());
            let chunk_size = transformations.len().div_ceil(threads);
            let chunks: Vec<&[Transformation]> = transformations.chunks(chunk_size).collect();
            let results: Vec<CoverageOutcome> = std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|chunk| scope.spawn(move || coverage_chunk(chunk, pairs, use_cache)))
                    .collect();
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            });
            let mut merged = CoverageOutcome::default();
            for r in results {
                merged.covered_rows.extend(r.covered_rows);
                merged.trials += r.trials;
                merged.cache_hits += r.cache_hits;
                merged.potential_trials += r.potential_trials;
                merged.unit_evaluations += r.unit_evaluations;
            }
            merged
        };
        outcome.apply_time = start.elapsed();
        outcome
    }

    // The loop shape is kept verbatim from the pre-interning implementation
    // (it IS the oracle); silence the style lint about indexed row loops.
    #[allow(clippy::needless_range_loop)]
    fn coverage_chunk(
        transformations: &[Transformation],
        pairs: &PairSet,
        use_cache: bool,
    ) -> CoverageOutcome {
        let rows = pairs.len();
        let mut caches: Vec<FxHashSet<Unit>> = vec![FxHashSet::default(); rows];
        let mut covered_rows = Vec::with_capacity(transformations.len());
        let mut trials: u64 = 0;
        let mut cache_hits: u64 = 0;
        let mut unit_evaluations: u64 = 0;
        let mut buffer = String::new();

        for t in transformations {
            let mut covered = RowBitmap::new(rows);
            'rows: for row in 0..rows {
                if use_cache {
                    for unit in t.units() {
                        if caches[row].contains(unit) {
                            cache_hits += 1;
                            continue 'rows;
                        }
                    }
                }
                trials += 1;
                let source = pairs.source(row);
                let target = pairs.target(row);
                buffer.clear();
                let mut failed = false;
                for unit in t.units() {
                    unit_evaluations += 1;
                    match unit.output_on(source) {
                        Some(out) => {
                            if !out.is_empty() && !target.contains(out.as_ref()) {
                                // This unit can never appear in a
                                // transformation covering this row.
                                if use_cache {
                                    caches[row].insert(unit.clone());
                                }
                                failed = true;
                                break;
                            }
                            buffer.push_str(&out);
                            if buffer.len() > target.len() {
                                failed = true;
                                break;
                            }
                        }
                        None => {
                            if use_cache {
                                caches[row].insert(unit.clone());
                            }
                            failed = true;
                            break;
                        }
                    }
                }
                if !failed && buffer == target {
                    covered.insert(row);
                }
            }
            covered_rows.push(covered.to_vec());
        }

        CoverageOutcome {
            covered_rows,
            trials,
            cache_hits,
            potential_trials: transformations.len() as u64 * rows as u64,
            unit_evaluations,
            apply_time: Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::compute_coverage_reference;
    use super::*;
    use tjoin_text::NormalizeOptions;
    use tjoin_units::Unit;

    fn pairs(rows: &[(&str, &str)]) -> PairSet {
        PairSet::from_strings(rows, &NormalizeOptions::none())
    }

    fn initial_last() -> Transformation {
        Transformation::new(vec![
            Unit::split_substr(' ', 1, 0, 1),
            Unit::literal(" "),
            Unit::split(',', 0),
        ])
    }

    /// Asserts the interned engine and the naive reference agree on every
    /// observable for the given inputs, and returns the interned outcome.
    fn coverage_checked(
        transformations: &[Transformation],
        set: &PairSet,
        use_cache: bool,
        threads: usize,
    ) -> CoverageOutcome {
        let interned = compute_coverage(transformations, set, use_cache, threads);
        let naive = compute_coverage_reference(transformations, set, use_cache, threads);
        assert_eq!(interned.covered_rows, naive.covered_rows);
        assert_eq!(interned.trials, naive.trials);
        assert_eq!(interned.cache_hits, naive.cache_hits);
        assert_eq!(interned.potential_trials, naive.potential_trials);
        interned
    }

    #[test]
    fn coverage_counts_matching_rows() {
        let set = pairs(&[
            ("bowling, michael", "m bowling"),
            ("gosgnach, simon", "s gosgnach"),
            ("rafiei, davood", "davood rafiei"), // different format
        ]);
        let out = coverage_checked(&[initial_last()], &set, true, 1);
        assert_eq!(out.covered_rows_as_vecs(), vec![vec![0, 1]]);
        assert_eq!(out.potential_trials, 3);
        assert!(out.trials <= 3);
    }

    #[test]
    fn cache_reduces_trials_for_repeated_units() {
        // Two transformations sharing a failing unit: the second one should be
        // skipped via the cache on the rows where the first already failed.
        let bad_unit = Unit::literal("zzz"); // "zzz" never occurs in targets
        let t1 = Transformation::new(vec![bad_unit.clone(), Unit::substr(0, 1)]);
        let t2 = Transformation::new(vec![bad_unit, Unit::substr(0, 2)]);
        let set = pairs(&[("abcdef", "abc"), ("ghijkl", "ghi")]);
        let with_cache = coverage_checked(&[t1.clone(), t2.clone()], &set, true, 1);
        let without_cache = coverage_checked(&[t1, t2], &set, false, 1);
        assert_eq!(with_cache.covered_rows, without_cache.covered_rows);
        assert!(with_cache.cache_hits >= 2, "hits: {}", with_cache.cache_hits);
        assert!(with_cache.trials < without_cache.trials);
        assert_eq!(without_cache.cache_hits, 0);
        assert!(with_cache.cache_hit_ratio() > 0.0);
        assert_eq!(without_cache.cache_hit_ratio(), 0.0);
    }

    #[test]
    fn length_abandoning_does_not_change_results() {
        let t = Transformation::new(vec![Unit::substr(0, 5), Unit::substr(0, 5)]);
        let set = pairs(&[("abcdef", "abcde")]);
        let out = coverage_checked(&[t], &set, true, 1);
        assert_eq!(out.covered_rows_as_vecs(), vec![Vec::<u32>::new()]);
    }

    #[test]
    fn empty_transformation_list() {
        let set = pairs(&[("a", "b")]);
        let out = coverage_checked(&[], &set, true, 1);
        assert!(out.covered_rows.is_empty());
        assert_eq!(out.potential_trials, 0);
        assert_eq!(out.cache_hit_ratio(), 0.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        // Build enough transformations to trigger the parallel path.
        let mut ts = Vec::new();
        for i in 0..300usize {
            ts.push(Transformation::new(vec![
                Unit::substr(i % 3, (i % 3) + 1),
                Unit::literal(" x"),
            ]));
        }
        let set = pairs(&[("abcdef", "a x"), ("bcdefg", "c x"), ("zzzzzz", "q x")]);
        let seq = coverage_checked(&ts, &set, true, 1);
        let par = coverage_checked(&ts, &set, true, 4);
        assert_eq!(seq.covered_rows, par.covered_rows);
        assert_eq!(seq.potential_trials, par.potential_trials);
    }

    #[test]
    fn covers_exact_equality_only() {
        // Output must equal the target exactly, not merely be a prefix.
        let t = Transformation::single(Unit::substr(0, 3));
        let set = pairs(&[("abcdef", "abcx"), ("abcdef", "abc")]);
        let out = coverage_checked(&[t], &set, true, 1);
        assert_eq!(out.covered_rows_as_vecs(), vec![vec![1]]);
    }

    #[test]
    fn memoization_bounds_unit_evaluations() {
        // 60 transformations over a pool of 4 distinct units, 3 rows: the
        // interned engine may evaluate each (row, unit) pair at most once —
        // ≤ 12 evaluations — while the naive loop pays per application.
        let units = [
            Unit::substr(0, 1),
            Unit::substr(0, 2),
            Unit::split(',', 0),
            Unit::literal("x"),
        ];
        let mut ts = Vec::new();
        for a in 0..4usize {
            for b in 0..4usize {
                for c in 0..4usize {
                    if ts.len() < 60 {
                        ts.push(Transformation::new(vec![
                            units[a].clone(),
                            units[b].clone(),
                            units[c].clone(),
                        ]));
                    }
                }
            }
        }
        let set = pairs(&[("ab,cd", "ab"), ("xy,zw", "xyx"), ("qq,rr", "q")]);
        // Without the cache every transformation is tried on every row, so
        // the memo bound is exercised hardest.
        let interned = compute_coverage(&ts, &set, false, 1);
        let naive = compute_coverage_reference(&ts, &set, false, 1);
        assert_eq!(interned.covered_rows, naive.covered_rows);
        assert!(
            interned.unit_evaluations <= (3 * 4) as u64,
            "memoized engine evaluated {} (row, unit) pairs, expected <= 12",
            interned.unit_evaluations
        );
        assert!(
            naive.unit_evaluations > interned.unit_evaluations * 4,
            "naive loop should re-evaluate units per application ({} vs {})",
            naive.unit_evaluations,
            interned.unit_evaluations
        );
    }

    mod sparse_differential {
        //! Differential property tests: the interned engine's sparse
        //! collection vs the reference's dense `RowBitmap` path, across
        //! thread counts and cache toggles.

        use super::*;
        use proptest::prelude::*;

        fn any_unit() -> impl Strategy<Value = Unit> {
            let pos = || 0usize..10;
            let delim = || prop_oneof![Just(','), Just(' '), Just('-')];
            prop_oneof![
                (pos(), pos()).prop_map(|(a, b)| Unit::substr(a.min(b), a.max(b))),
                (delim(), 0usize..3).prop_map(|(d, i)| Unit::split(d, i)),
                (delim(), 0usize..3, pos(), pos())
                    .prop_map(|(d, i, a, b)| Unit::split_substr(d, i, a.min(b), a.max(b))),
                "[a-z, ]{0,3}".prop_map(Unit::literal),
            ]
        }

        /// Transformations drawn from a small shared unit pool, so the same
        /// units recur across candidates (the shape both the cache and the
        /// memoization exploit).
        fn pooled_transformations() -> impl Strategy<Value = Vec<Transformation>> {
            (prop::collection::vec(any_unit(), 2..6), 0usize..300).prop_map(
                |(pool, picks)| {
                    let n = pool.len();
                    (0..(picks % 30) + 1)
                        .map(|t| {
                            Transformation::new(
                                (0..t % 3 + 1)
                                    .map(|j| pool[(t * 5 + j * 2 + picks) % n].clone())
                                    .collect(),
                            )
                        })
                        .collect()
                },
            )
        }

        fn random_rows() -> impl Strategy<Value = Vec<(String, String)>> {
            prop::collection::vec(("[a-z, -]{0,12}", "[a-z, -]{0,8}"), 1..6)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// The sparse-collection engine reports exactly the same sorted
            /// row lists and pruning statistics as the dense reference path,
            /// sequentially and with 4-thread chunking, cache on and off.
            #[test]
            fn sparse_collection_matches_dense_reference(
                ts in pooled_transformations(),
                rows in random_rows(),
                use_cache in prop_oneof![Just(true), Just(false)],
            ) {
                let set = pairs_from(&rows);
                for threads in [1usize, 4] {
                    let sparse = compute_coverage(&ts, &set, use_cache, threads);
                    let dense = compute_coverage_reference(&ts, &set, use_cache, threads);
                    prop_assert_eq!(
                        &sparse.covered_rows, &dense.covered_rows,
                        "covered rows diverged (cache={}, threads={})", use_cache, threads
                    );
                    prop_assert_eq!(sparse.trials, dense.trials);
                    prop_assert_eq!(sparse.cache_hits, dense.cache_hits);
                    prop_assert_eq!(sparse.potential_trials, dense.potential_trials);
                    // Every sparse list must be strictly sorted — the
                    // contract `RowBitmap::from_sorted_rows` densifies under.
                    for list in &sparse.covered_rows {
                        prop_assert!(list.windows(2).all(|w| w[0] < w[1]));
                    }
                }
            }
        }

        fn pairs_from(rows: &[(String, String)]) -> PairSet {
            PairSet::from_strings(rows, &NormalizeOptions::none())
        }
    }

    #[test]
    fn interned_entry_point_agrees_with_compat_wrapper() {
        let mut pool = UnitPool::new();
        let ts = vec![initial_last(), Transformation::single(Unit::split(',', 0))];
        let interned: Vec<IdTransformation> = ts
            .iter()
            .map(|t| {
                IdTransformation::new(t.units().iter().map(|u| pool.intern(u.clone())).collect())
            })
            .collect();
        let set = pairs(&[
            ("bowling, michael", "m bowling"),
            ("rafiei, davood", "rafiei"),
        ]);
        let via_wrapper = compute_coverage(&ts, &set, true, 1);
        let via_pool = compute_coverage_interned(&pool, &interned, &set, true, 1);
        assert_eq!(via_wrapper.covered_rows, via_pool.covered_rows);
        assert_eq!(via_wrapper.trials, via_pool.trials);
        assert_eq!(via_wrapper.cache_hits, via_pool.cache_hits);
    }
}
