//! Coverage computation with eager filtering (Section 4.1.5 of the paper).
//!
//! Every candidate transformation must be applied to every input pair to
//! learn which rows it covers. Two observations keep this tractable:
//!
//! * A transformation cannot cover a row if the output of *any* of its units
//!   is not a substring of the row's target. Each row therefore keeps a hash
//!   set of units already known not to help it (the paper's "cache"); a
//!   transformation containing such a unit is skipped for that row in O(1)
//!   per unit. Because candidates are Cartesian products of a small unit
//!   pool, the same units recur across many transformations and the cache
//!   hit ratio is high (Table 4 reports 50–99 %).
//! * A cheap running length check abandons the application as soon as the
//!   concatenated output exceeds the target length.

use crate::pair::PairSet;
use std::time::{Duration, Instant};
use tjoin_text::FxHashSet;
use tjoin_units::{Transformation, Unit};

/// The result of the coverage phase.
#[derive(Debug, Clone, Default)]
pub struct CoverageOutcome {
    /// For each transformation (same order as the input slice), the indices
    /// of the rows it covers.
    pub covered_rows: Vec<Vec<u32>>,
    /// Number of (transformation, row) applications actually attempted.
    pub trials: u64,
    /// Number of (transformation, row) combinations skipped thanks to the
    /// non-covering-unit cache.
    pub cache_hits: u64,
    /// `transformations × rows`: what a pruning-free evaluation would cost.
    pub potential_trials: u64,
    /// Wall-clock time spent applying transformations.
    pub apply_time: Duration,
}

impl CoverageOutcome {
    /// Cache hit ratio over all potential trials (the paper's "Cache hit
    /// ratio" column in Table 4).
    pub fn cache_hit_ratio(&self) -> f64 {
        if self.potential_trials == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.potential_trials as f64
        }
    }
}

/// Computes the coverage of every transformation over every pair.
///
/// `use_cache` toggles the non-covering-unit cache (pruning strategy 2);
/// `threads` > 1 splits the transformation list across worker threads, each
/// with its own per-row cache (the statistics are summed, so hit counts are
/// slightly lower than a shared cache would achieve but results are
/// identical).
pub fn compute_coverage(
    transformations: &[Transformation],
    pairs: &PairSet,
    use_cache: bool,
    threads: usize,
) -> CoverageOutcome {
    let start = Instant::now();
    let mut outcome = if threads <= 1 || transformations.len() < 256 {
        coverage_chunk(transformations, pairs, use_cache)
    } else {
        let threads = threads.min(transformations.len());
        let chunk_size = transformations.len().div_ceil(threads);
        let chunks: Vec<&[Transformation]> = transformations.chunks(chunk_size).collect();
        let results: Vec<CoverageOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| scope.spawn(move || coverage_chunk(chunk, pairs, use_cache)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        let mut merged = CoverageOutcome::default();
        for r in results {
            merged.covered_rows.extend(r.covered_rows);
            merged.trials += r.trials;
            merged.cache_hits += r.cache_hits;
            merged.potential_trials += r.potential_trials;
        }
        merged
    };
    outcome.apply_time = start.elapsed();
    outcome
}

fn coverage_chunk(
    transformations: &[Transformation],
    pairs: &PairSet,
    use_cache: bool,
) -> CoverageOutcome {
    let rows = pairs.len();
    let mut caches: Vec<FxHashSet<Unit>> = vec![FxHashSet::default(); rows];
    let mut covered_rows = Vec::with_capacity(transformations.len());
    let mut trials: u64 = 0;
    let mut cache_hits: u64 = 0;
    let mut buffer = String::new();

    for t in transformations {
        let mut covered = Vec::new();
        'rows: for row in 0..rows {
            if use_cache {
                for unit in t.units() {
                    if caches[row].contains(unit) {
                        cache_hits += 1;
                        continue 'rows;
                    }
                }
            }
            trials += 1;
            let source = pairs.source(row);
            let target = pairs.target(row);
            buffer.clear();
            let mut failed = false;
            for unit in t.units() {
                match unit.output_on(source) {
                    Some(out) => {
                        if !out.is_empty() && !target.contains(out.as_ref()) {
                            // This unit can never appear in a transformation
                            // covering this row.
                            if use_cache {
                                caches[row].insert(unit.clone());
                            }
                            failed = true;
                            break;
                        }
                        buffer.push_str(&out);
                        if buffer.len() > target.len() {
                            failed = true;
                            break;
                        }
                    }
                    None => {
                        if use_cache {
                            caches[row].insert(unit.clone());
                        }
                        failed = true;
                        break;
                    }
                }
            }
            if !failed && buffer == target {
                covered.push(row as u32);
            }
        }
        covered_rows.push(covered);
    }

    CoverageOutcome {
        covered_rows,
        trials,
        cache_hits,
        potential_trials: transformations.len() as u64 * rows as u64,
        apply_time: Duration::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tjoin_text::NormalizeOptions;
    use tjoin_units::Unit;

    fn pairs(rows: &[(&str, &str)]) -> PairSet {
        PairSet::from_strings(rows, &NormalizeOptions::none())
    }

    fn initial_last() -> Transformation {
        Transformation::new(vec![
            Unit::split_substr(' ', 1, 0, 1),
            Unit::literal(" "),
            Unit::split(',', 0),
        ])
    }

    #[test]
    fn coverage_counts_matching_rows() {
        let set = pairs(&[
            ("bowling, michael", "m bowling"),
            ("gosgnach, simon", "s gosgnach"),
            ("rafiei, davood", "davood rafiei"), // different format
        ]);
        let out = compute_coverage(&[initial_last()], &set, true, 1);
        assert_eq!(out.covered_rows, vec![vec![0, 1]]);
        assert_eq!(out.potential_trials, 3);
        assert!(out.trials <= 3);
    }

    #[test]
    fn cache_reduces_trials_for_repeated_units() {
        // Two transformations sharing a failing unit: the second one should be
        // skipped via the cache on the rows where the first already failed.
        let bad_unit = Unit::literal("zzz"); // "zzz" never occurs in targets
        let t1 = Transformation::new(vec![bad_unit.clone(), Unit::substr(0, 1)]);
        let t2 = Transformation::new(vec![bad_unit, Unit::substr(0, 2)]);
        let set = pairs(&[("abcdef", "abc"), ("ghijkl", "ghi")]);
        let with_cache = compute_coverage(&[t1.clone(), t2.clone()], &set, true, 1);
        let without_cache = compute_coverage(&[t1, t2], &set, false, 1);
        assert_eq!(with_cache.covered_rows, without_cache.covered_rows);
        assert!(with_cache.cache_hits >= 2, "hits: {}", with_cache.cache_hits);
        assert!(with_cache.trials < without_cache.trials);
        assert_eq!(without_cache.cache_hits, 0);
        assert!(with_cache.cache_hit_ratio() > 0.0);
        assert_eq!(without_cache.cache_hit_ratio(), 0.0);
    }

    #[test]
    fn length_abandoning_does_not_change_results() {
        let t = Transformation::new(vec![Unit::substr(0, 5), Unit::substr(0, 5)]);
        let set = pairs(&[("abcdef", "abcde")]);
        let out = compute_coverage(&[t], &set, true, 1);
        assert_eq!(out.covered_rows, vec![Vec::<u32>::new()]);
    }

    #[test]
    fn empty_transformation_list() {
        let set = pairs(&[("a", "b")]);
        let out = compute_coverage(&[], &set, true, 1);
        assert!(out.covered_rows.is_empty());
        assert_eq!(out.potential_trials, 0);
        assert_eq!(out.cache_hit_ratio(), 0.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        // Build enough transformations to trigger the parallel path.
        let mut ts = Vec::new();
        for i in 0..300usize {
            ts.push(Transformation::new(vec![
                Unit::substr(i % 3, (i % 3) + 1),
                Unit::literal(" x"),
            ]));
        }
        let set = pairs(&[("abcdef", "a x"), ("bcdefg", "c x"), ("zzzzzz", "q x")]);
        let seq = compute_coverage(&ts, &set, true, 1);
        let par = compute_coverage(&ts, &set, true, 4);
        assert_eq!(seq.covered_rows, par.covered_rows);
        assert_eq!(seq.potential_trials, par.potential_trials);
    }

    #[test]
    fn covers_exact_equality_only() {
        // Output must equal the target exactly, not merely be a prefix.
        let t = Transformation::single(Unit::substr(0, 3));
        let set = pairs(&[("abcdef", "abcx"), ("abcdef", "abc")]);
        let out = compute_coverage(&[t], &set, true, 1);
        assert_eq!(out.covered_rows, vec![vec![1]]);
    }
}
