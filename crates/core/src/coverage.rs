//! Coverage computation with eager filtering (Section 4.1.5 of the paper).
//!
//! Every candidate transformation must be applied to every input pair to
//! learn which rows it covers. Two observations keep this tractable:
//!
//! * A transformation cannot cover a row if the output of *any* of its units
//!   is not a substring of the row's target. Each row therefore remembers
//!   the units already known not to help it (the paper's "cache"); a
//!   transformation containing such a unit is skipped for that row in O(1)
//!   per unit. Because candidates are Cartesian products of a small unit
//!   pool, the same units recur across many transformations and the cache
//!   hit ratio is high (Table 4 reports 50–99 %).
//! * A cheap running length check abandons the application as soon as the
//!   concatenated output exceeds the target length.
//!
//! # The interned engine
//!
//! The production path ([`compute_coverage_interned`]) exploits the
//! [`UnitPool`] the generation phase already built:
//!
//! * **Per-row output memoization.** For each row, every unit's
//!   `output_on(source)` result is computed at most once and stored in a
//!   dense table indexed by [`UnitId`] — no matter how many transformations
//!   contain the unit. The memo also records the "is the output a substring
//!   of the target" verdict, so the repeated `target.contains(..)` scans of
//!   the naive loop collapse into one per `(row, unit)`.
//! * **Bitset cache.** The per-row non-covering-unit cache is a dense
//!   epoch-stamped array indexed by `UnitId` (O(1) lookup, zero hashing,
//!   zero cloning) instead of a `HashSet<Unit>` of cloned units. Its
//!   entries mirror the memo's `Bad` verdicts; it exists separately for
//!   pre-scan cache locality (see `BadUnitSet`).
//! * **Sparse coverage collection.** Covered rows are accumulated as sorted
//!   per-candidate row lists (`Vec<u32>`), not as a dense
//!   [`crate::bitmap::RowBitmap`] per candidate. A dense pre-allocation
//!   costs `candidates × rows/8` bytes even though the overwhelming
//!   majority of candidates cover nothing (at 10^6 candidates × 10^4 rows
//!   that is ~1.25 GB); a sparse list costs one `Vec` header (24 bytes) for
//!   an empty candidate and 4 bytes per covered row otherwise. Row-major
//!   iteration appends rows in increasing order, so each list is sorted by
//!   construction, and each worker thread accumulates the lists for its own
//!   chunk of candidates. Densification into `RowBitmap`s — the
//!   representation the selection phase's set algebra wants — happens in the
//!   engine, only for candidates surviving the non-empty/support filter
//!   (see [`crate::bitmap::RowBitmap::from_sorted_rows`]).
//!
//! The iteration order is row-major (rows outer, transformations inner) so
//! the memo table is a single pool-sized vector reset per row via epoch
//! stamps. Because the per-row cache only ever accrues entries from earlier
//! *trials on the same row*, and those happen in transformation order in
//! both orders, the reported `trials`, `cache_hits`, and covered rows are
//! bit-identical to the naive transformation-major loop retained in
//! [`reference`] — which still collects densely, making it the oracle for
//! the sparse collection as well.
//!
//! # Planned parallel execution
//!
//! Parallel coverage runs as a two-phase *planned* execution chosen by
//! [`plan::plan_execution`] from the transformations × rows shape (and the
//! [`plan::CoverageAxis`] config knob):
//!
//! 1. **Shared unit-output memo** ([`SharedUnitMemo`]): every distinct
//!    [`UnitId`] referenced by the candidate list is evaluated exactly once
//!    per row into a write-once table — built in parallel, sharded by
//!    unit-id range across threads, then frozen behind a shared reference.
//!    Worker threads *read* unit outputs instead of each lazily re-deriving
//!    them, so the engine performs exactly
//!    `rows × referenced units` evaluations at any thread count, where the
//!    pre-planner parallel path (retained as
//!    [`compute_coverage_interned_per_thread`]) pays up to that *per
//!    worker*. The memo's entry table is bounded by
//!    [`SHARED_MEMO_BUDGET_BYTES`]: an over-budget shape runs the same
//!    chunked scan over lazy per-worker memos instead (identical covered
//!    rows and trial/hit accounting; only `unit_evaluations` reverts to
//!    lazy counting).
//! 2. **Axis scan** ([`plan::ExecutionPlan`]): the coverage matrix is
//!    chunked either along the transformation axis (each worker scans a
//!    candidate chunk over all rows — best when candidates vastly outnumber
//!    rows) or along the row axis (each worker scans all candidates over a
//!    contiguous row chunk — best for few-transformations × many-rows
//!    workloads, where transformation chunking degenerates). Row chunks are
//!    disjoint and ordered, so per-candidate sparse row lists from
//!    consecutive chunks concatenate without merging and stay sorted.
//!
//! ## Stats semantics under the shared memo
//!
//! * `covered_rows` is bit-identical to [`reference`] under every plan —
//!   the memo stores exactly the verdicts the lazy engine would derive.
//! * `trials` / `cache_hits` keep the *incremental* per-row cache
//!   semantics: a unit enters a row's bad-unit cache only when a trial on
//!   that row reaches it, never "from the future" via the memo. Row-axis
//!   scans process every row's full transformation sequence in order, so
//!   their trial/hit counts are bit-identical to the serial engine (and to
//!   [`reference`] at `threads = 1`) **at any thread count**;
//!   transformation-axis scans restart the cache per chunk, matching
//!   [`reference`] at the same thread count (the pre-planner semantics).
//! * `unit_evaluations` counts memo-build work for shared-memo plans:
//!   exactly `rows × referenced units`, independent of thread count and
//!   axis — the bound the serial lazy engine approaches from below.

use crate::pair::PairSet;
use plan::{CoverageAxis, ExecutionPlan};
use std::ops::Range;
use std::time::{Duration, Instant};
use tjoin_text::{BudgetExceeded, BudgetToken};
use tjoin_units::{IdTransformation, Transformation, UnitId, UnitPool};

pub mod plan {
    //! The coverage execution planner.
    //!
    //! Coverage is a `transformations × rows` matrix scan; either axis can
    //! be chunked across worker threads. The planner picks the axis from
    //! the matrix shape: transformation chunking degenerates when
    //! candidates are few (a GXJoin-style generalized-pattern pool of a few
    //! dozen patterns over 10^5+ rows leaves every thread but one idle),
    //! and row chunking is pointless when rows are few. [`plan_execution`]
    //! resolves the configured [`CoverageAxis`] plus the shape into an
    //! [`ExecutionPlan`]; degenerate shapes (zero or one chunk, empty
    //! inputs) always resolve to [`ExecutionPlan::Serial`], so no plan ever
    //! divides by a zero chunk size.

    use serde::{Deserialize, Serialize};

    /// Which axis of the coverage matrix parallel execution chunks across
    /// worker threads (the `coverage_axis` knob of
    /// [`crate::SynthesisConfig`]).
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
    pub enum CoverageAxis {
        /// Let the planner pick from the transformations × rows shape
        /// (the default).
        #[default]
        Auto,
        /// Force transformation-axis chunking (each worker takes a
        /// contiguous candidate chunk over all rows).
        Transformations,
        /// Force row-axis chunking (each worker takes a contiguous row
        /// chunk over all candidates).
        Rows,
    }

    /// A resolved coverage execution plan.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum ExecutionPlan {
        /// Single-threaded scan with the lazy per-row memo — also the
        /// explicit degenerate path (empty candidate list, zero rows, one
        /// thread, or a shape where chunking would leave one worker).
        Serial,
        /// Transformation-axis chunking: `workers` threads each scan a
        /// contiguous chunk of at most `chunk_size` candidates over all
        /// rows, sharing the unit-output memo.
        Transformations {
            /// Number of chunks actually spawned (`≥ 2`).
            workers: usize,
            /// Candidates per chunk (`≥ 1`; the last chunk may be short).
            chunk_size: usize,
        },
        /// Row-axis chunking: `workers` threads each scan all candidates
        /// over a contiguous chunk of at most `chunk_size` rows, sharing
        /// the unit-output memo.
        Rows {
            /// Number of chunks actually spawned (`≥ 2`).
            workers: usize,
            /// Rows per chunk (`≥ 1`; the last chunk may be short).
            chunk_size: usize,
        },
    }

    /// `Auto` considers transformation-axis chunking only at or above this
    /// many candidates (the historical threshold of the pre-planner
    /// engine: below it, per-chunk cache restarts and thread bookkeeping
    /// cost more than they buy). Forced axes ignore it.
    pub const MIN_AUTO_TRANSFORMATIONS: usize = 256;

    /// `Auto` considers row-axis chunking only at or above this many rows.
    /// Forced axes ignore it.
    pub const MIN_AUTO_ROWS: usize = 256;

    /// Resolves the configured axis and the `transformations × rows` shape
    /// into an execution plan for `threads` worker threads.
    ///
    /// Guarantees: the returned chunk size is never zero, the worker count
    /// never exceeds the chunked dimension, and degenerate shapes (either
    /// dimension zero, `threads <= 1`, or a single chunk) resolve to
    /// [`ExecutionPlan::Serial`]. `Auto` prefers the transformation axis
    /// when candidates are plentiful and at least as numerous as rows —
    /// preserving the pre-planner behavior (and its exact trial/hit
    /// accounting) on the shapes it already handled — and otherwise falls
    /// back to the row axis when rows are plentiful.
    pub fn plan_execution(
        transformations: usize,
        rows: usize,
        threads: usize,
        axis: CoverageAxis,
    ) -> ExecutionPlan {
        if transformations == 0 || rows == 0 || threads <= 1 {
            return ExecutionPlan::Serial;
        }
        match axis {
            CoverageAxis::Transformations => transformation_axis(transformations, threads),
            CoverageAxis::Rows => row_axis(rows, threads),
            CoverageAxis::Auto => {
                if transformations >= MIN_AUTO_TRANSFORMATIONS && transformations >= rows {
                    transformation_axis(transformations, threads)
                } else if rows >= MIN_AUTO_ROWS {
                    row_axis(rows, threads)
                } else {
                    ExecutionPlan::Serial
                }
            }
        }
    }

    fn transformation_axis(transformations: usize, threads: usize) -> ExecutionPlan {
        let chunk_size = transformations.div_ceil(threads.min(transformations));
        let workers = transformations.div_ceil(chunk_size);
        if workers <= 1 {
            ExecutionPlan::Serial
        } else {
            ExecutionPlan::Transformations { workers, chunk_size }
        }
    }

    fn row_axis(rows: usize, threads: usize) -> ExecutionPlan {
        let chunk_size = rows.div_ceil(threads.min(rows));
        let workers = rows.div_ceil(chunk_size);
        if workers <= 1 {
            ExecutionPlan::Serial
        } else {
            ExecutionPlan::Rows { workers, chunk_size }
        }
    }
}

/// A candidate's covered rows as a sorted list of row indices — the sparse
/// per-chunk collection format (see the module docs).
pub type SparseRows = Vec<u32>;

/// The result of the coverage phase.
#[derive(Debug, Clone, Default)]
pub struct CoverageOutcome {
    /// For each transformation (same order as the input slice), the rows it
    /// covers, as a sorted sparse row list. Densify survivors with
    /// [`crate::bitmap::RowBitmap::from_sorted_rows`].
    pub covered_rows: Vec<SparseRows>,
    /// Number of (transformation, row) applications actually attempted.
    pub trials: u64,
    /// Number of (transformation, row) combinations skipped thanks to the
    /// non-covering-unit cache.
    pub cache_hits: u64,
    /// `transformations × rows`: what a pruning-free evaluation would cost.
    pub potential_trials: u64,
    /// Number of `Unit::output_on` evaluations performed. The serial lazy
    /// engine stays below `rows × distinct units`; shared-memo parallel
    /// plans perform exactly `rows × referenced units` (at any thread
    /// count — see the module docs); the retained per-thread path pays up
    /// to the lazy bound per worker; and the naive reference pays one
    /// evaluation per unit application.
    pub unit_evaluations: u64,
    /// Wall-clock time spent applying transformations.
    pub apply_time: Duration,
}

impl CoverageOutcome {
    /// Cache hit ratio over all potential trials (the paper's "Cache hit
    /// ratio" column in Table 4).
    pub fn cache_hit_ratio(&self) -> f64 {
        if self.potential_trials == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.potential_trials as f64
        }
    }

    /// Covered rows as sorted index vectors (now the native shape; retained
    /// for tests and reports written against the dense era's API).
    pub fn covered_rows_as_vecs(&self) -> Vec<Vec<u32>> {
        self.covered_rows.clone()
    }
}

/// Computes the coverage of every transformation over every pair.
///
/// Compatibility entry point over owned [`Transformation`]s: interns them
/// into a fresh [`UnitPool`] and runs the interned engine. Callers that
/// already hold a pool (the synthesis engine) should use
/// [`compute_coverage_interned`] directly and skip the re-interning.
///
/// `use_cache` toggles the non-covering-unit cache (pruning strategy 2);
/// `threads` > 1 hands the scan to the execution planner with
/// [`CoverageAxis::Auto`] (see the module docs: a shared unit-output memo
/// plus chunking along whichever matrix axis the shape favors; covered rows
/// are identical under every plan).
pub fn compute_coverage(
    transformations: &[Transformation],
    pairs: &PairSet,
    use_cache: bool,
    threads: usize,
) -> CoverageOutcome {
    let mut pool = UnitPool::new();
    let interned: Vec<IdTransformation> = transformations
        .iter()
        .map(|t| {
            IdTransformation::new(t.units().iter().map(|u| pool.intern(u.clone())).collect())
        })
        .collect();
    compute_coverage_interned(&pool, &interned, pairs, use_cache, threads)
}

/// Computes coverage over pre-interned transformations with automatic axis
/// planning (equivalent to [`compute_coverage_planned`] with
/// [`CoverageAxis::Auto`]).
///
/// See the module docs for the memoization/bitset design. `covered_rows`
/// and `potential_trials` are bit-identical to
/// [`reference::compute_coverage_reference`] with the same arguments under
/// every plan; see the module docs for the trial/hit and evaluation
/// semantics of parallel plans.
pub fn compute_coverage_interned(
    pool: &UnitPool,
    transformations: &[IdTransformation],
    pairs: &PairSet,
    use_cache: bool,
    threads: usize,
) -> CoverageOutcome {
    compute_coverage_planned(pool, transformations, pairs, use_cache, threads, CoverageAxis::Auto)
}

/// Resident-size budget for the shared unit-output memo: `referenced units
/// × rows` entries, each charged `size_of::<SharedEntry>()` plus
/// [`MEMO_ENTRY_PAYLOAD_ESTIMATE`] bytes for the `Good` variant's heap
/// string (an estimate — unit outputs are short source fragments, and
/// `Bad` entries carry none, so the charge is conservative for typical
/// mixes but not an exact bound). A plan whose estimated memo would exceed
/// the budget falls back to *lazy* per-worker memos — covered rows and
/// trial/hit accounting are identical (the scan loop is shared and the
/// verdicts agree by construction), only `unit_evaluations` reverts to the
/// lazy counting — so parallel coverage never eagerly allocates a table
/// far larger than anything the serial engine would hold.
pub const SHARED_MEMO_BUDGET_BYTES: usize = 256 << 20;

/// Per-entry heap-payload charge used by the memo budget (covers a short
/// `Good` output plus allocator overhead, averaged over the `Bad` entries
/// that carry none).
const MEMO_ENTRY_PAYLOAD_ESTIMATE: usize = 16;

/// Computes coverage as a planned two-phase execution (the hot path): a
/// shared unit-output memo build followed by a chunked scan along the axis
/// [`plan::plan_execution`] resolves from the shape and the requested
/// `axis`. Plans whose memo would exceed [`SHARED_MEMO_BUDGET_BYTES`] run
/// the same chunked scan over lazy per-worker memos instead.
pub fn compute_coverage_planned(
    pool: &UnitPool,
    transformations: &[IdTransformation],
    pairs: &PairSet,
    use_cache: bool,
    threads: usize,
    axis: CoverageAxis,
) -> CoverageOutcome {
    compute_coverage_planned_impl(
        pool,
        transformations,
        pairs,
        use_cache,
        threads,
        axis,
        SHARED_MEMO_BUDGET_BYTES,
        None,
    )
    .expect("unbudgeted coverage cannot abort")
}

/// [`compute_coverage_planned`] under a cooperative [`BudgetToken`]: the
/// scan loop checks the token at every row boundary and the whole
/// computation returns `Err` — with no partial outcome — once it trips
/// (only the wall-clock deadline can trip mid-scan; row/byte caps are
/// charged at pipeline admission). With `budget = None` this is exactly
/// [`compute_coverage_planned`], bit for bit.
pub fn compute_coverage_planned_budgeted(
    pool: &UnitPool,
    transformations: &[IdTransformation],
    pairs: &PairSet,
    use_cache: bool,
    threads: usize,
    axis: CoverageAxis,
    budget: Option<&BudgetToken>,
) -> Result<CoverageOutcome, BudgetExceeded> {
    compute_coverage_planned_impl(
        pool,
        transformations,
        pairs,
        use_cache,
        threads,
        axis,
        SHARED_MEMO_BUDGET_BYTES,
        budget,
    )
}

/// Whether a shared memo of `referenced` columns × `rows` entries fits the
/// byte budget (overflow-safe).
fn shared_memo_fits(referenced: usize, rows: usize, budget_bytes: usize) -> bool {
    referenced
        .checked_mul(rows)
        .and_then(|entries| {
            entries.checked_mul(std::mem::size_of::<SharedEntry>() + MEMO_ENTRY_PAYLOAD_ESTIMATE)
        })
        .is_some_and(|bytes| bytes <= budget_bytes)
}

#[allow(clippy::too_many_arguments)]
fn compute_coverage_planned_impl(
    pool: &UnitPool,
    transformations: &[IdTransformation],
    pairs: &PairSet,
    use_cache: bool,
    threads: usize,
    axis: CoverageAxis,
    memo_budget_bytes: usize,
    budget: Option<&BudgetToken>,
) -> Result<CoverageOutcome, BudgetExceeded> {
    let start = Instant::now();
    let rows = pairs.len();
    if let Some(token) = budget {
        token.check()?;
    }
    // Explicit degenerate path: an empty candidate list or an empty pair
    // set produces the (trivially correct) empty outcome before any chunk
    // arithmetic. `plan_execution` also resolves these shapes to `Serial`,
    // but returning here keeps the invariant visible at the entry point —
    // no plan ever divides by a zero dimension.
    if transformations.is_empty() || rows == 0 {
        return Ok(CoverageOutcome {
            covered_rows: vec![Vec::new(); transformations.len()],
            apply_time: start.elapsed(),
            ..CoverageOutcome::default()
        });
    }
    let potential_trials = transformations.len() as u64 * rows as u64;
    let mut outcome = match plan::plan_execution(transformations.len(), rows, threads, axis) {
        ExecutionPlan::Serial => {
            coverage_chunk_interned_budgeted(pool, transformations, pairs, use_cache, budget)
        }
        ExecutionPlan::Transformations { workers, chunk_size } => {
            let memo =
                build_memo_within_budget(pool, transformations, pairs, workers, memo_budget_bytes);
            let jobs: Vec<ScanJob<'_>> =
                transformations.chunks(chunk_size).map(|chunk| (chunk, 0..rows)).collect();
            let results = run_scans(memo.as_ref(), pool, pairs, use_cache, jobs, budget);
            let mut covered_rows = Vec::with_capacity(transformations.len());
            let (mut trials, mut cache_hits, mut lazy_evaluations) = (0u64, 0u64, 0u64);
            for r in results {
                covered_rows.extend(r.covered);
                trials += r.trials;
                cache_hits += r.cache_hits;
                lazy_evaluations += r.evaluations;
            }
            CoverageOutcome {
                covered_rows,
                trials,
                cache_hits,
                potential_trials: 0, // set below for all plans
                unit_evaluations: memo.map_or(lazy_evaluations, |m| m.evaluations),
                apply_time: Duration::ZERO,
            }
        }
        ExecutionPlan::Rows { workers, chunk_size } => {
            let memo =
                build_memo_within_budget(pool, transformations, pairs, workers, memo_budget_bytes);
            let jobs: Vec<ScanJob<'_>> = (0..workers)
                .map(|w| (transformations, w * chunk_size..rows.min((w + 1) * chunk_size)))
                .filter(|(_, range)| !range.is_empty())
                .collect();
            let results = run_scans(memo.as_ref(), pool, pairs, use_cache, jobs, budget);
            // Row chunks are disjoint and processed in ascending order, so
            // each candidate's per-chunk sorted lists concatenate — in
            // chunk order — into the globally sorted list with no merging.
            let mut covered_rows: Vec<SparseRows> = vec![Vec::new(); transformations.len()];
            let (mut trials, mut cache_hits, mut lazy_evaluations) = (0u64, 0u64, 0u64);
            for r in results {
                trials += r.trials;
                cache_hits += r.cache_hits;
                lazy_evaluations += r.evaluations;
                for (t_idx, list) in r.covered.into_iter().enumerate() {
                    if covered_rows[t_idx].is_empty() {
                        covered_rows[t_idx] = list;
                    } else {
                        covered_rows[t_idx].extend(list);
                    }
                }
            }
            CoverageOutcome {
                covered_rows,
                trials,
                cache_hits,
                potential_trials: 0, // set below for all plans
                unit_evaluations: memo.map_or(lazy_evaluations, |m| m.evaluations),
                apply_time: Duration::ZERO,
            }
        }
    };
    // A tripped budget discards the (truncated) partial scan: budgeted
    // aborts are all-or-nothing, like `chunk_map_budgeted`.
    if let Some(token) = budget {
        token.check()?;
    }
    outcome.potential_trials = potential_trials;
    outcome.apply_time = start.elapsed();
    Ok(outcome)
}

/// One worker's rectangle of the coverage matrix: a candidate chunk and a
/// row range.
type ScanJob<'a> = (&'a [IdTransformation], Range<usize>);

/// Spawns one scoped worker per job and collects results in job order.
/// Workers stop scanning (leaving truncated results) once `budget` trips;
/// the caller discards the whole outcome in that case.
fn run_scans(
    memo: Option<&SharedUnitMemo>,
    pool: &UnitPool,
    pairs: &PairSet,
    use_cache: bool,
    jobs: Vec<ScanJob<'_>>,
    budget: Option<&BudgetToken>,
) -> Vec<ScanResult> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|(chunk, range)| {
                scope.spawn(move || run_scan(memo, pool, chunk, pairs, range, use_cache, budget))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    })
}

/// Builds the shared memo when its entry table fits the byte budget;
/// `None` selects the lazy per-worker fallback.
fn build_memo_within_budget(
    pool: &UnitPool,
    transformations: &[IdTransformation],
    pairs: &PairSet,
    workers: usize,
    memo_budget_bytes: usize,
) -> Option<SharedUnitMemo> {
    let ids = pool.referenced_ids(transformations);
    shared_memo_fits(ids.len(), pairs.len(), memo_budget_bytes)
        .then(|| SharedUnitMemo::build(pool, ids, pairs, workers))
}

/// Runs one worker's scan with the shared memo when available, or a fresh
/// lazy per-worker memo otherwise.
#[allow(clippy::too_many_arguments)]
fn run_scan(
    memo: Option<&SharedUnitMemo>,
    pool: &UnitPool,
    transformations: &[IdTransformation],
    pairs: &PairSet,
    row_range: Range<usize>,
    use_cache: bool,
    budget: Option<&BudgetToken>,
) -> ScanResult {
    match memo {
        Some(memo) => coverage_scan(
            &mut SharedVerdicts { memo },
            transformations,
            pairs,
            row_range,
            use_cache,
            pool.len(),
            budget,
        ),
        None => coverage_scan(
            &mut LazyVerdicts::new(pool, pairs),
            transformations,
            pairs,
            row_range,
            use_cache,
            pool.len(),
            budget,
        ),
    }
}

/// The pre-planner parallel path: transformation-axis chunking where every
/// worker keeps its own *lazy* per-row memo, re-evaluating units shared
/// across chunks once per worker (up to `rows × distinct units` per
/// thread). Falls back to the serial scan below 256 candidates, exactly as
/// the pre-planner engine did.
///
/// Retained as the "per-thread memo" baseline leg of the `memo_sharing`
/// benchmark and as a differential midpoint between
/// [`reference::compute_coverage_reference`] and the shared-memo plans; its
/// `trials`/`cache_hits`/`covered_rows` are bit-identical to the reference
/// at the same thread count. Production callers use
/// [`compute_coverage_planned`].
pub fn compute_coverage_interned_per_thread(
    pool: &UnitPool,
    transformations: &[IdTransformation],
    pairs: &PairSet,
    use_cache: bool,
    threads: usize,
) -> CoverageOutcome {
    let start = Instant::now();
    let mut outcome = if threads <= 1 || transformations.len() < 256 {
        coverage_chunk_interned(pool, transformations, pairs, use_cache)
    } else {
        let threads = threads.min(transformations.len());
        let chunk_size = transformations.len().div_ceil(threads);
        let chunks: Vec<&[IdTransformation]> = transformations.chunks(chunk_size).collect();
        let results: Vec<CoverageOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|chunk| {
                    scope.spawn(move || coverage_chunk_interned(pool, chunk, pairs, use_cache))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        let mut merged = CoverageOutcome::default();
        for r in results {
            merged.covered_rows.extend(r.covered_rows);
            merged.trials += r.trials;
            merged.cache_hits += r.cache_hits;
            merged.potential_trials += r.potential_trials;
            merged.unit_evaluations += r.unit_evaluations;
        }
        merged
    };
    outcome.apply_time = start.elapsed();
    outcome
}

/// The memoized outcome of one `(row, unit)` evaluation.
#[derive(Debug, Clone, Default)]
enum MemoEntry {
    /// Not evaluated on this row yet.
    #[default]
    Unknown,
    /// The unit does not apply, or its (non-empty) output is not a substring
    /// of the row's target — exactly the condition under which the naive
    /// loop inserts the unit into the row's non-covering cache.
    Bad,
    /// The unit's output, which does occur in the row's target (or is
    /// empty).
    Good(Box<str>),
}

/// Dense per-row memo over the unit pool, reset per row via epoch stamps so
/// the allocation is reused across rows.
struct RowMemo {
    entries: Vec<MemoEntry>,
    epochs: Vec<u32>,
    current_epoch: u32,
}

impl RowMemo {
    fn new(pool_len: usize) -> Self {
        Self {
            entries: vec![MemoEntry::default(); pool_len],
            epochs: vec![0; pool_len],
            current_epoch: 0,
        }
    }

    /// Starts a new row: logically clears all entries in O(1).
    fn next_row(&mut self) {
        self.current_epoch += 1;
    }

    #[inline]
    fn get(&self, id: UnitId) -> &MemoEntry {
        if self.epochs[id.index()] == self.current_epoch {
            &self.entries[id.index()]
        } else {
            &MemoEntry::Unknown
        }
    }

    #[inline]
    fn set(&mut self, id: UnitId, entry: MemoEntry) {
        self.epochs[id.index()] = self.current_epoch;
        self.entries[id.index()] = entry;
    }
}

/// Per-row set of units known not to cover the row (the paper's cache),
/// epoch-stamped like [`RowMemo`].
///
/// Logically this duplicates the memo's `Bad` entries — a unit is inserted
/// here exactly when its memo entry is set to [`MemoEntry::Bad`] — but it is
/// kept as a separate dense `u32` epoch array deliberately: the cache-skip
/// pre-scan touches it once per unit of every candidate on every row (the
/// hottest loop in coverage), and scanning a 4-byte-per-unit array is ~25 %
/// faster end-to-end than reading the 24-byte `MemoEntry` slots (measured
/// on the `coverage_interned` bench: 6.7 ms vs 8.6 ms median).
struct BadUnitSet {
    epochs: Vec<u32>,
    current_epoch: u32,
}

impl BadUnitSet {
    fn new(pool_len: usize) -> Self {
        Self {
            epochs: vec![0; pool_len],
            current_epoch: 0,
        }
    }

    fn next_row(&mut self) {
        self.current_epoch += 1;
    }

    #[inline]
    fn contains(&self, id: UnitId) -> bool {
        self.epochs[id.index()] == self.current_epoch
    }

    #[inline]
    fn insert(&mut self, id: UnitId) {
        self.epochs[id.index()] = self.current_epoch;
    }
}

/// One frozen `(row, unit)` verdict in the shared memo. Unlike
/// [`MemoEntry`] there is no `Unknown`: the build phase evaluates every
/// referenced `(row, unit)` pair eagerly, so scans never evaluate.
enum SharedEntry {
    /// The unit does not apply to the row's source, or its (non-empty)
    /// output is not a substring of the row's target.
    Bad,
    /// The unit's output, which occurs in the row's target (or is empty).
    Good(Box<str>),
}

/// Marker in [`SharedUnitMemo::column_of_unit`] for pool entries no
/// candidate references (never looked up by scans).
const NO_COLUMN: u32 = u32::MAX;

/// Phase 1 of a planned parallel execution: the write-once unit-output memo
/// shared by all scan workers.
///
/// The memo's domain is the distinct units *referenced* by the candidate
/// list ([`UnitPool::referenced_ids`]), one column per unit in ascending id
/// order, one entry per row. The build is itself parallel — columns are
/// sharded by unit-id range across the plan's worker threads, each shard
/// evaluated independently — and the result is frozen (moved behind a
/// shared reference) before any scan thread starts, so scans read it
/// without synchronization. Exactly `rows × referenced units` evaluations
/// are performed, at any thread count.
struct SharedUnitMemo {
    /// Memo columns in ascending unit-id order; `columns[c][row]` is the
    /// verdict for the unit assigned column `c`.
    columns: Vec<Vec<SharedEntry>>,
    /// `UnitId` index → column index (`NO_COLUMN` for unreferenced units).
    column_of_unit: Vec<u32>,
    /// `Unit::output_on` evaluations performed by the build:
    /// `rows × referenced units`.
    evaluations: u64,
}

impl SharedUnitMemo {
    fn build(pool: &UnitPool, ids: Vec<UnitId>, pairs: &PairSet, threads: usize) -> Self {
        let rows = pairs.len();
        let mut column_of_unit = vec![NO_COLUMN; pool.len()];
        for (col, id) in ids.iter().enumerate() {
            // Invariant is local (audited): `col` indexes `ids`, whose
            // length is bounded by the pool size, itself capped at the
            // u32 id space by `UnitPool::intern`'s checked conversion.
            column_of_unit[id.index()] = col as u32;
        }
        let shard_size = ids.len().div_ceil(threads.min(ids.len()).max(1)).max(1);
        let columns: Vec<Vec<SharedEntry>> = std::thread::scope(|scope| {
            let handles: Vec<_> = ids
                .chunks(shard_size)
                .map(|shard| {
                    scope.spawn(move || {
                        shard
                            .iter()
                            .map(|&id| {
                                let unit = pool.get(id);
                                (0..rows)
                                    .map(|row| {
                                        match unit.output_on(pairs.source(row)) {
                                            Some(out)
                                                if out.is_empty()
                                                    || pairs
                                                        .target(row)
                                                        .contains(out.as_ref()) =>
                                            {
                                                SharedEntry::Good(
                                                    out.into_owned().into_boxed_str(),
                                                )
                                            }
                                            _ => SharedEntry::Bad,
                                        }
                                    })
                                    .collect::<Vec<SharedEntry>>()
                            })
                            .collect::<Vec<Vec<SharedEntry>>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("memo build worker panicked"))
                .collect()
        });
        Self {
            columns,
            column_of_unit,
            evaluations: (ids.len() * rows) as u64,
        }
    }

    #[inline]
    fn entry(&self, unit: UnitId, row: usize) -> &SharedEntry {
        &self.columns[self.column_of_unit[unit.index()] as usize][row]
    }
}

/// A scan worker's share of the coverage matrix.
struct ScanResult {
    /// Per candidate (in the worker's candidate order), the covered rows of
    /// the worker's row range, as global row indices, sorted.
    covered: Vec<SparseRows>,
    trials: u64,
    cache_hits: u64,
    /// `Unit::output_on` evaluations performed by the worker's verdict
    /// source (zero for frozen shared-memo scans, whose evaluations were
    /// counted at build time).
    evaluations: u64,
}

/// A per-`(row, unit)` verdict, ready for the scan loop: concatenable
/// output, or known non-covering.
enum Verdict<'a> {
    Bad,
    Good(&'a str),
}

/// Where the scan loop gets unit verdicts from.
///
/// Implementations must agree with the `(row, unit)` classification of
/// [`reference`]: `Bad` exactly when the unit does not apply to the row's
/// source or its non-empty output is not a substring of the row's target.
/// Keeping a *single* scan loop ([`coverage_scan`]) generic over this trait
/// is what makes the serial, per-thread, and shared-memo engines
/// bit-identical by construction — there is no second copy of the trial /
/// cache-hit / length-abandon logic to drift.
trait UnitVerdicts {
    /// Called once when the scan moves to `row`, before any verdict for it.
    fn begin_row(&mut self, row: usize);
    /// The verdict for `unit` on `row` (evaluating and memoizing lazily if
    /// this source does so). Only called for the row most recently passed
    /// to [`Self::begin_row`].
    fn verdict(&mut self, unit: UnitId, row: usize) -> Verdict<'_>;
    /// `Unit::output_on` evaluations this source has performed so far.
    fn evaluations(&self) -> u64;
}

/// Lazy verdicts: evaluate on first use, memoized per row in an
/// epoch-stamped pool-sized table — the serial engine's (and the per-thread
/// path's, and the over-budget fallback's) source.
struct LazyVerdicts<'a> {
    pool: &'a UnitPool,
    pairs: &'a PairSet,
    memo: RowMemo,
    evaluations: u64,
}

impl<'a> LazyVerdicts<'a> {
    fn new(pool: &'a UnitPool, pairs: &'a PairSet) -> Self {
        Self {
            pool,
            pairs,
            memo: RowMemo::new(pool.len()),
            evaluations: 0,
        }
    }
}

impl UnitVerdicts for LazyVerdicts<'_> {
    fn begin_row(&mut self, _row: usize) {
        self.memo.next_row();
    }

    #[inline]
    fn verdict(&mut self, unit: UnitId, row: usize) -> Verdict<'_> {
        // Evaluate the unit on this row at most once, memoizing both the
        // output and the substring-of-target verdict.
        if matches!(self.memo.get(unit), MemoEntry::Unknown) {
            self.evaluations += 1;
            let entry = match self.pool.get(unit).output_on(self.pairs.source(row)) {
                Some(out) if out.is_empty() || self.pairs.target(row).contains(out.as_ref()) => {
                    MemoEntry::Good(out.into_owned().into_boxed_str())
                }
                _ => MemoEntry::Bad,
            };
            self.memo.set(unit, entry);
        }
        match self.memo.get(unit) {
            MemoEntry::Good(out) => Verdict::Good(out),
            MemoEntry::Bad => Verdict::Bad,
            MemoEntry::Unknown => unreachable!("memo entry was just filled"),
        }
    }

    fn evaluations(&self) -> u64 {
        self.evaluations
    }
}

/// Frozen shared-memo verdicts: pure lookups, no evaluation (phase 2 of a
/// planned parallel execution reads the table phase 1 built).
struct SharedVerdicts<'a> {
    memo: &'a SharedUnitMemo,
}

impl UnitVerdicts for SharedVerdicts<'_> {
    fn begin_row(&mut self, _row: usize) {}

    #[inline]
    fn verdict(&mut self, unit: UnitId, row: usize) -> Verdict<'_> {
        match self.memo.entry(unit, row) {
            SharedEntry::Good(out) => Verdict::Good(out),
            SharedEntry::Bad => Verdict::Bad,
        }
    }

    fn evaluations(&self) -> u64 {
        0
    }
}

/// The one scan loop of the interned engine: covers `transformations` ×
/// `row_range`, with verdicts from `source`.
///
/// Serves every execution shape — the serial engine passes all candidates
/// with the full row range and a lazy source; a transformation-axis worker
/// passes its candidate chunk with the full row range; a row-axis worker
/// passes all candidates with its row chunk. The per-row bad-unit cache
/// keeps the *incremental* semantics of the naive loop — a unit is
/// inserted only when a trial on that row reaches it, never "from the
/// future" via a pre-built memo — so trial/hit accounting over any
/// rectangle is bit-identical to the naive transformation-major reference
/// over the same rectangle (see the module docs for why row-major and
/// transformation-major orders agree).
#[allow(clippy::too_many_arguments)]
fn coverage_scan<V: UnitVerdicts>(
    source: &mut V,
    transformations: &[IdTransformation],
    pairs: &PairSet,
    row_range: Range<usize>,
    use_cache: bool,
    pool_len: usize,
    budget: Option<&BudgetToken>,
) -> ScanResult {
    // Sparse collection: one (initially unallocated) sorted row list per
    // candidate — empty candidates never touch the heap. Rows arrive in
    // increasing order, so each list stays sorted by construction.
    let mut covered: Vec<SparseRows> = vec![Vec::new(); transformations.len()];
    let mut trials: u64 = 0;
    let mut cache_hits: u64 = 0;
    let mut bad = BadUnitSet::new(pool_len);
    let mut buffer = String::new();

    for row in row_range {
        // Cooperative budget check at the row boundary: a tripped token
        // stops this worker's scan; the planner entry point discards the
        // truncated outcome and returns the trip cause.
        if let Some(token) = budget {
            if token.check().is_err() {
                break;
            }
        }
        source.begin_row(row);
        bad.next_row();
        let target = pairs.target(row);

        'transformations: for (t_idx, t) in transformations.iter().enumerate() {
            if use_cache {
                for &unit in t.unit_ids() {
                    if bad.contains(unit) {
                        cache_hits += 1;
                        continue 'transformations;
                    }
                }
            }
            trials += 1;
            buffer.clear();
            let mut failed = false;
            for &unit in t.unit_ids() {
                match source.verdict(unit, row) {
                    Verdict::Good(out) => {
                        buffer.push_str(out);
                        if buffer.len() > target.len() {
                            failed = true;
                            break;
                        }
                    }
                    Verdict::Bad => {
                        // This unit can never appear in a transformation
                        // covering this row.
                        if use_cache {
                            bad.insert(unit);
                        }
                        failed = true;
                        break;
                    }
                }
            }
            if !failed && buffer == target {
                // Invariant is local (audited): `row` indexes the
                // `PairSet`, admitted through `checked_row_count` in
                // `PairSet::from_pairs` — the cast cannot truncate.
                covered[t_idx].push(row as u32);
            }
        }
    }

    ScanResult {
        covered,
        trials,
        cache_hits,
        evaluations: source.evaluations(),
    }
}

fn coverage_chunk_interned(
    pool: &UnitPool,
    transformations: &[IdTransformation],
    pairs: &PairSet,
    use_cache: bool,
) -> CoverageOutcome {
    coverage_chunk_interned_budgeted(pool, transformations, pairs, use_cache, None)
}

/// The serial scan under an optional budget: a tripped token truncates the
/// scan (the planner entry point discards the partial outcome).
fn coverage_chunk_interned_budgeted(
    pool: &UnitPool,
    transformations: &[IdTransformation],
    pairs: &PairSet,
    use_cache: bool,
    budget: Option<&BudgetToken>,
) -> CoverageOutcome {
    let rows = pairs.len();
    let mut source = LazyVerdicts::new(pool, pairs);
    let scan = coverage_scan(
        &mut source,
        transformations,
        pairs,
        0..rows,
        use_cache,
        pool.len(),
        budget,
    );
    CoverageOutcome {
        covered_rows: scan.covered,
        trials: scan.trials,
        cache_hits: scan.cache_hits,
        potential_trials: transformations.len() as u64 * rows as u64,
        unit_evaluations: scan.evaluations,
        apply_time: Duration::ZERO,
    }
}

pub mod reference {
    //! The naive transformation-major coverage loop the interned engine
    //! replaced: hash-set unit cache, no output memoization, and **dense**
    //! per-candidate `RowBitmap` collection (converted to the sparse output
    //! shape only at the edge). Retained as the differential-testing oracle
    //! for both the memoized evaluation *and* the sparse collection (see
    //! `tests/proptest_pipeline.rs` and the coverage tests below) and as the
    //! baseline leg of the `coverage_interned` benchmark.

    use super::CoverageOutcome;
    use crate::bitmap::RowBitmap;
    use crate::pair::PairSet;
    use std::time::{Duration, Instant};
    use tjoin_text::FxHashSet;
    use tjoin_units::{Transformation, Unit};

    /// Computes coverage with the pre-interning algorithm. Same contract and
    /// thread-chunking as [`super::compute_coverage`]; `unit_evaluations`
    /// counts every `output_on` call (one per unit application).
    pub fn compute_coverage_reference(
        transformations: &[Transformation],
        pairs: &PairSet,
        use_cache: bool,
        threads: usize,
    ) -> CoverageOutcome {
        let start = Instant::now();
        // Explicit degenerate path, mirroring `compute_coverage_planned`:
        // empty inputs never reach the chunking arithmetic.
        if transformations.is_empty() || pairs.is_empty() {
            return CoverageOutcome {
                covered_rows: vec![Vec::new(); transformations.len()],
                apply_time: start.elapsed(),
                ..CoverageOutcome::default()
            };
        }
        let mut outcome = if threads <= 1 || transformations.len() < 256 {
            coverage_chunk(transformations, pairs, use_cache)
        } else {
            let threads = threads.min(transformations.len());
            let chunk_size = transformations.len().div_ceil(threads);
            let chunks: Vec<&[Transformation]> = transformations.chunks(chunk_size).collect();
            let results: Vec<CoverageOutcome> = std::thread::scope(|scope| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|chunk| scope.spawn(move || coverage_chunk(chunk, pairs, use_cache)))
                    .collect();
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            });
            let mut merged = CoverageOutcome::default();
            for r in results {
                merged.covered_rows.extend(r.covered_rows);
                merged.trials += r.trials;
                merged.cache_hits += r.cache_hits;
                merged.potential_trials += r.potential_trials;
                merged.unit_evaluations += r.unit_evaluations;
            }
            merged
        };
        outcome.apply_time = start.elapsed();
        outcome
    }

    // The loop shape is kept verbatim from the pre-interning implementation
    // (it IS the oracle); silence the style lint about indexed row loops.
    #[allow(clippy::needless_range_loop)]
    fn coverage_chunk(
        transformations: &[Transformation],
        pairs: &PairSet,
        use_cache: bool,
    ) -> CoverageOutcome {
        let rows = pairs.len();
        let mut caches: Vec<FxHashSet<Unit>> = vec![FxHashSet::default(); rows];
        let mut covered_rows = Vec::with_capacity(transformations.len());
        let mut trials: u64 = 0;
        let mut cache_hits: u64 = 0;
        let mut unit_evaluations: u64 = 0;
        let mut buffer = String::new();

        for t in transformations {
            let mut covered = RowBitmap::new(rows);
            'rows: for row in 0..rows {
                if use_cache {
                    for unit in t.units() {
                        if caches[row].contains(unit) {
                            cache_hits += 1;
                            continue 'rows;
                        }
                    }
                }
                trials += 1;
                let source = pairs.source(row);
                let target = pairs.target(row);
                buffer.clear();
                let mut failed = false;
                for unit in t.units() {
                    unit_evaluations += 1;
                    match unit.output_on(source) {
                        Some(out) => {
                            if !out.is_empty() && !target.contains(out.as_ref()) {
                                // This unit can never appear in a
                                // transformation covering this row.
                                if use_cache {
                                    caches[row].insert(unit.clone());
                                }
                                failed = true;
                                break;
                            }
                            buffer.push_str(&out);
                            if buffer.len() > target.len() {
                                failed = true;
                                break;
                            }
                        }
                        None => {
                            if use_cache {
                                caches[row].insert(unit.clone());
                            }
                            failed = true;
                            break;
                        }
                    }
                }
                if !failed && buffer == target {
                    covered.insert(row);
                }
            }
            covered_rows.push(covered.to_vec());
        }

        CoverageOutcome {
            covered_rows,
            trials,
            cache_hits,
            potential_trials: transformations.len() as u64 * rows as u64,
            unit_evaluations,
            apply_time: Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::compute_coverage_reference;
    use super::*;
    use tjoin_text::NormalizeOptions;
    use tjoin_units::Unit;

    fn pairs(rows: &[(&str, &str)]) -> PairSet {
        PairSet::from_strings(rows, &NormalizeOptions::none())
    }

    fn initial_last() -> Transformation {
        Transformation::new(vec![
            Unit::split_substr(' ', 1, 0, 1),
            Unit::literal(" "),
            Unit::split(',', 0),
        ])
    }

    /// Asserts the interned engine and the naive reference agree on every
    /// observable for the given inputs, and returns the interned outcome.
    fn coverage_checked(
        transformations: &[Transformation],
        set: &PairSet,
        use_cache: bool,
        threads: usize,
    ) -> CoverageOutcome {
        let interned = compute_coverage(transformations, set, use_cache, threads);
        let naive = compute_coverage_reference(transformations, set, use_cache, threads);
        assert_eq!(interned.covered_rows, naive.covered_rows);
        assert_eq!(interned.trials, naive.trials);
        assert_eq!(interned.cache_hits, naive.cache_hits);
        assert_eq!(interned.potential_trials, naive.potential_trials);
        interned
    }

    #[test]
    fn coverage_counts_matching_rows() {
        let set = pairs(&[
            ("bowling, michael", "m bowling"),
            ("gosgnach, simon", "s gosgnach"),
            ("rafiei, davood", "davood rafiei"), // different format
        ]);
        let out = coverage_checked(&[initial_last()], &set, true, 1);
        assert_eq!(out.covered_rows_as_vecs(), vec![vec![0, 1]]);
        assert_eq!(out.potential_trials, 3);
        assert!(out.trials <= 3);
    }

    #[test]
    fn cache_reduces_trials_for_repeated_units() {
        // Two transformations sharing a failing unit: the second one should be
        // skipped via the cache on the rows where the first already failed.
        let bad_unit = Unit::literal("zzz"); // "zzz" never occurs in targets
        let t1 = Transformation::new(vec![bad_unit.clone(), Unit::substr(0, 1)]);
        let t2 = Transformation::new(vec![bad_unit, Unit::substr(0, 2)]);
        let set = pairs(&[("abcdef", "abc"), ("ghijkl", "ghi")]);
        let with_cache = coverage_checked(&[t1.clone(), t2.clone()], &set, true, 1);
        let without_cache = coverage_checked(&[t1, t2], &set, false, 1);
        assert_eq!(with_cache.covered_rows, without_cache.covered_rows);
        assert!(with_cache.cache_hits >= 2, "hits: {}", with_cache.cache_hits);
        assert!(with_cache.trials < without_cache.trials);
        assert_eq!(without_cache.cache_hits, 0);
        assert!(with_cache.cache_hit_ratio() > 0.0);
        assert_eq!(without_cache.cache_hit_ratio(), 0.0);
    }

    #[test]
    fn length_abandoning_does_not_change_results() {
        let t = Transformation::new(vec![Unit::substr(0, 5), Unit::substr(0, 5)]);
        let set = pairs(&[("abcdef", "abcde")]);
        let out = coverage_checked(&[t], &set, true, 1);
        assert_eq!(out.covered_rows_as_vecs(), vec![Vec::<u32>::new()]);
    }

    #[test]
    fn empty_transformation_list() {
        let set = pairs(&[("a", "b")]);
        let out = coverage_checked(&[], &set, true, 1);
        assert!(out.covered_rows.is_empty());
        assert_eq!(out.potential_trials, 0);
        assert_eq!(out.cache_hit_ratio(), 0.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        // Build enough transformations to trigger the parallel path.
        let mut ts = Vec::new();
        for i in 0..300usize {
            ts.push(Transformation::new(vec![
                Unit::substr(i % 3, (i % 3) + 1),
                Unit::literal(" x"),
            ]));
        }
        let set = pairs(&[("abcdef", "a x"), ("bcdefg", "c x"), ("zzzzzz", "q x")]);
        let seq = coverage_checked(&ts, &set, true, 1);
        let par = coverage_checked(&ts, &set, true, 4);
        assert_eq!(seq.covered_rows, par.covered_rows);
        assert_eq!(seq.potential_trials, par.potential_trials);
    }

    #[test]
    fn covers_exact_equality_only() {
        // Output must equal the target exactly, not merely be a prefix.
        let t = Transformation::single(Unit::substr(0, 3));
        let set = pairs(&[("abcdef", "abcx"), ("abcdef", "abc")]);
        let out = coverage_checked(&[t], &set, true, 1);
        assert_eq!(out.covered_rows_as_vecs(), vec![vec![1]]);
    }

    #[test]
    fn memoization_bounds_unit_evaluations() {
        // 60 transformations over a pool of 4 distinct units, 3 rows: the
        // interned engine may evaluate each (row, unit) pair at most once —
        // ≤ 12 evaluations — while the naive loop pays per application.
        let units = [
            Unit::substr(0, 1),
            Unit::substr(0, 2),
            Unit::split(',', 0),
            Unit::literal("x"),
        ];
        let mut ts = Vec::new();
        for a in 0..4usize {
            for b in 0..4usize {
                for c in 0..4usize {
                    if ts.len() < 60 {
                        ts.push(Transformation::new(vec![
                            units[a].clone(),
                            units[b].clone(),
                            units[c].clone(),
                        ]));
                    }
                }
            }
        }
        let set = pairs(&[("ab,cd", "ab"), ("xy,zw", "xyx"), ("qq,rr", "q")]);
        // Without the cache every transformation is tried on every row, so
        // the memo bound is exercised hardest.
        let interned = compute_coverage(&ts, &set, false, 1);
        let naive = compute_coverage_reference(&ts, &set, false, 1);
        assert_eq!(interned.covered_rows, naive.covered_rows);
        assert!(
            interned.unit_evaluations <= (3 * 4) as u64,
            "memoized engine evaluated {} (row, unit) pairs, expected <= 12",
            interned.unit_evaluations
        );
        assert!(
            naive.unit_evaluations > interned.unit_evaluations * 4,
            "naive loop should re-evaluate units per application ({} vs {})",
            naive.unit_evaluations,
            interned.unit_evaluations
        );
    }

    mod sparse_differential {
        //! Differential property tests: the interned engine's sparse
        //! collection vs the reference's dense `RowBitmap` path, across
        //! thread counts and cache toggles.

        use super::*;
        use proptest::prelude::*;

        fn any_unit() -> impl Strategy<Value = Unit> {
            let pos = || 0usize..10;
            let delim = || prop_oneof![Just(','), Just(' '), Just('-')];
            prop_oneof![
                (pos(), pos()).prop_map(|(a, b)| Unit::substr(a.min(b), a.max(b))),
                (delim(), 0usize..3).prop_map(|(d, i)| Unit::split(d, i)),
                (delim(), 0usize..3, pos(), pos())
                    .prop_map(|(d, i, a, b)| Unit::split_substr(d, i, a.min(b), a.max(b))),
                "[a-z, ]{0,3}".prop_map(Unit::literal),
            ]
        }

        /// Transformations drawn from a small shared unit pool, so the same
        /// units recur across candidates (the shape both the cache and the
        /// memoization exploit).
        fn pooled_transformations() -> impl Strategy<Value = Vec<Transformation>> {
            (prop::collection::vec(any_unit(), 2..6), 0usize..300).prop_map(
                |(pool, picks)| {
                    let n = pool.len();
                    (0..(picks % 30) + 1)
                        .map(|t| {
                            Transformation::new(
                                (0..t % 3 + 1)
                                    .map(|j| pool[(t * 5 + j * 2 + picks) % n].clone())
                                    .collect(),
                            )
                        })
                        .collect()
                },
            )
        }

        fn random_rows() -> impl Strategy<Value = Vec<(String, String)>> {
            prop::collection::vec(("[a-z, -]{0,12}", "[a-z, -]{0,8}"), 1..6)
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// The sparse-collection engine reports exactly the same sorted
            /// row lists as the dense reference path, sequentially and with
            /// 4-thread planning, cache on and off — and its pruning
            /// statistics match the resolved plan's exact contract (serial
            /// and row-axis plans: the serial reference; transformation-axis
            /// plans: the reference summed over the plan's own chunks).
            #[test]
            fn sparse_collection_matches_dense_reference(
                ts in pooled_transformations(),
                rows in random_rows(),
                use_cache in prop_oneof![Just(true), Just(false)],
            ) {
                use crate::coverage::plan::{plan_execution, CoverageAxis, ExecutionPlan};
                let set = pairs_from(&rows);
                let dense_serial = compute_coverage_reference(&ts, &set, use_cache, 1);
                for threads in [1usize, 4] {
                    let sparse = compute_coverage(&ts, &set, use_cache, threads);
                    prop_assert_eq!(
                        &sparse.covered_rows, &dense_serial.covered_rows,
                        "covered rows diverged (cache={}, threads={})", use_cache, threads
                    );
                    let plan =
                        plan_execution(ts.len(), set.len(), threads, CoverageAxis::Auto);
                    let (expected_trials, expected_hits) = match plan {
                        ExecutionPlan::Serial | ExecutionPlan::Rows { .. } => {
                            (dense_serial.trials, dense_serial.cache_hits)
                        }
                        ExecutionPlan::Transformations { chunk_size, .. } => ts
                            .chunks(chunk_size)
                            .map(|c| compute_coverage_reference(c, &set, use_cache, 1))
                            .fold((0, 0), |(t, h), r| (t + r.trials, h + r.cache_hits)),
                    };
                    prop_assert_eq!(sparse.trials, expected_trials);
                    prop_assert_eq!(sparse.cache_hits, expected_hits);
                    prop_assert_eq!(sparse.potential_trials, dense_serial.potential_trials);
                    // Every sparse list must be strictly sorted — the
                    // contract `RowBitmap::from_sorted_rows` densifies under.
                    for list in &sparse.covered_rows {
                        prop_assert!(list.windows(2).all(|w| w[0] < w[1]));
                    }
                }
            }
        }

        fn pairs_from(rows: &[(String, String)]) -> PairSet {
            PairSet::from_strings(rows, &NormalizeOptions::none())
        }
    }

    mod planner {
        //! Edge-case unit tests for the execution planner: degenerate
        //! shapes, threshold fallbacks, thread clamping, and the
        //! worker/chunk arithmetic.

        use crate::coverage::plan::*;

        #[test]
        fn degenerate_shapes_resolve_to_serial() {
            for axis in [CoverageAxis::Auto, CoverageAxis::Transformations, CoverageAxis::Rows] {
                // Either dimension empty: nothing to chunk.
                assert_eq!(plan_execution(0, 100, 8, axis), ExecutionPlan::Serial);
                assert_eq!(plan_execution(1000, 0, 8, axis), ExecutionPlan::Serial);
                assert_eq!(plan_execution(0, 0, 8, axis), ExecutionPlan::Serial);
                // One thread: nothing to parallelize.
                assert_eq!(plan_execution(1000, 1000, 1, axis), ExecutionPlan::Serial);
                assert_eq!(plan_execution(1000, 1000, 0, axis), ExecutionPlan::Serial);
            }
            // A one-long axis cannot be split, even when forced.
            assert_eq!(
                plan_execution(1, 1000, 4, CoverageAxis::Transformations),
                ExecutionPlan::Serial
            );
            assert_eq!(plan_execution(1000, 1, 4, CoverageAxis::Rows), ExecutionPlan::Serial);
        }

        #[test]
        fn auto_falls_back_to_serial_below_the_transformation_threshold() {
            // The historical < 256 fallback: few candidates and few rows
            // stay serial no matter the thread count.
            assert_eq!(
                plan_execution(MIN_AUTO_TRANSFORMATIONS - 1, 100, 8, CoverageAxis::Auto),
                ExecutionPlan::Serial
            );
            // At the threshold the transformation axis kicks in.
            assert_eq!(
                plan_execution(256, 100, 4, CoverageAxis::Auto),
                ExecutionPlan::Transformations { workers: 4, chunk_size: 64 }
            );
        }

        #[test]
        fn auto_picks_the_row_axis_for_wide_row_counts() {
            // Few transformations, many rows: the GXJoin-style shape that
            // used to collapse to serial now chunks rows.
            assert_eq!(
                plan_execution(64, 100_000, 4, CoverageAxis::Auto),
                ExecutionPlan::Rows { workers: 4, chunk_size: 25_000 }
            );
            // Plentiful on both axes but more rows than candidates: rows.
            assert_eq!(
                plan_execution(300, 1_000, 2, CoverageAxis::Auto),
                ExecutionPlan::Rows { workers: 2, chunk_size: 500 }
            );
            // More candidates than rows: transformations (the pre-planner
            // default, preserving its exact stats).
            assert_eq!(
                plan_execution(1_000, 300, 2, CoverageAxis::Auto),
                ExecutionPlan::Transformations { workers: 2, chunk_size: 500 }
            );
            // Rows below the auto threshold: serial.
            assert_eq!(
                plan_execution(64, MIN_AUTO_ROWS - 1, 4, CoverageAxis::Auto),
                ExecutionPlan::Serial
            );
        }

        #[test]
        fn forced_axes_ignore_auto_thresholds() {
            assert_eq!(
                plan_execution(5, 3, 4, CoverageAxis::Transformations),
                ExecutionPlan::Transformations { workers: 3, chunk_size: 2 }
            );
            assert_eq!(
                plan_execution(5, 6, 2, CoverageAxis::Rows),
                ExecutionPlan::Rows { workers: 2, chunk_size: 3 }
            );
        }

        #[test]
        fn workers_clamp_to_the_chunked_dimension() {
            // Fewer rows than threads: one single-row chunk per row.
            assert_eq!(
                plan_execution(10, 3, 8, CoverageAxis::Rows),
                ExecutionPlan::Rows { workers: 3, chunk_size: 1 }
            );
            assert_eq!(
                plan_execution(2, 100, 16, CoverageAxis::Transformations),
                ExecutionPlan::Transformations { workers: 2, chunk_size: 1 }
            );
        }

        #[test]
        fn chunk_arithmetic_exactly_tiles_the_dimension() {
            // Across a sweep of shapes, the plan's workers × chunk_size
            // tiles the chunked dimension: every chunk non-empty, no
            // worker idle, the last chunk possibly short.
            for dim in [2usize, 3, 5, 63, 64, 65, 100, 255, 256, 1000] {
                for threads in [2usize, 3, 4, 7, 8, 64] {
                    for (plan, chunked) in [
                        (plan_execution(dim, 10, threads, CoverageAxis::Transformations), dim),
                        (plan_execution(10_000, dim, threads, CoverageAxis::Rows), dim),
                    ] {
                        match plan {
                            ExecutionPlan::Serial => assert!(
                                threads.min(chunked) <= 1 || chunked.div_ceil(threads.min(chunked)) >= chunked,
                                "unexpected serial at dim={chunked} threads={threads}"
                            ),
                            ExecutionPlan::Transformations { workers, chunk_size }
                            | ExecutionPlan::Rows { workers, chunk_size } => {
                                assert!(chunk_size >= 1);
                                assert!(workers >= 2);
                                assert_eq!(workers, chunked.div_ceil(chunk_size));
                                assert!(workers <= threads);
                                // No empty trailing chunk.
                                assert!((workers - 1) * chunk_size < chunked);
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_transformation_list_is_explicit_in_both_engines() {
        use crate::coverage::plan::CoverageAxis;
        let set = pairs(&[("a", "b"), ("c", "d")]);
        let pool = UnitPool::new();
        for axis in [CoverageAxis::Auto, CoverageAxis::Transformations, CoverageAxis::Rows] {
            for threads in [1usize, 4] {
                let out = compute_coverage_planned(&pool, &[], &set, true, threads, axis);
                assert!(out.covered_rows.is_empty());
                assert_eq!(out.trials, 0);
                assert_eq!(out.cache_hits, 0);
                assert_eq!(out.potential_trials, 0);
                assert_eq!(out.unit_evaluations, 0);
            }
        }
        let reference = compute_coverage_reference(&[], &set, true, 4);
        assert!(reference.covered_rows.is_empty());
        assert_eq!(reference.potential_trials, 0);
    }

    #[test]
    fn zero_rows_is_explicit_in_both_engines() {
        use crate::coverage::plan::CoverageAxis;
        let set = pairs(&[]);
        let ts = vec![initial_last(), Transformation::single(Unit::split(',', 0))];
        let mut pool = UnitPool::new();
        let interned: Vec<IdTransformation> = ts
            .iter()
            .map(|t| {
                IdTransformation::new(t.units().iter().map(|u| pool.intern(u.clone())).collect())
            })
            .collect();
        for axis in [CoverageAxis::Auto, CoverageAxis::Transformations, CoverageAxis::Rows] {
            for threads in [1usize, 4] {
                let out = compute_coverage_planned(&pool, &interned, &set, true, threads, axis);
                assert_eq!(out.covered_rows, vec![Vec::<u32>::new(); 2]);
                assert_eq!(out.trials, 0);
                assert_eq!(out.potential_trials, 0);
                assert_eq!(out.unit_evaluations, 0);
            }
        }
        let reference = compute_coverage_reference(&ts, &set, true, 4);
        assert_eq!(reference.covered_rows, vec![Vec::<u32>::new(); 2]);
        assert_eq!(reference.potential_trials, 0);
    }

    #[test]
    fn single_row_runs_serial_under_every_axis() {
        use crate::coverage::plan::CoverageAxis;
        let set = pairs(&[("bowling, michael", "m bowling")]);
        let ts = vec![initial_last(), Transformation::single(Unit::split(',', 0))];
        let reference = compute_coverage_reference(&ts, &set, true, 1);
        let mut pool = UnitPool::new();
        let interned: Vec<IdTransformation> = ts
            .iter()
            .map(|t| {
                IdTransformation::new(t.units().iter().map(|u| pool.intern(u.clone())).collect())
            })
            .collect();
        // One row cannot chunk on the row axis; two transformations CAN
        // chunk on the transformation axis. Either way every observable
        // matches the serial reference.
        for axis in [CoverageAxis::Auto, CoverageAxis::Transformations, CoverageAxis::Rows] {
            let out = compute_coverage_planned(&pool, &interned, &set, true, 4, axis);
            assert_eq!(out.covered_rows, reference.covered_rows, "axis={axis:?}");
            assert_eq!(out.trials + out.cache_hits, out.potential_trials, "axis={axis:?}");
            assert_eq!(out.potential_trials, reference.potential_trials);
        }
        // Forced row axis over one row resolves to serial: identical stats.
        let out = compute_coverage_planned(&pool, &interned, &set, true, 4, CoverageAxis::Rows);
        assert_eq!(out.trials, reference.trials);
        assert_eq!(out.cache_hits, reference.cache_hits);
    }

    #[test]
    fn row_chunk_boundary_straddling_a_bitmap_word() {
        use crate::bitmap::RowBitmap;
        use crate::coverage::plan::{plan_execution, CoverageAxis, ExecutionPlan};
        // Two row chunks with the boundary landing exactly at row 63, 64,
        // and 65 — on and around a RowBitmap word seam. Coverage alternates
        // rows, so sparse lists cross the seam on both sides.
        for rows in [126usize, 128, 130] {
            let boundary = rows / 2;
            assert_eq!(
                plan_execution(2, rows, 2, CoverageAxis::Rows),
                ExecutionPlan::Rows { workers: 2, chunk_size: boundary },
                "rows={rows}"
            );
            let raw: Vec<(String, String)> = (0..rows)
                .map(|i| {
                    let target = if i % 2 == 0 { "r" } else { "q" };
                    (format!("r{i:03}"), target.to_string())
                })
                .collect();
            let set = PairSet::from_strings(&raw, &tjoin_text::NormalizeOptions::none());
            // substr(0,1) emits "r": covers even rows. literal("q") covers
            // odd rows.
            let ts = vec![
                Transformation::single(Unit::substr(0, 1)),
                Transformation::single(Unit::literal("q")),
            ];
            let mut pool = UnitPool::new();
            let interned: Vec<IdTransformation> = ts
                .iter()
                .map(|t| {
                    IdTransformation::new(
                        t.units().iter().map(|u| pool.intern(u.clone())).collect(),
                    )
                })
                .collect();
            let reference = compute_coverage_reference(&ts, &set, true, 1);
            let out = compute_coverage_planned(&pool, &interned, &set, true, 2, CoverageAxis::Rows);
            assert_eq!(out.covered_rows, reference.covered_rows, "rows={rows}");
            // Row-axis trial/hit accounting matches the serial reference.
            assert_eq!(out.trials, reference.trials, "rows={rows}");
            assert_eq!(out.cache_hits, reference.cache_hits, "rows={rows}");
            // The concatenated lists stay strictly sorted across the seam
            // and densify into the same bitmaps as the reference's.
            for (sparse, expect) in out.covered_rows.iter().zip(&reference.covered_rows) {
                assert!(sparse.windows(2).all(|w| w[0] < w[1]));
                assert_eq!(
                    RowBitmap::from_sorted_rows(rows, sparse),
                    RowBitmap::from_sorted_rows(rows, expect)
                );
            }
        }
    }

    #[test]
    fn row_axis_stats_match_serial_reference_at_any_thread_count() {
        use crate::coverage::plan::CoverageAxis;
        let bad_unit = Unit::literal("zzz");
        let ts = vec![
            Transformation::new(vec![bad_unit.clone(), Unit::substr(0, 1)]),
            Transformation::new(vec![bad_unit, Unit::substr(0, 2)]),
            Transformation::single(Unit::substr(0, 3)),
            Transformation::single(Unit::split(',', 0)),
        ];
        let raw: Vec<(String, String)> = (0..23)
            .map(|i| (format!("ab{i},cd"), if i % 3 == 0 { "abc".into() } else { format!("ab{i}") }))
            .collect();
        let set = PairSet::from_strings(&raw, &tjoin_text::NormalizeOptions::none());
        let mut pool = UnitPool::new();
        let interned: Vec<IdTransformation> = ts
            .iter()
            .map(|t| {
                IdTransformation::new(t.units().iter().map(|u| pool.intern(u.clone())).collect())
            })
            .collect();
        for use_cache in [true, false] {
            let reference = compute_coverage_reference(&ts, &set, use_cache, 1);
            for threads in [2usize, 3, 5, 8, 64] {
                let out = compute_coverage_planned(
                    &pool,
                    &interned,
                    &set,
                    use_cache,
                    threads,
                    CoverageAxis::Rows,
                );
                assert_eq!(out.covered_rows, reference.covered_rows, "threads={threads}");
                assert_eq!(out.trials, reference.trials, "threads={threads}");
                assert_eq!(out.cache_hits, reference.cache_hits, "threads={threads}");
                assert_eq!(out.potential_trials, reference.potential_trials);
            }
        }
    }

    #[test]
    fn shared_memo_evaluations_exact_at_any_thread_count() {
        use crate::coverage::plan::CoverageAxis;
        // 300 candidates over a 4-unit pool: Auto goes parallel on the
        // transformation axis; forcing rows exercises the other scan. In
        // both cases the shared memo performs exactly
        // rows × referenced-units evaluations — the ≤ rows × distinct-units
        // acceptance bound — independent of thread count.
        let units = [
            Unit::substr(0, 1),
            Unit::substr(0, 2),
            Unit::split(',', 0),
            Unit::literal("x"),
        ];
        let ts: Vec<Transformation> = (0..300)
            .map(|i| {
                Transformation::new(vec![
                    units[i % 4].clone(),
                    units[(i / 4) % 4].clone(),
                ])
            })
            .collect();
        let set = pairs(&[("ab,cd", "ab"), ("xy,zw", "xyx"), ("qq,rr", "q")]);
        let mut pool = UnitPool::new();
        let interned: Vec<IdTransformation> = ts
            .iter()
            .map(|t| {
                IdTransformation::new(t.units().iter().map(|u| pool.intern(u.clone())).collect())
            })
            .collect();
        let expected = (set.len() * pool.len()) as u64; // all 4 units referenced
        for axis in [CoverageAxis::Transformations, CoverageAxis::Rows, CoverageAxis::Auto] {
            for threads in [2usize, 4, 8] {
                for use_cache in [true, false] {
                    let out = compute_coverage_planned(
                        &pool, &interned, &set, use_cache, threads, axis,
                    );
                    assert_eq!(
                        out.unit_evaluations, expected,
                        "axis={axis:?} threads={threads} cache={use_cache}"
                    );
                }
            }
        }
        // The per-thread path retained for the bench pays more: each of the
        // 4 workers lazily re-derives the shared units.
        let per_thread = compute_coverage_interned_per_thread(&pool, &interned, &set, false, 4);
        assert!(
            per_thread.unit_evaluations > expected,
            "per-thread memo should duplicate shared-unit work ({} vs {})",
            per_thread.unit_evaluations,
            expected
        );
    }

    #[test]
    fn over_budget_memo_falls_back_to_lazy_workers() {
        use crate::coverage::plan::CoverageAxis;
        // A one-entry budget forces the lazy per-worker fallback on every
        // parallel plan: covered rows stay bit-identical, row-axis
        // trial/hit/evaluation accounting stays bit-identical to serial,
        // and transformation-axis accounting matches the per-chunk
        // reference semantics (= the retained per-thread path).
        let units = [
            Unit::substr(0, 1),
            Unit::substr(0, 2),
            Unit::split(',', 0),
            Unit::literal("x"),
        ];
        let ts: Vec<Transformation> = (0..300)
            .map(|i| {
                Transformation::new(vec![units[i % 4].clone(), units[(i / 4) % 4].clone()])
            })
            .collect();
        let set = pairs(&[("ab,cd", "ab"), ("xy,zw", "xyx"), ("qq,rr", "q"), ("mm,nn", "mm")]);
        let mut pool = UnitPool::new();
        let interned: Vec<IdTransformation> = ts
            .iter()
            .map(|t| {
                IdTransformation::new(t.units().iter().map(|u| pool.intern(u.clone())).collect())
            })
            .collect();
        let serial = compute_coverage_reference(&ts, &set, true, 1);
        for (axis, threads) in [
            (CoverageAxis::Rows, 2usize),
            (CoverageAxis::Rows, 4),
            (CoverageAxis::Transformations, 4),
        ] {
            let tiny =
                compute_coverage_planned_impl(&pool, &interned, &set, true, threads, axis, 1, None)
                    .unwrap();
            let roomy = compute_coverage_planned(&pool, &interned, &set, true, threads, axis);
            assert_eq!(tiny.covered_rows, serial.covered_rows, "axis={axis:?}");
            assert_eq!(tiny.covered_rows, roomy.covered_rows, "axis={axis:?}");
            // Trials/hits are a property of the plan, not the memo mode.
            assert_eq!(tiny.trials, roomy.trials, "axis={axis:?}");
            assert_eq!(tiny.cache_hits, roomy.cache_hits, "axis={axis:?}");
            if axis == CoverageAxis::Rows {
                assert_eq!(tiny.trials, serial.trials);
                assert_eq!(tiny.cache_hits, serial.cache_hits);
                // Lazy row-partitioned evaluation is exactly the serial
                // engine's lazy count.
                let serial_interned = compute_coverage_interned(&pool, &interned, &set, true, 1);
                assert_eq!(tiny.unit_evaluations, serial_interned.unit_evaluations);
            }
            // The lazy fallback still respects the memo bound.
            assert!(tiny.unit_evaluations <= (set.len() * pool.len() * threads) as u64);
        }
        // The budget predicate itself: overflow-safe and monotone.
        assert!(shared_memo_fits(0, 0, 0));
        assert!(shared_memo_fits(4, 4, SHARED_MEMO_BUDGET_BYTES));
        assert!(!shared_memo_fits(usize::MAX, 2, SHARED_MEMO_BUDGET_BYTES));
        assert!(!shared_memo_fits(1 << 20, 1 << 20, SHARED_MEMO_BUDGET_BYTES));
    }

    #[test]
    fn interned_entry_point_agrees_with_compat_wrapper() {
        let mut pool = UnitPool::new();
        let ts = vec![initial_last(), Transformation::single(Unit::split(',', 0))];
        let interned: Vec<IdTransformation> = ts
            .iter()
            .map(|t| {
                IdTransformation::new(t.units().iter().map(|u| pool.intern(u.clone())).collect())
            })
            .collect();
        let set = pairs(&[
            ("bowling, michael", "m bowling"),
            ("rafiei, davood", "rafiei"),
        ]);
        let via_wrapper = compute_coverage(&ts, &set, true, 1);
        let via_pool = compute_coverage_interned(&pool, &interned, &set, true, 1);
        assert_eq!(via_wrapper.covered_rows, via_pool.covered_rows);
        assert_eq!(via_wrapper.trials, via_pool.trials);
        assert_eq!(via_wrapper.cache_hits, via_pool.cache_hits);
    }
}
