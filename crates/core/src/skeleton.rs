//! Skeleton enumeration (Section 4.1.3 of the paper).
//!
//! A skeleton is a sequence of placeholders and literals whose concatenation
//! is exactly the target of a row. Skeletons are the templates from which
//! candidate transformations are generated: every placeholder is later
//! replaced by the units that can emit its text (see [`crate::unitgen`]).
//!
//! The enumeration follows the paper: maximal-length placeholders are the
//! backbone; blocks of the target not covered by any placeholder become
//! literals; every placeholder may additionally be re-split at separator
//! characters (producing the extra skeletons of Lemma 4, case 1); and the
//! whole target as a single literal is always included as a fallback.

use crate::config::SynthesisConfig;
use crate::placeholder::{resplit_placeholder, Placeholder, ResplitPart};
use serde::{Deserialize, Serialize};
use tjoin_units::CharStr;

/// One segment of a skeleton.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Segment {
    /// A placeholder to be replaced by candidate units.
    Placeholder(Placeholder),
    /// Literal target text (no unit search needed).
    Literal(String),
}

impl Segment {
    /// The target text this segment spans.
    pub fn text(&self) -> &str {
        match self {
            Segment::Placeholder(p) => &p.text,
            Segment::Literal(s) => s,
        }
    }

    /// Whether this segment is a placeholder.
    pub fn is_placeholder(&self) -> bool {
        matches!(self, Segment::Placeholder(_))
    }
}

/// A skeleton: segments that concatenate to the row's target value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Skeleton {
    /// The segments in target order.
    pub segments: Vec<Segment>,
}

impl Skeleton {
    /// Number of placeholder segments.
    pub fn placeholder_count(&self) -> usize {
        self.segments.iter().filter(|s| s.is_placeholder()).count()
    }

    /// Reconstructs the target text covered by the skeleton (used by tests
    /// and assertions: it must equal the row's target).
    pub fn reconstruct(&self) -> String {
        self.segments.iter().map(Segment::text).collect()
    }
}

/// Enumerates the skeletons of one row.
///
/// The result always contains the all-literal skeleton, is deduplicated, and
/// is truncated to `config.max_skeletons_per_row`. Skeletons whose
/// placeholder count exceeds `config.max_placeholders` are dropped (the
/// paper's bounded-placeholder setting).
pub fn enumerate_skeletons(
    source: &CharStr,
    target: &str,
    placeholders: &[Placeholder],
    config: &SynthesisConfig,
) -> Vec<Skeleton> {
    let target_chars: Vec<char> = target.chars().collect();
    if target_chars.is_empty() {
        return Vec::new();
    }
    // Placeholder starting at each target position (at most one: maximal
    // blocks have distinct starts).
    let mut starts: Vec<Option<&Placeholder>> = vec![None; target_chars.len()];
    for p in placeholders {
        if p.target_start < starts.len() {
            starts[p.target_start] = Some(p);
        }
    }

    // Base segmentations: maximal placeholders are the backbone (Section
    // 4.1.3); every maximal placeholder encountered scanning left to right is
    // taken, everything else becomes literal text. When a maximal placeholder
    // overlaps a longer-reaching one starting inside it (common in address
    // data), both resolutions are kept: take the block whole, or truncate it
    // where the overlapping block starts so that block can be taken too.
    let bases = base_segmentations(&target_chars, &starts, 8);

    let mut skeletons: Vec<Skeleton> = Vec::new();
    for base in bases {
        if skeletons.len() >= config.max_skeletons_per_row {
            break;
        }
        // Bounded-placeholder setting: when the segmentation has more
        // placeholders than allowed, keep the longest ones (they carry the
        // most copying evidence) and demote the rest to literals. The paper
        // notes this bound "improves the running performance but some
        // transformations can be missed".
        let base = limit_placeholders(base, config.max_placeholders);
        if base.iter().any(Segment::is_placeholder) {
            let skel = Skeleton { segments: base.clone() };
            if !skeletons.contains(&skel) {
                skeletons.push(skel);
            }
        } else {
            continue;
        }

        // Re-split combinations: each re-splittable placeholder may
        // independently stay maximal or be broken at separators, giving the
        // paper's `2^p` skeletons per row (bounded by max_skeletons_per_row).
        if config.resplit_placeholders {
            let resplittable: Vec<usize> = base
                .iter()
                .enumerate()
                .filter_map(|(i, seg)| match seg {
                    Segment::Placeholder(p) => resplit_placeholder(p, source).map(|_| i),
                    Segment::Literal(_) => None,
                })
                .collect();
            let combos = 1usize << resplittable.len().min(10);
            'combos: for mask in 1..combos {
                if skeletons.len() >= config.max_skeletons_per_row {
                    break;
                }
                let mut segments: Vec<Segment> = Vec::with_capacity(base.len() + 4);
                for (i, seg) in base.iter().enumerate() {
                    let split_here = resplittable
                        .iter()
                        .position(|&r| r == i)
                        .map(|bit| mask & (1 << bit) != 0)
                        .unwrap_or(false);
                    match seg {
                        Segment::Placeholder(p) if split_here => {
                            let Some(parts) = resplit_placeholder(p, source) else {
                                continue 'combos;
                            };
                            for part in parts {
                                match part {
                                    ResplitPart::Literal(s) => merge_literal(&mut segments, s),
                                    ResplitPart::Placeholder(p) => {
                                        segments.push(Segment::Placeholder(p))
                                    }
                                }
                            }
                        }
                        Segment::Placeholder(_) => segments.push(seg.clone()),
                        Segment::Literal(s) => merge_literal(&mut segments, s.clone()),
                    }
                }
                let skel = Skeleton { segments };
                if skel.placeholder_count() <= config.max_placeholders
                    && skel.placeholder_count() > 0
                    && !skeletons.contains(&skel)
                {
                    skeletons.push(skel);
                }
            }
        }
    }

    // The all-literal fallback (paper: "<(L: 'Victor R. Kasumba')>").
    let all_literal = Skeleton {
        segments: vec![Segment::Literal(target.to_owned())],
    };
    if !skeletons.contains(&all_literal) {
        skeletons.push(all_literal);
    }
    skeletons.truncate(config.max_skeletons_per_row.max(1));

    debug_assert!(skeletons.iter().all(|s| s.reconstruct() == target));
    skeletons
}

/// Enumerates left-to-right segmentations of the target into maximal
/// placeholders and literal runs. Branching happens only where a maximal
/// placeholder overlaps a longer-reaching one starting inside it: in that
/// case both "take it whole" and "truncate it so the overlapping block can be
/// taken" are produced, bounded by `max_branches` segmentations.
fn base_segmentations(
    target_chars: &[char],
    starts: &[Option<&Placeholder>],
    max_branches: usize,
) -> Vec<Vec<Segment>> {
    let mut results: Vec<Vec<Segment>> = Vec::new();
    let mut stack: Vec<(usize, Vec<Segment>)> = vec![(0, Vec::new())];
    while let Some((pos, segments)) = stack.pop() {
        if results.len() >= max_branches {
            break;
        }
        if pos >= target_chars.len() {
            results.push(segments);
            continue;
        }
        if let Some(p) = starts[pos] {
            // Overlap alternative: a maximal block starting strictly inside
            // `p` that reaches further right.
            let alternative = (pos + 1..p.target_end)
                .filter_map(|j| starts.get(j).copied().flatten())
                .filter(|q| q.target_end > p.target_end)
                .max_by_key(|q| q.target_end);
            if let Some(q) = alternative {
                if results.len() + stack.len() + 1 < max_branches {
                    let cut = q.target_start - p.target_start;
                    let truncated = Placeholder {
                        target_start: p.target_start,
                        target_end: q.target_start,
                        text: p.text.chars().take(cut).collect(),
                        source_positions: p.source_positions.clone(),
                    };
                    let mut alt_segments = segments.clone();
                    alt_segments.push(Segment::Placeholder(truncated));
                    stack.push((q.target_start, alt_segments));
                }
            }
            let mut taken = segments;
            taken.push(Segment::Placeholder(p.clone()));
            stack.push((p.target_end, taken));
        } else {
            let mut extended = segments;
            push_literal_char(&mut extended, target_chars[pos]);
            stack.push((pos + 1, extended));
        }
    }
    results
}

/// Demotes all but the `max` longest placeholders of a segmentation to
/// literal text, merging adjacent literals afterwards.
fn limit_placeholders(segments: Vec<Segment>, max: usize) -> Vec<Segment> {
    let placeholder_count = segments.iter().filter(|s| s.is_placeholder()).count();
    if placeholder_count <= max {
        return segments;
    }
    // Indices of placeholders ordered by decreasing length (ties: earlier
    // position wins).
    let mut by_len: Vec<(usize, usize)> = segments
        .iter()
        .enumerate()
        .filter_map(|(i, s)| match s {
            Segment::Placeholder(p) => Some((i, p.char_len())),
            Segment::Literal(_) => None,
        })
        .collect();
    by_len.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let keep: std::collections::HashSet<usize> =
        by_len.into_iter().take(max).map(|(i, _)| i).collect();

    let mut out: Vec<Segment> = Vec::with_capacity(segments.len());
    for (i, seg) in segments.into_iter().enumerate() {
        match seg {
            Segment::Placeholder(p) if !keep.contains(&i) => {
                merge_literal(&mut out, p.text);
            }
            Segment::Literal(s) => merge_literal(&mut out, s),
            other => out.push(other),
        }
    }
    out
}

fn push_literal_char(segments: &mut Vec<Segment>, c: char) {
    if let Some(Segment::Literal(last)) = segments.last_mut() {
        last.push(c);
    } else {
        segments.push(Segment::Literal(c.to_string()));
    }
}

fn merge_literal(segments: &mut Vec<Segment>, text: String) {
    if let Some(Segment::Literal(last)) = segments.last_mut() {
        last.push_str(&text);
    } else {
        segments.push(Segment::Literal(text));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placeholder::maximal_placeholders;

    fn skeletons_for(source: &str, target: &str, config: &SynthesisConfig) -> Vec<Skeleton> {
        let src = CharStr::new(source);
        let ps = maximal_placeholders(&src, target);
        enumerate_skeletons(&src, target, &ps, config)
    }

    #[test]
    fn victor_example_produces_paper_skeletons() {
        let config = SynthesisConfig::default();
        let skels = skeletons_for("Victor Robbie Kasumba", "Victor R. Kasumba", &config);
        // All skeletons reconstruct the target.
        for s in &skels {
            assert_eq!(s.reconstruct(), "Victor R. Kasumba");
        }
        // The paper's three skeletons must all be present (as segment shapes).
        let shapes: Vec<Vec<String>> = skels
            .iter()
            .map(|s| {
                s.segments
                    .iter()
                    .map(|seg| match seg {
                        Segment::Placeholder(p) => format!("P:{}", p.text),
                        Segment::Literal(l) => format!("L:{l}"),
                    })
                    .collect()
            })
            .collect();
        // The maximal-placeholder skeleton: our detector extends the second
        // block to " Kasumba" (the space also occurs in the source), so the
        // literal between the two maximal placeholders is "." rather than the
        // paper's ". " — the re-split variant below recovers the paper's
        // exact shape.
        assert!(
            shapes.contains(&vec![
                "P:Victor R".into(),
                "L:.".into(),
                "P: Kasumba".into()
            ]),
            "missing maximal skeleton in {shapes:?}"
        );
        assert!(
            shapes.contains(&vec![
                "P:Victor".into(),
                "L: ".into(),
                "P:R".into(),
                "L:. ".into(),
                "P:Kasumba".into()
            ]) || config.max_placeholders < 3,
            "missing re-split skeleton in {shapes:?}"
        );
        assert!(
            shapes.contains(&vec!["L:Victor R. Kasumba".into()]),
            "missing all-literal skeleton in {shapes:?}"
        );
    }

    #[test]
    fn resplit_skeleton_respects_placeholder_bound() {
        let config = SynthesisConfig {
            max_placeholders: 2,
            ..SynthesisConfig::default()
        };
        let skels = skeletons_for("Victor Robbie Kasumba", "Victor R. Kasumba", &config);
        for s in &skels {
            assert!(s.placeholder_count() <= 2);
        }
    }

    #[test]
    fn disjoint_pair_yields_only_literal_skeleton() {
        let config = SynthesisConfig::default();
        let skels = skeletons_for("abc", "xyz", &config);
        assert_eq!(skels.len(), 1);
        assert_eq!(skels[0].segments, vec![Segment::Literal("xyz".into())]);
        assert_eq!(skels[0].placeholder_count(), 0);
    }

    #[test]
    fn empty_target_yields_nothing() {
        let config = SynthesisConfig::default();
        let skels = skeletons_for("abc", "", &config);
        assert!(skels.is_empty());
    }

    #[test]
    fn skeleton_cap_respected() {
        let config = SynthesisConfig {
            max_skeletons_per_row: 3,
            ..SynthesisConfig::default()
        };
        // A highly repetitive pair that would otherwise produce many skeletons.
        let skels = skeletons_for("ababababab", "ababab", &config);
        assert!(skels.len() <= 4); // cap + the all-literal fallback
    }

    #[test]
    fn phone_number_skeleton_contains_digit_placeholders() {
        let config = SynthesisConfig::default();
        let skels = skeletons_for("(780) 433-6545", "+1 780 433 6545", &config);
        assert!(!skels.is_empty());
        // The greedy skeleton should find "780" / "433" / "6545" style blocks.
        let best = skels
            .iter()
            .max_by_key(|s| s.placeholder_count())
            .unwrap();
        assert!(best.placeholder_count() >= 2);
        for s in &skels {
            assert_eq!(s.reconstruct(), "+1 780 433 6545");
        }
    }

    #[test]
    fn segment_accessors() {
        let p = Placeholder {
            target_start: 0,
            target_end: 1,
            text: "a".into(),
            source_positions: vec![0],
        };
        let seg = Segment::Placeholder(p);
        assert!(seg.is_placeholder());
        assert_eq!(seg.text(), "a");
        let lit = Segment::Literal("xy".into());
        assert!(!lit.is_placeholder());
        assert_eq!(lit.text(), "xy");
    }
}
