//! Candidate unit extraction (Section 4.1.4 of the paper).
//!
//! Given a placeholder (its text, and where that text occurs in the source),
//! this module produces every transformation unit that emits the placeholder
//! text from the source. Because the expected output *and* its source
//! occurrences are known, the parameter search is direct rather than a blind
//! sweep over the whole parameter space — this is the paper's key argument
//! for why the per-placeholder parameter space is effectively O(1).

use crate::config::SynthesisConfig;
use crate::placeholder::Placeholder;
use tjoin_text::FxHashSet;
use tjoin_units::{CharStr, Unit, UnitId, UnitKind, UnitPool};

/// Candidate units that replace `placeholder`, resolved to owned values.
///
/// Compatibility wrapper over [`candidate_unit_ids`] (the generation phase
/// works on interned ids); mainly useful in tests and baselines.
pub fn candidate_units(
    placeholder: &Placeholder,
    source: &CharStr,
    config: &SynthesisConfig,
) -> Vec<Unit> {
    let mut pool = UnitPool::new();
    candidate_unit_ids(placeholder, source, config, &mut pool)
        .into_iter()
        .map(|id| pool.get(id).clone())
        .collect()
}

/// Candidate units that replace `placeholder`, i.e. that produce exactly the
/// placeholder text when applied to `source`, interned into `pool`.
///
/// The unit kinds considered are controlled by the configuration; a
/// `Literal` of the placeholder text is always included (Section 4.1.4,
/// point 5: "each placeholder may also be replaced with a literal ... useful
/// in cases where a constant in the target text occurs in the source by
/// chance"). The list is deduplicated (by interned id — no unit cloning or
/// re-hashing) and capped at `config.max_units_per_placeholder`.
pub fn candidate_unit_ids(
    placeholder: &Placeholder,
    source: &CharStr,
    config: &SynthesisConfig,
    pool: &mut UnitPool,
) -> Vec<UnitId> {
    let text = placeholder.text.as_str();
    let len = placeholder.char_len();
    let mut seen: FxHashSet<UnitId> = FxHashSet::default();
    let mut out: Vec<UnitId> = Vec::new();
    let mut push = |u: Unit, pool: &mut UnitPool, out: &mut Vec<UnitId>| {
        if out.len() < config.max_units_per_placeholder {
            let id = pool.intern(u);
            if seen.insert(id) {
                out.push(id);
            }
        }
    };

    // (1) Substr(s, e) for each source occurrence.
    if config.kind_enabled(UnitKind::Substr) {
        for &s in &placeholder.source_positions {
            push(Unit::substr(s, s + len), pool, &mut out);
        }
    }

    // (2) Split(c, i): c is the character immediately before or after an
    // occurrence, c must not occur inside the placeholder text, and i is the
    // index of a split piece equal to the text.
    if config.kind_enabled(UnitKind::Split) {
        let mut delims: FxHashSet<char> = FxHashSet::default();
        for &s in &placeholder.source_positions {
            if s > 0 {
                if let Some(c) = source.char_at(s - 1) {
                    delims.insert(c);
                }
            }
            if let Some(c) = source.char_at(s + len) {
                delims.insert(c);
            }
        }
        for c in delims {
            if text.contains(c) {
                continue;
            }
            for (i, range) in source.split_ranges(c).into_iter().enumerate() {
                if source.slice_range(range) == Some(text) {
                    push(Unit::split(c, i), pool, &mut out);
                }
            }
        }
    }

    // (3) SplitSubstr(c, i, s, e): c is a source character not occurring in
    // the placeholder text; the occurrence then lies inside a single piece of
    // the split, at a known offset. Candidate delimiters are evidence-guided:
    // characters adjacent to an occurrence of the placeholder plus any
    // separator character of the source (the paper allows *any* source
    // character; restricting to evidence-adjacent and separator characters
    // keeps the per-placeholder candidate pool O(1) without losing the
    // delimiters that generalize — see DESIGN.md).
    if config.kind_enabled(UnitKind::SplitSubstr) {
        let mut distinct_chars: FxHashSet<char> = source
            .chars()
            .filter(|c| tjoin_text::is_separator_char(*c))
            .collect();
        for &s in &placeholder.source_positions {
            if s > 0 {
                if let Some(c) = source.char_at(s - 1) {
                    distinct_chars.insert(c);
                }
            }
            if let Some(c) = source.char_at(s + len) {
                distinct_chars.insert(c);
            }
        }
        for &c in distinct_chars.iter().filter(|c| !text.contains(**c)) {
            let ranges = source.split_ranges(c);
            for &occ in &placeholder.source_positions {
                if let Some((i, piece)) = ranges
                    .iter()
                    .enumerate()
                    .find(|(_, r)| r.start <= occ && occ + len <= r.end)
                {
                    let offset = occ - piece.start;
                    push(Unit::split_substr(c, i, offset, offset + len), pool, &mut out);
                }
            }
        }
    }

    // (4) TwoCharSplitSubstr(c1, c2, i, s, e): as (3) but with a pair of
    // delimiters. Delimiter pairs are drawn from the separator characters of
    // the source to keep the candidate count small (the paper excludes this
    // unit from its experiments for runtime reasons; it is available here but
    // disabled in the default configuration).
    if config.kind_enabled(UnitKind::TwoCharSplitSubstr) {
        let separators: Vec<char> = {
            let distinct: FxHashSet<char> = source
                .chars()
                .filter(|c| tjoin_text::is_separator_char(*c) && !text.contains(*c))
                .collect();
            let mut v: Vec<char> = distinct.into_iter().collect();
            v.sort_unstable();
            v
        };
        for (a_idx, &c1) in separators.iter().enumerate() {
            for &c2 in separators.iter().skip(a_idx + 1) {
                let ranges = source.split_ranges2(c1, c2);
                for &occ in &placeholder.source_positions {
                    if let Some((i, piece)) = ranges
                        .iter()
                        .enumerate()
                        .find(|(_, r)| r.start <= occ && occ + len <= r.end)
                    {
                        let offset = occ - piece.start;
                        push(
                            Unit::two_char_split_substr(c1, c2, i, offset, offset + len),
                            pool,
                            &mut out,
                        );
                    }
                }
            }
        }
    }

    // (5) Literal(text).
    push(Unit::literal(text), pool, &mut out);

    debug_assert!(
        out.iter().all(|&id| pool
            .get(id)
            .output_on(source)
            .map(|o| o == placeholder.text)
            .unwrap_or(false)),
        "every candidate unit must emit the placeholder text"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placeholder::maximal_placeholders;

    fn placeholder_for(source: &str, target: &str, text: &str) -> (CharStr, Placeholder) {
        let src = CharStr::new(source);
        let p = maximal_placeholders(&src, target)
            .into_iter()
            .find(|p| p.text == text)
            .unwrap_or_else(|| panic!("placeholder {text:?} not found"));
        (src, p)
    }

    #[test]
    fn all_candidates_emit_the_placeholder_text() {
        let config = SynthesisConfig::default();
        let (src, p) = placeholder_for("bowling, michael", "michael.bowling@x.ca", "michael");
        let units = candidate_units(&p, &src, &config);
        assert!(!units.is_empty());
        for u in &units {
            assert_eq!(u.apply(src.as_str()).as_deref(), Some("michael"), "unit {u}");
        }
    }

    #[test]
    fn substr_and_literal_always_present() {
        let config = SynthesisConfig::default();
        let (src, p) = placeholder_for("abcdef", "cde", "cde");
        let units = candidate_units(&p, &src, &config);
        assert!(units.contains(&Unit::substr(2, 5)));
        assert!(units.contains(&Unit::literal("cde")));
    }

    #[test]
    fn split_candidate_found_for_comma_separated_name() {
        let config = SynthesisConfig::default();
        // "gosgnach" is the piece before the comma.
        let (src, p) = placeholder_for("gosgnach, simon", "s gosgnach", "gosgnach");
        let units = candidate_units(&p, &src, &config);
        assert!(
            units.iter().any(|u| matches!(u, Unit::Split { delim: ',', index: 0 })),
            "expected Split(',', 0) among {units:?}"
        );
    }

    #[test]
    fn split_substr_candidate_extracts_initial() {
        let config = SynthesisConfig::default();
        // "s" = first char of the second space-separated piece.
        let (src, p) = placeholder_for("gosgnach, simon", "s gosgnach", "s");
        let units = candidate_units(&p, &src, &config);
        assert!(
            units
                .iter()
                .any(|u| matches!(u, Unit::SplitSubstr { delim: ' ', index: 1, start: 0, end: 1 })),
            "expected SplitSubstr(' ',1,0,1) among {units:?}"
        );
    }

    #[test]
    fn delimiters_inside_placeholder_text_rejected_for_split() {
        let config = SynthesisConfig::default();
        // Placeholder "a,b" contains the comma, so Split(',', _) may not be
        // produced for it.
        let src = CharStr::new("xx a,b yy");
        let p = Placeholder {
            target_start: 0,
            target_end: 3,
            text: "a,b".into(),
            source_positions: vec![3],
        };
        let units = candidate_units(&p, &src, &config);
        assert!(units
            .iter()
            .all(|u| !matches!(u, Unit::Split { delim: ',', .. })));
        // But a space-based SplitSubstr is fine.
        assert!(units
            .iter()
            .any(|u| matches!(u, Unit::SplitSubstr { delim: ' ', .. })));
    }

    #[test]
    fn two_char_split_substr_generated_when_enabled() {
        let mut config = SynthesisConfig::default();
        config.unit_kinds.push(UnitKind::TwoCharSplitSubstr);
        // "780" sits between '(' and ')'.
        let (src, p) = placeholder_for("(780) 433-6545", "780 433 6545", "780");
        let units = candidate_units(&p, &src, &config);
        assert!(
            units
                .iter()
                .any(|u| matches!(u, Unit::TwoCharSplitSubstr { .. })),
            "expected a TwoCharSplitSubstr among {units:?}"
        );
        for u in &units {
            assert_eq!(u.apply(src.as_str()).as_deref(), Some("780"), "unit {u}");
        }
    }

    #[test]
    fn candidate_cap_respected() {
        let config = SynthesisConfig {
            max_units_per_placeholder: 3,
            ..SynthesisConfig::default()
        };
        let (src, p) = placeholder_for("aaaaaaaaaa", "aaa", "aaa");
        let units = candidate_units(&p, &src, &config);
        assert!(units.len() <= 3);
    }

    #[test]
    fn substr_disabled_when_not_in_kind_list() {
        let config = SynthesisConfig {
            unit_kinds: vec![UnitKind::Split],
            ..SynthesisConfig::default()
        };
        let (src, p) = placeholder_for("abc,def", "def", "def");
        let units = candidate_units(&p, &src, &config);
        assert!(units.iter().all(|u| u.kind() != UnitKind::Substr));
        assert!(units.iter().any(|u| u.kind() == UnitKind::Split));
        // Literal is always allowed.
        assert!(units.iter().any(|u| u.kind() == UnitKind::Literal));
    }
}
