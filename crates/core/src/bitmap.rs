//! Fixed-size row bitmaps.
//!
//! The coverage phase reports, per transformation, which input rows it
//! covers; selection repeatedly asks "how many of these rows are not yet
//! covered?". Both are word-wise bit operations on fixed-size bitmaps
//! (AND-NOT + popcount) instead of sorted-`Vec<u32>` set algebra, which is
//! what makes the greedy set cover cheap at large candidate counts.

/// A fixed-capacity bitset over row indices `0..rows`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowBitmap {
    words: Vec<u64>,
    rows: usize,
}

impl RowBitmap {
    /// An empty bitmap with capacity for `rows` rows.
    pub fn new(rows: usize) -> Self {
        Self {
            words: vec![0; rows.div_ceil(64)],
            rows,
        }
    }

    /// Builds a bitmap from row indices (indices `>= rows` panic).
    pub fn from_rows(rows: usize, indices: &[u32]) -> Self {
        let mut bitmap = Self::new(rows);
        for &i in indices {
            bitmap.insert(i as usize);
        }
        bitmap
    }

    /// Densifies a *strictly sorted* sparse row list (the coverage phase's
    /// per-chunk collection format) into a bitmap.
    ///
    /// This is the sparse→dense bridge of the selection pipeline: coverage
    /// accumulates sorted `Vec<u32>` row lists (cheap for the mostly-empty
    /// candidate majority) and only the candidates surviving the
    /// non-empty/support filter are densified for the set-algebra selection
    /// phase. The bit-setting is the same as [`Self::from_rows`]; this
    /// entry point exists to state — and debug-assert — the sparse format's
    /// strict-sortedness contract at the boundary.
    pub fn from_sorted_rows(rows: usize, indices: &[u32]) -> Self {
        debug_assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "sparse row list must be strictly sorted"
        );
        Self::from_rows(rows, indices)
    }

    /// The row capacity.
    pub fn capacity(&self) -> usize {
        self.rows
    }

    /// Sets the bit for `row`.
    #[inline]
    pub fn insert(&mut self, row: usize) {
        debug_assert!(row < self.rows, "row {row} out of range {}", self.rows);
        self.words[row / 64] |= 1u64 << (row % 64);
    }

    /// Whether `row`'s bit is set.
    #[inline]
    pub fn contains(&self, row: usize) -> bool {
        self.words
            .get(row / 64)
            .is_some_and(|w| w & (1u64 << (row % 64)) != 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether every bit in `0..capacity()` is set.
    pub fn is_full(&self) -> bool {
        self.count_ones() == self.rows
    }

    /// `|self \ other|`: how many set rows of `self` are NOT set in `other`.
    /// This is the greedy set cover's marginal-gain kernel.
    pub fn and_not_count(&self, other: &RowBitmap) -> usize {
        debug_assert_eq!(self.rows, other.rows, "bitmap capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Sets every bit that is set in `other`.
    pub fn union_with(&mut self, other: &RowBitmap) {
        debug_assert_eq!(self.rows, other.rows, "bitmap capacity mismatch");
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Clears all bits, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterates over set rows in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros();
                w &= w - 1;
                // Invariant is local (audited): bitmaps are built over u32
                // row ids (`from_sorted_rows`), so the word index times 64
                // stays inside the u32 space the rows came from.
                Some(wi as u32 * 64 + bit)
            })
        })
    }

    /// The set rows as a sorted vector (the legacy `Vec<u32>` shape).
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter_ones().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count() {
        let mut b = RowBitmap::new(130);
        assert!(b.is_empty());
        for row in [0usize, 1, 63, 64, 65, 129] {
            b.insert(row);
            assert!(b.contains(row));
        }
        assert!(!b.contains(2));
        assert_eq!(b.count_ones(), 6);
        assert!(!b.is_empty());
        assert!(!b.is_full());
        assert_eq!(b.to_vec(), vec![0, 1, 63, 64, 65, 129]);
    }

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![3u32, 17, 64, 99];
        let b = RowBitmap::from_rows(100, &rows);
        assert_eq!(b.to_vec(), rows);
        assert_eq!(b.capacity(), 100);
    }

    #[test]
    fn and_not_count_is_set_difference_size() {
        let a = RowBitmap::from_rows(200, &[1, 2, 3, 100, 150]);
        let b = RowBitmap::from_rows(200, &[2, 100]);
        assert_eq!(a.and_not_count(&b), 3);
        assert_eq!(b.and_not_count(&a), 0);
    }

    #[test]
    fn union_accumulates() {
        let mut acc = RowBitmap::new(70);
        acc.union_with(&RowBitmap::from_rows(70, &[0, 69]));
        acc.union_with(&RowBitmap::from_rows(70, &[1, 69]));
        assert_eq!(acc.to_vec(), vec![0, 1, 69]);
        acc.clear();
        assert!(acc.is_empty());
        assert_eq!(acc.capacity(), 70);
    }

    #[test]
    fn full_detection() {
        let mut b = RowBitmap::new(65);
        for i in 0..65 {
            b.insert(i);
        }
        assert!(b.is_full());
        assert_eq!(b.count_ones(), 65);
    }

    #[test]
    fn zero_capacity() {
        let b = RowBitmap::new(0);
        assert!(b.is_empty());
        assert!(b.is_full());
        assert_eq!(b.to_vec(), Vec::<u32>::new());
    }

    #[test]
    fn from_sorted_rows_matches_from_rows_at_word_boundaries() {
        // Capacities straddling the 64-bit word boundary, including the
        // empty bitmap and non-multiple-of-64 tails.
        for rows in [0usize, 1, 63, 64, 65, 127, 128, 129, 200] {
            let indices: Vec<u32> = (0..rows as u32).filter(|i| i % 3 == 0).collect();
            let sparse = RowBitmap::from_sorted_rows(rows, &indices);
            let dense = RowBitmap::from_rows(rows, &indices);
            assert_eq!(sparse, dense, "rows={rows}");
            assert_eq!(sparse.to_vec(), indices, "rows={rows}");
            assert_eq!(sparse.capacity(), rows);
        }
    }

    #[test]
    fn from_sorted_rows_boundary_bits() {
        // The exact bits around a word seam land in the right words.
        let b = RowBitmap::from_sorted_rows(66, &[0, 63, 64, 65]);
        for row in [0usize, 63, 64, 65] {
            assert!(b.contains(row), "row {row}");
        }
        assert!(!b.contains(1));
        assert!(!b.contains(62));
        assert_eq!(b.count_ones(), 4);

        // Empty list, non-empty capacity.
        let empty = RowBitmap::from_sorted_rows(65, &[]);
        assert!(empty.is_empty());
        assert_eq!(empty.capacity(), 65);

        // Zero-capacity round trip.
        let zero = RowBitmap::from_sorted_rows(0, &[]);
        assert!(zero.is_full());
    }

    #[test]
    fn and_not_count_at_word_boundaries() {
        // Differences entirely within the last (partial) word of a
        // non-multiple-of-64 bitmap, and straddling the 63/64 seam.
        for rows in [63usize, 64, 65, 130] {
            let last = rows as u32 - 1;
            let a = RowBitmap::from_rows(rows, &[0, last]);
            let b = RowBitmap::from_rows(rows, &[0]);
            assert_eq!(a.and_not_count(&b), 1, "rows={rows}");
            assert_eq!(b.and_not_count(&a), 0, "rows={rows}");
            assert_eq!(a.and_not_count(&RowBitmap::new(rows)), 2, "rows={rows}");
        }
        let a = RowBitmap::from_rows(65, &[63, 64]);
        let b = RowBitmap::from_rows(65, &[63]);
        assert_eq!(a.and_not_count(&b), 1);
        let zero_a = RowBitmap::new(0);
        let zero_b = RowBitmap::new(0);
        assert_eq!(zero_a.and_not_count(&zero_b), 0);
    }

    #[test]
    fn union_with_at_word_boundaries() {
        for rows in [63usize, 64, 65] {
            let last = rows as u32 - 1;
            let mut acc = RowBitmap::from_rows(rows, &[0]);
            acc.union_with(&RowBitmap::from_rows(rows, &[last]));
            assert_eq!(acc.to_vec(), vec![0, last], "rows={rows}");
            assert!(!acc.is_full());
        }
        // Union across the seam fills both sides of the word boundary.
        let mut acc = RowBitmap::from_rows(65, &[63]);
        acc.union_with(&RowBitmap::from_rows(65, &[64]));
        assert_eq!(acc.to_vec(), vec![63, 64]);
        // Zero-capacity union is a no-op.
        let mut zero = RowBitmap::new(0);
        zero.union_with(&RowBitmap::new(0));
        assert!(zero.is_empty());
    }
}
