//! Solution assembly: top-k selection and greedy minimal set cover
//! (Section 4.1.6 of the paper).
//!
//! Finding a minimal covering set of transformations is the classic set-cover
//! problem (NP-complete); the greedy algorithm used here repeatedly selects
//! the transformation covering the most not-yet-covered rows and has the
//! standard `H(n) ≤ ln(n) + 1` approximation guarantee the paper cites.
//!
//! Coverage is carried as [`RowBitmap`]s end to end: marginal gain is a
//! word-wise AND-NOT + popcount instead of a sorted-`Vec<u32>` difference,
//! and [`lazy_greedy_cover`] consumes its candidates by value, so selected
//! transformations are moved — not cloned — into the result set.
//!
//! # Lazy-greedy selection (CELF)
//!
//! The textbook greedy loop rescans every candidate per selection —
//! O(selected × candidates × rows/64) — which becomes the scaling wall once
//! candidate pools reach GXJoin scale (10^5–10^6). [`lazy_greedy_cover`]
//! instead keeps every candidate's *last known* marginal gain in a max-heap
//! and, per round, re-evaluates only entries popped from the top until the
//! top entry's gain is confirmed fresh for the current round.
//!
//! This is exact, not approximate, because marginal gain is **submodular**:
//! the covered set only grows between rounds, so a candidate's true gain can
//! only shrink, and every cached (stale) heap entry is an *upper bound* on
//! its candidate's true gain. When the popped top entry is fresh, its key is
//! ≥ every cached key ≥ every true key — it is the exact argmax the rescan
//! loop would have found, stale entries elsewhere in the heap
//! notwithstanding. Tie-breaking (equal gain → fewer units → lexicographic →
//! first in input order) is resolved in two regimes:
//!
//! * **Small tie groups** (the overwhelmingly common case): the heap orders
//!   by (gain, unit count, input index) and the lexicographic leg is
//!   resolved at pop time over the fresh (gain, len) tie group only, with
//!   rendered strings memoized per candidate — candidates that never tie at
//!   the top never pay a string render.
//! * **Giant tie groups** (the all-ties worst case, which previously
//!   re-popped, refreshed, and re-compared the whole surviving group every
//!   round — quadratic pops): the first time a tie group reaches
//!   `INTERN_TIE_THRESHOLD`, every remaining candidate's rendering is
//!   *interned once* into a dense rank id (sort the strings, equal strings
//!   share a rank, so rank order *is* lexicographic order) and the heap is
//!   rebuilt to order by (gain, unit count, string rank, input index). The
//!   full tie-break chain now lives in the key, gain is its only mutable
//!   component, and every later round is a single pop — the worst case is
//!   bounded by one O(n log n) intern.
//!
//! The selected set is bit-identical — same transformations, same order,
//! same covered rows — to the retained quadratic oracle in
//! [`reference::greedy_cover_reference`] in both regimes; the differential
//! suite in `tests/proptest_selection.rs` and the threshold-crossing
//! all-ties regression pin this.

use crate::bitmap::RowBitmap;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tjoin_units::{CoveredTransformation, Transformation, TransformationSet};

/// A transformation together with the rows it covers (the coverage phase's
/// per-transformation output, before selection).
#[derive(Debug, Clone)]
pub struct ScoredTransformation {
    /// The transformation.
    pub transformation: Transformation,
    /// The rows it covers.
    pub covered: RowBitmap,
}

impl ScoredTransformation {
    fn coverage(&self) -> usize {
        self.covered.count_ones()
    }

    fn to_covered(&self) -> CoveredTransformation {
        CoveredTransformation {
            transformation: self.transformation.clone(),
            covered_rows: self.covered.to_vec(),
        }
    }
}

/// The minimum covered-row count implied by a `min_support` fraction over
/// `total_rows` (never below 1: zero-coverage candidates are always dropped).
///
/// Shared by [`filter_candidates`] and the engine's sparse pre-densification
/// filter so both apply the identical threshold.
pub fn min_rows_for_support(total_rows: usize, min_support: f64) -> usize {
    ((min_support * total_rows as f64).ceil() as usize).max(1)
}

/// Drops transformations whose coverage is below `min_support` (a fraction of
/// `total_rows`) or that consist solely of literals while covering a single
/// row (such candidates are target values copied verbatim and never
/// generalize).
pub fn filter_candidates(
    candidates: Vec<ScoredTransformation>,
    total_rows: usize,
    min_support: f64,
) -> Vec<ScoredTransformation> {
    let min_rows = min_rows_for_support(total_rows, min_support);
    candidates
        .into_iter()
        .filter(|c| {
            let coverage = c.coverage();
            coverage >= min_rows && !(c.transformation.is_all_literal() && coverage <= 1)
        })
        .collect()
}

/// The `k` transformations with the largest coverage, ties broken toward
/// fewer units and then lexicographically (for determinism).
pub fn top_k(candidates: &[ScoredTransformation], k: usize) -> Vec<CoveredTransformation> {
    let mut sorted: Vec<&ScoredTransformation> = candidates.iter().collect();
    sorted.sort_by(|a, b| {
        b.coverage()
            .cmp(&a.coverage())
            .then_with(|| a.transformation.len().cmp(&b.transformation.len()))
            .then_with(|| {
                a.transformation
                    .to_string()
                    .cmp(&b.transformation.to_string())
            })
    });
    sorted
        .into_iter()
        .take(k)
        .map(ScoredTransformation::to_covered)
        .collect()
}

/// A cached marginal gain in the lazy-greedy max-heap.
///
/// Ordered by gain (descending), then unit count (ascending), then interned
/// string rank (ascending — all zero, and so inert, until a giant tie group
/// triggers the intern; afterwards ranks order exactly as the rendered
/// strings do, equal strings sharing a rank), then input index (ascending).
/// `epoch` records the selection round the gain was computed in; it
/// deliberately takes no part in the ordering — indices are unique per
/// candidate and each candidate has at most one live entry, so (gain, len,
/// rank, idx) is already a total order over the heap contents.
struct GainEntry {
    gain: usize,
    len: u32,
    rank: u32,
    idx: u32,
    epoch: u32,
}

impl Ord for GainEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .cmp(&other.gain)
            .then_with(|| other.len.cmp(&self.len))
            .then_with(|| other.rank.cmp(&self.rank))
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

impl PartialOrd for GainEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for GainEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for GainEntry {}

/// Tie-group size above which [`lazy_greedy_cover`] stops resolving the
/// lexicographic leg at pop time and instead interns every remaining
/// candidate's rendered string into a dense rank (one O(n log n) pass),
/// folding the whole tie-break chain into the heap key. Below it, pop-time
/// resolution with per-candidate memoized renders is cheaper (typical tie
/// groups are tiny and most candidates never render at all).
const INTERN_TIE_THRESHOLD: usize = 256;

/// Greedy minimal set cover via a lazy-greedy (CELF) priority queue:
/// repeatedly selects the transformation covering the most not-yet-covered
/// rows until no candidate adds coverage, re-evaluating only the candidates
/// that surface at the top of a cached-gain max-heap.
///
/// Ties are broken toward shorter transformations (fewer units — the paper's
/// second quality measure), then lexicographically, then toward the earlier
/// candidate in input order — exactly the rescan loop's order, so the result
/// is bit-identical to [`reference::greedy_cover_reference`] (see the module
/// docs for why stale heap entries cannot change the selection, and for the
/// two tie-resolution regimes around [`INTERN_TIE_THRESHOLD`]). The
/// returned set lists each selected transformation with *all* rows it covers
/// (not only the marginal ones), ordered by selection. Candidates are
/// consumed: the winners' transformations move into the result set.
pub fn lazy_greedy_cover(
    candidates: Vec<ScoredTransformation>,
    total_rows: usize,
) -> TransformationSet {
    lazy_greedy_cover_budgeted(candidates, total_rows, None)
        .expect("unbudgeted selection cannot abort")
}

/// [`lazy_greedy_cover`] under a cooperative
/// [`BudgetToken`](tjoin_text::BudgetToken): the token is checked at the
/// top of every heap pop (the selection loop's natural boundary) and the
/// whole selection returns `Err` — with no partial set — once it trips.
/// With `budget = None` this is exactly [`lazy_greedy_cover`], bit for bit,
/// at zero cost.
pub fn lazy_greedy_cover_budgeted(
    candidates: Vec<ScoredTransformation>,
    total_rows: usize,
    budget: Option<&tjoin_text::BudgetToken>,
) -> Result<TransformationSet, tjoin_text::BudgetExceeded> {
    // Seed the heap with every candidate's full coverage: against the empty
    // covered set the marginal gain IS the coverage, so every entry starts
    // fresh for round 0. Ranks start at zero (key order (gain, len, idx))
    // until — and unless — a giant tie group triggers the intern.
    let mut heap: BinaryHeap<GainEntry> = candidates
        .iter()
        .enumerate()
        .map(|(idx, c)| GainEntry {
            gain: c.covered.count_ones(),
            len: u32::try_from(c.transformation.len()).expect("transformation length overflow"),
            rank: 0,
            idx: u32::try_from(idx).expect("candidate count exceeds the u32 index space"),
            epoch: 0,
        })
        .collect();

    let mut slots: Vec<Option<ScoredTransformation>> =
        candidates.into_iter().map(Some).collect();
    // Lexicographic tie keys for the pop-time path, rendered lazily: only
    // candidates that reach a genuine fresh (gain, len) tie at the heap top
    // ever pay the render.
    let mut strings: Vec<Option<Box<str>>> = vec![None; slots.len()];
    fn fill(strings: &mut [Option<Box<str>>], slots: &[Option<ScoredTransformation>], idx: usize) {
        if strings[idx].is_none() {
            let t = &slots[idx].as_ref().expect("unselected candidate").transformation;
            strings[idx] = Some(t.to_string().into_boxed_str());
        }
    }

    let mut covered = RowBitmap::new(total_rows);
    let mut selected: Vec<CoveredTransformation> = Vec::new();
    let mut epoch: u32 = 0;
    let mut held: Vec<GainEntry> = Vec::new();
    let mut interned = false;

    while let Some(entry) = heap.pop() {
        if let Some(token) = budget {
            token.check()?;
        }
        // Cached gains are upper bounds (submodularity), so a zero at the
        // top means every remaining candidate's true gain is zero.
        if entry.gain == 0 {
            break;
        }
        if entry.epoch != epoch {
            // Stale: refresh against the current covered set and reinsert.
            let gain = slots[entry.idx as usize]
                .as_ref()
                .expect("unselected candidate present")
                .covered
                .and_not_count(&covered);
            heap.push(GainEntry { gain, epoch, ..entry });
            continue;
        }
        // Fresh top: the exact argmax under the heap order. Once interned,
        // that order is the full tie-break chain and we select outright.
        let mut best = entry;
        if !interned {
            // Pre-intern, the order is only (gain, len, idx): entries still
            // tied on (gain, len) were ordered behind `best` by input index
            // alone, but lexicographic order ranks before index in the
            // tie-break chain — pop the tie group, refresh its stale
            // members, and pick the true winner by (string, idx). A group
            // reaching [`INTERN_TIE_THRESHOLD`] instead triggers the
            // one-time intern: every remaining candidate's rendering
            // becomes a dense rank in the heap key, the heap is rebuilt,
            // and every later round is a single pop (the all-ties worst
            // case that made per-round group popping quadratic).
            held.clear();
            let mut overflow = false;
            while let Some(top) = heap.peek() {
                if top.gain != best.gain || top.len != best.len {
                    break;
                }
                // `held` plus `best` plus the tying top about to be popped:
                // the confirmed group size has reached the threshold.
                if held.len() + 2 >= INTERN_TIE_THRESHOLD {
                    overflow = true;
                    break;
                }
                let next = heap.pop().expect("peeked entry present");
                let fi = next.idx as usize;
                let next = if next.epoch != epoch {
                    let gain = slots[fi]
                        .as_ref()
                        .expect("unselected candidate present")
                        .covered
                        .and_not_count(&covered);
                    if gain != next.gain {
                        // No longer tied (gain can only have dropped).
                        heap.push(GainEntry { gain, epoch, ..next });
                        continue;
                    }
                    GainEntry { epoch, ..next }
                } else {
                    next
                };
                fill(&mut strings, &slots, fi);
                fill(&mut strings, &slots, best.idx as usize);
                let wins = match strings[fi].cmp(&strings[best.idx as usize]) {
                    Ordering::Less => true,
                    Ordering::Greater => false,
                    Ordering::Equal => next.idx < best.idx,
                };
                if wins {
                    held.push(std::mem::replace(&mut best, next));
                } else {
                    held.push(next);
                }
            }
            if overflow {
                // Push the group back (its members are fresh for this
                // round), rank every remaining candidate, rebuild the heap
                // under (gain, len, rank, idx), and replay the round.
                heap.extend(held.drain(..));
                heap.push(best);
                let rank = intern_string_ranks(&slots);
                let mut entries = std::mem::take(&mut heap).into_vec();
                for e in &mut entries {
                    e.rank = rank[e.idx as usize];
                }
                heap = entries.into();
                interned = true;
                continue;
            }
            // The tied losers are fresh for this round; they go straight
            // back.
            heap.extend(held.drain(..));
        }

        let chosen = slots[best.idx as usize].take().expect("candidate selected twice");
        covered.union_with(&chosen.covered);
        let done = covered.is_full();
        selected.push(CoveredTransformation {
            covered_rows: chosen.covered.to_vec(),
            transformation: chosen.transformation,
        });
        if done {
            break;
        }
        epoch += 1;
    }

    Ok(TransformationSet {
        transformations: selected,
        total_pairs: total_rows,
    })
}

/// Renders every unselected candidate's transformation once and interns the
/// strings into dense lexicographic ranks: `rank[i] < rank[j]` iff
/// candidate `i`'s rendering sorts before `j`'s, with equal renderings
/// sharing a rank (so the heap's final `idx` leg decides between true
/// duplicates, exactly as the rescan oracle's first-in-input-order rule
/// does). Already-selected slots get an empty rendering; they have no live
/// heap entries, so their ranks are never consulted.
fn intern_string_ranks(slots: &[Option<ScoredTransformation>]) -> Vec<u32> {
    let rendered: Vec<String> = slots
        .iter()
        .map(|s| s.as_ref().map(|c| c.transformation.to_string()).unwrap_or_default())
        .collect();
    let len = u32::try_from(rendered.len()).expect("candidate count exceeds the u32 index space");
    let mut order: Vec<u32> = (0..len).collect();
    order.sort_unstable_by(|&a, &b| rendered[a as usize].cmp(&rendered[b as usize]));
    let mut rank = vec![0u32; rendered.len()];
    let mut current = 0u32;
    for (pos, &idx) in order.iter().enumerate() {
        if pos > 0 && rendered[idx as usize] != rendered[order[pos - 1] as usize] {
            current += 1;
        }
        rank[idx as usize] = current;
    }
    rank
}

pub mod reference {
    //! The quadratic full-rescan greedy loop the lazy-greedy heap replaced:
    //! every selection round re-evaluates the marginal gain of *every*
    //! remaining candidate. Retained verbatim as the differential-testing
    //! oracle (see `tests/proptest_selection.rs`) and as the baseline leg of
    //! the `selection` benchmark.

    use super::ScoredTransformation;
    use crate::bitmap::RowBitmap;
    use tjoin_units::{CoveredTransformation, TransformationSet};

    /// Greedy minimal set cover by full rescan — O(selected × candidates ×
    /// rows/64). Same contract and tie-breaking as
    /// [`super::lazy_greedy_cover`], which must match it bit for bit.
    pub fn greedy_cover_reference(
        candidates: Vec<ScoredTransformation>,
        total_rows: usize,
    ) -> TransformationSet {
        let mut covered = RowBitmap::new(total_rows);
        let mut selected: Vec<CoveredTransformation> = Vec::new();
        let mut remaining = candidates;

        loop {
            let mut best: Option<(usize, usize)> = None; // (marginal gain, index)
            for (idx, cand) in remaining.iter().enumerate() {
                let gain = cand.covered.and_not_count(&covered);
                if gain == 0 {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((best_gain, best_idx)) => {
                        let current_best = &remaining[best_idx];
                        gain > best_gain
                            || (gain == best_gain
                                && (cand.transformation.len()
                                    < current_best.transformation.len()
                                    || (cand.transformation.len()
                                        == current_best.transformation.len()
                                        && cand.transformation.to_string()
                                            < current_best.transformation.to_string())))
                    }
                };
                if better {
                    best = Some((gain, idx));
                }
            }
            let Some((_, idx)) = best else { break };
            let chosen = remaining.remove(idx);
            covered.union_with(&chosen.covered);
            let done = covered.is_full();
            selected.push(CoveredTransformation {
                covered_rows: chosen.covered.to_vec(),
                transformation: chosen.transformation,
            });
            if done {
                break;
            }
        }

        TransformationSet {
            transformations: selected,
            total_pairs: total_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tjoin_units::Unit;

    fn scored(units: Vec<Unit>, rows: Vec<u32>) -> ScoredTransformation {
        ScoredTransformation {
            transformation: Transformation::new(units),
            covered: RowBitmap::from_rows(64, &rows),
        }
    }

    fn scored_sized(units: Vec<Unit>, total: usize, rows: Vec<u32>) -> ScoredTransformation {
        ScoredTransformation {
            transformation: Transformation::new(units),
            covered: RowBitmap::from_rows(total, &rows),
        }
    }

    /// Runs both selection implementations and asserts bit-identity before
    /// returning the lazy-greedy result.
    fn cover_checked(
        candidates: Vec<ScoredTransformation>,
        total_rows: usize,
    ) -> TransformationSet {
        let lazy = lazy_greedy_cover(candidates.clone(), total_rows);
        let oracle = reference::greedy_cover_reference(candidates, total_rows);
        assert_selection_identical(&lazy, &oracle);
        lazy
    }

    fn assert_selection_identical(a: &TransformationSet, b: &TransformationSet) {
        assert_eq!(a.total_pairs, b.total_pairs);
        let render = |s: &TransformationSet| -> Vec<(String, Vec<u32>)> {
            s.transformations
                .iter()
                .map(|t| (t.transformation.to_string(), t.covered_rows.clone()))
                .collect()
        };
        assert_eq!(render(a), render(b), "selected sets diverged");
    }

    #[test]
    fn greedy_selects_by_marginal_gain() {
        // t0 covers {0,1,2}, t1 covers {2,3}, t2 covers {3}: the greedy cover
        // is {t0, t1} (t1 beats t2 on marginal gain after t0 is chosen —
        // both add row 3, but t1 also re-covers row 2; equal marginal gain of
        // 1, so the shorter/lexicographic rule applies).
        let t0 = scored_sized(vec![Unit::substr(0, 1)], 4, vec![0, 1, 2]);
        let t1 = scored_sized(vec![Unit::substr(0, 2)], 4, vec![2, 3]);
        let t2 = scored_sized(vec![Unit::substr(0, 3), Unit::literal("x")], 4, vec![3]);
        let cover = cover_checked(vec![t0, t1, t2], 4);
        assert_eq!(cover.len(), 2);
        assert_eq!(cover.transformations[0].covered_rows, vec![0, 1, 2]);
        assert!((cover.set_coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_stops_when_no_gain() {
        let t0 = scored_sized(vec![Unit::substr(0, 1)], 3, vec![0]);
        let t1 = scored_sized(vec![Unit::substr(1, 2)], 3, vec![0]); // redundant
        let cover = cover_checked(vec![t0, t1], 3);
        assert_eq!(cover.len(), 1);
        assert!((cover.set_coverage() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_empty_candidates() {
        let cover = cover_checked(vec![], 5);
        assert!(cover.is_empty());
        assert_eq!(cover.total_pairs, 5);
        assert_eq!(cover.set_coverage(), 0.0);
    }

    #[test]
    fn greedy_zero_rows() {
        let cover = cover_checked(vec![], 0);
        assert!(cover.is_empty());
        assert_eq!(cover.set_coverage(), 0.0);
    }

    #[test]
    fn greedy_prefers_shorter_transformation_on_ties() {
        let long = scored_sized(vec![Unit::substr(0, 1), Unit::literal("a")], 2, vec![0, 1]);
        let short = scored_sized(vec![Unit::substr(0, 2)], 2, vec![0, 1]);
        let cover = cover_checked(vec![long, short], 2);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover.transformations[0].transformation.len(), 1);
    }

    #[test]
    fn tie_break_order_pinned_on_all_equal_gain_pool() {
        // Adversarial pool for the heap ordering: four disjoint groups of
        // three candidates, every candidate covering exactly 2 rows, so
        // every selection round is an all-equal-gain tie. Within each group
        // the winner is decided purely by (fewer units, lexicographic,
        // input order); across groups the order is decided the same way.
        // Pinning the exact selected sequence means a change to the heap
        // ordering (or to the rank precomputation) cannot silently reorder
        // the output.
        let mut pool = Vec::new();
        for g in 0..4u32 {
            let rows = vec![2 * g, 2 * g + 1];
            // Same coverage, increasing unit counts and varying strings.
            pool.push(scored_sized(
                vec![Unit::substr(g as usize, g as usize + 2), Unit::literal("pad")],
                8,
                rows.clone(),
            ));
            pool.push(scored_sized(vec![Unit::split(',', g as usize)], 8, rows.clone()));
            pool.push(scored_sized(vec![Unit::substr(g as usize, g as usize + 1)], 8, rows));
        }
        // Duplicate one single-unit candidate exactly (same units, same
        // coverage): input order is the only discriminator left.
        pool.push(ScoredTransformation {
            transformation: pool[2].transformation.clone(),
            covered: pool[2].covered.clone(),
        });
        let cover = cover_checked(pool, 8);
        let rendered: Vec<String> = cover
            .transformations
            .iter()
            .map(|t| format!("{}@{:?}", t.transformation, t.covered_rows))
            .collect();
        // One winner per group. Groups all tie on gain=2, so the order
        // follows the tie-break alone: all winners are single-unit, and
        // `<Split…>` sorts lexicographically before `<Substr…>` — pin the
        // concrete sequence.
        let expected: Vec<String> = vec![
            "<Split(',',0)>@[0, 1]".into(),
            "<Split(',',1)>@[2, 3]".into(),
            "<Split(',',2)>@[4, 5]".into(),
            "<Split(',',3)>@[6, 7]".into(),
        ];
        assert_eq!(rendered, expected);
        assert_eq!(cover.len(), 4);
        assert!((cover.set_coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_ties_worst_case_matches_reference() {
        // The pathological pool for pop-time tie resolution: every round is
        // an all-equal-gain, all-equal-length tie over the whole surviving
        // pool — 600 single-unit candidates covering disjoint row pairs
        // (comfortably above INTERN_TIE_THRESHOLD, so the giant group
        // triggers the one-time string-rank intern and the heap rebuild),
        // plus exact duplicates so the final input-order leg fires. After
        // the intern each round is one pop; the selected sequence must
        // still match the rescan oracle bit for bit.
        let groups = 600u32;
        let total = 2 * groups as usize;
        assert!(groups as usize > super::INTERN_TIE_THRESHOLD);
        let mut pool = Vec::new();
        for g in 0..groups {
            pool.push(scored_sized(
                vec![Unit::split(',', (g % 37) as usize)],
                total,
                vec![2 * g, 2 * g + 1],
            ));
        }
        // Exact duplicates of a middle candidate: same units, same rows.
        for _ in 0..3 {
            pool.push(ScoredTransformation {
                transformation: pool[64].transformation.clone(),
                covered: pool[64].covered.clone(),
            });
        }
        let cover = cover_checked(pool, total);
        // One winner per disjoint row group; duplicates add nothing.
        assert_eq!(cover.len(), groups as usize);
        assert!((cover.set_coverage() - 1.0).abs() < 1e-12);
        // Within an equal-gain round the lexicographically smallest
        // rendering wins: the very first selection is the smallest string
        // of the whole pool.
        let first = cover.transformations[0].transformation.to_string();
        assert!(pool_strings_sorted_first(&cover) == first);
        fn pool_strings_sorted_first(cover: &TransformationSet) -> String {
            let mut all: Vec<String> = cover
                .transformations
                .iter()
                .map(|t| t.transformation.to_string())
                .collect();
            all.sort();
            all[0].clone()
        }
    }

    #[test]
    fn tie_groups_straddling_intern_threshold_match_reference() {
        // All-ties pools whose group size lands just below, at, and just
        // above INTERN_TIE_THRESHOLD: both the pop-time and the interned
        // regime (and the handoff between them) must match the oracle.
        for groups in [
            super::INTERN_TIE_THRESHOLD - 2,
            super::INTERN_TIE_THRESHOLD - 1,
            super::INTERN_TIE_THRESHOLD,
            super::INTERN_TIE_THRESHOLD + 1,
        ] {
            let total = 2 * groups;
            let pool: Vec<ScoredTransformation> = (0..groups)
                .map(|g| {
                    scored_sized(
                        vec![Unit::split(',', g % 23)],
                        total,
                        vec![2 * g as u32, 2 * g as u32 + 1],
                    )
                })
                .collect();
            let cover = cover_checked(pool, total);
            assert_eq!(cover.len(), groups, "at group size {groups}");
            assert!((cover.set_coverage() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn interned_ranks_order_like_strings() {
        let pool = vec![
            scored(vec![Unit::substr(0, 2)], vec![0]),
            scored(vec![Unit::split(',', 0)], vec![1]),
            scored(vec![Unit::substr(0, 2)], vec![2]), // duplicate rendering
            scored(vec![Unit::literal("zz")], vec![3]),
        ];
        let strings: Vec<String> = pool.iter().map(|c| c.transformation.to_string()).collect();
        let slots: Vec<Option<ScoredTransformation>> = pool.into_iter().map(Some).collect();
        let ranks = super::intern_string_ranks(&slots);
        for i in 0..slots.len() {
            for j in 0..slots.len() {
                assert_eq!(
                    ranks[i].cmp(&ranks[j]),
                    strings[i].cmp(&strings[j]),
                    "ranks diverge from strings at ({i}, {j})"
                );
            }
        }
        assert_eq!(ranks[0], ranks[2]);
    }

    #[test]
    fn top_k_orders_by_coverage() {
        let a = scored(vec![Unit::substr(0, 1)], vec![0]);
        let b = scored(vec![Unit::substr(0, 2)], vec![0, 1, 2]);
        let c = scored(vec![Unit::substr(0, 3)], vec![0, 1]);
        let top = top_k(&[a, b, c], 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].coverage(), 3);
        assert_eq!(top[1].coverage(), 2);
    }

    #[test]
    fn top_k_handles_small_candidate_lists() {
        let a = scored(vec![Unit::substr(0, 1)], vec![0]);
        assert_eq!(top_k(&[a], 10).len(), 1);
        assert!(top_k(&[], 10).is_empty());
    }

    #[test]
    fn filter_by_support_and_literal_rule() {
        let lit_single = scored_sized(vec![Unit::literal("abc")], 10, vec![0]);
        let lit_double = scored_sized(vec![Unit::literal("abc")], 10, vec![0, 1]);
        let real = scored_sized(vec![Unit::substr(0, 1)], 10, vec![0]);
        let empty = scored_sized(vec![Unit::substr(5, 9)], 10, vec![]);
        let kept = filter_candidates(vec![lit_single, lit_double, real, empty], 10, 0.0);
        // The single-row all-literal and the empty-coverage candidates drop out.
        assert_eq!(kept.len(), 2);
        // A 20% support threshold over 10 rows requires 2 covered rows.
        let kept = filter_candidates(kept, 10, 0.2);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].covered.to_vec(), vec![0, 1]);
    }
}
