//! Solution assembly: top-k selection and greedy minimal set cover
//! (Section 4.1.6 of the paper).
//!
//! Finding a minimal covering set of transformations is the classic set-cover
//! problem (NP-complete); the greedy algorithm used here repeatedly selects
//! the transformation covering the most not-yet-covered rows and has the
//! standard `H(n) ≤ ln(n) + 1` approximation guarantee the paper cites.
//!
//! Coverage is carried as [`RowBitmap`]s end to end: marginal gain is a
//! word-wise AND-NOT + popcount instead of a sorted-`Vec<u32>` difference,
//! and [`greedy_cover`] consumes its candidates by value, so selected
//! transformations are moved — not cloned — into the result set.

use crate::bitmap::RowBitmap;
use tjoin_units::{CoveredTransformation, Transformation, TransformationSet};

/// A transformation together with the rows it covers (the coverage phase's
/// per-transformation output, before selection).
#[derive(Debug, Clone)]
pub struct ScoredTransformation {
    /// The transformation.
    pub transformation: Transformation,
    /// The rows it covers.
    pub covered: RowBitmap,
}

impl ScoredTransformation {
    fn coverage(&self) -> usize {
        self.covered.count_ones()
    }

    fn to_covered(&self) -> CoveredTransformation {
        CoveredTransformation {
            transformation: self.transformation.clone(),
            covered_rows: self.covered.to_vec(),
        }
    }
}

/// Drops transformations whose coverage is below `min_support` (a fraction of
/// `total_rows`) or that consist solely of literals while covering a single
/// row (such candidates are target values copied verbatim and never
/// generalize).
pub fn filter_candidates(
    candidates: Vec<ScoredTransformation>,
    total_rows: usize,
    min_support: f64,
) -> Vec<ScoredTransformation> {
    let min_rows = ((min_support * total_rows as f64).ceil() as usize).max(1);
    candidates
        .into_iter()
        .filter(|c| {
            let coverage = c.coverage();
            coverage >= min_rows && !(c.transformation.is_all_literal() && coverage <= 1)
        })
        .collect()
}

/// The `k` transformations with the largest coverage, ties broken toward
/// fewer units and then lexicographically (for determinism).
pub fn top_k(candidates: &[ScoredTransformation], k: usize) -> Vec<CoveredTransformation> {
    let mut sorted: Vec<&ScoredTransformation> = candidates.iter().collect();
    sorted.sort_by(|a, b| {
        b.coverage()
            .cmp(&a.coverage())
            .then_with(|| a.transformation.len().cmp(&b.transformation.len()))
            .then_with(|| {
                a.transformation
                    .to_string()
                    .cmp(&b.transformation.to_string())
            })
    });
    sorted
        .into_iter()
        .take(k)
        .map(ScoredTransformation::to_covered)
        .collect()
}

/// Greedy minimal set cover: repeatedly selects the transformation covering
/// the most not-yet-covered rows until no candidate adds coverage.
///
/// Ties are broken toward shorter transformations (fewer units — the paper's
/// second quality measure) and then lexicographically for determinism. The
/// returned set lists each selected transformation with *all* rows it covers
/// (not only the marginal ones), ordered by selection. Candidates are
/// consumed: the winners' transformations move into the result set.
pub fn greedy_cover(
    candidates: Vec<ScoredTransformation>,
    total_rows: usize,
) -> TransformationSet {
    let mut covered = RowBitmap::new(total_rows);
    let mut selected: Vec<CoveredTransformation> = Vec::new();
    let mut remaining = candidates;

    loop {
        let mut best: Option<(usize, usize)> = None; // (marginal gain, index)
        for (idx, cand) in remaining.iter().enumerate() {
            let gain = cand.covered.and_not_count(&covered);
            if gain == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((best_gain, best_idx)) => {
                    let current_best = &remaining[best_idx];
                    gain > best_gain
                        || (gain == best_gain
                            && (cand.transformation.len() < current_best.transformation.len()
                                || (cand.transformation.len()
                                    == current_best.transformation.len()
                                    && cand.transformation.to_string()
                                        < current_best.transformation.to_string())))
                }
            };
            if better {
                best = Some((gain, idx));
            }
        }
        let Some((_, idx)) = best else { break };
        let chosen = remaining.remove(idx);
        covered.union_with(&chosen.covered);
        let done = covered.is_full();
        selected.push(CoveredTransformation {
            covered_rows: chosen.covered.to_vec(),
            transformation: chosen.transformation,
        });
        if done {
            break;
        }
    }

    TransformationSet {
        transformations: selected,
        total_pairs: total_rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tjoin_units::Unit;

    fn scored(units: Vec<Unit>, rows: Vec<u32>) -> ScoredTransformation {
        ScoredTransformation {
            transformation: Transformation::new(units),
            covered: RowBitmap::from_rows(64, &rows),
        }
    }

    fn scored_sized(units: Vec<Unit>, total: usize, rows: Vec<u32>) -> ScoredTransformation {
        ScoredTransformation {
            transformation: Transformation::new(units),
            covered: RowBitmap::from_rows(total, &rows),
        }
    }

    #[test]
    fn greedy_selects_by_marginal_gain() {
        // t0 covers {0,1,2}, t1 covers {2,3}, t2 covers {3}: the greedy cover
        // is {t0, t1} (t1 beats t2 on marginal gain after t0 is chosen —
        // both add row 3, but t1 also re-covers row 2; equal marginal gain of
        // 1, so the shorter/lexicographic rule applies).
        let t0 = scored_sized(vec![Unit::substr(0, 1)], 4, vec![0, 1, 2]);
        let t1 = scored_sized(vec![Unit::substr(0, 2)], 4, vec![2, 3]);
        let t2 = scored_sized(vec![Unit::substr(0, 3), Unit::literal("x")], 4, vec![3]);
        let cover = greedy_cover(vec![t0, t1, t2], 4);
        assert_eq!(cover.len(), 2);
        assert_eq!(cover.transformations[0].covered_rows, vec![0, 1, 2]);
        assert!((cover.set_coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_stops_when_no_gain() {
        let t0 = scored_sized(vec![Unit::substr(0, 1)], 3, vec![0]);
        let t1 = scored_sized(vec![Unit::substr(1, 2)], 3, vec![0]); // redundant
        let cover = greedy_cover(vec![t0, t1], 3);
        assert_eq!(cover.len(), 1);
        assert!((cover.set_coverage() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_empty_candidates() {
        let cover = greedy_cover(vec![], 5);
        assert!(cover.is_empty());
        assert_eq!(cover.total_pairs, 5);
        assert_eq!(cover.set_coverage(), 0.0);
    }

    #[test]
    fn greedy_prefers_shorter_transformation_on_ties() {
        let long = scored_sized(vec![Unit::substr(0, 1), Unit::literal("a")], 2, vec![0, 1]);
        let short = scored_sized(vec![Unit::substr(0, 2)], 2, vec![0, 1]);
        let cover = greedy_cover(vec![long, short], 2);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover.transformations[0].transformation.len(), 1);
    }

    #[test]
    fn top_k_orders_by_coverage() {
        let a = scored(vec![Unit::substr(0, 1)], vec![0]);
        let b = scored(vec![Unit::substr(0, 2)], vec![0, 1, 2]);
        let c = scored(vec![Unit::substr(0, 3)], vec![0, 1]);
        let top = top_k(&[a, b, c], 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].coverage(), 3);
        assert_eq!(top[1].coverage(), 2);
    }

    #[test]
    fn top_k_handles_small_candidate_lists() {
        let a = scored(vec![Unit::substr(0, 1)], vec![0]);
        assert_eq!(top_k(&[a], 10).len(), 1);
        assert!(top_k(&[], 10).is_empty());
    }

    #[test]
    fn filter_by_support_and_literal_rule() {
        let lit_single = scored_sized(vec![Unit::literal("abc")], 10, vec![0]);
        let lit_double = scored_sized(vec![Unit::literal("abc")], 10, vec![0, 1]);
        let real = scored_sized(vec![Unit::substr(0, 1)], 10, vec![0]);
        let empty = scored_sized(vec![Unit::substr(5, 9)], 10, vec![]);
        let kept = filter_candidates(vec![lit_single, lit_double, real, empty], 10, 0.0);
        // The single-row all-literal and the empty-coverage candidates drop out.
        assert_eq!(kept.len(), 2);
        // A 20% support threshold over 10 rows requires 2 covered rows.
        let kept = filter_candidates(kept, 10, 0.2);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].covered.to_vec(), vec![0, 1]);
    }
}
