//! Differential test suite for the planned parallel coverage engine: the
//! full parallel matrix — {transformation-axis, row-axis, auto} × {1, 2, 4
//! threads} × cache on/off — must produce covered rows (and therefore
//! downstream selections) bit-identical to the naive oracle retained in
//! `coverage::reference`, and trial/hit statistics exactly matching the
//! redefined shared-memo semantics:
//!
//! * **Serial and row-axis plans**: `trials`/`cache_hits` bit-identical to
//!   the serial reference — row chunks process each row's transformation
//!   sequence in order, so the per-row incremental cache evolves exactly as
//!   in the serial loop, at any thread count.
//! * **Transformation-axis plans**: bit-identical to the reference run
//!   serially over each candidate chunk and summed (the per-chunk
//!   cache-restart semantics of the pre-planner engine).
//! * **Every plan**: `trials + cache_hits == potential_trials`, and
//!   `unit_evaluations <= rows × distinct units` (the shared-memo
//!   acceptance bound; parallel plans meet it with equality over
//!   *referenced* units).
//!
//! The `#[ignore]`d tests at the bottom are the slow large-matrix leg, run
//! in CI via `cargo test -p tjoin-core -- --ignored`.

use proptest::prelude::*;
use std::collections::HashSet;
use tjoin_core::cover::reference::greedy_cover_reference;
use tjoin_core::cover::{lazy_greedy_cover, ScoredTransformation};
use tjoin_core::coverage::plan::{plan_execution, CoverageAxis, ExecutionPlan};
use tjoin_core::coverage::reference::compute_coverage_reference;
use tjoin_core::coverage::{compute_coverage_planned, CoverageOutcome};
use tjoin_core::{PairSet, RowBitmap};
use tjoin_text::NormalizeOptions;
use tjoin_units::{IdTransformation, Transformation, TransformationSet, Unit, UnitPool};

const AXES: [CoverageAxis; 3] =
    [CoverageAxis::Transformations, CoverageAxis::Rows, CoverageAxis::Auto];

fn any_unit() -> impl Strategy<Value = Unit> {
    let pos = || 0usize..10;
    let delim = || prop_oneof![Just(','), Just(' '), Just('-')];
    prop_oneof![
        (pos(), pos()).prop_map(|(a, b)| Unit::substr(a.min(b), a.max(b))),
        (delim(), 0usize..3).prop_map(|(d, i)| Unit::split(d, i)),
        (delim(), 0usize..3, pos(), pos())
            .prop_map(|(d, i, a, b)| Unit::split_substr(d, i, a.min(b), a.max(b))),
        "[a-z, ]{0,3}".prop_map(Unit::literal),
    ]
}

/// Transformations drawn from a small shared unit pool, so the same units
/// recur across candidates — the shape both the cache and the shared memo
/// exploit. Includes empty pools (zero transformations) to cover the
/// degenerate path.
fn pooled_transformations() -> impl Strategy<Value = Vec<Transformation>> {
    (prop::collection::vec(any_unit(), 2..6), 0usize..300).prop_map(|(pool, picks)| {
        let n = pool.len();
        (0..picks % 36)
            .map(|t| {
                Transformation::new(
                    (0..t % 3 + 1).map(|j| pool[(t * 5 + j * 2 + picks) % n].clone()).collect(),
                )
            })
            .collect()
    })
}

/// Row sets large enough for row chunks to be non-trivial at 4 threads,
/// including the empty set.
fn random_rows() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec(("[a-z, -]{0,12}", "[a-z, -]{0,8}"), 0..24)
}

fn intern(ts: &[Transformation]) -> (UnitPool, Vec<IdTransformation>) {
    let mut pool = UnitPool::new();
    let interned = ts
        .iter()
        .map(|t| IdTransformation::new(t.units().iter().map(|u| pool.intern(u.clone())).collect()))
        .collect();
    (pool, interned)
}

/// The exact expected (trials, cache_hits) for a resolved plan, derived by
/// running the naive reference with the plan's own chunking: serially for
/// `Serial`/`Rows` plans (row chunks preserve per-row serial cache
/// evolution), per candidate chunk for `Transformations` plans.
fn expected_trial_stats(
    plan: ExecutionPlan,
    ts: &[Transformation],
    set: &PairSet,
    use_cache: bool,
    serial_reference: &CoverageOutcome,
) -> (u64, u64) {
    match plan {
        ExecutionPlan::Serial | ExecutionPlan::Rows { .. } => {
            (serial_reference.trials, serial_reference.cache_hits)
        }
        ExecutionPlan::Transformations { chunk_size, .. } => {
            let (mut trials, mut hits) = (0u64, 0u64);
            for chunk in ts.chunks(chunk_size) {
                let r = compute_coverage_reference(chunk, set, use_cache, 1);
                trials += r.trials;
                hits += r.cache_hits;
            }
            (trials, hits)
        }
    }
}

/// Runs the downstream selection phase over a coverage outcome and renders
/// the selected set for comparison.
fn select(ts: &[Transformation], outcome: &CoverageOutcome, rows: usize) -> Vec<(String, Vec<u32>)> {
    let pool: Vec<ScoredTransformation> = ts
        .iter()
        .zip(&outcome.covered_rows)
        .map(|(t, covered)| ScoredTransformation {
            transformation: t.clone(),
            covered: RowBitmap::from_sorted_rows(rows, covered),
        })
        .collect();
    render(&lazy_greedy_cover(pool, rows))
}

fn render(set: &TransformationSet) -> Vec<(String, Vec<u32>)> {
    set.transformations
        .iter()
        .map(|t| (t.transformation.to_string(), t.covered_rows.clone()))
        .collect()
}

/// Asserts every configuration of the parallel matrix against the oracle.
/// Returns the number of non-serial plans exercised (so callers can check
/// the sweep actually hit parallel code).
fn check_matrix(
    ts: &[Transformation],
    rows: &[(String, String)],
    use_cache: bool,
    threads_sweep: &[usize],
) -> usize {
    let set = PairSet::from_strings(rows, &NormalizeOptions::none());
    let (pool, interned) = intern(ts);
    let distinct_units: HashSet<&Unit> = ts.iter().flat_map(|t| t.units()).collect();
    let memo_bound = (set.len() * distinct_units.len()) as u64;
    let serial_reference = compute_coverage_reference(ts, &set, use_cache, 1);
    let oracle_selection = {
        let pool: Vec<ScoredTransformation> = ts
            .iter()
            .zip(&serial_reference.covered_rows)
            .map(|(t, covered)| ScoredTransformation {
                transformation: t.clone(),
                covered: RowBitmap::from_sorted_rows(set.len(), covered),
            })
            .collect();
        render(&greedy_cover_reference(pool, set.len()))
    };
    let mut parallel_plans = 0;

    for &axis in &AXES {
        for &threads in threads_sweep {
            let plan = plan_execution(interned.len(), set.len(), threads, axis);
            if plan != ExecutionPlan::Serial {
                parallel_plans += 1;
            }
            let out = compute_coverage_planned(&pool, &interned, &set, use_cache, threads, axis);

            // Covered rows: bit-identical to the oracle under every plan.
            assert_eq!(
                out.covered_rows, serial_reference.covered_rows,
                "covered rows diverged (axis={axis:?}, threads={threads}, cache={use_cache})"
            );
            // Sparse lists stay strictly sorted across chunk concatenation.
            for list in &out.covered_rows {
                assert!(list.windows(2).all(|w| w[0] < w[1]));
            }

            // Trials/hits: exactly the plan's redefined semantics.
            let (expected_trials, expected_hits) =
                expected_trial_stats(plan, ts, &set, use_cache, &serial_reference);
            assert_eq!(
                (out.trials, out.cache_hits),
                (expected_trials, expected_hits),
                "trial stats diverged (axis={axis:?}, threads={threads}, cache={use_cache}, plan={plan:?})"
            );

            // Plan-independent invariants.
            assert_eq!(out.potential_trials, serial_reference.potential_trials);
            assert_eq!(out.trials + out.cache_hits, out.potential_trials);
            assert!(
                out.unit_evaluations <= memo_bound,
                "memo bound violated: {} > {} (axis={axis:?}, threads={threads})",
                out.unit_evaluations,
                memo_bound
            );

            // Selections downstream: the lazy-greedy cover over the planned
            // outcome matches the full-rescan oracle over the reference's.
            assert_eq!(
                select(ts, &out, set.len()),
                oracle_selection,
                "selections diverged (axis={axis:?}, threads={threads}, cache={use_cache})"
            );
        }
    }
    parallel_plans
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The fast leg of the matrix sweep: random pooled candidate lists and
    /// row sets through every {axis} × {1, 2, 4 threads} × cache
    /// configuration.
    #[test]
    fn parallel_matrix_matches_reference(
        ts in pooled_transformations(),
        rows in random_rows(),
        use_cache in prop_oneof![Just(true), Just(false)],
    ) {
        check_matrix(&ts, &rows, use_cache, &[1, 2, 4]);
    }
}

/// Deterministic workload shaped like generation output: a Cartesian
/// product over a small unit vocabulary, with interleaved ordering so
/// contiguous candidate chunks still share units (the shape the shared
/// memo exists for).
fn cartesian_workload(candidates: usize, stride: usize) -> Vec<Transformation> {
    let firsts: Vec<Unit> =
        (0..6).map(|k| Unit::split_substr(' ', 1, k % 3, k % 3 + 1)).collect();
    let middles: Vec<Unit> = vec![Unit::literal(" "), Unit::literal("-"), Unit::literal("")];
    let lasts: Vec<Unit> = (0..4).map(|k| Unit::split(',', k % 2)).collect();
    let mut product = Vec::new();
    for f in &firsts {
        for m in &middles {
            for l in &lasts {
                product.push(Transformation::new(vec![f.clone(), m.clone(), l.clone()]));
            }
        }
    }
    (0..candidates).map(|i| product[(i * stride) % product.len()].clone()).collect()
}

fn name_rows(rows: usize) -> Vec<(String, String)> {
    (0..rows)
        .map(|i| {
            let target = match i % 3 {
                0 => format!("l{i:05} f{:02}", i % 41),
                1 => format!("f{:02}-l{i:05}", i % 41),
                _ => format!("noise {i}"),
            };
            (format!("l{i:05}, f{:02}", i % 41), target)
        })
        .collect()
}

// --- Slow differential leg (CI: `cargo test -p tjoin-core -- --ignored`) ---

/// Large matrix sweep: enough candidates and rows that every axis plans
/// parallel chunks (including uneven final chunks), swept across {axes} ×
/// {1, 2, 4, 8 threads} × cache on/off. Deterministic, no shrinking needed
/// at this size.
#[test]
#[ignore = "slow large parallel-matrix differential sweep; run with -- --ignored"]
fn parallel_matrix_matches_reference_at_scale() {
    let mut parallel_plans = 0;
    for (candidates, rows) in [
        (600usize, 400usize), // both axes plentiful
        (64, 2_000),          // row-axis shape: few candidates, many rows
        (700, 50),            // transformation-axis shape
        (257, 129),           // prime-ish: uneven chunks on both axes
    ] {
        let ts = cartesian_workload(candidates, 7);
        let row_set = name_rows(rows);
        for use_cache in [true, false] {
            parallel_plans += check_matrix(&ts, &row_set, use_cache, &[1, 2, 4, 8]);
        }
    }
    assert!(
        parallel_plans >= 64,
        "sweep exercised only {parallel_plans} parallel plans"
    );
}
