//! Differential test suite for the selection phase: the lazy-greedy (CELF)
//! priority-queue cover must be bit-identical — same selected
//! transformations, same order, same covered rows — to the quadratic
//! full-rescan oracle retained in `cover::reference`, over randomized
//! candidate pools covering the shapes the heap can get wrong: varying row
//! counts, overlapping coverage patterns, tie-heavy pools (identical gains,
//! identical tie keys), and empty/full bitmaps.
//!
//! The `#[ignore]`d tests at the bottom are the slow large-pool leg of the
//! suite, run in CI via `cargo test -p tjoin-core -- --ignored`.

use proptest::prelude::*;
use tjoin_core::cover::reference::greedy_cover_reference;
use tjoin_core::cover::{filter_candidates, lazy_greedy_cover, ScoredTransformation};
use tjoin_core::RowBitmap;
use tjoin_units::{Transformation, TransformationSet, Unit};

/// A small closed unit vocabulary so pools are tie-heavy: many candidates
/// share unit counts, and some share the exact rendered string.
fn unit_from(seed: u64) -> Unit {
    match seed % 7 {
        0 => Unit::substr((seed / 7 % 4) as usize, (seed / 7 % 4 + seed / 31 % 3 + 1) as usize),
        1 => Unit::split(',', (seed / 7 % 3) as usize),
        2 => Unit::split(' ', (seed / 7 % 2) as usize),
        3 => Unit::split_substr('-', (seed / 7 % 2) as usize, 0, (seed / 29 % 3 + 1) as usize),
        4 => Unit::literal("x"),
        5 => Unit::literal(((b'a' + (seed / 7 % 4) as u8) as char).to_string()),
        _ => Unit::substr(0, (seed / 7 % 5 + 1) as usize),
    }
}

fn transformation_from(seed: u64) -> Transformation {
    let len = (seed % 3 + 1) as usize;
    Transformation::new((0..len as u64).map(|j| unit_from(seed / 3 + j * 17)).collect())
}

/// Deterministic pseudo-random coverage set over `rows` rows from a seed.
fn coverage_from(kind: u8, seed: u64, rows: usize) -> Vec<u32> {
    let splitmix = |mut x: u64| {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    };
    match kind % 4 {
        0 => Vec::new(),                          // empty bitmap
        1 => (0..rows as u32).collect(),          // full bitmap
        2 => {
            // Random subset; density varies with the seed.
            let density = seed % 100;
            (0..rows as u32)
                .filter(|&r| splitmix(seed ^ u64::from(r)) % 100 < density)
                .collect()
        }
        _ => {
            // Tie block: one of four canned sets, shared across candidates,
            // so whole groups tie on gain AND on coverage.
            let block = (seed % 4) as u32;
            (0..rows as u32).filter(|r| r % 4 == block).collect()
        }
    }
}

fn build_pool(rows: usize, specs: &[(u8, u64)]) -> Vec<ScoredTransformation> {
    specs
        .iter()
        .map(|&(kind, seed)| ScoredTransformation {
            transformation: transformation_from(seed),
            covered: RowBitmap::from_rows(rows, &coverage_from(kind, seed, rows)),
        })
        .collect()
}

fn assert_identical(lazy: &TransformationSet, oracle: &TransformationSet) {
    assert_eq!(lazy.total_pairs, oracle.total_pairs);
    let render = |s: &TransformationSet| -> Vec<(String, Vec<u32>)> {
        s.transformations
            .iter()
            .map(|t| (t.transformation.to_string(), t.covered_rows.clone()))
            .collect()
    };
    assert_eq!(render(lazy), render(oracle), "selected sets diverged");
}

fn check_pool(rows: usize, specs: &[(u8, u64)]) {
    let pool = build_pool(rows, specs);
    let lazy = lazy_greedy_cover(pool.clone(), rows);
    let oracle = greedy_cover_reference(pool, rows);
    assert_identical(&lazy, &oracle);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random pools of mixed coverage shapes select identically under both
    /// implementations.
    #[test]
    fn lazy_greedy_matches_reference(
        rows in 0usize..70,
        specs in prop::collection::vec((0u8..4, 0u64..1_000_000), 0..40),
    ) {
        check_pool(rows, &specs);
    }

    /// All-tie pools: every candidate drawn from the tie-block generator, so
    /// every round of selection is decided purely by the tie-break chain.
    #[test]
    fn lazy_greedy_matches_reference_on_tie_heavy_pools(
        rows in 4usize..60,
        seeds in prop::collection::vec(0u64..64, 2..30),
    ) {
        let specs: Vec<(u8, u64)> = seeds.into_iter().map(|s| (3u8, s)).collect();
        check_pool(rows, &specs);
    }

    /// Pools of only empty and full bitmaps: selection must pick exactly one
    /// full candidate (the tie-break minimum) or nothing.
    #[test]
    fn lazy_greedy_matches_reference_on_degenerate_bitmaps(
        rows in 0usize..40,
        specs in prop::collection::vec((0u8..2, 0u64..10_000), 0..20),
    ) {
        let pool = build_pool(rows, &specs);
        let lazy = lazy_greedy_cover(pool.clone(), rows);
        let oracle = greedy_cover_reference(pool, rows);
        assert_identical(&lazy, &oracle);
        if rows > 0 {
            prop_assert!(lazy.len() <= 1, "empty/full pool selected {} members", lazy.len());
        }
    }

    /// End-of-pipeline composition: the support filter feeding either cover
    /// implementation yields identical results (the engine's wiring).
    #[test]
    fn filtered_pools_select_identically(
        rows in 1usize..50,
        specs in prop::collection::vec((0u8..4, 0u64..100_000), 0..30),
        support_pct in 0usize..30,
    ) {
        let pool = build_pool(rows, &specs);
        let filtered = filter_candidates(pool, rows, support_pct as f64 / 100.0);
        let lazy = lazy_greedy_cover(filtered.clone(), rows);
        let oracle = greedy_cover_reference(filtered, rows);
        assert_identical(&lazy, &oracle);
    }
}

// --- Slow differential leg (CI: `cargo test -p tjoin-core -- --ignored`) ---

/// Large-pool sweep: thousands of candidates over hundreds of rows, heavy on
/// ties and overlaps, where a heap-ordering or staleness bug would actually
/// bite. Deterministic seeds, no proptest shrinking needed at this size.
#[test]
#[ignore = "slow large-pool differential sweep; run with -- --ignored"]
fn lazy_greedy_matches_reference_at_scale() {
    for (pool_size, rows, base) in [
        (2_000usize, 257usize, 11u64),
        (3_000, 512, 97),
        (1_500, 63, 7),   // sub-word row count
        (1_000, 64, 131), // exactly one word
    ] {
        let specs: Vec<(u8, u64)> = (0..pool_size as u64)
            .map(|i| (((i * base) % 4) as u8, i.wrapping_mul(base).wrapping_add(i >> 3)))
            .collect();
        check_pool(rows, &specs);
    }
}

/// Adversarial staleness pattern: a long chain of nested coverage sets
/// (candidate i covers rows 0..n-i), so after each selection every cached
/// gain in the heap is stale and collapses to zero — the maximum number of
/// lazy re-evaluations per round.
#[test]
#[ignore = "slow nested-chain differential case; run with -- --ignored"]
fn lazy_greedy_matches_reference_on_nested_chains() {
    let rows = 400usize;
    let pool: Vec<ScoredTransformation> = (0..rows as u64)
        .map(|i| ScoredTransformation {
            transformation: transformation_from(i * 13 + 5),
            covered: RowBitmap::from_rows(rows, &(0..(rows as u32 - i as u32)).collect::<Vec<_>>()),
        })
        .collect();
    let lazy = lazy_greedy_cover(pool.clone(), rows);
    let oracle = greedy_cover_reference(pool, rows);
    assert_identical(&lazy, &oracle);
    assert_eq!(lazy.len(), 1, "the full-coverage candidate subsumes the chain");
}
