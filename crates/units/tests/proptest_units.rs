//! Property-based tests for the transformation-unit language.
//!
//! These check structural invariants promised by the crate documentation:
//! units only ever *copy* text (non-literal outputs are substrings of the
//! input), application is deterministic, `CharStr` slicing agrees with a
//! naive char-vector implementation, and Lemma 1's subsumption argument holds
//! on randomly generated inputs.

use proptest::prelude::*;
use tjoin_units::{CharStr, Transformation, Unit};

/// Strategy for short, mostly-ASCII strings with realistic delimiters.
fn input_string() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9,;.@ _-]{0,40}").unwrap()
}

fn any_unit(max_pos: usize) -> impl Strategy<Value = Unit> {
    let pos = 0..=max_pos;
    let delim = prop_oneof![
        Just(','),
        Just(';'),
        Just(' '),
        Just('-'),
        Just('.'),
        Just('@')
    ];
    prop_oneof![
        (pos.clone(), pos.clone()).prop_map(|(a, b)| Unit::substr(a.min(b), a.max(b))),
        (delim.clone(), 0usize..5).prop_map(|(d, i)| Unit::split(d, i)),
        (delim.clone(), 0usize..5, pos.clone(), pos.clone())
            .prop_map(|(d, i, a, b)| Unit::split_substr(d, i, a.min(b), a.max(b))),
        (delim.clone(), delim.clone(), 0usize..5, pos.clone(), pos.clone())
            .prop_map(|(d1, d2, i, a, b)| Unit::two_char_split_substr(d1, d2, i, a.min(b), a.max(b))),
        "[a-z@. ]{0,6}".prop_map(Unit::literal),
    ]
}

proptest! {
    /// Non-literal unit outputs are always contiguous substrings of the input.
    #[test]
    fn non_literal_output_is_substring_of_input(s in input_string(), u in any_unit(40)) {
        if let Some(out) = u.apply(&s) {
            if !u.is_constant() {
                prop_assert!(s.contains(&out), "output {:?} not a substring of {:?} for {}", out, s, u);
            }
        }
    }

    /// Application is deterministic.
    #[test]
    fn application_is_deterministic(s in input_string(), u in any_unit(40)) {
        prop_assert_eq!(u.apply(&s), u.apply(&s));
    }

    /// `CharStr::slice` agrees with a naive `Vec<char>` implementation.
    #[test]
    fn charstr_slice_agrees_with_naive(s in "\\PC{0,30}", a in 0usize..35, b in 0usize..35) {
        let cs = CharStr::new(s.clone());
        let chars: Vec<char> = s.chars().collect();
        let (lo, hi) = (a.min(b), a.max(b));
        let expected = if hi <= chars.len() {
            Some(chars[lo..hi].iter().collect::<String>())
        } else {
            None
        };
        prop_assert_eq!(cs.slice(lo, hi).map(str::to_owned), expected);
    }

    /// `CharStr::find_all` finds exactly the positions where the needle occurs.
    #[test]
    fn find_all_positions_are_correct(s in "[ab]{0,20}", n in "[ab]{1,3}") {
        let cs = CharStr::new(s.clone());
        let chars: Vec<char> = s.chars().collect();
        let needle: Vec<char> = n.chars().collect();
        let mut expected = Vec::new();
        if needle.len() <= chars.len() {
            for i in 0..=(chars.len() - needle.len()) {
                if chars[i..i + needle.len()] == needle[..] {
                    expected.push(i);
                }
            }
        }
        prop_assert_eq!(cs.find_all(&n), expected);
    }

    /// A transformation's output is the concatenation of its units' outputs.
    #[test]
    fn transformation_is_concatenation(s in input_string(), us in prop::collection::vec(any_unit(40), 1..4)) {
        let t = Transformation::new(us.clone());
        let piecewise: Option<String> = us
            .iter()
            .map(|u| u.apply(&s))
            .collect::<Option<Vec<_>>>()
            .map(|v| v.concat());
        prop_assert_eq!(t.apply(&s), piecewise);
    }

    /// `covers` agrees with applying and comparing.
    #[test]
    fn covers_agrees_with_apply(s in input_string(), us in prop::collection::vec(any_unit(40), 1..4)) {
        let t = Transformation::new(us);
        let cs = CharStr::new(s.clone());
        let out = t.apply(&s);
        if let Some(o) = out {
            prop_assert!(t.covers(&cs, &o));
        }
        prop_assert!(!t.covers(&cs, "\x01definitely-not-an-output\x01"));
    }

    /// Lemma 1 (spot-check): every SplitSplitSubstr output on a random input is
    /// reproducible by some unit from {Substr, SplitSubstr, TwoCharSplitSubstr}.
    #[test]
    fn lemma1_splitsplitsubstr_is_subsumed(
        s in "[a-c,;]{1,20}",
        i1 in 0usize..3,
        i2 in 0usize..3,
        a in 0usize..6,
        b in 0usize..6,
    ) {
        let (lo, hi) = (a.min(b), a.max(b));
        let u = Unit::split_split_substr(',', i1, ';', i2, lo, hi);
        if let Some(expected) = u.apply(&s) {
            let cs = CharStr::new(s.clone());
            let len = cs.char_len();
            let mut found = false;
            'outer: for st in 0..=len {
                for en in st..=len {
                    if Unit::substr(st, en).apply(&s).as_deref() == Some(expected.as_str()) {
                        found = true;
                        break 'outer;
                    }
                }
            }
            if !found {
                // Try split-based reproductions with either delimiter and both orders.
                'outer2: for d in [',', ';'] {
                    for idx in 0..=len {
                        for st in 0..=len {
                            for en in st..=len {
                                if Unit::split_substr(d, idx, st, en).apply(&s).as_deref()
                                    == Some(expected.as_str())
                                {
                                    found = true;
                                    break 'outer2;
                                }
                            }
                        }
                    }
                }
            }
            if !found {
                'outer3: for idx in 0..=len {
                    for st in 0..=len {
                        for en in st..=len {
                            if Unit::two_char_split_substr(',', ';', idx, st, en)
                                .apply(&s)
                                .as_deref()
                                == Some(expected.as_str())
                            {
                                found = true;
                                break 'outer3;
                            }
                        }
                    }
                }
            }
            prop_assert!(found, "output {:?} of {} on {:?} not reproducible", expected, u, s);
        }
    }
}
