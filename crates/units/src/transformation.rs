//! Transformations: sequences of units (Definition 2) and sets of
//! transformations (Definition 3).

use crate::charstr::CharStr;
use crate::error::UnitError;
use crate::unit::{Unit, UnitKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A transformation is a sequence of [`Unit`]s; applying it to an input
/// concatenates the units' outputs (Definition 2 of the paper).
///
/// The transformation *covers* a source/target pair when its output on the
/// source equals the target exactly.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Transformation {
    units: Vec<Unit>,
}

impl Transformation {
    /// Builds a transformation from a sequence of units.
    pub fn new(units: Vec<Unit>) -> Self {
        Self { units }
    }

    /// A transformation consisting of a single unit.
    pub fn single(unit: Unit) -> Self {
        Self { units: vec![unit] }
    }

    /// The units of the transformation, in application order.
    pub fn units(&self) -> &[Unit] {
        &self.units
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether the transformation has no units.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// The transformation length measured as the paper does for the
    /// minimality criterion: the number of *non-constant* units
    /// (placeholders) it contains.
    pub fn placeholder_count(&self) -> usize {
        self.units.iter().filter(|u| !u.is_constant()).count()
    }

    /// Number of literal units.
    pub fn literal_count(&self) -> usize {
        self.units.iter().filter(|u| u.is_constant()).count()
    }

    /// Whether every unit is a literal (such a transformation covers at most
    /// target values identical to its concatenated literals and is usually
    /// undesirable).
    pub fn is_all_literal(&self) -> bool {
        !self.units.is_empty() && self.units.iter().all(Unit::is_constant)
    }

    /// Applies the transformation to a prepared [`CharStr`], appending the
    /// output to `out`. Returns `false` (and truncates `out` back to its
    /// original length) when any unit fails.
    pub fn apply_into(&self, input: &CharStr, out: &mut String) -> bool {
        if self.units.is_empty() {
            return false;
        }
        let checkpoint = out.len();
        for unit in &self.units {
            if !unit.apply_into(input, out) {
                out.truncate(checkpoint);
                return false;
            }
        }
        true
    }

    /// Applies the transformation to a prepared [`CharStr`].
    pub fn apply_to(&self, input: &CharStr) -> Option<String> {
        let mut out = String::new();
        self.apply_into(input, &mut out).then_some(out)
    }

    /// Applies the transformation to a plain `&str`.
    pub fn apply(&self, input: &str) -> Option<String> {
        self.apply_to(&CharStr::new(input))
    }

    /// Applies the transformation and explains the first failure.
    pub fn try_apply(&self, input: &str) -> Result<String, UnitError> {
        if self.units.is_empty() {
            return Err(UnitError::EmptyTransformation);
        }
        let cs = CharStr::new(input);
        let mut out = String::new();
        for unit in &self.units {
            out.push_str(&unit.try_apply_to(&cs)?);
        }
        Ok(out)
    }

    /// Whether this transformation maps `source` exactly onto `target`.
    ///
    /// A cheap length/unit pre-check (mirroring the engine's eager filtering)
    /// short-circuits common failures before full application.
    pub fn covers(&self, source: &CharStr, target: &str) -> bool {
        // Fixed-length pre-check: the sum of fixed unit output lengths cannot
        // exceed the target length.
        let target_chars = target.chars().count();
        let mut fixed = 0usize;
        for u in &self.units {
            if let Some(n) = u.fixed_output_char_len() {
                fixed += n;
                if fixed > target_chars {
                    return false;
                }
            }
        }
        let mut out = String::with_capacity(target.len());
        self.apply_into(source, &mut out) && out == target
    }

    /// Fraction of input pairs covered (`0.0..=1.0`); the paper's coverage.
    pub fn coverage_fraction<'a, I>(&self, pairs: I) -> f64
    where
        I: IntoIterator<Item = (&'a CharStr, &'a str)>,
    {
        let mut total = 0usize;
        let mut covered = 0usize;
        for (src, tgt) in pairs {
            total += 1;
            if self.covers(src, tgt) {
                covered += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            covered as f64 / total as f64
        }
    }

    /// Kinds of the units in this transformation (for statistics).
    pub fn unit_kinds(&self) -> Vec<UnitKind> {
        self.units.iter().map(Unit::kind).collect()
    }

    /// Iterates over the non-constant units.
    pub fn placeholders(&self) -> impl Iterator<Item = &Unit> {
        self.units.iter().filter(|u| !u.is_constant())
    }
}

impl fmt::Display for Transformation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, u) in self.units.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{u}")?;
        }
        write!(f, ">")
    }
}

impl From<Vec<Unit>> for Transformation {
    fn from(units: Vec<Unit>) -> Self {
        Self::new(units)
    }
}

impl FromIterator<Unit> for Transformation {
    fn from_iter<T: IntoIterator<Item = Unit>>(iter: T) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

/// A set of transformations together with the rows each covers — the output
/// of synthesis (Definition 3: a covering transformation set).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TransformationSet {
    /// The selected transformations, ordered by decreasing marginal coverage
    /// (the greedy set-cover selection order).
    pub transformations: Vec<CoveredTransformation>,
    /// Total number of input pairs the set was computed against.
    pub total_pairs: usize,
}

/// One selected transformation plus the indices of the input pairs it covers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoveredTransformation {
    /// The transformation program.
    pub transformation: Transformation,
    /// Indices (into the input pair list) of rows this transformation covers.
    pub covered_rows: Vec<u32>,
}

impl CoveredTransformation {
    /// Number of covered rows.
    pub fn coverage(&self) -> usize {
        self.covered_rows.len()
    }
}

impl TransformationSet {
    /// Creates an empty set for `total_pairs` input pairs.
    pub fn empty(total_pairs: usize) -> Self {
        Self {
            transformations: Vec::new(),
            total_pairs,
        }
    }

    /// Number of transformations in the set.
    pub fn len(&self) -> usize {
        self.transformations.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.transformations.is_empty()
    }

    /// Coverage fraction of the single best transformation ("Top Cov." in
    /// Table 2 of the paper).
    pub fn top_coverage(&self) -> f64 {
        if self.total_pairs == 0 {
            return 0.0;
        }
        self.transformations
            .iter()
            .map(CoveredTransformation::coverage)
            .max()
            .unwrap_or(0) as f64
            / self.total_pairs as f64
    }

    /// Coverage fraction of the whole set, counting each row once
    /// ("Coverage" in Table 2 of the paper).
    pub fn set_coverage(&self) -> f64 {
        if self.total_pairs == 0 {
            return 0.0;
        }
        let mut covered: Vec<bool> = vec![false; self.total_pairs];
        for t in &self.transformations {
            for &r in &t.covered_rows {
                if let Some(slot) = covered.get_mut(r as usize) {
                    *slot = true;
                }
            }
        }
        covered.iter().filter(|c| **c).count() as f64 / self.total_pairs as f64
    }

    /// The transformation with maximum coverage, if any.
    pub fn best(&self) -> Option<&CoveredTransformation> {
        self.transformations
            .iter()
            .max_by_key(|t| t.coverage())
    }

    /// Drops transformations whose coverage fraction is below
    /// `min_support` (the paper applies a support threshold of 1–5 % on noisy
    /// data to discard bogus transformations produced by false row matches).
    pub fn filter_by_support(&self, min_support: f64) -> Self {
        let min_rows = (min_support * self.total_pairs as f64).ceil() as usize;
        Self {
            transformations: self
                .transformations
                .iter()
                .filter(|t| t.coverage() >= min_rows.max(1))
                .cloned()
                .collect(),
            total_pairs: self.total_pairs,
        }
    }

    /// Plain iteration over the transformations.
    pub fn iter(&self) -> impl Iterator<Item = &CoveredTransformation> {
        self.transformations.iter()
    }
}

impl fmt::Display for TransformationSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TransformationSet: {} transformations over {} pairs (top {:.2}, set {:.2})",
            self.len(),
            self.total_pairs,
            self.top_coverage(),
            self.set_coverage()
        )?;
        for t in &self.transformations {
            writeln!(f, "  [{} rows] {}", t.coverage(), t.transformation)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name_to_initial_last() -> Transformation {
        // "gosgnach, simon" -> "s gosgnach"
        Transformation::new(vec![
            Unit::split_substr(' ', 1, 0, 1),
            Unit::literal(" "),
            Unit::split(',', 0),
        ])
    }

    #[test]
    fn paper_example_transformation() {
        let t = name_to_initial_last();
        assert_eq!(t.apply("gosgnach, simon").as_deref(), Some("s gosgnach"));
        assert_eq!(t.apply("bowling, michael").as_deref(), Some("m bowling"));
        assert_eq!(
            t.apply("prus-czarnecki, andrzej").as_deref(),
            Some("a prus-czarnecki")
        );
    }

    #[test]
    fn apply_fails_when_any_unit_fails() {
        let t = name_to_initial_last();
        // No space after the comma and no second word: SplitSubstr piece 1 missing.
        assert_eq!(t.apply("gosgnach"), None);
    }

    #[test]
    fn apply_into_truncates_on_failure() {
        let t = name_to_initial_last();
        let mut out = String::from("prefix");
        assert!(!t.apply_into(&CharStr::new("gosgnach"), &mut out));
        assert_eq!(out, "prefix");
    }

    #[test]
    fn empty_transformation_never_applies() {
        let t = Transformation::new(vec![]);
        assert_eq!(t.apply("abc"), None);
        assert!(t.is_empty());
        assert_eq!(t.try_apply("abc"), Err(UnitError::EmptyTransformation));
    }

    #[test]
    fn covers_and_coverage_fraction() {
        let t = name_to_initial_last();
        let rows = [
            ("gosgnach, simon", "s gosgnach"),
            ("bowling, michael", "m bowling"),
            ("rafiei, davood", "davood rafiei"), // formatted differently: not covered
        ];
        let sources: Vec<CharStr> = rows.iter().map(|(s, _)| CharStr::new(*s)).collect();
        let pairs: Vec<(&CharStr, &str)> = sources
            .iter()
            .zip(rows.iter().map(|(_, t)| *t))
            .collect();
        assert!(t.covers(&sources[0], rows[0].1));
        assert!(!t.covers(&sources[2], rows[2].1));
        let frac = t.coverage_fraction(pairs.iter().copied());
        assert!((frac - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_fraction_empty_input() {
        let t = name_to_initial_last();
        assert_eq!(t.coverage_fraction(std::iter::empty()), 0.0);
    }

    #[test]
    fn placeholder_and_literal_counts() {
        let t = name_to_initial_last();
        assert_eq!(t.len(), 3);
        assert_eq!(t.placeholder_count(), 2);
        assert_eq!(t.literal_count(), 1);
        assert!(!t.is_all_literal());
        let all_lit = Transformation::new(vec![Unit::literal("a"), Unit::literal("b")]);
        assert!(all_lit.is_all_literal());
        assert_eq!(all_lit.apply("whatever").as_deref(), Some("ab"));
    }

    #[test]
    fn display_matches_paper_notation() {
        let t = name_to_initial_last();
        assert_eq!(
            t.to_string(),
            "<SplitSubstr(' ',1,0,1), Literal(\" \"), Split(',',0)>"
        );
    }

    #[test]
    fn from_iterator_and_vec() {
        let t: Transformation = vec![Unit::literal("x")].into();
        assert_eq!(t.len(), 1);
        let t: Transformation = std::iter::once(Unit::literal("y")).collect();
        assert_eq!(t.apply("z").as_deref(), Some("y"));
    }

    #[test]
    fn set_coverage_accounting() {
        let t1 = CoveredTransformation {
            transformation: Transformation::single(Unit::substr(0, 1)),
            covered_rows: vec![0, 1, 2],
        };
        let t2 = CoveredTransformation {
            transformation: Transformation::single(Unit::substr(0, 2)),
            covered_rows: vec![2, 3],
        };
        let set = TransformationSet {
            transformations: vec![t1, t2],
            total_pairs: 5,
        };
        assert_eq!(set.len(), 2);
        assert!((set.top_coverage() - 0.6).abs() < 1e-9);
        assert!((set.set_coverage() - 0.8).abs() < 1e-9);
        assert_eq!(set.best().unwrap().coverage(), 3);
    }

    #[test]
    fn support_filter() {
        let mk = |rows: Vec<u32>| CoveredTransformation {
            transformation: Transformation::single(Unit::substr(0, 1)),
            covered_rows: rows,
        };
        let set = TransformationSet {
            transformations: vec![mk(vec![0, 1, 2, 3]), mk(vec![4])],
            total_pairs: 100,
        };
        // 2% support over 100 pairs = at least 2 rows.
        let filtered = set.filter_by_support(0.02);
        assert_eq!(filtered.len(), 1);
        assert_eq!(filtered.transformations[0].coverage(), 4);
        // zero support keeps everything with >=1 row
        assert_eq!(set.filter_by_support(0.0).len(), 2);
    }

    #[test]
    fn empty_set_statistics() {
        let set = TransformationSet::empty(0);
        assert_eq!(set.top_coverage(), 0.0);
        assert_eq!(set.set_coverage(), 0.0);
        assert!(set.best().is_none());
        assert!(set.is_empty());
    }

    #[test]
    fn display_of_set_mentions_counts() {
        let set = TransformationSet::empty(3);
        let s = set.to_string();
        assert!(s.contains("0 transformations over 3 pairs"));
    }
}
