//! # tjoin-units
//!
//! The transformation-unit language of *"Efficiently Transforming Tables for
//! Joinability"* (Nobari & Rafiei, ICDE 2022).
//!
//! A [`Unit`] is a small string function that copies either a part of its
//! input or a constant literal to the output (Definition 1 in the paper). A
//! [`Transformation`] is a sequence of units whose outputs are concatenated
//! (Definition 2). Two differently formatted columns become equi-joinable
//! when a (set of) transformation(s) maps the values of one column onto the
//! values of the other.
//!
//! The unit inventory follows Section 2 of the paper:
//!
//! * [`Unit::Substr`] — copy the character range `[start, end)` of the input.
//! * [`Unit::Split`] — split the input on a delimiter and copy the `index`-th
//!   piece.
//! * [`Unit::SplitSubstr`] — split, take the `index`-th piece, then take a
//!   character range of that piece.
//! * [`Unit::TwoCharSplitSubstr`] — split on *either* of two delimiters, take
//!   the `index`-th piece, then take a character range of that piece.
//! * [`Unit::SplitSplitSubstr`] — Auto-Join's nested split (split, take a
//!   piece, split that piece again, take a piece, then a character range).
//!   Included so the Auto-Join baseline can be expressed exactly and so that
//!   Lemma 1 (the first four units subsume this one) can be tested.
//! * [`Unit::Literal`] — emit a constant string, ignoring the input.
//!
//! All positions and indexes in this crate are **0-based** and character
//! (not byte) oriented; ranges are half-open (`end` is exclusive). The paper
//! prints split indexes 1-based — the [`std::fmt::Display`] impls keep the
//! 0-based convention and document it so programmatic output is unambiguous.
//!
//! ```
//! use tjoin_units::{Unit, Transformation};
//!
//! // "bowling, michael" -> "michael.bowling@ualberta.ca"
//! let t = Transformation::new(vec![
//!     Unit::split_substr(' ', 1, 0, 7),    // "michael"
//!     Unit::literal("."),
//!     Unit::split_substr(',', 0, 0, 7),    // "bowling"
//!     Unit::literal("@ualberta.ca"),
//! ]);
//! assert_eq!(
//!     t.apply("bowling, michael").as_deref(),
//!     Some("michael.bowling@ualberta.ca")
//! );
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod charstr;
pub mod error;
pub mod pool;
pub mod transformation;
pub mod unit;

pub use charstr::CharStr;
pub use error::UnitError;
pub use pool::{IdTransformation, UnitId, UnitPool};
pub use transformation::{CoveredTransformation, Transformation, TransformationSet};
pub use unit::{Unit, UnitKind};
