//! Character-indexed string view.
//!
//! Transformation units operate on *character* positions (the paper's
//! examples are position based: `Substr(0,7)` means "the first seven
//! characters"). Rust strings are UTF-8 byte sequences, so slicing by
//! character index requires a scan. [`CharStr`] caches the byte offset of
//! every character boundary once, making every subsequent character-range
//! slice O(1). The synthesis engine builds one `CharStr` per row and applies
//! thousands to millions of candidate units against it, so this caching is on
//! the hot path (see the `units` Criterion bench).

use std::fmt;
use std::ops::Range;

/// An owned string together with a precomputed map from character index to
/// byte offset, enabling O(1) character-range slicing.
///
/// ```
/// use tjoin_units::CharStr;
/// let s = CharStr::new("naïve café");
/// assert_eq!(s.char_len(), 10);
/// assert_eq!(s.slice(0, 5), Some("naïve"));
/// assert_eq!(s.slice(6, 10), Some("café"));
/// assert_eq!(s.slice(6, 11), None); // out of range
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CharStr {
    text: String,
    /// Byte offset of the start of each character, plus a trailing entry equal
    /// to `text.len()`; `offsets.len() == char_len + 1`.
    offsets: Vec<u32>,
}

impl CharStr {
    /// Builds a `CharStr` from any string-like value.
    pub fn new(text: impl Into<String>) -> Self {
        let text = text.into();
        // Hard check, not a debug_assert: the offset casts below rely on
        // it, and a release-mode truncation would silently corrupt every
        // character lookup on the string.
        assert!(
            text.len() <= u32::MAX as usize,
            "CharStr input exceeds the u32 offset space ({} bytes)",
            text.len()
        );
        let mut offsets = Vec::with_capacity(text.len() + 1);
        for (byte, _) in text.char_indices() {
            offsets.push(byte as u32);
        }
        offsets.push(text.len() as u32);
        Self { text, offsets }
    }

    /// The underlying string.
    #[inline]
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// Number of characters (not bytes).
    #[inline]
    pub fn char_len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the string is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    /// Character at character position `idx`, if in range.
    #[inline]
    pub fn char_at(&self, idx: usize) -> Option<char> {
        if idx >= self.char_len() {
            return None;
        }
        let start = self.offsets[idx] as usize;
        self.text[start..].chars().next()
    }

    /// The substring spanning character positions `[start, end)`.
    ///
    /// Returns `None` when the range is invalid (reversed or out of bounds).
    /// An empty range inside bounds yields `Some("")`.
    #[inline]
    pub fn slice(&self, start: usize, end: usize) -> Option<&str> {
        if start > end || end > self.char_len() {
            return None;
        }
        let b0 = self.offsets[start] as usize;
        let b1 = self.offsets[end] as usize;
        Some(&self.text[b0..b1])
    }

    /// The substring for a character range.
    #[inline]
    pub fn slice_range(&self, range: Range<usize>) -> Option<&str> {
        self.slice(range.start, range.end)
    }

    /// Iterates over the characters of the string.
    pub fn chars(&self) -> impl Iterator<Item = char> + '_ {
        self.text.chars()
    }

    /// Character positions (0-based) at which `delim` occurs.
    pub fn delimiter_positions(&self, delim: char) -> Vec<usize> {
        self.chars()
            .enumerate()
            .filter_map(|(i, c)| (c == delim).then_some(i))
            .collect()
    }

    /// Splits on a single delimiter character and returns the pieces as
    /// character ranges (delimiters excluded). Mirrors `str::split`: `n`
    /// delimiters yield `n + 1` pieces, some possibly empty.
    pub fn split_ranges(&self, delim: char) -> Vec<Range<usize>> {
        self.split_ranges_by(|c| c == delim)
    }

    /// Splits on either of two delimiter characters; see [`Self::split_ranges`].
    pub fn split_ranges2(&self, d1: char, d2: char) -> Vec<Range<usize>> {
        self.split_ranges_by(|c| c == d1 || c == d2)
    }

    /// Splits on an arbitrary character predicate, returning character ranges.
    pub fn split_ranges_by(&self, mut is_delim: impl FnMut(char) -> bool) -> Vec<Range<usize>> {
        let mut ranges = Vec::new();
        let mut start = 0usize;
        for (i, c) in self.chars().enumerate() {
            if is_delim(c) {
                ranges.push(start..i);
                start = i + 1;
            }
        }
        ranges.push(start..self.char_len());
        ranges
    }

    /// All character positions at which `needle` occurs as a substring
    /// (positions are character indices of the first character of the match).
    /// Matches may overlap. An empty needle yields no positions.
    pub fn find_all(&self, needle: &str) -> Vec<usize> {
        if needle.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let needle_chars = needle.chars().count();
        let mut byte_pos = 0usize;
        while let Some(found) = self.text[byte_pos..].find(needle) {
            let abs_byte = byte_pos + found;
            // Binary search the offsets table for the character index.
            let char_idx = self
                .offsets
                .binary_search(&(abs_byte as u32))
                .expect("match must start at a char boundary");
            out.push(char_idx);
            let _ = needle_chars; // length in chars not needed for advancing
            // Advance by one character to allow overlapping matches.
            byte_pos = self.offsets[char_idx + 1] as usize;
        }
        out
    }

    /// Whether `needle` occurs anywhere in the string.
    #[inline]
    pub fn contains(&self, needle: &str) -> bool {
        self.text.contains(needle)
    }

    /// Whether the character `c` occurs anywhere in the string.
    #[inline]
    pub fn contains_char(&self, c: char) -> bool {
        self.text.contains(c)
    }
}

impl From<&str> for CharStr {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

impl From<String> for CharStr {
    fn from(s: String) -> Self {
        Self::new(s)
    }
}

impl fmt::Display for CharStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl AsRef<str> for CharStr {
    fn as_ref(&self) -> &str {
        &self.text
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn char_len_ascii() {
        let s = CharStr::new("hello");
        assert_eq!(s.char_len(), 5);
        assert!(!s.is_empty());
    }

    #[test]
    fn char_len_empty() {
        let s = CharStr::new("");
        assert_eq!(s.char_len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.slice(0, 0), Some(""));
        assert_eq!(s.slice(0, 1), None);
    }

    #[test]
    fn char_len_unicode() {
        let s = CharStr::new("naïve café");
        assert_eq!(s.char_len(), 10);
        assert_eq!(s.slice(2, 3), Some("ï"));
        assert_eq!(s.slice(0, 10), Some("naïve café"));
    }

    #[test]
    fn slice_bounds() {
        let s = CharStr::new("abcdef");
        assert_eq!(s.slice(0, 6), Some("abcdef"));
        assert_eq!(s.slice(2, 4), Some("cd"));
        assert_eq!(s.slice(4, 2), None);
        assert_eq!(s.slice(0, 7), None);
        assert_eq!(s.slice(6, 6), Some(""));
    }

    #[test]
    fn char_at() {
        let s = CharStr::new("a€c");
        assert_eq!(s.char_at(0), Some('a'));
        assert_eq!(s.char_at(1), Some('€'));
        assert_eq!(s.char_at(2), Some('c'));
        assert_eq!(s.char_at(3), None);
    }

    #[test]
    fn split_ranges_basic() {
        let s = CharStr::new("a,b,,c");
        let ranges = s.split_ranges(',');
        let pieces: Vec<&str> = ranges
            .iter()
            .map(|r| s.slice_range(r.clone()).unwrap())
            .collect();
        assert_eq!(pieces, vec!["a", "b", "", "c"]);
    }

    #[test]
    fn split_ranges_no_delim() {
        let s = CharStr::new("abc");
        let ranges = s.split_ranges(',');
        assert_eq!(ranges, vec![0..3]);
    }

    #[test]
    fn split_ranges_leading_trailing() {
        let s = CharStr::new(",abc,");
        let pieces: Vec<&str> = s
            .split_ranges(',')
            .into_iter()
            .map(|r| s.slice_range(r).unwrap())
            .collect();
        assert_eq!(pieces, vec!["", "abc", ""]);
    }

    #[test]
    fn split_ranges_two_delims() {
        let s = CharStr::new("a-b c-d");
        let pieces: Vec<&str> = s
            .split_ranges2('-', ' ')
            .into_iter()
            .map(|r| s.slice_range(r).unwrap())
            .collect();
        assert_eq!(pieces, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn delimiter_positions() {
        let s = CharStr::new("a,b,c");
        assert_eq!(s.delimiter_positions(','), vec![1, 3]);
        assert_eq!(s.delimiter_positions('x'), Vec::<usize>::new());
    }

    #[test]
    fn find_all_non_overlapping() {
        let s = CharStr::new("abcabcabc");
        assert_eq!(s.find_all("abc"), vec![0, 3, 6]);
        assert_eq!(s.find_all("zzz"), Vec::<usize>::new());
    }

    #[test]
    fn find_all_overlapping() {
        let s = CharStr::new("aaaa");
        assert_eq!(s.find_all("aa"), vec![0, 1, 2]);
    }

    #[test]
    fn find_all_empty_needle() {
        let s = CharStr::new("abc");
        assert_eq!(s.find_all(""), Vec::<usize>::new());
    }

    #[test]
    fn find_all_unicode() {
        let s = CharStr::new("héllo héllo");
        assert_eq!(s.find_all("héllo"), vec![0, 6]);
    }

    #[test]
    fn display_and_as_ref() {
        let s = CharStr::new("xyz");
        assert_eq!(s.to_string(), "xyz");
        assert_eq!(s.as_ref(), "xyz");
        assert_eq!(s.as_str(), "xyz");
    }

    #[test]
    fn from_impls() {
        let a: CharStr = "abc".into();
        let b: CharStr = String::from("abc").into();
        assert_eq!(a, b);
    }
}
