//! Error types for the transformation-unit language.

use std::fmt;

/// Reasons a unit (or transformation) can fail to apply to an input string.
///
/// Failure to apply is a normal, expected outcome during synthesis — the
/// engine generates candidates from one row and probes them against others —
/// so the hot-path API ([`crate::Unit::apply_to`]) returns `Option` rather
/// than `Result`. `UnitError` exists for the diagnostic API
/// ([`crate::Unit::try_apply_to`]) used by examples, tests, and the
/// explain-style tooling where *why* a unit failed matters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitError {
    /// A `Substr` range exceeded the input (or selected piece) length, or was
    /// reversed.
    RangeOutOfBounds {
        /// Requested start position (character index).
        start: usize,
        /// Requested end position (exclusive character index).
        end: usize,
        /// Actual character length of the string being sliced.
        len: usize,
    },
    /// A split-based unit requested a piece index past the number of pieces.
    PieceOutOfBounds {
        /// Requested piece index (0-based).
        index: usize,
        /// Number of pieces produced by the split.
        pieces: usize,
    },
    /// A split-based unit was applied to an input that does not contain the
    /// delimiter at all, in strict mode (the permissive mode treats the whole
    /// input as the single piece, mirroring `str::split`).
    DelimiterMissing {
        /// The delimiter that did not occur.
        delim: char,
    },
    /// The transformation is empty (contains no units).
    EmptyTransformation,
}

impl fmt::Display for UnitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitError::RangeOutOfBounds { start, end, len } => write!(
                f,
                "substring range [{start}, {end}) out of bounds for length {len}"
            ),
            UnitError::PieceOutOfBounds { index, pieces } => write!(
                f,
                "split piece index {index} out of bounds ({pieces} pieces)"
            ),
            UnitError::DelimiterMissing { delim } => {
                write!(f, "delimiter {delim:?} does not occur in the input")
            }
            UnitError::EmptyTransformation => write!(f, "transformation has no units"),
        }
    }
}

impl std::error::Error for UnitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = UnitError::RangeOutOfBounds {
            start: 2,
            end: 9,
            len: 5,
        };
        assert!(e.to_string().contains("[2, 9)"));
        let e = UnitError::PieceOutOfBounds { index: 3, pieces: 2 };
        assert!(e.to_string().contains("index 3"));
        let e = UnitError::DelimiterMissing { delim: ',' };
        assert!(e.to_string().contains("','"));
        assert!(UnitError::EmptyTransformation.to_string().contains("no units"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(UnitError::EmptyTransformation);
        assert!(!e.to_string().is_empty());
    }
}
