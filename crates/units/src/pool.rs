//! Unit interning: the [`UnitPool`] arena and ID-based transformations.
//!
//! Candidate transformations are Cartesian products over a small per-row
//! unit pool, so the same [`Unit`] value recurs in hundreds of candidates.
//! Interning every distinct unit once and referring to it by a dense
//! [`UnitId`] lets the hot coverage loop replace unit hashing and cloning
//! with array indexing:
//!
//! * duplicate removal of generated transformations hashes small `u32`
//!   vectors instead of unit vectors with embedded strings;
//! * the coverage engine memoizes `output_on` per `(row, unit)` in a dense
//!   table indexed by `UnitId`, so a unit is evaluated at most once per row
//!   no matter how many transformations contain it;
//! * the non-covering-unit cache (the paper's Section 4.1.5 pruning) becomes
//!   a bitset indexed by `UnitId` — O(1) lookup, zero hashing.

use crate::transformation::Transformation;
use crate::unit::Unit;
use std::collections::HashMap;

/// A dense identifier of an interned [`Unit`] within its [`UnitPool`].
///
/// IDs are assigned contiguously from zero in interning order, so they can
/// index plain vectors and bitsets sized [`UnitPool::len`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UnitId(u32);

impl UnitId {
    /// The dense index of this id.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An arena interning every distinct [`Unit`] once.
///
/// ```
/// use tjoin_units::{Unit, UnitPool};
///
/// let mut pool = UnitPool::new();
/// let a = pool.intern(Unit::substr(0, 3));
/// let b = pool.intern(Unit::substr(0, 3));
/// assert_eq!(a, b);
/// assert_eq!(pool.len(), 1);
/// assert_eq!(pool.get(a), &Unit::substr(0, 3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct UnitPool {
    units: Vec<Unit>,
    index: HashMap<Unit, UnitId>,
    /// Memoized adjacent-literal concatenations (see
    /// [`UnitPool::concat_literals`]).
    literal_merges: HashMap<(UnitId, UnitId), UnitId>,
}

impl UnitPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct units interned.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Interns `unit`, returning the id of the (unique) pool entry equal to
    /// it.
    pub fn intern(&mut self, unit: Unit) -> UnitId {
        if let Some(&id) = self.index.get(&unit) {
            return id;
        }
        let id = UnitId(u32::try_from(self.units.len()).expect("unit pool overflow"));
        self.index.insert(unit.clone(), id);
        self.units.push(unit);
        id
    }

    /// The unit behind `id`. Panics if `id` is from a different pool with
    /// more entries.
    #[inline]
    pub fn get(&self, id: UnitId) -> &Unit {
        &self.units[id.index()]
    }

    /// The id of `unit` if it is interned.
    pub fn lookup(&self, unit: &Unit) -> Option<UnitId> {
        self.index.get(unit).copied()
    }

    /// Whether `id`'s unit is a literal.
    #[inline]
    pub fn is_literal(&self, id: UnitId) -> bool {
        matches!(self.get(id), Unit::Literal { .. })
    }

    /// Interns the concatenation of two literal units (used by candidate
    /// generation to canonicalize adjacent literals). Memoized, so repeated
    /// merges of the same pair are O(1). Panics when either id is not a
    /// literal.
    pub fn concat_literals(&mut self, a: UnitId, b: UnitId) -> UnitId {
        if let Some(&merged) = self.literal_merges.get(&(a, b)) {
            return merged;
        }
        let (Unit::Literal { text: ta }, Unit::Literal { text: tb }) = (self.get(a), self.get(b))
        else {
            panic!("concat_literals called on non-literal units");
        };
        let merged = self.intern(Unit::literal(format!("{ta}{tb}")));
        self.literal_merges.insert((a, b), merged);
        merged
    }

    /// Iterates over `(id, unit)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (UnitId, &Unit)> {
        self.units
            .iter()
            .enumerate()
            // Invariant is local (audited): `i` indexes `self.units`, whose
            // length is capped at the u32 id space by `intern`'s checked
            // conversion — the cast cannot truncate.
            .map(|(i, u)| (UnitId(i as u32), u))
    }

    /// The distinct unit ids referenced by `transformations`, in ascending
    /// id order.
    ///
    /// This is the domain of the coverage phase's shared unit-output memo: a
    /// pool may intern units that no surviving candidate references (e.g.
    /// literals consumed by adjacent-literal merging), and evaluating those
    /// would waste `rows` evaluations each. The ascending order makes the
    /// memo's column assignment — and its unit-id-range sharding across
    /// build threads — deterministic.
    pub fn referenced_ids(&self, transformations: &[IdTransformation]) -> Vec<UnitId> {
        let mut referenced = vec![false; self.units.len()];
        for t in transformations {
            for &id in t.unit_ids() {
                referenced[id.index()] = true;
            }
        }
        referenced
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r)
            // Invariant is local (audited): same `intern`-checked bound as
            // `iter` above — `i` stays inside the u32 id space.
            .map(|(i, _)| UnitId(i as u32))
            .collect()
    }

    /// Materializes an ID transformation back into an owned
    /// [`Transformation`].
    pub fn resolve(&self, transformation: &IdTransformation) -> Transformation {
        Transformation::new(
            transformation
                .unit_ids()
                .iter()
                .map(|&id| self.get(id).clone())
                .collect(),
        )
    }
}

/// A transformation represented as a sequence of [`UnitId`]s over a
/// [`UnitPool`] — the compact form the generation and coverage phases work
/// with. Equality/hashing over the id vector is equivalent to
/// equality/hashing of the canonical unit sequence because interning is
/// injective.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IdTransformation {
    units: Vec<UnitId>,
}

impl IdTransformation {
    /// Builds an ID transformation from a unit-id sequence.
    pub fn new(units: Vec<UnitId>) -> Self {
        Self { units }
    }

    /// The unit ids, in application order.
    #[inline]
    pub fn unit_ids(&self) -> &[UnitId] {
        &self.units
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether the transformation has no units.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Whether every unit is a literal (cf.
    /// [`Transformation::is_all_literal`]).
    pub fn is_all_literal(&self, pool: &UnitPool) -> bool {
        !self.units.is_empty() && self.units.iter().all(|&id| pool.is_literal(id))
    }
}

impl From<Vec<UnitId>> for IdTransformation {
    fn from(units: Vec<UnitId>) -> Self {
        Self::new(units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut pool = UnitPool::new();
        let a = pool.intern(Unit::split(',', 0));
        let b = pool.intern(Unit::split(',', 1));
        let a2 = pool.intern(Unit::split(',', 0));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(pool.len(), 2);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(pool.lookup(&Unit::split(',', 1)), Some(b));
        assert_eq!(pool.lookup(&Unit::split(',', 9)), None);
    }

    #[test]
    fn resolve_round_trips() {
        let mut pool = UnitPool::new();
        let units = vec![
            Unit::split_substr(' ', 1, 0, 1),
            Unit::literal(" "),
            Unit::split(',', 0),
        ];
        let ids: Vec<UnitId> = units.iter().map(|u| pool.intern(u.clone())).collect();
        let idt = IdTransformation::new(ids);
        assert_eq!(pool.resolve(&idt), Transformation::new(units));
    }

    #[test]
    fn literal_concatenation_is_memoized_and_correct() {
        let mut pool = UnitPool::new();
        let a = pool.intern(Unit::literal("ab"));
        let b = pool.intern(Unit::literal("cd"));
        let m1 = pool.concat_literals(a, b);
        let m2 = pool.concat_literals(a, b);
        assert_eq!(m1, m2);
        assert_eq!(pool.get(m1), &Unit::literal("abcd"));
        // The merged literal is interned like any other unit.
        assert_eq!(pool.lookup(&Unit::literal("abcd")), Some(m1));
    }

    #[test]
    fn id_equality_matches_unit_equality() {
        let mut pool = UnitPool::new();
        let t1 = IdTransformation::new(vec![
            pool.intern(Unit::substr(0, 1)),
            pool.intern(Unit::literal("x")),
        ]);
        let t2 = IdTransformation::new(vec![
            pool.intern(Unit::substr(0, 1)),
            pool.intern(Unit::literal("x")),
        ]);
        let t3 = IdTransformation::new(vec![pool.intern(Unit::substr(0, 2))]);
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
        assert!(!t1.is_all_literal(&pool));
        assert!(IdTransformation::new(vec![pool.intern(Unit::literal("y"))]).is_all_literal(&pool));
        assert!(!IdTransformation::new(vec![]).is_all_literal(&pool));
    }

    #[test]
    fn referenced_ids_are_distinct_sorted_and_complete() {
        let mut pool = UnitPool::new();
        let a = pool.intern(Unit::substr(0, 1));
        let b = pool.intern(Unit::literal("x"));
        let unreferenced = pool.intern(Unit::split(',', 0));
        let c = pool.intern(Unit::substr(1, 2));
        // `c` and `a` recur across transformations; `unreferenced` is interned
        // but never used.
        let ts = vec![
            IdTransformation::new(vec![c, a, c]),
            IdTransformation::new(vec![a, b]),
        ];
        let ids = pool.referenced_ids(&ts);
        assert_eq!(ids, vec![a, b, c]);
        assert!(!ids.contains(&unreferenced));
        assert!(pool.referenced_ids(&[]).is_empty());
        // Empty transformations reference nothing.
        assert!(pool.referenced_ids(&[IdTransformation::new(vec![])]).is_empty());
    }

    #[test]
    fn iter_in_interning_order() {
        let mut pool = UnitPool::new();
        pool.intern(Unit::substr(0, 1));
        pool.intern(Unit::substr(0, 2));
        let collected: Vec<usize> = pool.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(collected, vec![0, 1]);
    }
}
