//! Transformation units (Definition 1 of the paper).

use crate::charstr::CharStr;
use crate::error::UnitError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a [`Unit`], without its parameters.
///
/// Useful for grouping statistics ("how many `Split` candidates were
/// generated?") and for the Auto-Join baseline, which enumerates units kind
/// by kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum UnitKind {
    /// `Substr(start, end)`.
    Substr,
    /// `Split(delim, index)`.
    Split,
    /// `SplitSubstr(delim, index, start, end)`.
    SplitSubstr,
    /// `TwoCharSplitSubstr(d1, d2, index, start, end)`.
    TwoCharSplitSubstr,
    /// `SplitSplitSubstr(d1, i1, d2, i2, start, end)` — Auto-Join's unit.
    SplitSplitSubstr,
    /// `Literal(text)`.
    Literal,
}

impl UnitKind {
    /// All kinds in the order the paper lists them (Literal last).
    pub const ALL: [UnitKind; 6] = [
        UnitKind::Substr,
        UnitKind::Split,
        UnitKind::SplitSubstr,
        UnitKind::TwoCharSplitSubstr,
        UnitKind::SplitSplitSubstr,
        UnitKind::Literal,
    ];

    /// The unit kinds used by the paper's own experiments (Section 6.2
    /// excludes `TwoCharSplitSubstr` for runtime manageability and the paper's
    /// unit set never includes Auto-Join's `SplitSplitSubstr`).
    pub const PAPER_EXPERIMENT_SET: [UnitKind; 4] = [
        UnitKind::Substr,
        UnitKind::Split,
        UnitKind::SplitSubstr,
        UnitKind::Literal,
    ];

    /// Number of free parameters of the kind (the paper's `z`).
    pub fn parameter_count(self) -> usize {
        match self {
            UnitKind::Substr => 2,
            UnitKind::Split => 2,
            UnitKind::SplitSubstr => 4,
            UnitKind::TwoCharSplitSubstr => 5,
            UnitKind::SplitSplitSubstr => 6,
            UnitKind::Literal => 1,
        }
    }

    /// Whether every parameterization of this kind produces the same output on
    /// every input (true only for `Literal`). Non-constant kinds are the ones
    /// that can witness a *placeholder* (Definition 4).
    pub fn is_constant(self) -> bool {
        matches!(self, UnitKind::Literal)
    }

    /// A short stable name.
    pub fn name(self) -> &'static str {
        match self {
            UnitKind::Substr => "Substr",
            UnitKind::Split => "Split",
            UnitKind::SplitSubstr => "SplitSubstr",
            UnitKind::TwoCharSplitSubstr => "TwoCharSplitSubstr",
            UnitKind::SplitSplitSubstr => "SplitSplitSubstr",
            UnitKind::Literal => "Literal",
        }
    }
}

impl fmt::Display for UnitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A transformation unit: a function from an input string to an output string
/// that either copies part of the input or emits a constant (Definition 1).
///
/// All positions are 0-based character indices; ranges are half-open.
/// Split semantics mirror [`str::split`]: `n` delimiter occurrences produce
/// `n + 1` pieces (possibly empty), and an input without the delimiter is a
/// single piece. A unit *fails* (returns `None`) when a requested piece or
/// character range does not exist; failing is normal during synthesis.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Unit {
    /// Copy the character range `[start, end)` of the input.
    Substr {
        /// Start character position (inclusive).
        start: u16,
        /// End character position (exclusive).
        end: u16,
    },
    /// Split the input on `delim` and copy the `index`-th piece.
    Split {
        /// Delimiter character.
        delim: char,
        /// 0-based piece index.
        index: u16,
    },
    /// Split the input on `delim`, take the `index`-th piece, then copy the
    /// character range `[start, end)` *of that piece*.
    SplitSubstr {
        /// Delimiter character.
        delim: char,
        /// 0-based piece index.
        index: u16,
        /// Start character position within the piece (inclusive).
        start: u16,
        /// End character position within the piece (exclusive).
        end: u16,
    },
    /// Split the input on *either* `delim1` or `delim2`, take the `index`-th
    /// piece, then copy the character range `[start, end)` of that piece.
    TwoCharSplitSubstr {
        /// First delimiter character.
        delim1: char,
        /// Second delimiter character.
        delim2: char,
        /// 0-based piece index.
        index: u16,
        /// Start character position within the piece (inclusive).
        start: u16,
        /// End character position within the piece (exclusive).
        end: u16,
    },
    /// Auto-Join's nested split: split on `delim1`, take piece `index1`,
    /// split that piece on `delim2`, take piece `index2`, then copy the
    /// character range `[start, end)` of that inner piece.
    SplitSplitSubstr {
        /// Outer delimiter character.
        delim1: char,
        /// Outer 0-based piece index.
        index1: u16,
        /// Inner delimiter character.
        delim2: char,
        /// Inner 0-based piece index.
        index2: u16,
        /// Start character position within the inner piece (inclusive).
        start: u16,
        /// End character position within the inner piece (exclusive).
        end: u16,
    },
    /// Emit `text`, ignoring the input.
    Literal {
        /// The constant text emitted.
        text: String,
    },
}

impl Unit {
    /// Convenience constructor for [`Unit::Substr`].
    pub fn substr(start: usize, end: usize) -> Self {
        Unit::Substr {
            start: start as u16,
            end: end as u16,
        }
    }

    /// Convenience constructor for [`Unit::Split`].
    pub fn split(delim: char, index: usize) -> Self {
        Unit::Split {
            delim,
            index: index as u16,
        }
    }

    /// Convenience constructor for [`Unit::SplitSubstr`].
    pub fn split_substr(delim: char, index: usize, start: usize, end: usize) -> Self {
        Unit::SplitSubstr {
            delim,
            index: index as u16,
            start: start as u16,
            end: end as u16,
        }
    }

    /// Convenience constructor for [`Unit::TwoCharSplitSubstr`].
    pub fn two_char_split_substr(
        delim1: char,
        delim2: char,
        index: usize,
        start: usize,
        end: usize,
    ) -> Self {
        Unit::TwoCharSplitSubstr {
            delim1,
            delim2,
            index: index as u16,
            start: start as u16,
            end: end as u16,
        }
    }

    /// Convenience constructor for [`Unit::SplitSplitSubstr`].
    pub fn split_split_substr(
        delim1: char,
        index1: usize,
        delim2: char,
        index2: usize,
        start: usize,
        end: usize,
    ) -> Self {
        Unit::SplitSplitSubstr {
            delim1,
            index1: index1 as u16,
            delim2,
            index2: index2 as u16,
            start: start as u16,
            end: end as u16,
        }
    }

    /// Convenience constructor for [`Unit::Literal`].
    pub fn literal(text: impl Into<String>) -> Self {
        Unit::Literal { text: text.into() }
    }

    /// The kind of this unit.
    pub fn kind(&self) -> UnitKind {
        match self {
            Unit::Substr { .. } => UnitKind::Substr,
            Unit::Split { .. } => UnitKind::Split,
            Unit::SplitSubstr { .. } => UnitKind::SplitSubstr,
            Unit::TwoCharSplitSubstr { .. } => UnitKind::TwoCharSplitSubstr,
            Unit::SplitSplitSubstr { .. } => UnitKind::SplitSplitSubstr,
            Unit::Literal { .. } => UnitKind::Literal,
        }
    }

    /// Whether the unit output is the same for every input.
    pub fn is_constant(&self) -> bool {
        self.kind().is_constant()
    }

    /// Applies the unit to an input and appends the output to `out`.
    ///
    /// Returns `false` (leaving `out` untouched) when the unit does not apply
    /// to this input. This is the hot-path entry point used by coverage
    /// checking; [`Self::apply`] and [`Self::try_apply_to`] wrap it.
    pub fn apply_into(&self, input: &CharStr, out: &mut String) -> bool {
        match self.output_on(input) {
            Some(s) => {
                out.push_str(&s);
                true
            }
            None => false,
        }
    }

    /// The output of the unit on `input`, or `None` when it does not apply.
    pub fn output_on(&self, input: &CharStr) -> Option<std::borrow::Cow<'_, str>> {
        use std::borrow::Cow;
        match self {
            Unit::Substr { start, end } => input
                .slice(*start as usize, *end as usize)
                .map(|s| Cow::Owned(s.to_owned())),
            Unit::Split { delim, index } => {
                let ranges = input.split_ranges(*delim);
                let r = ranges.get(*index as usize)?;
                input.slice_range(r.clone()).map(|s| Cow::Owned(s.to_owned()))
            }
            Unit::SplitSubstr {
                delim,
                index,
                start,
                end,
            } => {
                let ranges = input.split_ranges(*delim);
                let piece = ranges.get(*index as usize)?;
                slice_within(input, piece.clone(), *start as usize, *end as usize)
                    .map(|s| Cow::Owned(s.to_owned()))
            }
            Unit::TwoCharSplitSubstr {
                delim1,
                delim2,
                index,
                start,
                end,
            } => {
                let ranges = input.split_ranges2(*delim1, *delim2);
                let piece = ranges.get(*index as usize)?;
                slice_within(input, piece.clone(), *start as usize, *end as usize)
                    .map(|s| Cow::Owned(s.to_owned()))
            }
            Unit::SplitSplitSubstr {
                delim1,
                index1,
                delim2,
                index2,
                start,
                end,
            } => {
                let outer = input.split_ranges(*delim1);
                let piece = outer.get(*index1 as usize)?.clone();
                // Split the selected piece again on the inner delimiter.
                let inner = split_piece(input, piece, *delim2);
                let piece2 = inner.get(*index2 as usize)?.clone();
                slice_within(input, piece2, *start as usize, *end as usize)
                    .map(|s| Cow::Owned(s.to_owned()))
            }
            Unit::Literal { text } => Some(Cow::Borrowed(text.as_str())),
        }
    }

    /// Applies the unit to a plain `&str` (builds a temporary [`CharStr`]).
    pub fn apply(&self, input: &str) -> Option<String> {
        let cs = CharStr::new(input);
        self.output_on(&cs).map(|c| c.into_owned())
    }

    /// Like [`Self::output_on`] but explains *why* the unit did not apply.
    pub fn try_apply_to(&self, input: &CharStr) -> Result<String, UnitError> {
        match self {
            Unit::Substr { start, end } => input
                .slice(*start as usize, *end as usize)
                .map(str::to_owned)
                .ok_or(UnitError::RangeOutOfBounds {
                    start: *start as usize,
                    end: *end as usize,
                    len: input.char_len(),
                }),
            Unit::Split { delim, index } => {
                let ranges = input.split_ranges(*delim);
                if ranges.len() == 1 && !input.contains_char(*delim) && *index as usize > 0 {
                    return Err(UnitError::DelimiterMissing { delim: *delim });
                }
                let pieces = ranges.len();
                ranges
                    .get(*index as usize)
                    .and_then(|r| input.slice_range(r.clone()))
                    .map(str::to_owned)
                    .ok_or(UnitError::PieceOutOfBounds {
                        index: *index as usize,
                        pieces,
                    })
            }
            other => other
                .output_on(input)
                .map(|c| c.into_owned())
                .ok_or_else(|| match other.kind() {
                    UnitKind::Substr | UnitKind::Literal => unreachable!(),
                    _ => UnitError::PieceOutOfBounds {
                        index: 0,
                        pieces: 0,
                    },
                }),
        }
    }

    /// Exact output length in characters when it can be known without the
    /// input (only `Literal` and `Substr` expose this); used for cheap
    /// pre-filters in the synthesis engine.
    pub fn fixed_output_char_len(&self) -> Option<usize> {
        match self {
            Unit::Literal { text } => Some(text.chars().count()),
            Unit::Substr { start, end } => Some((*end as usize).saturating_sub(*start as usize)),
            Unit::SplitSubstr { start, end, .. }
            | Unit::TwoCharSplitSubstr { start, end, .. }
            | Unit::SplitSplitSubstr { start, end, .. } => {
                Some((*end as usize).saturating_sub(*start as usize))
            }
            Unit::Split { .. } => None,
        }
    }
}

/// Slices the character range `[start, end)` *relative to* `piece` (a
/// character range of `input`), returning `None` when it falls outside the
/// piece.
#[inline]
fn slice_within(
    input: &CharStr,
    piece: std::ops::Range<usize>,
    start: usize,
    end: usize,
) -> Option<&str> {
    let len = piece.end - piece.start;
    if start > end || end > len {
        return None;
    }
    input.slice(piece.start + start, piece.start + end)
}

/// Splits the character range `piece` of `input` on `delim`, returning
/// absolute character ranges.
fn split_piece(
    input: &CharStr,
    piece: std::ops::Range<usize>,
    delim: char,
) -> Vec<std::ops::Range<usize>> {
    let mut ranges = Vec::new();
    let mut start = piece.start;
    for i in piece.clone() {
        if input.char_at(i) == Some(delim) {
            ranges.push(start..i);
            start = i + 1;
        }
    }
    ranges.push(start..piece.end);
    ranges
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unit::Substr { start, end } => write!(f, "Substr({start},{end})"),
            Unit::Split { delim, index } => write!(f, "Split({delim:?},{index})"),
            Unit::SplitSubstr {
                delim,
                index,
                start,
                end,
            } => write!(f, "SplitSubstr({delim:?},{index},{start},{end})"),
            Unit::TwoCharSplitSubstr {
                delim1,
                delim2,
                index,
                start,
                end,
            } => write!(
                f,
                "TwoCharSplitSubstr({delim1:?},{delim2:?},{index},{start},{end})"
            ),
            Unit::SplitSplitSubstr {
                delim1,
                index1,
                delim2,
                index2,
                start,
                end,
            } => write!(
                f,
                "SplitSplitSubstr({delim1:?},{index1},{delim2:?},{index2},{start},{end})"
            ),
            Unit::Literal { text } => write!(f, "Literal({text:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cs(s: &str) -> CharStr {
        CharStr::new(s)
    }

    #[test]
    fn substr_basic() {
        assert_eq!(Unit::substr(0, 3).apply("abcdef").as_deref(), Some("abc"));
        assert_eq!(Unit::substr(2, 6).apply("abcdef").as_deref(), Some("cdef"));
        assert_eq!(Unit::substr(0, 0).apply("abcdef").as_deref(), Some(""));
        assert_eq!(Unit::substr(0, 7).apply("abcdef"), None);
        assert_eq!(Unit::substr(4, 2).apply("abcdef"), None);
    }

    #[test]
    fn split_basic() {
        // paper example: Split(',', index of first piece) on "prus-czarnecki, andrzej"
        assert_eq!(
            Unit::split(',', 0).apply("prus-czarnecki, andrzej").as_deref(),
            Some("prus-czarnecki")
        );
        assert_eq!(
            Unit::split(',', 1).apply("prus-czarnecki, andrzej").as_deref(),
            Some(" andrzej")
        );
        assert_eq!(Unit::split(',', 2).apply("prus-czarnecki, andrzej"), None);
    }

    #[test]
    fn split_missing_delimiter_is_single_piece() {
        assert_eq!(Unit::split(',', 0).apply("abc").as_deref(), Some("abc"));
        assert_eq!(Unit::split(',', 1).apply("abc"), None);
    }

    #[test]
    fn split_substr_paper_example() {
        // SplitSubstr(' ', 2nd piece, 0, 1) extracts the first initial of the
        // first name in "gosgnach, simon" -> "s".
        assert_eq!(
            Unit::split_substr(' ', 1, 0, 1).apply("gosgnach, simon").as_deref(),
            Some("s")
        );
    }

    #[test]
    fn split_substr_out_of_piece() {
        assert_eq!(Unit::split_substr(' ', 1, 0, 20).apply("a bc"), None);
        assert_eq!(Unit::split_substr(' ', 5, 0, 1).apply("a bc"), None);
    }

    #[test]
    fn two_char_split_substr() {
        let u = Unit::two_char_split_substr('-', ' ', 1, 0, 4);
        assert_eq!(u.apply("10230 - 124 STREET"), None); // piece 1 is "" (between ' ' and '-')
        let u = Unit::two_char_split_substr('(', ')', 1, 0, 3);
        assert_eq!(u.apply("(780) 433-6545").as_deref(), Some("780"));
    }

    #[test]
    fn split_split_substr_autojoin_unit() {
        // "john.smith@ualberta.ca": split on '@' -> piece 0 "john.smith",
        // split that on '.' -> piece 1 "smith", substr(0,5).
        let u = Unit::split_split_substr('@', 0, '.', 1, 0, 5);
        assert_eq!(u.apply("john.smith@ualberta.ca").as_deref(), Some("smith"));
    }

    #[test]
    fn literal_ignores_input() {
        let u = Unit::literal("@ualberta.ca");
        assert_eq!(u.apply("anything").as_deref(), Some("@ualberta.ca"));
        assert_eq!(u.apply("").as_deref(), Some("@ualberta.ca"));
        assert!(u.is_constant());
    }

    #[test]
    fn kind_and_parameter_count() {
        assert_eq!(Unit::substr(0, 1).kind(), UnitKind::Substr);
        assert_eq!(UnitKind::Substr.parameter_count(), 2);
        assert_eq!(UnitKind::SplitSubstr.parameter_count(), 4);
        assert_eq!(UnitKind::TwoCharSplitSubstr.parameter_count(), 5);
        assert_eq!(UnitKind::SplitSplitSubstr.parameter_count(), 6);
        assert_eq!(UnitKind::Literal.parameter_count(), 1);
        assert!(!UnitKind::Split.is_constant());
        assert!(UnitKind::Literal.is_constant());
    }

    #[test]
    fn apply_into_appends_or_leaves_untouched() {
        let mut out = String::from("x");
        assert!(Unit::substr(0, 2).apply_into(&cs("abc"), &mut out));
        assert_eq!(out, "xab");
        assert!(!Unit::substr(0, 9).apply_into(&cs("abc"), &mut out));
        assert_eq!(out, "xab");
    }

    #[test]
    fn try_apply_errors() {
        assert_eq!(
            Unit::substr(0, 9).try_apply_to(&cs("abc")),
            Err(UnitError::RangeOutOfBounds {
                start: 0,
                end: 9,
                len: 3
            })
        );
        assert_eq!(
            Unit::split(',', 3).try_apply_to(&cs("a,b")),
            Err(UnitError::PieceOutOfBounds { index: 3, pieces: 2 })
        );
        assert_eq!(
            Unit::split(',', 1).try_apply_to(&cs("abc")),
            Err(UnitError::DelimiterMissing { delim: ',' })
        );
        assert_eq!(Unit::split(',', 0).try_apply_to(&cs("a,b")), Ok("a".into()));
    }

    #[test]
    fn fixed_output_len() {
        assert_eq!(Unit::literal("abc").fixed_output_char_len(), Some(3));
        assert_eq!(Unit::substr(2, 5).fixed_output_char_len(), Some(3));
        assert_eq!(Unit::split(',', 0).fixed_output_char_len(), None);
        assert_eq!(
            Unit::split_substr(',', 0, 1, 4).fixed_output_char_len(),
            Some(3)
        );
    }

    #[test]
    fn display_round_readable() {
        assert_eq!(Unit::substr(0, 3).to_string(), "Substr(0,3)");
        assert_eq!(Unit::split(',', 1).to_string(), "Split(',',1)");
        assert_eq!(
            Unit::split_substr(' ', 1, 0, 1).to_string(),
            "SplitSubstr(' ',1,0,1)"
        );
        assert_eq!(Unit::literal("a b").to_string(), "Literal(\"a b\")");
    }

    #[test]
    fn unicode_inputs() {
        assert_eq!(Unit::substr(0, 4).apply("café au lait").as_deref(), Some("café"));
        assert_eq!(
            Unit::split(' ', 1).apply("café au lait").as_deref(),
            Some("au")
        );
    }

    #[test]
    fn serde_round_trip_via_display_eq() {
        // serde derives exist for persistence of discovered transformations;
        // check a unit survives a JSON-like round trip through serde_test-free
        // means: use serde's in-memory representation via bincode-free check.
        // (We only assert the derive compiles and Clone/Eq behave.)
        let u = Unit::two_char_split_substr('(', ')', 1, 0, 3);
        let v = u.clone();
        assert_eq!(u, v);
    }

    #[test]
    fn lemma1_case_between_delims() {
        // SplitSplitSubstr selecting text between c1 and c2 is expressible
        // with TwoCharSplitSubstr (Lemma 1 case 3).
        let input = "aaa,bbb;ccc";
        let ssub = Unit::split_split_substr(',', 1, ';', 0, 0, 3); // "bbb"
        let two = Unit::two_char_split_substr(',', ';', 1, 0, 3); // "bbb"
        assert_eq!(ssub.apply(input), two.apply(input));
        assert_eq!(ssub.apply(input).as_deref(), Some("bbb"));
    }

    #[test]
    fn lemma1_case_no_delim_is_substr() {
        // Neither delimiter occurs: SplitSplitSubstr == Substr (Lemma 1 case 1).
        let input = "abcdef";
        let ssub = Unit::split_split_substr(',', 0, ';', 0, 1, 4);
        assert_eq!(ssub.apply(input), Unit::substr(1, 4).apply(input));
    }
}
