//! Differential proptest gate for the columnar arena (satellite of the
//! arena PR): arena-backed normalize / fingerprint / gram streams must be
//! bit-identical to the retained `Vec<String>` reference representation,
//! serially and across {1, 2, 4} worker threads.
//!
//! Row shapes deliberately mix multi-byte UTF-8 (Greek, CJK, combining
//! marks), the context-sensitive capital sigma (the one lowercase mapping
//! that depends on position), empty cells, whitespace runs, and cells
//! shorter than `n_min` — the places where a streaming re-implementation
//! could silently diverge from the per-cell reference.

use proptest::prelude::*;
use tjoin_text::{
    char_ngrams, chunk_map_rows, column_fingerprint, column_fingerprint_on, fingerprint64,
    for_each_ngram_in_sizes, normalize_for_matching, ColumnArena, NormalizeOptions,
};

/// One generated cell. `kind` picks a shape, `seed` varies content.
fn cell_from(kind: u8, seed: u64) -> String {
    let a = seed % 97;
    let b = (seed / 97) % 53;
    match kind % 10 {
        // Plain ASCII name-style cell.
        0 => format!("last{a:02}, first{b:02}"),
        // Leading/trailing/internal whitespace runs (trim + collapse paths).
        1 => format!("  last{a:02}   first{b:02}\t "),
        // Multi-byte Greek, including final-position capital sigma.
        2 => format!("ΟΔΥΣΣΕΥΣ {a:02}"),
        // Sigma mid-word vs word-final on the same row.
        3 => format!("ΣΟΦΙΑ{b:02} ΛΟΓΟΣ"),
        // CJK cells (3-byte UTF-8, chunk-boundary stress).
        4 => format!("名前『{a:02}』データ"),
        // Mixed-width with combining mark and sharp s.
        5 => format!("Straße-{b:02} é\u{301}{a:02}"),
        // Empty cell.
        6 => String::new(),
        // Shorter than the default n_min = 4 after normalization.
        7 => "ab".to_owned(),
        // Uppercase ASCII (lowercase fast path).
        8 => format!("ROW {a:02} VALUE {b:02}"),
        // NBSP and unusual whitespace (collapse treats all `char::is_whitespace`).
        _ => format!("a{a:02}\u{a0}\u{2009}b{b:02}"),
    }
}

fn build_cells(specs: &[(u8, u64)]) -> Vec<String> {
    specs.iter().map(|&(k, s)| cell_from(k, s)).collect()
}

const FLAG_COMBOS: [NormalizeOptions; 4] = [
    NormalizeOptions { lowercase: true, trim: true, collapse_whitespace: true },
    NormalizeOptions { lowercase: true, trim: false, collapse_whitespace: false },
    NormalizeOptions { lowercase: false, trim: true, collapse_whitespace: true },
    NormalizeOptions { lowercase: false, trim: false, collapse_whitespace: false },
];

/// The per-cell reference gram stream: one `char_ngrams` pass per size,
/// concatenated size-major — the shape `for_each_ngram_in_sizes` fuses.
fn reference_gram_stream(text: &str, n_min: usize, n_max: usize) -> Vec<String> {
    let mut out = Vec::new();
    if n_min == 0 {
        return out;
    }
    for n in n_min..=n_max {
        let grams = char_ngrams(text, n);
        if grams.is_empty() && n > n_min {
            break;
        }
        out.extend(grams.into_iter().map(str::to_owned));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arena construction round-trips the reference cells verbatim, and the
    /// content fingerprint (the corpus interning key) is representation-
    /// independent.
    #[test]
    fn arena_roundtrip_and_fingerprint_match_reference(
        specs in prop::collection::vec((0u8..10, 0u64..1_000_000), 0..32),
    ) {
        let cells = build_cells(&specs);
        let arena = ColumnArena::try_from_cells(&cells).expect("test columns fit u32 space");
        prop_assert_eq!(arena.len(), cells.len());
        for (i, cell) in cells.iter().enumerate() {
            prop_assert_eq!(arena.cell(i), cell.as_str());
            prop_assert_eq!(fingerprint64(arena.cell(i)), fingerprint64(cell));
        }
        prop_assert_eq!(column_fingerprint_on(&arena), column_fingerprint(&cells));
    }

    /// The streaming arena normalization is bit-identical to per-cell
    /// `normalize_for_matching` under every flag combination.
    #[test]
    fn arena_normalize_matches_reference(
        specs in prop::collection::vec((0u8..10, 0u64..1_000_000), 0..24),
    ) {
        let cells = build_cells(&specs);
        for options in FLAG_COMBOS {
            let arena = ColumnArena::try_normalized(&cells, &options)
                .expect("test columns fit u32 space");
            prop_assert_eq!(arena.len(), cells.len());
            for (i, cell) in cells.iter().enumerate() {
                let reference = normalize_for_matching(cell, &options);
                prop_assert_eq!(
                    arena.cell(i), reference.as_str(),
                    "normalize diverged on cell {} under {:?}", i, options
                );
            }
        }
    }

    /// Chunked per-worker normalization concatenated in chunk order is
    /// bit-identical — cells, offsets, fingerprint — to the serial streaming
    /// append, at every worker count and flag combination (the multicore
    /// equi-join normalization restored by the serve PR).
    #[test]
    fn parallel_normalization_matches_serial(
        specs in prop::collection::vec((0u8..10, 0u64..1_000_000), 0..24),
    ) {
        let cells = build_cells(&specs);
        for options in FLAG_COMBOS {
            let serial = ColumnArena::try_normalized(&cells, &options)
                .expect("test columns fit u32 space");
            for workers in [1usize, 2, 3, 4] {
                let parallel = ColumnArena::try_normalized_parallel(&cells, &options, workers)
                    .expect("test columns fit u32 space");
                prop_assert_eq!(
                    &parallel, &serial,
                    "parallel normalization diverged at {} workers under {:?}",
                    workers, options
                );
                prop_assert_eq!(
                    parallel.content_fingerprint(), serial.content_fingerprint()
                );
            }
        }
    }

    /// The fused gram stream over arena cells equals the per-size reference
    /// over the `Vec<String>` cells — same grams, same order.
    #[test]
    fn arena_gram_stream_matches_reference(
        specs in prop::collection::vec((0u8..10, 0u64..1_000_000), 0..24),
        n_min in 1usize..4,
        extra in 0usize..4,
    ) {
        let cells = build_cells(&specs);
        let arena = ColumnArena::try_from_cells(&cells).expect("test columns fit u32 space");
        let n_max = n_min + extra;
        for (i, cell) in cells.iter().enumerate() {
            let mut streamed = Vec::new();
            for_each_ngram_in_sizes(arena.cell(i), n_min, n_max, &mut |g| {
                streamed.push(g.to_owned());
            });
            prop_assert_eq!(
                streamed,
                reference_gram_stream(cell, n_min, n_max),
                "gram stream diverged on cell {} for sizes {}..={}", i, n_min, n_max
            );
        }
    }

    /// The full arena-backed per-row hot path — normalize, fingerprint, gram
    /// stream — run through the parallel row scanner at {1, 2, 4} workers is
    /// bit-identical (values AND order) to the serial `Vec<String>` reference.
    #[test]
    fn threaded_arena_scan_matches_serial_reference(
        specs in prop::collection::vec((0u8..10, 0u64..1_000_000), 0..24),
    ) {
        let cells = build_cells(&specs);
        let options = NormalizeOptions::default();
        let normalized = ColumnArena::try_normalized(&cells, &options)
            .expect("test columns fit u32 space");

        // Serial reference: per-cell owned-String normalization feeding the
        // same fingerprint + gram pipeline.
        let reference: Vec<(u64, Vec<String>)> = cells
            .iter()
            .map(|cell| {
                let norm = normalize_for_matching(cell, &options);
                let grams = reference_gram_stream(&norm, 2, 4);
                (fingerprint64(&norm), grams)
            })
            .collect();

        for workers in [1usize, 2, 4] {
            let scanned: Vec<(u64, Vec<String>)> =
                chunk_map_rows(normalized.len(), workers, |row| {
                    let cell = normalized.cell(row);
                    let mut grams = Vec::new();
                    for_each_ngram_in_sizes(cell, 2, 4, &mut |g| grams.push(g.to_owned()));
                    (fingerprint64(cell), grams)
                });
            prop_assert_eq!(
                &scanned, &reference,
                "arena scan diverged from serial reference at {} workers", workers
            );
        }
    }
}
