//! Differential proptest gate for the append / invalidation model: every
//! appendable text artifact, grown over a **random append schedule** (a
//! random column split into a base plus up to four deltas at random cut
//! points), must be bit-identical to its from-scratch build over each
//! prefix — after *every* step, not only at the end.
//!
//! Cell shapes reuse the arena suite's adversarial mix (multi-byte UTF-8,
//! final sigma, empty cells, cells shorter than `n_min`, odd whitespace) —
//! the places where an incremental replay could diverge from a fresh pass.
//!
//! The corpus schedule additionally chains [`GramCorpus::append_column`]
//! across the deltas (warming the artifact caches first, so the
//! carry-forward path — not rebuild-on-access — is what gets checked) and
//! compares each grown entry against a fresh corpus intern of the same
//! prefix.

use proptest::prelude::*;
use tjoin_text::{
    column_fingerprint_on, ColumnArena, ColumnFingerprint, ColumnSignature, ColumnStats,
    GramCorpus, NGramIndex, NormalizeOptions,
};

/// One generated cell. `kind` picks a shape, `seed` varies content.
fn cell_from(kind: u8, seed: u64) -> String {
    let a = seed % 97;
    let b = (seed / 97) % 53;
    match kind % 10 {
        0 => format!("last{a:02}, first{b:02}"),
        1 => format!("  last{a:02}   first{b:02}\t "),
        2 => format!("ΟΔΥΣΣΕΥΣ {a:02}"),
        3 => format!("ΣΟΦΙΑ{b:02} ΛΟΓΟΣ"),
        4 => format!("名前『{a:02}』データ"),
        5 => format!("Straße-{b:02} é\u{301}{a:02}"),
        6 => String::new(),
        7 => "ab".to_owned(),
        8 => format!("ROW {a:02} VALUE {b:02}"),
        _ => format!("a{a:02}\u{a0}\u{2009}b{b:02}"),
    }
}

/// Splits `cells` into a schedule of segments at the (deduplicated,
/// sorted) cut positions derived from `cuts`. The first segment is the
/// base (possibly empty); the rest are the append deltas.
fn schedule(cells: &[String], cuts: &[u16]) -> Vec<Vec<String>> {
    let mut points: Vec<usize> = cuts.iter().map(|&c| c as usize % (cells.len() + 1)).collect();
    points.push(0);
    points.push(cells.len());
    points.sort_unstable();
    points.dedup();
    points
        .windows(2)
        .map(|w| cells[w[0]..w[1]].to_vec())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arena, stats, index, signature, and content fingerprint grown over
    /// a random append schedule equal fresh builds over every prefix.
    #[test]
    fn appended_artifacts_equal_fresh_builds_at_every_step(
        specs in prop::collection::vec((0u8..10, 0u64..1_000_000), 1..40),
        cuts in prop::collection::vec(0u16..10_000, 0..4),
        n_min in 2usize..5,
        extra in 0usize..4,
    ) {
        let n_max = n_min + extra;
        let cells: Vec<String> = specs.iter().map(|&(k, s)| cell_from(k, s)).collect();
        let segments = schedule(&cells, &cuts);

        let mut prefix: Vec<String> = segments[0].clone();
        let mut arena = ColumnArena::try_from_cells(&prefix).expect("base arena");
        let mut stats = ColumnStats::build_on(&prefix, n_min, n_max);
        let mut index = NGramIndex::try_build_on(&prefix, n_min, n_max).expect("base index");
        let mut signature = ColumnSignature::build(&prefix, &stats, n_min);
        let mut fingerprint = ColumnFingerprint::empty();
        for cell in &prefix {
            fingerprint.absorb(cell);
        }

        for delta in &segments[1..] {
            let from_row = prefix.len();
            prefix.extend(delta.iter().cloned());

            arena.append_rows(delta).expect("arena append");
            // Stats first: the signature's append contract requires stats
            // already covering the final column.
            stats.append_rows_on(&prefix, from_row, n_min, n_max);
            index.try_append_on(&prefix, from_row).expect("index append");
            signature.append_rows(&prefix, &stats, from_row, n_max);
            for cell in delta {
                fingerprint.absorb(cell);
            }

            let fresh_arena = ColumnArena::try_from_cells(&prefix).expect("fresh arena");
            prop_assert_eq!(&arena, &fresh_arena, "arena diverged at row {}", from_row);
            let fresh_stats = ColumnStats::build_on(&prefix, n_min, n_max);
            prop_assert_eq!(&stats, &fresh_stats, "stats diverged at row {}", from_row);
            let fresh_index =
                NGramIndex::try_build_on(&prefix, n_min, n_max).expect("fresh index");
            prop_assert_eq!(&index, &fresh_index, "index diverged at row {}", from_row);
            let fresh_signature = ColumnSignature::build(&prefix, &fresh_stats, n_min);
            prop_assert_eq!(
                &signature, &fresh_signature,
                "signature diverged at row {}", from_row
            );
            prop_assert_eq!(
                fingerprint.finish(),
                column_fingerprint_on(&prefix),
                "content fingerprint diverged at row {}", from_row
            );
        }
        prop_assert_eq!(prefix, cells);
    }

    /// `GramCorpus::append_column` chained over a random schedule: each
    /// grown entry's cached artifacts equal a fresh corpus intern of the
    /// same prefix — the carry-forward path, since every step warms the
    /// caches before appending.
    #[test]
    fn corpus_append_chain_equals_fresh_interns(
        specs in prop::collection::vec((0u8..10, 0u64..1_000_000), 2..30),
        cuts in prop::collection::vec(0u16..10_000, 1..4),
        n_min in 2usize..5,
    ) {
        let n_max = n_min + 2;
        let cells: Vec<String> = specs.iter().map(|&(k, s)| cell_from(k, s)).collect();
        let segments = schedule(&cells, &cuts);

        let corpus = GramCorpus::new(NormalizeOptions::default());
        let mut prefix: Vec<String> = segments[0].clone();
        let base = corpus.column(&prefix);
        // Warm every artifact so appends exercise carry-forward, not
        // rebuild-on-access.
        let _ = (base.stats(n_min, n_max), base.index(n_min, n_max), base.signature(n_min, n_max));
        let mut fingerprint = tjoin_text::column_fingerprint(&prefix);

        for delta in &segments[1..] {
            prefix.extend(delta.iter().cloned());
            fingerprint = corpus
                .append_column(fingerprint, &delta[..])
                .expect("append must succeed on a resident entry");
            let grown = corpus
                .try_column(&prefix)
                .expect("grown entry must be resident under its final fingerprint");

            let oracle_corpus = GramCorpus::new(NormalizeOptions::default());
            let fresh = oracle_corpus.column(&prefix);
            prop_assert_eq!(grown.normalized(), fresh.normalized(), "normalized arena diverged");
            prop_assert_eq!(
                &*grown.stats(n_min, n_max),
                &*fresh.stats(n_min, n_max),
                "corpus stats diverged"
            );
            prop_assert_eq!(
                &*grown.index(n_min, n_max),
                &*fresh.index(n_min, n_max),
                "corpus index diverged"
            );
            prop_assert_eq!(
                &*grown.signature(n_min, n_max),
                &*fresh.signature(n_min, n_max),
                "corpus signature diverged"
            );
        }
        let stats = corpus.stats();
        prop_assert_eq!(stats.appends, segments.len() - 1, "append count");
        prop_assert_eq!(stats.appends_degraded, 0, "no degraded appends without faults");
    }
}
