//! Character n-gram extraction.
//!
//! Placeholders are "common n-grams among the source and the target for all
//! values of n" (Section 4.1.1) and row matching selects a *representative*
//! n-gram per size per source row (Section 4.2.1, Algorithm 1). Both consume
//! the extraction routines in this module.

use crate::fxhash::FxHashSet;

/// All character n-grams of exactly length `n` (in characters) of `text`, in
/// order of occurrence, including duplicates.
///
/// Returns an empty vector when `n == 0` or `n` exceeds the character length.
///
/// ```
/// use tjoin_text::char_ngrams;
/// assert_eq!(char_ngrams("abcd", 2), vec!["ab", "bc", "cd"]);
/// assert_eq!(char_ngrams("abcd", 5), Vec::<&str>::new());
/// ```
pub fn char_ngrams(text: &str, n: usize) -> Vec<&str> {
    if n == 0 {
        return Vec::new();
    }
    let boundaries: Vec<usize> = text
        .char_indices()
        .map(|(b, _)| b)
        .chain(std::iter::once(text.len()))
        .collect();
    let chars = boundaries.len() - 1;
    if n > chars {
        return Vec::new();
    }
    (0..=chars - n)
        .map(|i| &text[boundaries[i]..boundaries[i + n]])
        .collect()
}

/// All character n-grams with sizes in `[n_min, n_max]` (inclusive), each
/// paired with its size. Sizes larger than the string are skipped.
pub fn char_ngrams_in_range(text: &str, n_min: usize, n_max: usize) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    for n in n_min..=n_max {
        let grams = char_ngrams(text, n);
        if grams.is_empty() && n > n_min {
            break; // larger sizes will also be empty
        }
        out.extend(grams.into_iter().map(|g| (n, g)));
    }
    out
}

/// Calls `f` with every n-gram of `text` for sizes `n_min..=n_max`, size-
/// major and in occurrence order within each size — the same stream
/// [`char_ngrams`] yields per size, but with the char-boundary pass done
/// once for all sizes and zero intermediate `Vec`s. This is the hot-loop
/// form used by arena-backed [`crate::ColumnStats`] / fingerprint builds.
///
/// Matches `char_ngrams` edge behaviour: `n_min == 0` yields nothing (the
/// per-size loop in the reference breaks on the first empty size), and
/// sizes beyond the char count are skipped.
pub fn for_each_ngram_in_sizes<'t>(
    text: &'t str,
    n_min: usize,
    n_max: usize,
    f: &mut impl FnMut(&'t str),
) {
    if n_min == 0 {
        return;
    }
    let boundaries: Vec<usize> = text
        .char_indices()
        .map(|(b, _)| b)
        .chain(std::iter::once(text.len()))
        .collect();
    let chars = boundaries.len() - 1;
    for n in n_min..=n_max.min(chars) {
        for i in 0..=chars - n {
            f(&text[boundaries[i]..boundaries[i + n]]);
        }
    }
}

/// The set of *distinct* n-grams of length `n`.
pub fn distinct_char_ngrams(text: &str, n: usize) -> FxHashSet<&str> {
    char_ngrams(text, n).into_iter().collect()
}

/// Number of distinct n-grams of length `n` in `text`.
pub fn count_distinct_ngrams(text: &str, n: usize) -> usize {
    distinct_char_ngrams(text, n).len()
}

/// Jaccard similarity of the distinct n-gram sets of two strings; used by the
/// Auto-FuzzyJoin baseline's similarity-measure family.
pub fn ngram_jaccard(a: &str, b: &str, n: usize) -> f64 {
    let sa = distinct_char_ngrams(a, n);
    let sb = distinct_char_ngrams(b, n);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

/// Containment similarity |A ∩ B| / |A| of distinct n-gram sets (asymmetric);
/// Auto-FuzzyJoin favours containment-style measures when one side is longer.
pub fn ngram_containment(a: &str, b: &str, n: usize) -> f64 {
    let sa = distinct_char_ngrams(a, n);
    if sa.is_empty() {
        return 0.0;
    }
    let sb = distinct_char_ngrams(b, n);
    let inter = sa.intersection(&sb).count();
    inter as f64 / sa.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ngrams_basic() {
        assert_eq!(char_ngrams("abcd", 1), vec!["a", "b", "c", "d"]);
        assert_eq!(char_ngrams("abcd", 2), vec!["ab", "bc", "cd"]);
        assert_eq!(char_ngrams("abcd", 4), vec!["abcd"]);
        assert_eq!(char_ngrams("abcd", 5), Vec::<&str>::new());
        assert_eq!(char_ngrams("abcd", 0), Vec::<&str>::new());
        assert_eq!(char_ngrams("", 1), Vec::<&str>::new());
    }

    #[test]
    fn ngrams_unicode() {
        assert_eq!(char_ngrams("héllo", 2), vec!["hé", "él", "ll", "lo"]);
    }

    #[test]
    fn ngrams_in_range() {
        let grams = char_ngrams_in_range("abc", 2, 4);
        assert_eq!(grams, vec![(2, "ab"), (2, "bc"), (3, "abc")]);
        // n_min larger than the string yields nothing.
        assert!(char_ngrams_in_range("ab", 3, 5).is_empty());
    }

    #[test]
    fn fused_stream_matches_per_size_reference() {
        for text in ["", "a", "héllo", "abcdef", "αβγδ"] {
            for (n_min, n_max) in [(0, 3), (1, 1), (1, 4), (2, 10), (4, 2)] {
                let mut fused = Vec::new();
                for_each_ngram_in_sizes(text, n_min, n_max, &mut |g| fused.push(g));
                let mut reference = Vec::new();
                for n in n_min..=n_max {
                    if n == 0 {
                        reference.clear();
                        break;
                    }
                    reference.extend(char_ngrams(text, n));
                }
                assert_eq!(fused, reference, "text {text:?} range {n_min}..={n_max}");
            }
        }
    }

    #[test]
    fn distinct_counts() {
        assert_eq!(count_distinct_ngrams("aaaa", 1), 1);
        assert_eq!(count_distinct_ngrams("aaaa", 2), 1);
        assert_eq!(count_distinct_ngrams("abab", 2), 2);
        assert_eq!(count_distinct_ngrams("", 2), 0);
    }

    #[test]
    fn jaccard() {
        assert!((ngram_jaccard("abcd", "abcd", 2) - 1.0).abs() < 1e-12);
        assert!((ngram_jaccard("abcd", "wxyz", 2) - 0.0).abs() < 1e-12);
        assert!((ngram_jaccard("", "", 2) - 1.0).abs() < 1e-12);
        assert!((ngram_jaccard("ab", "", 2) - 0.0).abs() < 1e-12);
        // "abc" vs "abd": 2-grams {ab, bc} vs {ab, bd} -> 1/3
        assert!((ngram_jaccard("abc", "abd", 2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn containment() {
        assert!((ngram_containment("ab", "xxabxx", 2) - 1.0).abs() < 1e-12);
        assert!((ngram_containment("abcd", "ab", 2) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(ngram_containment("", "abc", 2), 0.0);
    }
}
