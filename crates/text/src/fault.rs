//! Deterministic fault injection and poison-tolerant locking.
//!
//! The batch layer's robustness claims ("a panicking pair yields a failed
//! report, everything else is bit-identical to the fault-free oracle") are
//! only testable if faults can be injected *deterministically*: at a named
//! point, in a chosen pair, with a chosen effect. This module provides
//! that harness plus the small lock-recovery helpers production code uses
//! to survive poisoned mutexes.
//!
//! # Design
//!
//! * **Types are always compiled** — [`FaultSite`], [`FaultKind`],
//!   [`FaultPlan`], and the helpers below exist unconditionally, so
//!   signatures never change with the feature.
//! * **Firing is gated** behind `feature = "fault-injection"`. Without the
//!   feature, [`fire`] is an inlineable no-op and [`should_poison`] is
//!   `false`: production builds pay nothing.
//! * **Scoping is thread-local and keyed by pair.** The batch runner wraps
//!   each task in [`with_pair_scope`]; a fault `(pair, site, kind)` fires
//!   only when code reaches `site` while `pair`'s scope is active on the
//!   current thread. Injected panic payloads name the site and pair, so
//!   the resulting `PairError` messages are deterministic and assertable.
//!
//! # Effects
//!
//! * [`FaultKind::Panic`] — `fire(site)` panics with a deterministic
//!   message.
//! * [`FaultKind::Slow`] — `fire(site)` sleeps, so a configured deadline
//!   budget trips at the next check (the deterministic way to exercise
//!   `PairStatus::TimedOut`).
//! * [`FaultKind::PoisonLock`] — lock-owning sites consult
//!   [`should_poison`] and poison their mutex via [`poison_mutex`] before
//!   locking; production's [`lock_recover`] must shrug it off.

use std::any::Any;
use std::fmt;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Named injection points across the pipeline. All sites execute on the
/// batch worker thread driving the pair, so the thread-local scope set by
/// [`with_pair_scope`] is visible at every one of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Entry of the row-matching phase (pipeline phase 1).
    MatchPhase,
    /// Inside a corpus column normalization build.
    CorpusColumnBuild,
    /// Inside a corpus `ColumnStats` build (also the poison point of the
    /// per-column stats cache lock).
    CorpusStatsBuild,
    /// Inside a corpus `NGramIndex` build (also the poison point of the
    /// per-column index cache lock).
    CorpusIndexBuild,
    /// Inside a corpus `ColumnSignature` build (also the poison point of the
    /// per-column signature cache lock).
    CorpusSignatureBuild,
    /// Inside `GramCorpus::append_column`'s artifact carry-forward: a panic
    /// here degrades the appended entry to rebuild-on-next-access (empty
    /// artifact caches) — never silently stale artifacts.
    CorpusAppend,
    /// Entry of the synthesis phase (pipeline phase 2).
    SynthesisPhase,
    /// Entry of the synthesis coverage scan.
    CoverageScan,
    /// Entry of the equi-join phase (pipeline phase 4).
    JoinPhase,
    /// The batch runner's per-pair report slot store (poison point of the
    /// slot lock).
    SlotStore,
    /// Entry of a batch scheduler task, *outside* every guarded pipeline
    /// phase — a panic here exercises the scheduler-level `catch_unwind`
    /// backstop (`PairPhase::Scheduler`) and its elapsed-at-failure
    /// attribution.
    SchedulerTask,
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The effect an injected fault has when its site fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with a deterministic message naming the site and pair.
    Panic,
    /// Sleep for the given duration (drives deadline budgets).
    Slow(Duration),
    /// Poison the site's mutex before it is locked (lock-owning sites
    /// only; other sites ignore it).
    PoisonLock,
}

/// One registered fault: `(pair, site, kind)` plus an optional *fire
/// budget* — `None` fires on every visit (the original semantics),
/// `Some(n)` fires on the first `n` visits of its scope and then goes
/// inert, which is how transient failures ("panic once, then succeed")
/// are modeled for the corpus retry policy.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FaultSpec {
    pair: usize,
    site: FaultSite,
    kind: FaultKind,
    budget: Option<usize>,
}

/// A deterministic injection plan: faults keyed by `(pair index, site)`.
/// Plans are plain data and always available; they only *do* anything when
/// executed under `feature = "fault-injection"` (see [`with_pair_scope`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style: injects `kind` when `pair` reaches `site`.
    pub fn inject(mut self, pair: usize, site: FaultSite, kind: FaultKind) -> Self {
        self.faults.push(FaultSpec { pair, site, kind, budget: None });
        self
    }

    /// Builder-style: injects `kind` for the first `times` visits of
    /// `(pair, site)` within one scope, then goes inert — the
    /// fail-then-succeed shape the corpus retry policy's transient-recovery
    /// gate injects. Fire counts are per [`with_pair_scope`] activation, so
    /// the same plan replayed on a fresh scope fires again.
    pub fn inject_limited(
        mut self,
        pair: usize,
        site: FaultSite,
        kind: FaultKind,
        times: usize,
    ) -> Self {
        self.faults.push(FaultSpec { pair, site, kind, budget: Some(times) });
        self
    }

    /// The fault registered for `(pair, site)`, if any (first entry wins,
    /// ignoring fire budgets — this is the static plan lookup the batch
    /// runner uses for slot poisoning, not the consuming scope lookup).
    pub fn fault_for(&self, pair: usize, site: FaultSite) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|f| f.pair == pair && f.site == site)
            .map(|f| f.kind)
    }

    /// The distinct pair indices the plan touches, ascending.
    pub fn faulted_pairs(&self) -> Vec<usize> {
        let mut pairs: Vec<usize> = self.faults.iter().map(|f| f.pair).collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// The distinct pair indices carrying a fault of `kind`, ascending.
    pub fn pairs_with_kind(&self, kind: FaultKind) -> Vec<usize> {
        let mut pairs: Vec<usize> =
            self.faults.iter().filter(|f| f.kind == kind).map(|f| f.pair).collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Number of registered faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Locks a mutex, recovering the guard from a poisoned lock instead of
/// panicking. Correct wherever the protected data is consistent at every
/// unlock point — the corpus caches and batch report slots qualify: their
/// critical sections insert fully built values, so a panic observed by the
/// lock (an injected poison, or a caught build panic on another thread)
/// never leaves partial state behind.
pub fn lock_recover<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Renders a caught panic payload (`Box<dyn Any + Send>`) into a `String`,
/// preserving `&str` / `String` payloads verbatim.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Poisons `mutex` by panicking while holding it on a short-lived scoped
/// thread (the panic is contained there; the poison flag remains). Test
/// harness for [`lock_recover`] and the `PoisonLock` fault kind.
pub fn poison_mutex<T: ?Sized + Send>(mutex: &Mutex<T>) {
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            let _guard = mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            panic!("poisoning mutex (injected)");
        });
        // The worker's panic is the point; swallow its Err so the poison —
        // not the panic — is what escapes this helper.
        let _ = handle.join();
    });
}

#[cfg(feature = "fault-injection")]
mod active {
    use super::FaultPlan;
    use std::cell::RefCell;

    /// The scope active on a thread: the pair index, the plan, and one
    /// fire count per plan entry (consumed by budget-limited faults).
    pub(super) struct Scope {
        pub(super) pair: usize,
        pub(super) plan: FaultPlan,
        pub(super) fired: Vec<usize>,
    }

    thread_local! {
        /// The scope active on this thread, if any.
        pub(super) static SCOPE: RefCell<Option<Scope>> = const { RefCell::new(None) };
    }

    /// RAII reset so an unwinding fault leaves no scope behind.
    pub(super) struct ScopeGuard;

    impl Drop for ScopeGuard {
        fn drop(&mut self) {
            SCOPE.with(|s| *s.borrow_mut() = None);
        }
    }
}

/// Runs `f` with `plan` active for `pair` on the current thread: any
/// [`fire`] / [`should_poison`] reached inside `f` (on this thread)
/// consults the plan. The scope is reset even if `f` unwinds. Without
/// `feature = "fault-injection"` this just runs `f`.
pub fn with_pair_scope<R>(plan: &FaultPlan, pair: usize, f: impl FnOnce() -> R) -> R {
    #[cfg(feature = "fault-injection")]
    {
        active::SCOPE.with(|s| {
            *s.borrow_mut() = Some(active::Scope {
                pair,
                plan: plan.clone(),
                fired: vec![0; plan.faults.len()],
            })
        });
        let _guard = active::ScopeGuard;
        f()
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = (plan, pair);
        f()
    }
}

/// Consuming scope lookup: the first `(pair, site)` entry whose fire budget
/// is not yet exhausted. Unlimited entries (`budget: None`) always match;
/// limited entries count this visit against their budget. `want_poison`
/// selects the kind class — [`should_poison`] must only consume
/// `PoisonLock` budgets and [`fire`] must only consume the rest, otherwise
/// a lock-owning site's poison probe would silently eat a limited
/// `Panic`/`Slow` fire before the build reaches it.
#[cfg(feature = "fault-injection")]
fn active_fault(site: FaultSite, want_poison: bool) -> Option<(usize, FaultKind)> {
    active::SCOPE.with(|s| {
        let mut scope = s.borrow_mut();
        let scope = scope.as_mut()?;
        for i in 0..scope.plan.faults.len() {
            let spec = scope.plan.faults[i]; // FaultSpec is Copy
            if spec.pair != scope.pair || spec.site != site {
                continue;
            }
            if (spec.kind == FaultKind::PoisonLock) != want_poison {
                continue;
            }
            match spec.budget {
                None => return Some((scope.pair, spec.kind)),
                Some(budget) if scope.fired[i] < budget => {
                    scope.fired[i] += 1;
                    return Some((scope.pair, spec.kind));
                }
                Some(_) => {} // exhausted: fall through to later entries
            }
        }
        None
    })
}

/// Injection point: fires the active scope's fault for `site`, if any.
/// `Panic` panics with the deterministic message
/// `"injected panic at {site} (pair {pair})"`; `Slow` sleeps;
/// `PoisonLock` does nothing here (lock-owning sites use
/// [`should_poison`]). A no-op without `feature = "fault-injection"`.
#[inline]
pub fn fire(site: FaultSite) {
    #[cfg(feature = "fault-injection")]
    {
        match active_fault(site, false) {
            Some((pair, FaultKind::Panic)) => {
                panic!("injected panic at {site} (pair {pair})");
            }
            Some((_, FaultKind::Slow(duration))) => std::thread::sleep(duration),
            Some((_, FaultKind::PoisonLock)) | None => {}
        }
    }
    #[cfg(not(feature = "fault-injection"))]
    let _ = site;
}

/// Whether the active scope injects a `PoisonLock` at `site`. Lock-owning
/// sites call this before locking and poison via [`poison_mutex`] when
/// `true`. Always `false` without `feature = "fault-injection"`.
#[inline]
pub fn should_poison(site: FaultSite) -> bool {
    #[cfg(feature = "fault-injection")]
    {
        matches!(active_fault(site, true), Some((_, FaultKind::PoisonLock)))
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = site;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_lookup_and_pair_listing() {
        let plan = FaultPlan::new()
            .inject(3, FaultSite::MatchPhase, FaultKind::Panic)
            .inject(1, FaultSite::JoinPhase, FaultKind::PoisonLock)
            .inject(3, FaultSite::SlotStore, FaultKind::Slow(Duration::from_millis(5)));
        assert_eq!(plan.fault_for(3, FaultSite::MatchPhase), Some(FaultKind::Panic));
        assert_eq!(plan.fault_for(3, FaultSite::JoinPhase), None);
        assert_eq!(plan.fault_for(0, FaultSite::MatchPhase), None);
        assert_eq!(plan.faulted_pairs(), vec![1, 3]);
        assert_eq!(plan.pairs_with_kind(FaultKind::Panic), vec![3]);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn lock_recover_survives_poison() {
        let mutex = Mutex::new(41);
        poison_mutex(&mutex);
        assert!(mutex.is_poisoned());
        *lock_recover(&mutex) += 1;
        assert_eq!(*lock_recover(&mutex), 42);
    }

    #[test]
    fn panic_message_preserves_payloads() {
        let from_str = std::panic::catch_unwind(|| panic!("literal payload")).unwrap_err();
        assert_eq!(panic_message(&*from_str), "literal payload");
        let from_string =
            std::panic::catch_unwind(|| std::panic::panic_any(format!("built {}", 7))).unwrap_err();
        assert_eq!(panic_message(&*from_string), "built 7");
        let opaque = std::panic::catch_unwind(|| std::panic::panic_any(17u32)).unwrap_err();
        assert_eq!(panic_message(&*opaque), "non-string panic payload");
    }

    #[test]
    fn fire_is_inert_outside_a_scope() {
        // With or without the feature: no scope means nothing fires.
        fire(FaultSite::MatchPhase);
        assert!(!should_poison(FaultSite::SlotStore));
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn scoped_panic_fires_for_its_pair_only() {
        let plan = FaultPlan::new().inject(2, FaultSite::MatchPhase, FaultKind::Panic);
        // Pair 1: the fault is keyed to pair 2, nothing fires.
        with_pair_scope(&plan, 1, || fire(FaultSite::MatchPhase));
        // Pair 2: fires with the deterministic message.
        let payload = std::panic::catch_unwind(|| {
            with_pair_scope(&plan, 2, || fire(FaultSite::MatchPhase));
        })
        .unwrap_err();
        assert_eq!(panic_message(&*payload), "injected panic at MatchPhase (pair 2)");
        // The scope was reset despite the unwind.
        fire(FaultSite::MatchPhase);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn limited_fault_fires_then_goes_inert_per_scope() {
        let plan = FaultPlan::new().inject_limited(0, FaultSite::CorpusColumnBuild, FaultKind::Panic, 2);
        // Static lookup ignores budgets.
        assert_eq!(plan.fault_for(0, FaultSite::CorpusColumnBuild), Some(FaultKind::Panic));
        let visits_until_quiet = || {
            with_pair_scope(&plan, 0, || {
                let mut fired = 0;
                for _ in 0..5 {
                    // Poison probes at the same site must not consume the
                    // Panic budget (lock-owning sites probe before building).
                    assert!(!should_poison(FaultSite::CorpusColumnBuild));
                    if std::panic::catch_unwind(|| fire(FaultSite::CorpusColumnBuild)).is_err() {
                        fired += 1;
                    }
                }
                fired
            })
        };
        // First scope: exactly the budgeted two visits panic, then inert.
        assert_eq!(visits_until_quiet(), 2);
        // A fresh scope re-arms the budget.
        assert_eq!(visits_until_quiet(), 2);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn scoped_poison_consulted_at_site() {
        let plan = FaultPlan::new().inject(0, FaultSite::SlotStore, FaultKind::PoisonLock);
        with_pair_scope(&plan, 0, || {
            assert!(should_poison(FaultSite::SlotStore));
            assert!(!should_poison(FaultSite::MatchPhase));
        });
        assert!(!should_poison(FaultSite::SlotStore));
    }
}
