//! Per-run cost budgets: a configuration ([`RunBudget`]) plus a cheap
//! atomic cancellation token ([`BudgetToken`]) threaded through the
//! pipeline's existing chunk boundaries.
//!
//! The paper's repository workloads are adversarially heterogeneous: one
//! pathological column pair can dominate a batch run's wall-clock. A
//! [`RunBudget`] bounds what a single match → synthesize → join is allowed
//! to spend along three axes:
//!
//! * **wall-clock deadline** — checked cooperatively at loop boundaries
//!   (the matcher's row scan, the coverage scan's row loop, the selection
//!   heap's pop loop, the equi-join apply loop);
//! * **row cap / byte cap** — deterministic *admission* limits charged once
//!   with the pair's size, so an oversized pair is rejected identically on
//!   every run and at every thread count.
//!
//! A token trips exactly once: the first cause to exceed is recorded
//! atomically and every later [`BudgetToken::check`] — from any thread —
//! returns that same [`BudgetExceeded`] cause. Checks are a relaxed atomic
//! load plus (when a deadline is set) an `Instant::now()` call; with no
//! budget configured the pipeline passes `None` and pays nothing.
//!
//! Budget overruns are *graceful degradation*, not errors: the batch layer
//! converts them into `PairStatus::TimedOut` reports carrying whatever
//! phase metrics the pair completed, and the rest of the repository runs
//! unaffected.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Why a budget tripped (the first cause wins and is sticky).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetExceeded {
    /// The wall-clock deadline passed.
    Deadline,
    /// The charged byte total exceeded the byte cap.
    Bytes,
    /// The charged row total exceeded the row cap.
    Rows,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetExceeded::Deadline => write!(f, "wall-clock deadline exceeded"),
            BudgetExceeded::Bytes => write!(f, "byte cap exceeded"),
            BudgetExceeded::Rows => write!(f, "row cap exceeded"),
        }
    }
}

/// A per-pair cost budget: unset axes are unlimited. `Default` is fully
/// unlimited (a token that never trips).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Wall-clock deadline measured from [`RunBudget::token`].
    pub deadline: Option<Duration>,
    /// Cap on charged bytes (the pair's total cell text at admission).
    pub max_bytes: Option<u64>,
    /// Cap on charged rows (source rows + target rows at admission).
    pub max_rows: Option<u64>,
}

impl RunBudget {
    /// A budget with every axis unlimited.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Builder-style wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Builder-style byte cap.
    pub fn with_byte_cap(mut self, max_bytes: u64) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }

    /// Builder-style row cap.
    pub fn with_row_cap(mut self, max_rows: u64) -> Self {
        self.max_rows = Some(max_rows);
        self
    }

    /// Starts the budget's clock: returns a fresh token whose deadline (if
    /// any) is measured from *now* and whose charge counters are zero.
    pub fn token(&self) -> BudgetToken {
        BudgetToken {
            deadline: self.deadline.map(|d| Instant::now() + d),
            max_bytes: self.max_bytes.unwrap_or(u64::MAX),
            max_rows: self.max_rows.unwrap_or(u64::MAX),
            bytes: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            tripped: AtomicU8::new(TRIP_NONE),
        }
    }
}

const TRIP_NONE: u8 = 0;
const TRIP_DEADLINE: u8 = 1;
const TRIP_BYTES: u8 = 2;
const TRIP_ROWS: u8 = 3;

fn cause_of(code: u8) -> BudgetExceeded {
    match code {
        TRIP_DEADLINE => BudgetExceeded::Deadline,
        TRIP_BYTES => BudgetExceeded::Bytes,
        TRIP_ROWS => BudgetExceeded::Rows,
        _ => unreachable!("no cause recorded"),
    }
}

/// The live cancellation token of one [`RunBudget`] run (see the module
/// docs). Shared by reference across the pipeline's scoped worker threads;
/// all methods take `&self` and are thread-safe.
#[derive(Debug)]
pub struct BudgetToken {
    deadline: Option<Instant>,
    max_bytes: u64,
    max_rows: u64,
    bytes: AtomicU64,
    rows: AtomicU64,
    tripped: AtomicU8,
}

impl BudgetToken {
    /// Records the first cause to trip; returns the recorded cause (which
    /// may be an earlier racer's — every caller sees one consistent cause).
    fn trip(&self, code: u8) -> BudgetExceeded {
        match self.tripped.compare_exchange(TRIP_NONE, code, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => cause_of(code),
            Err(prev) => cause_of(prev),
        }
    }

    /// Charges `n` rows against the row cap, then runs [`Self::check`].
    pub fn charge_rows(&self, n: usize) -> Result<(), BudgetExceeded> {
        let total = self.rows.fetch_add(n as u64, Ordering::Relaxed).saturating_add(n as u64);
        if total > self.max_rows {
            return Err(self.trip(TRIP_ROWS));
        }
        self.check()
    }

    /// Charges `n` bytes against the byte cap, then runs [`Self::check`].
    pub fn charge_bytes(&self, n: usize) -> Result<(), BudgetExceeded> {
        let total = self.bytes.fetch_add(n as u64, Ordering::Relaxed).saturating_add(n as u64);
        if total > self.max_bytes {
            return Err(self.trip(TRIP_BYTES));
        }
        self.check()
    }

    /// The cooperative cancellation check: returns the recorded cause if
    /// the token already tripped, trips on a passed deadline, and is `Ok`
    /// otherwise. Cheap enough for per-row / per-round loop boundaries.
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        match self.tripped.load(Ordering::Relaxed) {
            TRIP_NONE => {}
            code => return Err(cause_of(code)),
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(self.trip(TRIP_DEADLINE));
            }
        }
        Ok(())
    }

    /// The tripped cause, if any ([`Self::check`] as an `Option`).
    pub fn exceeded(&self) -> Option<BudgetExceeded> {
        self.check().err()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let token = RunBudget::unlimited().token();
        assert_eq!(token.check(), Ok(()));
        assert_eq!(token.charge_rows(1_000_000), Ok(()));
        assert_eq!(token.charge_bytes(usize::MAX / 2), Ok(()));
        assert_eq!(token.exceeded(), None);
    }

    #[test]
    fn row_cap_trips_deterministically_and_stays_tripped() {
        let token = RunBudget::unlimited().with_row_cap(10).token();
        assert_eq!(token.charge_rows(10), Ok(()));
        assert_eq!(token.charge_rows(1), Err(BudgetExceeded::Rows));
        // Sticky: every later check reports the same first cause.
        assert_eq!(token.check(), Err(BudgetExceeded::Rows));
        assert_eq!(token.charge_bytes(1), Err(BudgetExceeded::Rows));
        assert_eq!(token.exceeded(), Some(BudgetExceeded::Rows));
    }

    #[test]
    fn byte_cap_trips() {
        let token = RunBudget::unlimited().with_byte_cap(100).token();
        assert_eq!(token.charge_bytes(64), Ok(()));
        assert_eq!(token.charge_bytes(64), Err(BudgetExceeded::Bytes));
    }

    #[test]
    fn zero_deadline_trips_at_first_check() {
        let token = RunBudget::unlimited().with_deadline(Duration::ZERO).token();
        assert_eq!(token.check(), Err(BudgetExceeded::Deadline));
        assert_eq!(token.charge_rows(0), Err(BudgetExceeded::Deadline));
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        let token = RunBudget::unlimited().with_deadline(Duration::from_secs(3600)).token();
        assert_eq!(token.check(), Ok(()));
    }

    #[test]
    fn first_cause_wins_across_threads() {
        let token = RunBudget::unlimited().with_row_cap(0).with_byte_cap(0).token();
        let causes: Vec<BudgetExceeded> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let token = &token;
                    scope.spawn(move || {
                        if i % 2 == 0 {
                            token.charge_rows(1).unwrap_err()
                        } else {
                            token.charge_bytes(1).unwrap_err()
                        }
                    })
                })
                .collect();
            // Test-only join: a panic here is the test failing, not a
            // user-data path.
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Whatever raced first, every thread saw the one recorded cause.
        assert!(causes.windows(2).all(|w| w[0] == w[1]), "{causes:?}");
    }
}
