//! 64-bit string fingerprints.
//!
//! Identity-carrying hashes shared by the inverted n-gram index (posting
//! lists keyed by gram fingerprint instead of owned gram text) and the
//! fingerprint equi-join (target rows bucketed by the fingerprint of their
//! normalized value, with an exact-string confirm on probe).
//!
//! The rotate-multiply Fx hash is NOT used here: it lacks avalanche and
//! produces real collisions on short structured strings, which is fine for
//! a `HashMap`'s bucket index but not for a fingerprint that stands in for
//! the string itself. This fingerprint seeds with the byte length (so
//! prefixes of different sizes cannot collide structurally) and runs the
//! splitmix64 finalizer per 8-byte chunk — full avalanche, and at 64 bits a
//! corpus would need billions of distinct strings before collisions become
//! likely. Callers that cannot tolerate even that (the equi-join) confirm
//! with an exact string comparison after the fingerprint lookup.

/// The splitmix64 finalizer: full-avalanche mixing of one 64-bit word.
/// Crate-visible so the signature module can drive its one-permutation
/// MinHash from the same mixer the fingerprints use.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-sensitive chaining of a running fingerprint with the next
/// element's fingerprint — the same absorb-and-mix step [`fingerprint64`]
/// applies per 8-byte chunk, exposed so sequences can be fingerprinted
/// element-wise. The gram corpus keys whole *columns* with it: fold every
/// cell's `fingerprint64` into a length-seeded accumulator and two columns
/// collide only if the 64-bit chain does.
#[inline]
pub fn fingerprint64_chain(acc: u64, next: u64) -> u64 {
    mix64(acc ^ next)
}

/// An **appendable** column content fingerprint: the order-sensitive chain
/// of per-cell [`fingerprint64`]s plus the cell count, folded together only
/// at [`Self::finish`]. Because the count is absorbed at the *end* (not in
/// the seed), the running state after absorbing rows `0..k` is exactly the
/// prefix state a fresh fold over the final column passes through — which
/// is what makes incremental corpus appends produce **bit-identical** keys
/// to a from-scratch fingerprint of the final column. The finished value is
/// still both order- and length-sensitive: two columns collide only if the
/// 64-bit chain does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnFingerprint {
    chain: u64,
    count: u64,
}

impl ColumnFingerprint {
    /// The fingerprint state of an empty column.
    pub fn empty() -> Self {
        Self { chain: 0x9E37_79B9_7F4A_7C15, count: 0 }
    }

    /// Absorbs one more cell (appended at the end of the column).
    #[inline]
    pub fn absorb(&mut self, cell: &str) {
        self.absorb_fingerprint(fingerprint64(cell));
    }

    /// Absorbs a cell already reduced to its [`fingerprint64`].
    #[inline]
    pub fn absorb_fingerprint(&mut self, fingerprint: u64) {
        self.chain = fingerprint64_chain(self.chain, fingerprint);
        self.count += 1;
    }

    /// Cells absorbed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The finished column fingerprint: the chain mixed with the cell
    /// count. Non-destructive — more cells can be absorbed afterwards and
    /// `finish` called again (the corpus re-keys an entry per append this
    /// way).
    #[inline]
    pub fn finish(&self) -> u64 {
        fingerprint64_chain(self.chain, self.count)
    }
}

impl Default for ColumnFingerprint {
    fn default() -> Self {
        Self::empty()
    }
}

/// The 64-bit fingerprint of a string: length-seeded splitmix64 mixing over
/// 8-byte chunks (see the module docs for the design rationale).
#[inline]
pub fn fingerprint64(text: &str) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15 ^ (text.len() as u64);
    let mut chunks = text.as_bytes().chunks_exact(8);
    for chunk in &mut chunks {
        // Invariant is local (audited): `chunks_exact(8)` yields only
        // 8-byte slices by contract, so the array conversion cannot fail
        // regardless of the input text.
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        h = mix64(h ^ word);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut word = 0u64;
        for (i, b) in rem.iter().enumerate() {
            word |= (*b as u64) << (8 * i);
        }
        h = mix64(h ^ word);
    }
    mix64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fxhash::FxHashSet;

    #[test]
    fn deterministic() {
        assert_eq!(fingerprint64("abc"), fingerprint64("abc"));
        assert_eq!(fingerprint64(""), fingerprint64(""));
    }

    #[test]
    fn length_seeding_separates_prefixes() {
        assert_ne!(fingerprint64("a"), fingerprint64("aa"));
        assert_ne!(fingerprint64("aa"), fingerprint64("aaa"));
    }

    #[test]
    fn chain_is_order_and_length_sensitive() {
        let fp = |values: &[&str]| {
            values.iter().fold(
                fingerprint64("") ^ values.len() as u64,
                |acc, v| fingerprint64_chain(acc, fingerprint64(v)),
            )
        };
        assert_eq!(fp(&["a", "b"]), fp(&["a", "b"]));
        assert_ne!(fp(&["a", "b"]), fp(&["b", "a"]));
        assert_ne!(fp(&["a"]), fp(&["a", "a"]));
        assert_ne!(fp(&["x", ""]), fp(&["", "x"]));
    }

    #[test]
    fn column_fingerprint_appends_are_prefix_consistent() {
        // The running state after absorbing a prefix, then the suffix, must
        // equal one pass over the whole column — the invariant incremental
        // corpus appends rely on.
        let cells = ["alpha", "beta", "", "gamma delta", "ε"];
        for split in 0..=cells.len() {
            let mut incremental = ColumnFingerprint::empty();
            for cell in &cells[..split] {
                incremental.absorb(cell);
            }
            for cell in &cells[split..] {
                incremental.absorb(cell);
            }
            let mut batch = ColumnFingerprint::empty();
            for cell in &cells {
                batch.absorb(cell);
            }
            assert_eq!(incremental, batch);
            assert_eq!(incremental.finish(), batch.finish());
        }
    }

    #[test]
    fn column_fingerprint_separates_shape() {
        let fp = |cells: &[&str]| {
            let mut f = ColumnFingerprint::empty();
            for cell in cells {
                f.absorb(cell);
            }
            f.finish()
        };
        assert_ne!(fp(&["a", "b"]), fp(&["b", "a"]));
        assert_ne!(fp(&["ab"]), fp(&["a", "b"]));
        assert_ne!(fp(&[]), fp(&[""]));
        assert_ne!(fp(&["a"]), fp(&["a", "a"]));
    }

    #[test]
    fn no_collisions_on_a_structured_corpus() {
        // Short structured strings are exactly where Fx-style hashes
        // collide; the splitmix fingerprint must keep them distinct.
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        let mut count = 0usize;
        for i in 0..2000u32 {
            for s in [
                format!("value-{i:04}"),
                format!("{i:04}-value"),
                format!("(780) 433-{i:04}"),
            ] {
                assert!(seen.insert(fingerprint64(&s)), "collision on {s:?}");
                count += 1;
            }
        }
        assert_eq!(seen.len(), count);
    }
}
