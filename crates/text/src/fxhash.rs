//! A fast, non-cryptographic hash function and hash-map/set aliases.
//!
//! The synthesis engine stores millions of candidate transformations and
//! per-row non-covering-unit caches in hash sets (Sections 4.1.5 and 6.6 of
//! the paper), so hashing speed matters more than DoS resistance here. This
//! is an in-repo implementation of the well-known "Fx" multiply-rotate hash
//! used by rustc (the workspace deliberately keeps its dependency set to the
//! approved offline crates, so we do not pull in `rustc-hash`).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx hash (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Rotation applied between words.
const ROTATE: u32 = 5;

/// A fast, non-cryptographic hasher (Fx hash, 64-bit).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // Invariant is local (audited): `chunks_exact(8)` yields only
            // 8-byte slices by contract, so the conversion cannot fail for
            // any caller-supplied bytes.
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = 0u64;
            for (i, b) in rem.iter().enumerate() {
                word |= (*b as u64) << (8 * i);
            }
            // Mix in the remainder length so "a" and "a\0" differ.
            self.add_to_hash(word ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes a single value with the Fx hasher (convenience for fingerprinting).
pub fn fx_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(fx_hash_one(&"hello"), fx_hash_one(&"hello"));
        assert_eq!(fx_hash_one(&42u64), fx_hash_one(&42u64));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(fx_hash_one(&"hello"), fx_hash_one(&"hellp"));
        assert_ne!(fx_hash_one(&1u64), fx_hash_one(&2u64));
        assert_ne!(fx_hash_one(&"a"), fx_hash_one(&"a\0"));
        assert_ne!(fx_hash_one(&""), fx_hash_one(&"\0"));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, usize> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn collision_rate_is_reasonable() {
        // Hash 10k short strings; distinct hashes should be almost all of them.
        let mut hashes = FxHashSet::default();
        for i in 0..10_000u32 {
            hashes.insert(fx_hash_one(&format!("row-{i}")));
        }
        assert!(hashes.len() > 9_990, "too many collisions: {}", hashes.len());
    }

    #[test]
    fn write_partial_words() {
        // Exercise the remainder path with 1..7 byte inputs.
        let mut seen = FxHashSet::default();
        for len in 1..8usize {
            let s: String = std::iter::repeat_n('x', len).collect();
            assert!(seen.insert(fx_hash_one(&s)));
        }
        assert_eq!(seen.len(), 7);
    }
}
