//! Cheap per-column discovery signatures.
//!
//! The discovery layer (crates/discovery) must decide *which* column pairs
//! are worth the expensive match→synthesize→join pipeline without running
//! it. This module provides the per-column summary that decision reads:
//!
//! * **Anchor set** — the sorted, deduplicated [`fingerprint64`]s of every
//!   gram of size exactly `n_min` in the normalized column. The n-gram
//!   matcher only ever pairs rows through a shared gram with size in
//!   `[n_min, n_max]`, and every shared gram of length `n ≥ n_min` contains
//!   a shared length-`n_min` substring — so **two columns with disjoint
//!   anchor sets cannot produce a single candidate row match**. Exact
//!   anchor-set intersection is therefore a sound pruning predicate
//!   (recall 1.0 by construction), which is what lets the discovery
//!   shortlist keep the repo's differential-oracle discipline.
//! * **MinHash lanes** — a fixed-width ([`SIGNATURE_WIDTH`] × u64)
//!   one-permutation MinHash over the *full* gram-fingerprint stream of the
//!   column's [`ColumnStats`] (all sizes in `[n_min, n_max]`): each distinct
//!   gram fingerprint is mixed **once** (`mix64(fp)`), its top bits pick a
//!   lane, and the lane keeps the minimum mixed value it sees. One hash per
//!   gram keeps the signature pass far cheaper than the pipeline work it
//!   prunes — the k-independent-permutations variant costs
//!   `SIGNATURE_WIDTH` hashes per gram and made cold discovery slower than
//!   the all-pairs run it replaces. Matching-lane counting over the lanes
//!   both columns populate estimates gram-set Jaccard similarity, which
//!   scores and orders the shortlist. The estimate is only ever a *score* —
//!   never a pruning predicate — so its variance cannot cost recall.
//!
//! Both halves are pure functions of the normalized cell contents and the
//! gram range: per-lane minima and set membership are order-independent, so
//! signatures are bit-identical regardless of hash-map iteration order or
//! thread count. Signatures are cached in the [`crate::corpus::GramCorpus`]
//! next to stats/index (see `CorpusColumn::try_signature`), so a resident
//! corpus serves warm discovery without recomputing anything.

use crate::arena::CellText;
use crate::fingerprint::{fingerprint64, mix64, ColumnFingerprint};
use crate::fxhash::FxHashSet;
use crate::ngram::for_each_ngram_in_sizes;
use crate::scoring::ColumnStats;

#[cfg(debug_assertions)]
use crate::fxhash::FxHashMap;

/// Number of 64-bit MinHash lanes in a [`ColumnSignature`].
///
/// 32 one-permutation lanes estimate Jaccard with standard error on the
/// order of `sqrt(j(1-j)/32) ≤ 0.09` — ample for *ordering* a shortlist
/// (the only thing the estimate does) at 256 bytes per column and a single
/// `mix64` per distinct gram. Must stay a power of two: the lane index is
/// the mixed fingerprint's top `log2(SIGNATURE_WIDTH)` bits.
pub const SIGNATURE_WIDTH: usize = 32;

/// Bits of the mixed fingerprint that select the lane.
const LANE_BITS: u32 = SIGNATURE_WIDTH.trailing_zeros();

/// Debug-build shadow map asserting that distinct gram texts never share a
/// fingerprint — the same guard [`ColumnStats`] and `NGramIndex` builds
/// carry, factored out so the signature build (and its forced-collision
/// regression test) can use it directly. Release builds compile it to
/// nothing.
#[derive(Debug, Default)]
pub struct CollisionGuard {
    #[cfg(debug_assertions)]
    shadow: FxHashMap<u64, String>,
}

impl CollisionGuard {
    /// Creates an empty guard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `gram` fingerprints to `key`; panics (debug builds
    /// only) if a *different* gram already claimed the same key.
    #[inline]
    pub fn check(&mut self, key: u64, gram: &str) {
        #[cfg(debug_assertions)]
        {
            let prev = self.shadow.entry(key).or_insert_with(|| gram.to_owned());
            debug_assert_eq!(
                prev, gram,
                "gram fingerprint collision: {prev:?} vs {gram:?} both hash to {key:#x}"
            );
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = (key, gram);
        }
    }
}

/// The per-column discovery signature: MinHash lanes over the full gram
/// stream plus the exact size-`n_min` anchor fingerprint set (see the
/// module docs for why the split matters — anchors prune, lanes score).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnSignature {
    /// One-permutation MinHash lanes: each distinct gram fingerprint is
    /// mixed once, routed to lane `mix >> (64 - LANE_BITS)`, and the lane
    /// keeps `min(mix)`. `u64::MAX` marks a lane no gram landed in.
    lanes: [u64; SIGNATURE_WIDTH],
    /// Sorted, deduplicated fingerprints of every gram of size exactly
    /// `anchor_size` in the normalized column.
    anchors: Vec<u64>,
    /// The anchor gram size (`n_min` of the range the signature serves).
    anchor_size: usize,
    /// Row count of the signed column (copied from its stats).
    row_count: usize,
    /// Distinct grams across the full `[n_min, n_max]` range (copied from
    /// the stats; the cardinality term of the overlap estimate).
    distinct_grams: usize,
    /// Appendable content fingerprint of the signed (normalized) cells —
    /// [`Self::content_fingerprint`] finishes it into the deterministic
    /// tie-break key discovery budget cuts order by.
    content: ColumnFingerprint,
}

impl ColumnSignature {
    /// Builds the signature for a normalized `column` whose gram statistics
    /// over `[n_min, n_max]` are `stats`. The column must be the same one
    /// the stats were built on — the corpus cache guarantees this by
    /// building both from its interned normalized arena.
    pub fn build<C: CellText + ?Sized>(column: &C, stats: &ColumnStats, n_min: usize) -> Self {
        let mut lanes = [u64::MAX; SIGNATURE_WIDTH];
        for fp in stats.gram_fingerprints() {
            let h = mix64(fp);
            let lane = (h >> (64 - LANE_BITS)) as usize;
            if h < lanes[lane] {
                lanes[lane] = h;
            }
        }
        let mut guard = CollisionGuard::new();
        let mut anchor_set: FxHashSet<u64> = FxHashSet::default();
        let mut content = ColumnFingerprint::empty();
        for cell in 0..column.cell_count() {
            let text = column.cell(cell);
            content.absorb(text);
            for_each_ngram_in_sizes(text, n_min, n_min, &mut |g| {
                let key = fingerprint64(g);
                guard.check(key, g);
                anchor_set.insert(key);
            });
        }
        let mut anchors: Vec<u64> = anchor_set.into_iter().collect();
        anchors.sort_unstable();
        Self {
            lanes,
            anchors,
            anchor_size: n_min,
            row_count: stats.row_count,
            distinct_grams: stats.distinct_ngrams(),
            content,
        }
    }

    /// Folds the rows `from_row..` of `column` into the signature — the
    /// **incremental append** path. `stats` must be the (already appended)
    /// statistics of the *final* column over the same `[anchor_size, n_max]`
    /// range this signature was built with, and `self` must cover exactly
    /// `column`'s first `from_row` cells. The MinHash lane fold is a
    /// per-lane minimum — idempotent and order-independent — so re-folding
    /// grams the old rows already contributed changes nothing, and the
    /// anchor merge is a sorted-set union: the appended signature is
    /// **bit-identical** to a fresh [`Self::build`] over the final column
    /// (the differential proptest suite enforces this).
    pub fn append_rows<C: CellText + ?Sized>(
        &mut self,
        column: &C,
        stats: &ColumnStats,
        from_row: usize,
        n_max: usize,
    ) {
        assert_eq!(
            self.row_count, from_row,
            "append_rows: signature covers {} rows but the delta starts at row {from_row}",
            self.row_count
        );
        assert_eq!(
            stats.row_count,
            column.cell_count(),
            "append_rows: stats must already cover the final column"
        );
        let mut guard = CollisionGuard::new();
        let mut new_anchors: FxHashSet<u64> = FxHashSet::default();
        for cell in from_row..column.cell_count() {
            let text = column.cell(cell);
            self.content.absorb(text);
            // Lane fold over the full size range: min-merging a gram the
            // old rows already folded is a no-op, so repeats cost nothing
            // but correctness-wise are free.
            for_each_ngram_in_sizes(text, self.anchor_size, n_max, &mut |g| {
                let key = fingerprint64(g);
                guard.check(key, g);
                let h = mix64(key);
                let lane = (h >> (64 - LANE_BITS)) as usize;
                if h < self.lanes[lane] {
                    self.lanes[lane] = h;
                }
            });
            // Anchor pass at exactly `anchor_size` (gram sizes are in
            // characters, so the size filter must come from the extraction
            // range, not the gram's byte length).
            for_each_ngram_in_sizes(text, self.anchor_size, self.anchor_size, &mut |g| {
                let key = fingerprint64(g);
                if self.anchors.binary_search(&key).is_err() {
                    new_anchors.insert(key);
                }
            });
        }
        if !new_anchors.is_empty() {
            self.anchors.extend(new_anchors);
            self.anchors.sort_unstable();
        }
        self.row_count = stats.row_count;
        self.distinct_grams = stats.distinct_ngrams();
    }

    /// The sorted anchor fingerprint set (size-`n_min` grams).
    pub fn anchors(&self) -> &[u64] {
        &self.anchors
    }

    /// The finished content fingerprint of the signed (normalized) cells —
    /// a pure function of the column content, used by discovery as the
    /// deterministic tie-break under MinHash estimate ties.
    pub fn content_fingerprint(&self) -> u64 {
        self.content.finish()
    }

    /// The anchor gram size this signature was built with.
    pub fn anchor_size(&self) -> usize {
        self.anchor_size
    }

    /// Row count of the signed column.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Distinct grams across the signature's full size range.
    pub fn distinct_grams(&self) -> usize {
        self.distinct_grams
    }

    /// Exact size of the anchor intersection with `other` (linear merge
    /// over the two sorted sets). This is the *pruning* predicate: zero
    /// shared anchors proves zero candidate row matches.
    pub fn shared_anchors(&self, other: &Self) -> usize {
        debug_assert_eq!(
            self.anchor_size, other.anchor_size,
            "anchor sets of different gram sizes are not comparable"
        );
        let (mut i, mut j, mut shared) = (0usize, 0usize, 0usize);
        while i < self.anchors.len() && j < other.anchors.len() {
            match self.anchors[i].cmp(&other.anchors[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    shared += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        shared
    }

    /// MinHash estimate of the gram-set Jaccard similarity with `other`:
    /// the fraction of matching lanes among the lanes at least one of the
    /// two columns populated. Lanes empty on *both* sides carry no
    /// information (their shared `u64::MAX` sentinel must not read as
    /// agreement) and are excluded; a lane empty on exactly one side is a
    /// genuine mismatch. Zero when either column has no grams at all.
    pub fn estimated_jaccard(&self, other: &Self) -> f64 {
        if self.distinct_grams == 0 || other.distinct_grams == 0 {
            return 0.0;
        }
        let (mut matching, mut comparable) = (0usize, 0usize);
        for (a, b) in self.lanes.iter().zip(&other.lanes) {
            if *a == u64::MAX && *b == u64::MAX {
                continue;
            }
            comparable += 1;
            if a == b {
                matching += 1;
            }
        }
        if comparable == 0 {
            return 0.0;
        }
        matching as f64 / comparable as f64
    }

    /// Estimated *overlap* (shared distinct grams) with `other`, derived
    /// from the Jaccard estimate and the exact per-column cardinalities:
    /// `|A∩B| = j·|A∪B|` and `|A∪B| = (|A|+|B|)/(1+j)`. A deterministic
    /// f64 used only to score and order the shortlist.
    pub fn estimated_overlap(&self, other: &Self) -> f64 {
        let j = self.estimated_jaccard(other);
        j * (self.distinct_grams + other.distinct_grams) as f64 / (1.0 + j)
    }

    /// Estimated memory footprint: the fixed struct (lanes inline) plus the
    /// anchor vector — summed into the corpus's per-column byte accounting
    /// so resident signatures participate in eviction budgets.
    pub fn approximate_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.anchors.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::NormalizeOptions;

    fn sig(rows: &[&str], n_min: usize, n_max: usize) -> ColumnSignature {
        let stats = ColumnStats::build(rows, n_min, n_max);
        ColumnSignature::build(rows, &stats, n_min)
    }

    #[test]
    fn identical_columns_sign_identically() {
        let a = sig(&["davood rafiei", "mario nascimento"], 4, 8);
        let b = sig(&["davood rafiei", "mario nascimento"], 4, 8);
        assert_eq!(a, b);
        assert_eq!(a.estimated_jaccard(&b), 1.0);
        assert_eq!(a.shared_anchors(&b), a.anchors().len());
        assert!(a.anchors().windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
    }

    #[test]
    fn storage_representation_does_not_change_the_signature() {
        let rows: &[&str] = &["alpha beta", "gamma delta epsilon"];
        let stats = ColumnStats::build(rows, 4, 8);
        let vec_sig = ColumnSignature::build(rows, &stats, 4);
        let arena = crate::arena::ColumnArena::try_normalized(rows, &NormalizeOptions::default())
            .expect("tiny column fits the arena");
        let arena_stats = ColumnStats::build_on(&arena, 4, 8);
        let arena_sig = ColumnSignature::build(&arena, &arena_stats, 4);
        // Default normalization lowercases/trims; these rows are already
        // normal form, so both representations carry identical cells.
        assert_eq!(vec_sig, arena_sig);
    }

    #[test]
    fn disjoint_columns_share_nothing() {
        let a = sig(&["aaaaaa"], 4, 6);
        let b = sig(&["bbbbbb"], 4, 6);
        assert_eq!(a.shared_anchors(&b), 0);
        assert_eq!(a.estimated_jaccard(&b), 0.0);
        assert_eq!(a.estimated_overlap(&b), 0.0);
    }

    #[test]
    fn empty_columns_score_zero_not_one() {
        let empty = sig(&[], 4, 6);
        let other = sig(&["abcdef"], 4, 6);
        assert_eq!(empty.distinct_grams(), 0);
        assert_eq!(empty.estimated_jaccard(&other), 0.0);
        // Two empty columns must not read their sentinel lanes as a match.
        assert_eq!(empty.estimated_jaccard(&empty), 0.0);
        assert_eq!(empty.anchors().len(), 0);
    }

    #[test]
    fn shared_substring_yields_shared_anchor() {
        // Any pipeline-joinable pair shares a gram of size >= n_min, hence
        // a size-n_min anchor — the recall-1.0 argument in miniature.
        let a = sig(&["prefix SHARED1234 suffix"], 4, 8);
        let b = sig(&["SHARED1234"], 4, 8);
        assert!(a.shared_anchors(&b) > 0);
    }

    #[test]
    fn rows_shorter_than_anchor_size_contribute_no_anchors() {
        let s = sig(&["abc", "ab"], 4, 6);
        assert_eq!(s.anchors().len(), 0);
        assert_eq!(s.distinct_grams(), 0);
    }

    #[test]
    fn overlap_estimate_tracks_cardinality() {
        let a = sig(&["the quick brown fox jumps over the lazy dog"], 4, 8);
        let same = sig(&["the quick brown fox jumps over the lazy dog"], 4, 8);
        let est = a.estimated_overlap(&same);
        let exact = a.distinct_grams() as f64;
        // Jaccard 1.0 on identical sets makes the estimate exact.
        assert!((est - exact).abs() < 1e-9, "estimate {est} vs exact {exact}");
    }

    #[test]
    fn approximate_bytes_tracks_anchor_count() {
        let small = sig(&["abcd"], 4, 4);
        let large = sig(&["abcdefghijklmnopqrstuvwxyz"], 4, 8);
        assert!(large.approximate_bytes() > small.approximate_bytes());
        assert!(small.approximate_bytes() >= std::mem::size_of::<ColumnSignature>());
    }

    #[test]
    fn appended_signature_matches_fresh_build() {
        let final_rows = ["davood rafiei", "mario nascimento", "αβγδε ζη", "", "rafiei d"];
        for split in 0..=final_rows.len() {
            let mut stats = ColumnStats::build(&final_rows[..split], 4, 8);
            let mut grown = ColumnSignature::build(&final_rows[..split], &stats, 4);
            stats.append_rows_on(final_rows.as_slice(), split, 4, 8);
            grown.append_rows(final_rows.as_slice(), &stats, split, 8);
            let fresh = sig(&final_rows, 4, 8);
            assert_eq!(grown, fresh, "split at {split}");
            assert_eq!(grown.content_fingerprint(), fresh.content_fingerprint());
        }
    }

    #[test]
    fn content_fingerprint_distinguishes_content_under_structural_ties() {
        // Same shape and length, different content: anchors/overlap may
        // tie, the content fingerprint must not.
        let a = sig(&["abcdefgh-1"], 4, 8);
        let b = sig(&["abcdefgh-2"], 4, 8);
        assert_ne!(a.content_fingerprint(), b.content_fingerprint());
        assert_eq!(a.content_fingerprint(), sig(&["abcdefgh-1"], 4, 8).content_fingerprint());
    }

    #[cfg(debug_assertions)]
    #[test]
    fn forced_collision_trips_the_guard() {
        // Regression for the signature collision check: two *different*
        // gram texts claiming one fingerprint must panic in debug builds.
        let mut guard = CollisionGuard::new();
        guard.check(42, "abcd");
        guard.check(42, "abcd"); // same text: fine
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            guard.check(42, "efgh");
        }));
        assert!(result.is_err(), "distinct texts on one key must panic");
    }
}
