//! Deterministic chunked parallel mapping.
//!
//! The matching and join layers parallelize the same way: split a slice
//! into contiguous chunks across a worker budget, map every item, and
//! concatenate the per-chunk results *in chunk order* — so the output is
//! exactly the serial `items.iter().map(f).collect()` regardless of the
//! worker count, and per-item results can be reassembled deterministically
//! by the caller. This module holds that pattern once; the
//! in-order-concatenation invariant every differential oracle suite leans
//! on lives here instead of being re-rolled per call site.

/// Maps `f` over `items` using up to `workers` scoped threads (one
/// contiguous chunk per worker), returning results in item order.
///
/// A budget of 0 or 1 — or fewer than two items — runs serially with no
/// thread overhead. Output is identical at any budget; only wall-clock
/// changes. Panics in `f` propagate to the caller.
pub fn chunk_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.min(items.len()).max(1);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk_size = items.len().div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("chunk_map worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map_at_any_budget() {
        let items: Vec<u32> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3).collect();
        for workers in [0usize, 1, 2, 3, 4, 16, 200] {
            assert_eq!(
                chunk_map(&items, workers, |&x| u64::from(x) * 3),
                expected,
                "diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn empty_and_single_item() {
        assert!(chunk_map(&Vec::<u8>::new(), 4, |&x| x).is_empty());
        assert_eq!(chunk_map(&[7u8], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            chunk_map(&[1u8, 2, 3, 4], 2, |&x| {
                assert!(x < 3, "boom");
                x
            })
        });
        assert!(result.is_err());
    }
}
