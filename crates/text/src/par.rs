//! Deterministic chunked parallel mapping.
//!
//! The matching and join layers parallelize the same way: split a slice
//! into contiguous chunks across a worker budget, map every item, and
//! concatenate the per-chunk results *in chunk order* — so the output is
//! exactly the serial `items.iter().map(f).collect()` regardless of the
//! worker count, and per-item results can be reassembled deterministically
//! by the caller. This module holds that pattern once; the
//! in-order-concatenation invariant every differential oracle suite leans
//! on lives here instead of being re-rolled per call site.
//!
//! Worker panics re-raise in the caller via
//! [`std::panic::resume_unwind`] with the *original payload*, so a
//! `catch_unwind` above the map (the batch runner's per-pair containment)
//! observes exactly the message the worker panicked with. The budgeted
//! variant [`chunk_map_budgeted`] additionally checks a
//! [`BudgetToken`](crate::budget::BudgetToken) before every item and
//! aborts the whole map — discarding partial results, which keeps budgeted
//! aborts all-or-nothing — once the token trips.

use crate::budget::{BudgetExceeded, BudgetToken};

/// Maps `f` over the row indices `0..rows` using up to `workers` scoped
/// threads (one contiguous index range per worker), returning results in
/// row order.
///
/// This is the core the slice-based [`chunk_map`] delegates to — indexing
/// instead of slicing is what lets arena-backed columns (which have no
/// item slice to chunk) share the exact same chunk geometry as the
/// retained `Vec<String>` reference: `chunk_size = rows.div_ceil(workers)`
/// either way, so per-worker boundaries are identical and the differential
/// suites compare like with like.
///
/// A budget of 0 or 1 — or fewer than two rows — runs serially with no
/// thread overhead. Output is identical at any budget; only wall-clock
/// changes. Panics in `f` propagate to the caller with their original
/// payload (via [`std::panic::resume_unwind`]).
pub fn chunk_map_rows<R, F>(rows: usize, workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = workers.min(rows).max(1);
    if workers <= 1 {
        return (0..rows).map(f).collect();
    }
    let chunk_size = rows.div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..rows)
            .step_by(chunk_size)
            .map(|start| {
                let end = (start + chunk_size).min(rows);
                scope.spawn(move || (start..end).map(f).collect::<Vec<R>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    })
}

/// Maps `f` over `items` using up to `workers` scoped threads (one
/// contiguous chunk per worker), returning results in item order.
///
/// A budget of 0 or 1 — or fewer than two items — runs serially with no
/// thread overhead. Output is identical at any budget; only wall-clock
/// changes. Panics in `f` propagate to the caller with their original
/// payload (via [`std::panic::resume_unwind`]).
pub fn chunk_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    chunk_map_rows(items.len(), workers, |i| f(&items[i]))
}

/// [`chunk_map`] under a cooperative budget: every worker checks `budget`
/// before each item and the whole map returns `Err` — with no partial
/// results — once the token trips. With `budget = None` this is exactly
/// [`chunk_map`].
///
/// The `Ok` output is bit-identical to [`chunk_map`] at any worker count;
/// the only budget axis that can trip *mid-map* is the wall-clock deadline
/// (row/byte charges happen at pipeline admission), so deterministic
/// cap-based aborts never depend on chunk boundaries.
pub fn chunk_map_budgeted<T, R, F>(
    items: &[T],
    workers: usize,
    budget: Option<&BudgetToken>,
    f: F,
) -> Result<Vec<R>, BudgetExceeded>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    chunk_map_rows_budgeted(items.len(), workers, budget, |i| f(&items[i]))
}

/// [`chunk_map_rows`] under a cooperative budget — the index-range core of
/// [`chunk_map_budgeted`], with the same all-or-nothing abort semantics.
pub fn chunk_map_rows_budgeted<R, F>(
    rows: usize,
    workers: usize,
    budget: Option<&BudgetToken>,
    f: F,
) -> Result<Vec<R>, BudgetExceeded>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let Some(budget) = budget else {
        return Ok(chunk_map_rows(rows, workers, f));
    };
    let workers = workers.min(rows).max(1);
    if workers <= 1 {
        let mut out = Vec::with_capacity(rows);
        for row in 0..rows {
            budget.check()?;
            out.push(f(row));
        }
        return Ok(out);
    }
    let chunk_size = rows.div_ceil(workers);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..rows)
            .step_by(chunk_size)
            .map(|start| {
                let end = (start + chunk_size).min(rows);
                scope.spawn(move || -> Result<Vec<R>, BudgetExceeded> {
                    let mut out = Vec::with_capacity(end - start);
                    for row in start..end {
                        budget.check()?;
                        out.push(f(row));
                    }
                    Ok(out)
                })
            })
            .collect();
        let mut results = Vec::with_capacity(rows);
        let mut aborted = None;
        for handle in handles {
            match handle.join().unwrap_or_else(|payload| std::panic::resume_unwind(payload)) {
                Ok(chunk) => results.extend(chunk),
                // The token's first recorded cause is shared, so every
                // tripped worker reports the same value.
                Err(cause) => aborted = Some(cause),
            }
        }
        match aborted {
            Some(cause) => Err(cause),
            None => Ok(results),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::RunBudget;
    use std::time::Duration;

    #[test]
    fn matches_serial_map_at_any_budget() {
        let items: Vec<u32> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3).collect();
        for workers in [0usize, 1, 2, 3, 4, 16, 200] {
            assert_eq!(
                chunk_map(&items, workers, |&x| u64::from(x) * 3),
                expected,
                "diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn empty_and_single_item() {
        assert!(chunk_map(&Vec::<u8>::new(), 4, |&x| x).is_empty());
        assert_eq!(chunk_map(&[7u8], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            chunk_map(&[1u8, 2, 3, 4], 2, |&x| {
                assert!(x < 3, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn worker_panic_payload_survives_verbatim() {
        // The original payload — not a generic `.expect` message — must
        // reach the caller's catch_unwind, at 1 worker and at many.
        for workers in [1usize, 2, 4] {
            let payload = std::panic::catch_unwind(|| {
                chunk_map(&[1u8, 2, 3, 4], workers, |&x| {
                    if x == 3 {
                        std::panic::panic_any(format!("poisoned cell {x}"));
                    }
                    x
                })
            })
            .unwrap_err();
            assert_eq!(
                crate::fault::panic_message(&*payload),
                "poisoned cell 3",
                "payload lost at {workers} workers"
            );
        }
    }

    #[test]
    fn row_core_matches_slice_form_at_any_budget() {
        let items: Vec<u32> = (0..103).collect();
        let expected: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3).collect();
        for workers in [0usize, 1, 2, 3, 4, 16, 200] {
            assert_eq!(
                chunk_map_rows(items.len(), workers, |i| u64::from(items[i]) * 3),
                expected,
                "rows form diverged at {workers} workers"
            );
            assert_eq!(
                chunk_map_rows_budgeted(items.len(), workers, None, |i| u64::from(items[i]) * 3)
                    .unwrap(),
                expected,
                "budgeted rows form diverged at {workers} workers"
            );
        }
        assert!(chunk_map_rows(0, 4, |i| i).is_empty());
    }

    #[test]
    fn arena_cells_scan_identically_across_chunk_boundaries() {
        // Multi-byte UTF-8 cells land on both sides of every worker-count
        // chunk seam; the arena-backed parallel scan must reproduce the
        // Vec<String> serial scan bit-for-bit.
        use crate::arena::{CellText, ColumnArena};
        let cells: Vec<String> = (0..37)
            .map(|i| match i % 4 {
                0 => format!("αβγδε-{i}"),
                1 => format!("名前『{i}』"),
                2 => String::new(),
                _ => format!("plain-{i}"),
            })
            .collect();
        let arena = ColumnArena::from_cells(cells.as_slice());
        let expected: Vec<String> = cells.iter().map(|c| c.chars().rev().collect()).collect();
        for workers in [1usize, 2, 4] {
            let via_arena = chunk_map_rows(arena.cell_count(), workers, |row| {
                arena.cell(row).chars().rev().collect::<String>()
            });
            assert_eq!(via_arena, expected, "diverged at {workers} workers");
        }
    }

    #[test]
    fn budgeted_map_without_budget_matches_plain() {
        let items: Vec<u32> = (0..57).collect();
        for workers in [1usize, 3, 8] {
            assert_eq!(
                chunk_map_budgeted(&items, workers, None, |&x| x * 2).unwrap(),
                chunk_map(&items, workers, |&x| x * 2)
            );
        }
    }

    #[test]
    fn budgeted_map_with_live_token_is_identical() {
        let items: Vec<u32> = (0..57).collect();
        let budget = RunBudget::unlimited().token();
        for workers in [1usize, 3, 8] {
            assert_eq!(
                chunk_map_budgeted(&items, workers, Some(&budget), |&x| x * 2).unwrap(),
                chunk_map(&items, workers, |&x| x * 2),
                "diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn tripped_token_aborts_map_at_any_worker_count() {
        let items: Vec<u32> = (0..57).collect();
        let budget = RunBudget::unlimited().with_deadline(Duration::ZERO).token();
        for workers in [1usize, 2, 8] {
            assert_eq!(
                chunk_map_budgeted(&items, workers, Some(&budget), |&x| x).unwrap_err(),
                BudgetExceeded::Deadline,
                "at {workers} workers"
            );
        }
    }
}
