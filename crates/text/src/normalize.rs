//! Normalization applied before matching and synthesis.
//!
//! The paper's running example "ignores the capitalization in text" and its
//! datasets mix case and whitespace conventions freely; the end-to-end
//! pipeline therefore normalizes both columns before row matching and
//! transformation discovery, and joins on normalized values.

use serde::{Deserialize, Serialize};

/// Options controlling [`normalize_for_matching`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NormalizeOptions {
    /// Lowercase the text (default: true).
    pub lowercase: bool,
    /// Trim leading/trailing whitespace (default: true).
    pub trim: bool,
    /// Collapse internal whitespace runs to a single space (default: true).
    pub collapse_whitespace: bool,
}

impl Default for NormalizeOptions {
    fn default() -> Self {
        Self {
            lowercase: true,
            trim: true,
            collapse_whitespace: true,
        }
    }
}

impl NormalizeOptions {
    /// No normalization at all (identity).
    pub fn none() -> Self {
        Self {
            lowercase: false,
            trim: false,
            collapse_whitespace: false,
        }
    }
}

/// Normalizes a cell value for matching according to `options`.
///
/// ```
/// use tjoin_text::{normalize_for_matching, NormalizeOptions};
/// assert_eq!(
///     normalize_for_matching("  Prus-Czarnecki,   Andrzej ", &NormalizeOptions::default()),
///     "prus-czarnecki, andrzej"
/// );
/// ```
pub fn normalize_for_matching(text: &str, options: &NormalizeOptions) -> String {
    let mut s: String = if options.lowercase {
        text.to_lowercase()
    } else {
        text.to_owned()
    };
    if options.trim {
        s = s.trim().to_owned();
    }
    if options.collapse_whitespace {
        let mut out = String::with_capacity(s.len());
        let mut in_ws = false;
        for c in s.chars() {
            if c.is_whitespace() {
                if !in_ws {
                    out.push(' ');
                }
                in_ws = true;
            } else {
                out.push(c);
                in_ws = false;
            }
        }
        s = out;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_normalization() {
        let opts = NormalizeOptions::default();
        assert_eq!(normalize_for_matching("ABC", &opts), "abc");
        assert_eq!(normalize_for_matching("  a  b  ", &opts), "a b");
        assert_eq!(normalize_for_matching("a\t\nb", &opts), "a b");
        assert_eq!(normalize_for_matching("", &opts), "");
    }

    #[test]
    fn none_is_identity() {
        let opts = NormalizeOptions::none();
        assert_eq!(normalize_for_matching("  A  B ", &opts), "  A  B ");
    }

    #[test]
    fn individual_flags() {
        let mut opts = NormalizeOptions::none();
        opts.lowercase = true;
        assert_eq!(normalize_for_matching(" A B ", &opts), " a b ");
        let mut opts = NormalizeOptions::none();
        opts.trim = true;
        assert_eq!(normalize_for_matching(" A B ", &opts), "A B");
        let mut opts = NormalizeOptions::none();
        opts.collapse_whitespace = true;
        assert_eq!(normalize_for_matching("A   B", &opts), "A B");
    }
}
