//! Normalization applied before matching and synthesis.
//!
//! The paper's running example "ignores the capitalization in text" and its
//! datasets mix case and whitespace conventions freely; the end-to-end
//! pipeline therefore normalizes both columns before row matching and
//! transformation discovery, and joins on normalized values.

use serde::{Deserialize, Serialize};

/// Options controlling [`normalize_for_matching`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NormalizeOptions {
    /// Lowercase the text (default: true).
    pub lowercase: bool,
    /// Trim leading/trailing whitespace (default: true).
    pub trim: bool,
    /// Collapse internal whitespace runs to a single space (default: true).
    pub collapse_whitespace: bool,
}

impl Default for NormalizeOptions {
    fn default() -> Self {
        Self {
            lowercase: true,
            trim: true,
            collapse_whitespace: true,
        }
    }
}

impl NormalizeOptions {
    /// No normalization at all (identity).
    pub fn none() -> Self {
        Self {
            lowercase: false,
            trim: false,
            collapse_whitespace: false,
        }
    }
}

/// Normalizes a cell value for matching according to `options`.
///
/// ```
/// use tjoin_text::{normalize_for_matching, NormalizeOptions};
/// assert_eq!(
///     normalize_for_matching("  Prus-Czarnecki,   Andrzej ", &NormalizeOptions::default()),
///     "prus-czarnecki, andrzej"
/// );
/// ```
pub fn normalize_for_matching(text: &str, options: &NormalizeOptions) -> String {
    let mut s: String = if options.lowercase {
        text.to_lowercase()
    } else {
        text.to_owned()
    };
    if options.trim {
        s = s.trim().to_owned();
    }
    if options.collapse_whitespace {
        let mut out = String::with_capacity(s.len());
        let mut in_ws = false;
        for c in s.chars() {
            if c.is_whitespace() {
                if !in_ws {
                    out.push(' ');
                }
                in_ws = true;
            } else {
                out.push(c);
                in_ws = false;
            }
        }
        s = out;
    }
    s
}

/// Streams the normalization of `text` into `out` without allocating a
/// scratch `String`, producing exactly the bytes
/// [`normalize_for_matching`] would return. This is the arena ingest path:
/// [`crate::ColumnArena::try_push_normalized`] appends cells through it so
/// a whole column normalizes with zero per-cell allocations.
///
/// `normalize_for_matching` stays the allocation-per-call reference the
/// differential suites compare against; the equivalence argument for the
/// fused single pass:
///
/// * trim-then-lowercase == lowercase-then-trim, because `to_lowercase`
///   maps whitespace chars to themselves and non-whitespace chars to
///   non-whitespace expansions, so the trimmed span is unaffected.
/// * collapsing interleaved with per-char lowercasing == collapsing after
///   whole-string lowercasing, for the same reason (whitespace-ness of
///   each position is preserved).
/// * the one *context-sensitive* mapping in `str::to_lowercase` — Greek
///   capital sigma 'Σ' lowers to final 'ς' at a word end, 'σ' elsewhere —
///   cannot be reproduced char-by-char, so inputs containing 'Σ' take a
///   fallback that delegates to the reference implementation.
pub fn normalize_append(text: &str, options: &NormalizeOptions, out: &mut String) {
    // ASCII fast path (the common case for tabular cells): lowercase is a
    // per-byte mapping, whitespace-ness is a byte test, and 'Σ' cannot
    // occur — so one branchy byte loop replaces the char-decoding stream.
    if text.is_ascii() {
        let text = if options.trim { text.trim() } else { text };
        let mut in_ws = false;
        for &b in text.as_bytes() {
            // char::is_whitespace restricted to ASCII: space plus
            // \t \n \x0B \x0C \r.
            let is_ws = b == b' ' || (0x09..=0x0D).contains(&b);
            if is_ws && options.collapse_whitespace {
                if !in_ws {
                    out.push(' ');
                }
            } else if !is_ws && options.lowercase {
                out.push(b.to_ascii_lowercase() as char);
            } else {
                out.push(b as char);
            }
            in_ws = is_ws;
        }
        return;
    }
    // 'Σ' (U+03A3) is the only char whose str-level lowercase depends on
    // context; fall back to the reference for it.
    if options.lowercase && text.contains('\u{03A3}') {
        out.push_str(&normalize_for_matching(text, options));
        return;
    }
    let text = if options.trim { text.trim() } else { text };
    if options.collapse_whitespace {
        let mut in_ws = false;
        for c in text.chars() {
            if c.is_whitespace() {
                if !in_ws {
                    out.push(' ');
                }
                in_ws = true;
            } else {
                if options.lowercase {
                    out.extend(c.to_lowercase());
                } else {
                    out.push(c);
                }
                in_ws = false;
            }
        }
    } else if options.lowercase {
        for c in text.chars() {
            out.extend(c.to_lowercase());
        }
    } else {
        out.push_str(text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_normalization() {
        let opts = NormalizeOptions::default();
        assert_eq!(normalize_for_matching("ABC", &opts), "abc");
        assert_eq!(normalize_for_matching("  a  b  ", &opts), "a b");
        assert_eq!(normalize_for_matching("a\t\nb", &opts), "a b");
        assert_eq!(normalize_for_matching("", &opts), "");
    }

    #[test]
    fn none_is_identity() {
        let opts = NormalizeOptions::none();
        assert_eq!(normalize_for_matching("  A  B ", &opts), "  A  B ");
    }

    #[test]
    fn individual_flags() {
        let mut opts = NormalizeOptions::none();
        opts.lowercase = true;
        assert_eq!(normalize_for_matching(" A B ", &opts), " a b ");
        let mut opts = NormalizeOptions::none();
        opts.trim = true;
        assert_eq!(normalize_for_matching(" A B ", &opts), "A B");
        let mut opts = NormalizeOptions::none();
        opts.collapse_whitespace = true;
        assert_eq!(normalize_for_matching("A   B", &opts), "A B");
    }

    fn append_of(text: &str, options: &NormalizeOptions) -> String {
        let mut out = String::from("prefix|");
        normalize_append(text, options, &mut out);
        assert!(out.starts_with("prefix|"), "append must not disturb existing bytes");
        out.split_off("prefix|".len())
    }

    #[test]
    fn append_matches_reference_for_all_flag_combinations() {
        let inputs = [
            "",
            "  ",
            "ABC",
            "  Prus-Czarnecki,   Andrzej ",
            "a\t\n b\u{00A0}c", // NBSP is whitespace per char::is_whitespace
            "İstanbul ẞtraße", // multi-char lowercase expansions (İ -> i̇)
            "ΟΔΥΣΣΕΥΣ",       // final-sigma context case
            "ΣΣ Σ tailΣ",
            "  mixed Σ  CASE  ",
        ];
        for lowercase in [false, true] {
            for trim in [false, true] {
                for collapse_whitespace in [false, true] {
                    let opts = NormalizeOptions { lowercase, trim, collapse_whitespace };
                    for input in inputs {
                        assert_eq!(
                            append_of(input, &opts),
                            normalize_for_matching(input, &opts),
                            "input {input:?} options {opts:?}"
                        );
                    }
                }
            }
        }
    }
}
