//! Separator-aware tokenization.
//!
//! Section 4.1.3 of the paper re-splits maximal-length placeholders "using
//! common split characters in the natural language, such as punctuations and
//! spaces", producing additional skeletons whose placeholders align with
//! common separators (Lemma 4, case 1). This module provides that
//! tokenization, keeping the separator runs so the original string can be
//! reconstructed exactly from the token stream.

use serde::{Deserialize, Serialize};

/// Whether a character counts as a separator for placeholder re-splitting
/// (whitespace or ASCII punctuation, matching the paper's "space and
/// punctuations" choice which "resolves all cases we have seen in our real
/// datasets").
#[inline]
pub fn is_separator_char(c: char) -> bool {
    c.is_whitespace() || c.is_ascii_punctuation()
}

/// The kind of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenKind {
    /// A maximal run of non-separator characters.
    Word,
    /// A maximal run of separator characters.
    Separator,
}

/// A token: a maximal run of word or separator characters, with its character
/// span in the original string.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// The token text.
    pub text: String,
    /// Start character position (0-based) in the original string.
    pub start: usize,
    /// End character position (exclusive).
    pub end: usize,
}

impl Token {
    /// Character length of the token.
    pub fn char_len(&self) -> usize {
        self.end - self.start
    }
}

/// Tokenizes `text` into alternating word and separator tokens covering the
/// whole string. Concatenating the token texts reproduces `text` exactly.
///
/// ```
/// use tjoin_text::{tokenize_with_separators, TokenKind};
/// let toks = tokenize_with_separators("Victor R. Kasumba");
/// let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
/// assert_eq!(texts, vec!["Victor", " ", "R", ". ", "Kasumba"]);
/// assert_eq!(toks[1].kind, TokenKind::Separator);
/// ```
pub fn tokenize_with_separators(text: &str) -> Vec<Token> {
    let mut tokens: Vec<Token> = Vec::new();
    let mut current_kind: Option<TokenKind> = None;
    let mut current = String::new();
    let mut start = 0usize;
    let mut pos = 0usize;
    for c in text.chars() {
        let kind = if is_separator_char(c) {
            TokenKind::Separator
        } else {
            TokenKind::Word
        };
        match current_kind {
            Some(k) if k == kind => current.push(c),
            Some(k) => {
                tokens.push(Token {
                    kind: k,
                    text: std::mem::take(&mut current),
                    start,
                    end: pos,
                });
                start = pos;
                current.push(c);
                current_kind = Some(kind);
            }
            None => {
                current.push(c);
                current_kind = Some(kind);
            }
        }
        pos += 1;
    }
    if let Some(k) = current_kind {
        tokens.push(Token {
            kind: k,
            text: current,
            start,
            end: pos,
        });
    }
    tokens
}

/// The word tokens only (separators dropped).
pub fn word_tokens(text: &str) -> Vec<Token> {
    tokenize_with_separators(text)
        .into_iter()
        .filter(|t| t.kind == TokenKind::Word)
        .collect()
}

/// Character positions (0-based) of every separator character in `text`.
pub fn separator_positions(text: &str) -> Vec<usize> {
    text.chars()
        .enumerate()
        .filter_map(|(i, c)| is_separator_char(c).then_some(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separator_classification() {
        assert!(is_separator_char(' '));
        assert!(is_separator_char(','));
        assert!(is_separator_char('-'));
        assert!(is_separator_char('.'));
        assert!(is_separator_char('('));
        assert!(!is_separator_char('a'));
        assert!(!is_separator_char('7'));
        assert!(!is_separator_char('é'));
    }

    #[test]
    fn tokenize_round_trips() {
        for s in [
            "Victor R. Kasumba",
            "(780) 433-6545",
            "  leading and trailing  ",
            "no-separators-here",
            "",
            "...",
            "a",
        ] {
            let toks = tokenize_with_separators(s);
            let rebuilt: String = toks.iter().map(|t| t.text.as_str()).collect();
            assert_eq!(rebuilt, s, "round trip failed for {s:?}");
            // Spans must be contiguous and cover the string.
            let mut pos = 0;
            for t in &toks {
                assert_eq!(t.start, pos);
                assert_eq!(t.char_len(), t.text.chars().count());
                pos = t.end;
            }
            assert_eq!(pos, s.chars().count());
        }
    }

    #[test]
    fn tokenize_alternates_kinds() {
        let toks = tokenize_with_separators("ab, cd");
        let kinds: Vec<TokenKind> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![TokenKind::Word, TokenKind::Separator, TokenKind::Word]
        );
        assert_eq!(toks[1].text, ", ");
    }

    #[test]
    fn word_tokens_only() {
        let words: Vec<String> = word_tokens("Rafiei, Davood CS (2000)")
            .into_iter()
            .map(|t| t.text)
            .collect();
        assert_eq!(words, vec!["Rafiei", "Davood", "CS", "2000"]);
    }

    #[test]
    fn separator_positions_basic() {
        assert_eq!(separator_positions("a,b c"), vec![1, 3]);
        assert_eq!(separator_positions("abc"), Vec::<usize>::new());
    }

    #[test]
    fn tokenize_empty_and_all_separator() {
        assert!(tokenize_with_separators("").is_empty());
        let toks = tokenize_with_separators(" .,");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokenKind::Separator);
    }
}
