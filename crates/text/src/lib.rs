//! # tjoin-text
//!
//! Text substrate shared by the synthesis engine, the row matcher, and the
//! baselines:
//!
//! * [`fxhash`] — a fast, non-cryptographic hasher plus `FxHashMap` /
//!   `FxHashSet` aliases (implemented in-repo so the workspace only depends on
//!   the approved crate set).
//! * [`ngram`] — character n-gram extraction over single strings and columns.
//! * [`tokenize`] — separator-aware tokenization used to re-split
//!   maximal-length placeholders (Section 4.1.3 of the paper: "space and
//!   punctuations as possible common separators").
//! * [`common`] — common-substring detection between a source and a target
//!   string: the raw material for placeholders (Definition 4).
//! * [`index`] — an inverted n-gram index from n-grams to row ids (Section
//!   4.2.1: "the inverted index is organized as a hash with every n-gram ...
//!   as a key and the row ids where the n-gram appears as a data value").
//! * [`fingerprint`] — 64-bit identity-carrying string fingerprints shared
//!   by the inverted index's posting keys, the join layer's fingerprint
//!   equi-join, and the corpus's column keys.
//! * [`corpus`] — the repository-wide interned text corpus: columns
//!   normalized once (keyed by content fingerprint) with per-size-range
//!   `ColumnStats`/`NGramIndex` caching, so pairs sharing a column never
//!   re-derive its grams.
//! * [`par`] — the deterministic chunked parallel map shared by the
//!   matcher's row scan, the equi-join apply loop, and the batch runner.
//! * [`budget`] — per-run cost budgets: a wall-clock deadline plus
//!   deterministic row/byte admission caps, carried as a cheap atomic
//!   cancellation token checked at the pipeline's existing chunk
//!   boundaries. Overruns degrade the one pair, never the process.
//! * [`fault`] — panic-containment helpers (payload-preserving messages,
//!   poison-recovering locks) plus the deterministic fault-injection
//!   harness (`FaultPlan`, cfg-gated under `feature = "fault-injection"`)
//!   that drives the batch layer's differential fault gate.
//! * [`scoring`] — Inverse Row Frequency (IRF, Eq. 1) and the representative
//!   score (Rscore, Eq. 2).
//! * [`normalize`] — case/whitespace normalization applied before matching
//!   (the paper ignores capitalization in its running examples).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod budget;
pub mod common;
pub mod corpus;
pub mod fault;
pub mod fingerprint;
pub mod fxhash;
pub mod index;
pub mod ngram;
pub mod normalize;
pub mod par;
pub mod scoring;
pub mod tokenize;

pub use budget::{BudgetExceeded, BudgetToken, RunBudget};
pub use common::{common_substring_matches, lcs_ratio, longest_common_substring, CommonMatch};
pub use corpus::{column_fingerprint, CorpusColumn, CorpusFailure, CorpusStats, GramCorpus};
pub use fault::{FaultKind, FaultPlan, FaultSite};
pub use fingerprint::{fingerprint64, fingerprint64_chain};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use index::NGramIndex;
pub use ngram::{
    char_ngrams, char_ngrams_in_range, count_distinct_ngrams, ngram_containment, ngram_jaccard,
};
pub use normalize::{normalize_for_matching, NormalizeOptions};
pub use par::{chunk_map, chunk_map_budgeted};
pub use scoring::{irf, rscore, ColumnStats};
pub use tokenize::{is_separator_char, tokenize_with_separators, Token, TokenKind};
