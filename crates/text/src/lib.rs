//! # tjoin-text
//!
//! Text substrate shared by the synthesis engine, the row matcher, and the
//! baselines. Since the columnar-arena refactor, the crate is organized
//! around one storage idea: **a column is a [`ColumnArena`]** — its cells
//! flattened into a single contiguous UTF-8 buffer plus a `u32` end-offset
//! per cell — and everything downstream (normalization, fingerprints, gram
//! iteration, stats, the inverted index, the corpus, the parallel scans)
//! operates on `&str` slices borrowed out of that buffer.
//!
//! ## The arena layout and its invariants
//!
//! A [`ColumnArena`] is `(text: String, offsets: Vec<u32>)` where cell `i`
//! is `text[offsets[i]..offsets[i+1]]`:
//!
//! * `offsets` always starts at 0, is non-decreasing, and has exactly
//!   `cell_count + 1` entries; every offset is a `char` boundary because
//!   cells are only ever appended as complete `&str`s.
//! * Both the cell count and the total byte length are checked against the
//!   `u32` space at construction — violations surface as a typed
//!   [`ArenaError`] (and as a sticky [`CorpusFailure`] when detected inside
//!   a corpus build), never as a silently wrapped cast.
//!
//! **Ownership:** ingest builds arenas. `tjoin-datasets` materializes raw
//! columns once (`ColumnPair::to_arena`), and [`GramCorpus`] builds the
//! *normalized* arena for each interned column by streaming
//! [`normalize_append`] straight into the buffer — zero per-cell
//! allocations. **Borrowing:** scan workers receive `&ColumnArena` (or any
//! [`CellText`] implementor) and slice cells on demand; nothing on the hot
//! path clones cell text. The `Vec<String>` representation is retained as
//! the differential reference — `&[String]` implements [`CellText`] too,
//! and the proptest suites assert the two representations produce
//! bit-identical matcher/join output at any thread count.
//!
//! ## The append / invalidation model
//!
//! Real repositories grow: rows append, sources refresh. Rather than
//! invalidate-and-rebuild, every text artifact is **appendable**, each with
//! its from-scratch build retained as the differential oracle:
//!
//! * [`ColumnArena::append_rows`] grows the arena all-or-nothing;
//! * [`ColumnStats::append_rows_on`] replays the per-row counting loop
//!   over only the new rows (the loop is row-independent);
//! * [`NGramIndex::try_append_on`] pushes strictly-greater row ids, so
//!   posting sortedness/uniqueness survive without a re-sort;
//! * [`ColumnSignature::append_rows`] min-merges the new rows' gram
//!   fingerprints into the MinHash lanes (idempotent, so re-folding old
//!   grams is harmless) and unions the new anchors into the sorted set;
//! * [`fingerprint::ColumnFingerprint`] keeps the column content chain
//!   *unfinished* (cell count folded in at the end, not the seed), so an
//!   append continues the chain in O(delta) and finishes to exactly the
//!   fingerprint a fresh pass over the final column produces.
//!
//! [`GramCorpus::append_column`] composes these: it interns the grown
//! column as a **new entry** (keyed by the final content fingerprint, under
//! a fresh strictly-greater generation — the same generation counter
//! evict-then-rebuild draws from) and carries every cached artifact forward
//! incrementally. The contract, proven by `tests/proptest_incremental.rs`:
//!
//! * **Bit-identical (logical state):** the grown arena, stats, index,
//!   signature, and fingerprint equal a fresh build over the final column,
//!   exactly — not approximately. Anything derived from them (coverage,
//!   discovery shortlists, join outcomes) inherits this.
//! * **Physical, not logical:** generation tags, hit/attempt counters, and
//!   `CorpusStats::appends*` describe *how* state was produced and differ
//!   between the incremental and rebuild paths by design.
//! * **Degraded, never stale:** a panic during the carry-forward (the
//!   [`FaultSite::CorpusAppend`] injection point) interns the grown entry
//!   with *empty* artifact caches — the next access rebuilds from the
//!   correct grown arena. A typed capacity error surfaces exactly as the
//!   fresh build of the final column would record it.
//!
//! ## Modules
//!
//! * [`arena`] — the [`ColumnArena`] itself, the [`CellText`] abstraction
//!   over cell storage, and the [`checked_row_count`] guard for the `u32`
//!   row-id space.
//! * [`fxhash`] — a fast, non-cryptographic hasher plus `FxHashMap` /
//!   `FxHashSet` aliases (implemented in-repo so the workspace only depends on
//!   the approved crate set).
//! * [`ngram`] — character n-gram extraction: per-size [`char_ngrams`] and
//!   the fused zero-allocation multi-size stream
//!   [`for_each_ngram_in_sizes`] the arena-backed builds use.
//! * [`tokenize`] — separator-aware tokenization used to re-split
//!   maximal-length placeholders (Section 4.1.3 of the paper: "space and
//!   punctuations as possible common separators").
//! * [`common`] — common-substring detection between a source and a target
//!   string: the raw material for placeholders (Definition 4).
//! * [`index`] — an inverted n-gram index from n-grams to row ids (Section
//!   4.2.1: "the inverted index is organized as a hash with every n-gram ...
//!   as a key and the row ids where the n-gram appears as a data value").
//! * [`fingerprint`] — 64-bit identity-carrying string fingerprints shared
//!   by the inverted index's posting keys, the stats keys, the join layer's
//!   fingerprint equi-join, and the corpus's column keys.
//! * [`corpus`] — the repository-wide interned text corpus: columns
//!   normalized once into arenas (keyed by content fingerprint, identical
//!   for `Vec<String>` and arena inputs) with per-size-range
//!   `ColumnStats`/`NGramIndex` caching, so pairs sharing a column never
//!   re-derive its grams.
//! * [`par`] — the deterministic chunked parallel map shared by the
//!   matcher's row scan, the equi-join apply loop, and the batch runner;
//!   the index-range core ([`chunk_map_rows`]) serves arena columns with
//!   the same chunk geometry as the slice form.
//! * [`budget`] — per-run cost budgets: a wall-clock deadline plus
//!   deterministic row/byte admission caps, carried as a cheap atomic
//!   cancellation token checked at the pipeline's existing chunk
//!   boundaries. Overruns degrade the one pair, never the process.
//! * [`fault`] — panic-containment helpers (payload-preserving messages,
//!   poison-recovering locks) plus the deterministic fault-injection
//!   harness (`FaultPlan`, cfg-gated under `feature = "fault-injection"`)
//!   that drives the batch layer's differential fault gate.
//! * [`scoring`] — Inverse Row Frequency (IRF, Eq. 1) and the representative
//!   score (Rscore, Eq. 2), fingerprint-keyed so stats builds allocate no
//!   gram text.
//! * [`signature`] — cheap per-column discovery signatures: fixed-width
//!   MinHash lanes over the stats' gram-fingerprint stream (shortlist
//!   *scoring*) plus the exact size-`n_min` anchor fingerprint set
//!   (shortlist *pruning* — disjoint anchors prove zero candidate row
//!   matches). Cached in the corpus next to stats/index.
//! * [`normalize`] — case/whitespace normalization applied before matching
//!   (the paper ignores capitalization in its running examples):
//!   [`normalize_for_matching`] is the per-call reference, and
//!   [`normalize_append`] is the streaming form arena ingest uses.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod budget;
pub mod common;
pub mod corpus;
pub mod fault;
pub mod fingerprint;
pub mod fxhash;
pub mod index;
pub mod ngram;
pub mod normalize;
pub mod par;
pub mod scoring;
pub mod signature;
pub mod tokenize;

pub use arena::{checked_row_count, ArenaError, CellText, Cells, ColumnArena};
pub use budget::{BudgetExceeded, BudgetToken, RunBudget};
pub use common::{common_substring_matches, lcs_ratio, longest_common_substring, CommonMatch};
pub use corpus::{
    column_fingerprint, column_fingerprint_on, CorpusColumn, CorpusFailure, CorpusRetryPolicy,
    CorpusStats, GramCorpus, ServeStats,
};
pub use fault::{FaultKind, FaultPlan, FaultSite};
pub use fingerprint::{fingerprint64, fingerprint64_chain, ColumnFingerprint};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use index::NGramIndex;
pub use ngram::{
    char_ngrams, char_ngrams_in_range, count_distinct_ngrams, for_each_ngram_in_sizes,
    ngram_containment, ngram_jaccard,
};
pub use normalize::{normalize_append, normalize_for_matching, NormalizeOptions};
pub use par::{chunk_map, chunk_map_budgeted, chunk_map_rows, chunk_map_rows_budgeted};
pub use scoring::{irf, rscore, ColumnStats};
pub use signature::{CollisionGuard, ColumnSignature, SIGNATURE_WIDTH};
pub use tokenize::{is_separator_char, tokenize_with_separators, Token, TokenKind};
