//! Columnar arena storage for column text.
//!
//! Every layer of the pipeline walks columns of cell strings. Storing them
//! as `Vec<String>` costs one heap allocation per cell and a pointer chase
//! per access; a [`ColumnArena`] flattens a column into **one contiguous
//! UTF-8 buffer plus a `u32` end-offset per cell**, so scans are linear
//! walks over adjacent bytes, workers share a single `&ColumnArena` instead
//! of cloned strings, and the layout is trivially serializable (plain byte
//! ranges) once an on-disk corpus format lands.
//!
//! # Layout invariants
//!
//! * `offsets.len() == cell_count + 1`; `offsets[0] == 0` and
//!   `offsets[cell_count] == text.len()`.
//! * Cell `i` is the byte range `offsets[i]..offsets[i + 1]` of `text` —
//!   offsets are non-decreasing, and every offset is a `char` boundary
//!   (each cell was appended as a complete `&str`).
//! * `text.len() <= u32::MAX` and `cell_count <= u32::MAX`: construction is
//!   checked, returning a typed [`ArenaError`] instead of wrapping an
//!   offset or a row id. This is the same guard the inverted index applies
//!   to row ids (see [`checked_row_count`]).
//!
//! Because the invariants are enforced by every constructor, [`cell`]
//! slicing is plain safe `&text[start..end]` indexing — no `unsafe`, no
//! re-validation.
//!
//! # Who builds arenas
//!
//! Ingest owns arena construction: `tjoin-datasets` materializes raw
//! columns into arenas once (`ColumnPair::to_arena` / `Table::column_arena`
//! there), and the corpus builds one *normalized* arena per interned column
//! ([`try_push_normalized`] streams [`normalize_append`] straight into the
//! buffer — no per-cell scratch `String`). Everything downstream — stats,
//! index, matcher scan, equi-join probes — borrows `&str` slices out of the
//! arena and never copies cell text.
//!
//! [`cell`]: ColumnArena::cell
//! [`try_push_normalized`]: ColumnArena::try_push_normalized
//! [`normalize_append`]: crate::normalize::normalize_append

use crate::normalize::{normalize_append, NormalizeOptions};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A typed capacity overflow detected while building a [`ColumnArena`] or an
/// arena-backed artifact: the column does not fit the `u32` row-id / byte-
/// offset space. Returned instead of silently wrapping a cast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArenaError {
    /// The column has more cells than the `u32` row-id space can address.
    RowCountOverflow {
        /// The offending cell count.
        rows: usize,
    },
    /// The column's concatenated text exceeds the `u32` byte-offset space.
    ByteOffsetOverflow {
        /// The byte length that overflowed (saturated at `usize::MAX`).
        bytes: usize,
    },
}

impl fmt::Display for ArenaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArenaError::RowCountOverflow { rows } => write!(
                f,
                "column has {rows} rows, exceeding the u32 row-id space (max {})",
                u32::MAX
            ),
            ArenaError::ByteOffsetOverflow { bytes } => write!(
                f,
                "column text spans {bytes} bytes, exceeding the u32 offset space (max {})",
                u32::MAX
            ),
        }
    }
}

impl std::error::Error for ArenaError {}

/// Checks that a cell count fits the `u32` row-id space, so `row as u32`
/// casts over `0..count` are provably lossless. The local `tjoin-text`
/// counterpart of `tjoin_datasets::row_id` (this crate must not depend on
/// `tjoin-datasets`), used by [`crate::index::NGramIndex::try_build_on`]
/// and every arena constructor.
#[inline]
pub fn checked_row_count(rows: usize) -> Result<u32, ArenaError> {
    u32::try_from(rows).map_err(|_| ArenaError::RowCountOverflow { rows })
}

/// Read-only, thread-shareable access to a column's cell text by row index.
///
/// The one abstraction the arena refactor needs: stats/index construction,
/// corpus interning, and the matcher scan are generic over `CellText`, so
/// the same code path serves a flattened [`ColumnArena`] and the retained
/// `Vec<String>` reference representation (`&[S]` where `S: AsRef<str>`) —
/// which is what the differential suites compare bit-for-bit.
pub trait CellText: Sync {
    /// Number of cells (rows) in the column.
    fn cell_count(&self) -> usize;

    /// The text of cell `row`; panics when `row >= cell_count()`.
    fn cell(&self, row: usize) -> &str;

    /// Iterator over the cells in row order.
    fn cells(&self) -> Cells<'_, Self> {
        Cells { column: self, next: 0 }
    }
}

/// Row-order iterator over a [`CellText`] column (see [`CellText::cells`]).
#[derive(Debug)]
pub struct Cells<'a, C: ?Sized> {
    column: &'a C,
    next: usize,
}

impl<'a, C: CellText + ?Sized> Iterator for Cells<'a, C> {
    type Item = &'a str;

    fn next(&mut self) -> Option<&'a str> {
        if self.next >= self.column.cell_count() {
            return None;
        }
        let cell = self.column.cell(self.next);
        self.next += 1;
        Some(cell)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.column.cell_count() - self.next;
        (left, Some(left))
    }
}

impl<C: CellText + ?Sized> ExactSizeIterator for Cells<'_, C> {}

impl<S: AsRef<str> + Sync> CellText for [S] {
    fn cell_count(&self) -> usize {
        self.len()
    }

    fn cell(&self, row: usize) -> &str {
        self[row].as_ref()
    }
}

impl<S: AsRef<str> + Sync> CellText for Vec<S> {
    fn cell_count(&self) -> usize {
        self.len()
    }

    fn cell(&self, row: usize) -> &str {
        self[row].as_ref()
    }
}

/// A column's cells flattened into one contiguous UTF-8 buffer plus `u32`
/// end-offsets — the columnar storage behind the corpus, the matcher scan,
/// and the equi-join (see the module docs for the layout invariants).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnArena {
    /// Concatenated cell text. Kept as a `String` so cell extraction is
    /// safe slicing: construction only ever appends whole `&str`s, so every
    /// recorded offset is a char boundary.
    text: String,
    /// `offsets[i]..offsets[i + 1]` is cell `i`; `offsets[0] == 0`.
    offsets: Vec<u32>,
}

impl Default for ColumnArena {
    fn default() -> Self {
        Self::new()
    }
}

impl ColumnArena {
    /// An empty arena (zero cells).
    pub fn new() -> Self {
        Self { text: String::new(), offsets: vec![0] }
    }

    /// Appends one cell, checking both capacity invariants. On error the
    /// arena is unchanged.
    pub fn try_push(&mut self, cell: &str) -> Result<(), ArenaError> {
        self.reserve_cell_slot()?;
        let end = self
            .text
            .len()
            .checked_add(cell.len())
            .ok_or(ArenaError::ByteOffsetOverflow { bytes: usize::MAX })?;
        if u32::try_from(end).is_err() {
            return Err(ArenaError::ByteOffsetOverflow { bytes: end });
        }
        self.text.push_str(cell);
        self.offsets.push(end as u32);
        Ok(())
    }

    /// Appends `cell` *normalized* per `options`, streaming
    /// [`normalize_append`] directly into the arena buffer — no scratch
    /// `String` per cell. On overflow the partial append is rolled back and
    /// the arena is unchanged.
    pub fn try_push_normalized(
        &mut self,
        cell: &str,
        options: &NormalizeOptions,
    ) -> Result<(), ArenaError> {
        self.reserve_cell_slot()?;
        let start = self.text.len();
        normalize_append(cell, options, &mut self.text);
        let end = self.text.len();
        if u32::try_from(end).is_err() {
            self.text.truncate(start);
            return Err(ArenaError::ByteOffsetOverflow { bytes: end });
        }
        self.offsets.push(end as u32);
        Ok(())
    }

    fn reserve_cell_slot(&self) -> Result<(), ArenaError> {
        let cells = self.len();
        if cells >= u32::MAX as usize {
            return Err(ArenaError::RowCountOverflow { rows: cells + 1 });
        }
        Ok(())
    }

    /// Builds an arena from any [`CellText`] column (a `Vec<String>` slice,
    /// another arena, ...), verbatim. Capacity violations are detected
    /// *before* any copying: the cell count and the summed byte length are
    /// checked first, so an over-large column is rejected cheaply.
    pub fn try_from_cells<C: CellText + ?Sized>(cells: &C) -> Result<Self, ArenaError> {
        let rows = cells.cell_count();
        checked_row_count(rows)?;
        let mut total: usize = 0;
        for row in 0..rows {
            total = total
                .checked_add(cells.cell(row).len())
                .ok_or(ArenaError::ByteOffsetOverflow { bytes: usize::MAX })?;
        }
        if u32::try_from(total).is_err() {
            return Err(ArenaError::ByteOffsetOverflow { bytes: total });
        }
        let mut arena = Self { text: String::with_capacity(total), offsets: Vec::with_capacity(rows + 1) };
        arena.offsets.push(0);
        for row in 0..rows {
            arena.try_push(cells.cell(row))?;
        }
        Ok(arena)
    }

    /// Infallible [`Self::try_from_cells`] for columns known to fit; panics
    /// with the typed error's message otherwise.
    pub fn from_cells<C: CellText + ?Sized>(cells: &C) -> Self {
        Self::try_from_cells(cells).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the arena of `cells` normalized per `options` (the corpus's
    /// per-column ingest step): one streaming [`normalize_append`] pass per
    /// cell, no intermediate `String`s.
    pub fn try_normalized<C: CellText + ?Sized>(
        cells: &C,
        options: &NormalizeOptions,
    ) -> Result<Self, ArenaError> {
        let rows = cells.cell_count();
        checked_row_count(rows)?;
        let mut arena = Self::new();
        arena.offsets.reserve(rows);
        for row in 0..rows {
            arena.try_push_normalized(cells.cell(row), options)?;
        }
        Ok(arena)
    }

    /// Appends every cell of `other` to `self`, preserving cell order — the
    /// concatenation step of [`Self::try_normalized_parallel`]. Both
    /// capacity invariants are checked *before* any copying, so on error
    /// `self` is unchanged.
    pub fn try_append_arena(&mut self, other: &ColumnArena) -> Result<(), ArenaError> {
        let rows = self
            .len()
            .checked_add(other.len())
            .ok_or(ArenaError::RowCountOverflow { rows: usize::MAX })?;
        checked_row_count(rows)?;
        let base = self.text.len();
        let total = base
            .checked_add(other.text.len())
            .ok_or(ArenaError::ByteOffsetOverflow { bytes: usize::MAX })?;
        if u32::try_from(total).is_err() {
            return Err(ArenaError::ByteOffsetOverflow { bytes: total });
        }
        self.text.push_str(&other.text);
        // Skip other.offsets[0] (always 0); shift the rest past our buffer.
        self.offsets.extend(other.offsets[1..].iter().map(|&end| base as u32 + end));
        Ok(())
    }

    /// Appends every cell of `rows` (verbatim) at the end of the column —
    /// the ingest step of an **incremental append**. All-or-nothing: both
    /// capacity invariants are checked over the whole delta *before* any
    /// copying, so on error the arena is unchanged. The result is
    /// bit-identical to building a fresh arena over the concatenated cells
    /// (which `tests/proptest_incremental.rs` proves differentially).
    pub fn append_rows<C: CellText + ?Sized>(&mut self, rows: &C) -> Result<(), ArenaError> {
        let total_rows = self
            .len()
            .checked_add(rows.cell_count())
            .ok_or(ArenaError::RowCountOverflow { rows: usize::MAX })?;
        checked_row_count(total_rows)?;
        let mut total = self.text.len();
        for row in 0..rows.cell_count() {
            total = total
                .checked_add(rows.cell(row).len())
                .ok_or(ArenaError::ByteOffsetOverflow { bytes: usize::MAX })?;
        }
        if u32::try_from(total).is_err() {
            return Err(ArenaError::ByteOffsetOverflow { bytes: total });
        }
        for row in 0..rows.cell_count() {
            self.try_push(rows.cell(row))?;
        }
        Ok(())
    }

    /// [`Self::try_normalized`] across `workers` threads: rows are split
    /// into contiguous chunks (the same geometry as the matcher's
    /// row-partitioned scans — `ceil(rows / workers)` rows per chunk),
    /// each chunk normalizes into its own arena, and the per-worker arenas
    /// are concatenated **in chunk order**, so the result is bit-identical
    /// to the serial append at any worker count. This restores the
    /// multicore normalization the arena refactor traded away (the
    /// equi-join used to normalize columns in parallel before columns
    /// moved into one streaming arena pass).
    ///
    /// Any per-chunk failure — or a capacity overflow surfacing only at
    /// concatenation — falls back to the serial [`Self::try_normalized`],
    /// so the returned value *and* the returned error are exactly what the
    /// serial pass produces for these inputs.
    pub fn try_normalized_parallel<C: CellText + ?Sized>(
        cells: &C,
        options: &NormalizeOptions,
        workers: usize,
    ) -> Result<Self, ArenaError> {
        let rows = cells.cell_count();
        let workers = workers.min(rows).max(1);
        if workers <= 1 {
            return Self::try_normalized(cells, options);
        }
        checked_row_count(rows)?; // reject over-large columns before spawning
        let chunk_size = rows.div_ceil(workers);
        let chunks: Vec<Result<ColumnArena, ArenaError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..rows)
                .step_by(chunk_size)
                .map(|start| {
                    let end = (start + chunk_size).min(rows);
                    scope.spawn(move || {
                        let mut arena = ColumnArena::new();
                        arena.offsets.reserve(end - start);
                        for row in start..end {
                            arena.try_push_normalized(cells.cell(row), options)?;
                        }
                        Ok(arena)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| {
                    handle.join().unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                })
                .collect()
        });
        let mut merged = Self::new();
        merged.offsets.reserve(rows);
        for chunk in &chunks {
            let appended = match chunk {
                Ok(chunk) => merged.try_append_arena(chunk),
                Err(_) => return Self::try_normalized(cells, options),
            };
            if appended.is_err() {
                return Self::try_normalized(cells, options);
            }
        }
        Ok(merged)
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the arena holds no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The text of cell `row` as a slice into the shared buffer; panics
    /// when `row >= len()`.
    #[inline]
    pub fn cell(&self, row: usize) -> &str {
        let start = self.offsets[row] as usize;
        let end = self.offsets[row + 1] as usize;
        &self.text[start..end]
    }

    /// The whole concatenated buffer.
    pub fn as_str(&self) -> &str {
        &self.text
    }

    /// The end-offset array (`len() + 1` entries, starting at 0).
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Total cell text bytes.
    pub fn total_bytes(&self) -> usize {
        self.text.len()
    }

    /// Estimated memory footprint (text buffer + offset array), used by
    /// scalability reporting.
    pub fn approximate_bytes(&self) -> usize {
        self.text.len() + self.offsets.len() * std::mem::size_of::<u32>()
    }

    /// The column's content fingerprint — identical to
    /// [`crate::corpus::column_fingerprint`] over the same cell contents,
    /// whatever the storage representation.
    pub fn content_fingerprint(&self) -> u64 {
        crate::corpus::column_fingerprint_on(self)
    }
}

impl CellText for ColumnArena {
    fn cell_count(&self) -> usize {
        self.len()
    }

    fn cell(&self, row: usize) -> &str {
        ColumnArena::cell(self, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_cells_verbatim() {
        let cells = vec!["Rafiei, Davood".to_string(), String::new(), "αβγ".to_string()];
        let arena = ColumnArena::from_cells(cells.as_slice());
        assert_eq!(arena.len(), 3);
        assert!(!arena.is_empty());
        assert_eq!(arena.cell(0), "Rafiei, Davood");
        assert_eq!(arena.cell(1), "");
        assert_eq!(arena.cell(2), "αβγ");
        let collected: Vec<&str> = arena.cells().collect();
        assert_eq!(collected, vec!["Rafiei, Davood", "", "αβγ"]);
        assert_eq!(arena.total_bytes(), "Rafiei, Davood".len() + "αβγ".len());
        assert_eq!(arena.offsets().first(), Some(&0));
        assert_eq!(*arena.offsets().last().unwrap() as usize, arena.total_bytes());
    }

    #[test]
    fn empty_column_and_empty_cells() {
        let empty = ColumnArena::new();
        assert_eq!(empty.len(), 0);
        assert!(empty.is_empty());
        assert_eq!(empty.cells().count(), 0);
        assert_eq!(empty.total_bytes(), 0);

        // A column of only empty cells is NOT the empty column: it has
        // cells, they are all "".
        let blanks = ColumnArena::from_cells(vec![String::new(); 4].as_slice());
        assert_eq!(blanks.len(), 4);
        assert_eq!(blanks.total_bytes(), 0);
        for row in 0..4 {
            assert_eq!(blanks.cell(row), "");
        }
        assert_ne!(empty.content_fingerprint(), blanks.content_fingerprint());
    }

    #[test]
    fn cell_ending_exactly_at_offset_word_seam() {
        // Arrange cells so boundaries land exactly on 4-byte (u32 word)
        // multiples of the flat buffer: off-by-one offset bookkeeping would
        // bleed a byte across the seam.
        let cells: Vec<String> =
            vec!["abcd".into(), "efgh".into(), "".into(), "ijkl".into(), "m".into()];
        let arena = ColumnArena::from_cells(cells.as_slice());
        assert_eq!(arena.offsets(), &[0, 4, 8, 8, 12, 13]);
        for (row, cell) in cells.iter().enumerate() {
            assert_eq!(arena.cell(row), cell, "row {row}");
        }
        // Multi-byte variant: "αβ" is 4 bytes, so the seam is also a char
        // boundary exactly at a word multiple.
        let uni = ColumnArena::from_cells(vec!["αβ".to_string(), "γδ".to_string()].as_slice());
        assert_eq!(uni.offsets(), &[0, 4, 8]);
        assert_eq!(uni.cell(0), "αβ");
        assert_eq!(uni.cell(1), "γδ");
    }

    #[test]
    fn huge_row_count_rejected_before_reading_cells() {
        // A mock column "containing" more cells than the u32 row-id space:
        // the typed guard must fire from the count alone, never touching a
        // cell (cell() would panic).
        struct Huge;
        impl CellText for Huge {
            fn cell_count(&self) -> usize {
                u32::MAX as usize + 1
            }
            fn cell(&self, _row: usize) -> &str {
                unreachable!("over-large column must be rejected before any cell read")
            }
        }
        assert_eq!(
            ColumnArena::try_from_cells(&Huge),
            Err(ArenaError::RowCountOverflow { rows: u32::MAX as usize + 1 })
        );
        assert_eq!(
            ColumnArena::try_normalized(&Huge, &NormalizeOptions::default()),
            Err(ArenaError::RowCountOverflow { rows: u32::MAX as usize + 1 })
        );
        assert!(checked_row_count(u32::MAX as usize).is_ok());
        assert!(checked_row_count(u32::MAX as usize + 1).is_err());
    }

    #[test]
    fn huge_byte_total_rejected_before_copying() {
        // 4097 cells of 1 MiB exceed the u32 offset space; the summed
        // pre-check rejects without building the 4 GiB buffer.
        let megabyte = "x".repeat(1 << 20);
        struct Wide<'a> {
            cell: &'a str,
        }
        impl CellText for Wide<'_> {
            fn cell_count(&self) -> usize {
                4097
            }
            fn cell(&self, _row: usize) -> &str {
                self.cell
            }
        }
        let column = Wide { cell: &megabyte };
        assert_eq!(
            ColumnArena::try_from_cells(&column),
            Err(ArenaError::ByteOffsetOverflow { bytes: 4097 << 20 })
        );
    }

    #[test]
    fn error_messages_are_typed_and_clear() {
        let row = ArenaError::RowCountOverflow { rows: 5_000_000_000 };
        assert!(row.to_string().contains("u32 row-id space"));
        let byte = ArenaError::ByteOffsetOverflow { bytes: usize::MAX };
        assert!(byte.to_string().contains("u32 offset space"));
    }

    #[test]
    fn normalized_arena_matches_reference_normalization() {
        use crate::normalize::normalize_for_matching;
        let cells = vec![
            "  Prus-Czarnecki,   Andrzej ".to_string(),
            "ΟΔΥΣΣΕΥΣ".to_string(), // final sigma: str::to_lowercase context case
            String::new(),
            "MiXeD\tWS\n here".to_string(),
        ];
        let options = NormalizeOptions::default();
        let arena = ColumnArena::try_normalized(cells.as_slice(), &options).unwrap();
        for (row, cell) in cells.iter().enumerate() {
            assert_eq!(arena.cell(row), normalize_for_matching(cell, &options), "row {row}");
        }
    }

    #[test]
    fn arena_of_arena_is_identical() {
        let cells = vec!["one".to_string(), "αβγδ".to_string(), String::new()];
        let first = ColumnArena::from_cells(cells.as_slice());
        let second = ColumnArena::from_cells(&first);
        assert_eq!(first, second);
        assert_eq!(first.content_fingerprint(), second.content_fingerprint());
    }

    #[test]
    fn append_arena_preserves_cells_and_offsets() {
        let left = ColumnArena::from_cells(vec!["ab".to_string(), String::new()].as_slice());
        let right = ColumnArena::from_cells(vec!["αβ".to_string(), "cd".to_string()].as_slice());
        let mut merged = left.clone();
        merged.try_append_arena(&right).unwrap();
        assert_eq!(
            merged,
            ColumnArena::from_cells(
                vec!["ab".to_string(), String::new(), "αβ".to_string(), "cd".to_string()]
                    .as_slice()
            )
        );
        // Appending an empty arena is the identity.
        let before = merged.clone();
        merged.try_append_arena(&ColumnArena::new()).unwrap();
        assert_eq!(merged, before);
    }

    #[test]
    fn append_rows_matches_fresh_build() {
        let mut grown = ColumnArena::from_cells(vec!["ab".to_string(), String::new()].as_slice());
        grown.append_rows(["αβ", "cd"].as_slice()).unwrap();
        grown.append_rows(Vec::<String>::new().as_slice()).unwrap(); // empty delta: identity
        grown.append_rows([""].as_slice()).unwrap();
        let fresh = ColumnArena::from_cells(
            vec![
                "ab".to_string(),
                String::new(),
                "αβ".to_string(),
                "cd".to_string(),
                String::new(),
            ]
            .as_slice(),
        );
        assert_eq!(grown, fresh);
        assert_eq!(grown.content_fingerprint(), fresh.content_fingerprint());
    }

    #[test]
    fn append_rows_rejects_overflow_without_mutating() {
        struct Huge;
        impl CellText for Huge {
            fn cell_count(&self) -> usize {
                u32::MAX as usize
            }
            fn cell(&self, _row: usize) -> &str {
                unreachable!("over-large delta must be rejected before any cell read")
            }
        }
        let mut arena = ColumnArena::from_cells(vec!["ab".to_string()].as_slice());
        let before = arena.clone();
        assert_eq!(
            arena.append_rows(&Huge),
            Err(ArenaError::RowCountOverflow { rows: u32::MAX as usize + 1 })
        );
        assert_eq!(arena, before, "failed append must leave the arena unchanged");
    }

    #[test]
    fn parallel_normalization_is_bit_identical_to_serial() {
        use crate::normalize::NormalizeOptions;
        let cells: Vec<String> = (0..97)
            .map(|i| match i % 5 {
                0 => format!("  Name-{i:03},   SPACED "),
                1 => String::new(),
                2 => format!("ΟΔΥΣΣΕΥΣ-{i}"), // final-sigma lowercase context
                3 => format!("mixed\tWS\n {i}"),
                _ => format!("plain{i}"),
            })
            .collect();
        let options = NormalizeOptions::default();
        let serial = ColumnArena::try_normalized(cells.as_slice(), &options).unwrap();
        // Worker counts spanning even splits, ragged tails, and more
        // workers than rows.
        for workers in [1, 2, 4, 7, 128] {
            let parallel =
                ColumnArena::try_normalized_parallel(cells.as_slice(), &options, workers).unwrap();
            assert_eq!(parallel, serial, "workers={workers}");
        }
        let empty =
            ColumnArena::try_normalized_parallel(&Vec::<String>::new(), &options, 4).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn parallel_normalization_rejects_huge_columns_like_serial() {
        struct Huge;
        impl CellText for Huge {
            fn cell_count(&self) -> usize {
                u32::MAX as usize + 1
            }
            fn cell(&self, _row: usize) -> &str {
                unreachable!("over-large column must be rejected before any cell read")
            }
        }
        assert_eq!(
            ColumnArena::try_normalized_parallel(&Huge, &NormalizeOptions::default(), 4),
            Err(ArenaError::RowCountOverflow { rows: u32::MAX as usize + 1 })
        );
    }

    #[test]
    fn cells_iterator_is_exact_size() {
        let arena = ColumnArena::from_cells(vec!["a".to_string(), "b".to_string()].as_slice());
        let mut iter = arena.cells();
        assert_eq!(iter.len(), 2);
        let _ = iter.next();
        assert_eq!(iter.len(), 1);
    }
}
