//! Repository-wide interned text corpus.
//!
//! The repository workloads the paper targets (and GXJoin/QJoin evaluate)
//! join *many* column pairs, and the same column frequently appears in
//! several pairs — one master column probed against many candidate targets.
//! The per-pair matcher path re-derives that column's text artifacts on
//! every call: normalization of every cell, [`ColumnStats`] for IRF, and
//! the inverted [`NGramIndex`]. A [`GramCorpus`] amortizes that work across
//! the whole repository:
//!
//! * **Columns are interned by content.** [`GramCorpus::column`] keys each
//!   column by a 64-bit chained fingerprint of its cells
//!   ([`crate::fingerprint::fingerprint64_chain`] over per-cell
//!   [`crate::fingerprint::fingerprint64`]s, finished with the cell count —
//!   see [`ColumnFingerprint`]) and normalizes it exactly once, no matter
//!   how many pairs reference it. A debug-build shadow map holds the raw
//!   cells and asserts the column fingerprints never collide on the
//!   interned corpus.
//! * **Gram artifacts are cached per size range.** A [`CorpusColumn`] lazily
//!   builds — and then shares via `Arc` — its [`ColumnStats`] and
//!   [`NGramIndex`] per `(n_min, n_max)`, so a column probed by k pairs
//!   under one matcher configuration derives its grams once, not k times.
//! * **Construction is thread-safe, exactly-once, and concurrent across
//!   columns.** The intern map holds a per-column `OnceLock` cell; the
//!   global lock covers only the cell lookup/insert, and the O(cells)
//!   normalization runs outside it — workers interning *distinct* columns
//!   proceed in parallel, while racers on the *same* column wait on its
//!   cell and exactly one builds. Per-range artifact builds lock only
//!   their own column. [`GramCorpus::stats`] exposes the intern/build/hit
//!   counters the differential tests and the `join_throughput` bench
//!   assert on.
//! * **Build failures are contained, retried when transient, and sticky
//!   once exhausted.** Every lazy build runs under `catch_unwind` via
//!   [`CorpusRetryPolicy`]: a *panicking* build (the transient class —
//!   environmental, injected, or racy) is retried up to `max_attempts`
//!   with `backoff` between attempts, while a *typed* build error (the
//!   deterministic class — e.g. an [`ArenaError`] capacity overflow, a
//!   pure function of the inputs) short-circuits on the first attempt.
//!   Whatever the final outcome, it is recorded *in the cache entry*
//!   instead of poisoning the lock, so one bad column fails exactly the
//!   pairs that reference it — cleanly, via the `try_*` accessors — while
//!   every other entry keeps serving. Corpus locks are taken through
//!   [`crate::fault::lock_recover`], so even an externally poisoned mutex
//!   (exercised by the fault-injection harness) cannot take down later
//!   hits. Failed entries and per-artifact attempt totals are counted in
//!   [`CorpusStats`].
//! * **Entries are evictable, for the serving layer.** A long-lived corpus
//!   (the `tjoin-serve` resident cache) needs to bound memory:
//!   [`GramCorpus::resident_entries`] / [`GramCorpus::entry_bytes`] expose
//!   per-fingerprint byte accounting (arena bytes + offsets + stats maps +
//!   index postings via the `approximate_bytes` family), and
//!   [`GramCorpus::evict`] removes a completed entry so a later request
//!   re-interns it. Each built column carries a monotonically increasing
//!   [`CorpusColumn::generation`] tag, so "this entry was rebuilt after an
//!   eviction" is observable. Eviction can never change results — every
//!   artifact is a pure function of the cells, the options, and the size
//!   range — only counters and wall-clock.
//!
//! Everything a corpus serves is a pure function of the column's cells, the
//! corpus's [`NormalizeOptions`], and the requested size range — the same
//! inputs the per-call path feeds `ColumnStats::build`/`NGramIndex::build`
//! directly. Matcher output over a corpus is therefore bit-identical to the
//! per-call path, which `crates/join/tests/proptest_batch.rs` enforces
//! differentially.

use crate::arena::{ArenaError, CellText, ColumnArena};
use crate::fault::{self, FaultSite};
use crate::fingerprint::ColumnFingerprint;
use crate::fxhash::FxHashMap;
use crate::index::NGramIndex;
use crate::normalize::NormalizeOptions;
use crate::scoring::ColumnStats;
use crate::signature::ColumnSignature;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// The content fingerprint a corpus keys a column by: a length-seeded chain
/// of every cell's [`fingerprint64`].
pub fn column_fingerprint(cells: &[String]) -> u64 {
    column_fingerprint_on(cells)
}

/// [`column_fingerprint`] over any [`CellText`] column. The fingerprint is
/// a pure function of the cell *contents*, so a `Vec<String>` column and a
/// [`ColumnArena`] holding the same cells intern to the same corpus entry.
///
/// Internally this finishes an appendable [`ColumnFingerprint`]: the cell
/// count is folded in at the *end* of the chain (not in the seed), so the
/// running chain state over a prefix is exactly the state an append
/// continues from — [`GramCorpus::append_column`] re-keys a grown column
/// without re-hashing its old cells, bit-identically to fingerprinting the
/// final column from scratch.
pub fn column_fingerprint_on<C: CellText + ?Sized>(column: &C) -> u64 {
    running_column_fingerprint(column).finish()
}

/// The appendable fingerprint state over a whole column — the chain
/// [`column_fingerprint_on`] finishes, kept unfinished so appends can
/// continue it.
fn running_column_fingerprint<C: CellText + ?Sized>(column: &C) -> ColumnFingerprint {
    let mut fingerprint = ColumnFingerprint::empty();
    for cell in column.cells() {
        fingerprint.absorb(cell);
    }
    fingerprint
}

/// A contained, sticky corpus build failure: the artifact whose lazy build
/// panicked plus the panic's message. Recorded in the cache entry, so every
/// later request for the same artifact observes the same failure instead of
/// a poisoned lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusFailure {
    /// Which artifact failed to build (`"column"`, `"stats"`, `"index"`,
    /// `"signature"`).
    pub artifact: &'static str,
    /// The contained panic's message.
    pub message: String,
}

impl CorpusFailure {
    fn new(artifact: &'static str, payload: Box<dyn std::any::Any + Send>) -> Self {
        Self {
            artifact,
            message: fault::panic_message(&*payload),
        }
    }

    fn from_arena(artifact: &'static str, error: ArenaError) -> Self {
        Self {
            artifact,
            message: error.to_string(),
        }
    }
}

impl fmt::Display for CorpusFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corpus {} build failed: {}", self.artifact, self.message)
    }
}

impl std::error::Error for CorpusFailure {}

/// Bounded retry policy for lazy corpus builds (ROADMAP fault-isolation
/// headroom: sticky failures used to be recorded on the *first* panic,
/// which turns a transient hiccup into a permanent per-(column, range)
/// outage in a long-lived resident corpus).
///
/// The policy distinguishes the two failure classes a build can hit:
///
/// * **Transient** — the build *panicked*. Retried up to `max_attempts`
///   total attempts, sleeping `backoff` between attempts. A build that
///   exhausts every attempt is recorded sticky, same as before.
/// * **Deterministic** — the build returned a *typed* error (an
///   [`ArenaError`] capacity overflow): a pure function of the inputs that
///   would fail identically forever. Short-circuits on the first attempt,
///   never retried.
///
/// The default (`max_attempts: 1`, zero backoff) reproduces the historical
/// fail-on-first-panic behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusRetryPolicy {
    /// Total build attempts (including the first); at least 1.
    pub max_attempts: usize,
    /// Sleep between consecutive attempts of one build.
    pub backoff: Duration,
}

impl Default for CorpusRetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 1, backoff: Duration::ZERO }
    }
}

impl CorpusRetryPolicy {
    /// A policy of `max_attempts` total attempts with `backoff` between
    /// them. Panics when `max_attempts` is 0 (a build must run at least
    /// once).
    pub fn new(max_attempts: usize, backoff: Duration) -> Self {
        assert!(max_attempts >= 1, "CorpusRetryPolicy requires at least one attempt");
        Self { max_attempts, backoff }
    }
}

/// Runs `build` under `policy`: panics are the transient class (retried),
/// typed `Err`s the deterministic class (returned immediately). Returns the
/// final outcome plus the number of attempts actually made — the count the
/// `*_attempts` counters in [`CorpusStats`] aggregate.
fn build_with_retry<A>(
    policy: CorpusRetryPolicy,
    artifact: &'static str,
    build: impl Fn() -> Result<A, CorpusFailure>,
) -> (Result<A, CorpusFailure>, usize) {
    let mut attempt = 0;
    loop {
        attempt += 1;
        match catch_unwind(AssertUnwindSafe(&build)) {
            // Ok(Ok) = success; Ok(Err) = deterministic typed failure —
            // either way, the outcome is final on this attempt.
            Ok(outcome) => return (outcome, attempt),
            Err(payload) => {
                if attempt >= policy.max_attempts {
                    return (Err(CorpusFailure::new(artifact, payload)), attempt);
                }
                if !policy.backoff.is_zero() {
                    std::thread::sleep(policy.backoff);
                }
            }
        }
    }
}

/// A completed cache entry: the built artifact (or its sticky contained
/// failure) plus how many build attempts it took — surfaced through
/// [`CorpusStats`] so retry behaviour is observable.
#[derive(Debug, Clone)]
struct Built<A> {
    result: Result<Arc<A>, CorpusFailure>,
    attempts: usize,
}

/// Intern/build/hit counters of a [`GramCorpus`] (see [`GramCorpus::stats`]).
///
/// `columns_interned` is the number of *distinct* columns normalized — each
/// exactly once — while `column_hits` counts the [`GramCorpus::column`]
/// calls served from cache: every hit is a whole-column normalization the
/// per-call path would have re-run. The same applies to the stats/index
/// pairs of counters. The `*_failed` counters record sticky build failures
/// (always 0 outside fault injection and pathological inputs), and the
/// `*_attempts` counters total the build attempts behind the cached
/// entries, so `column_attempts > columns_interned + columns_failed` means
/// the retry policy absorbed transient failures.
///
/// The snapshot covers the **currently resident** entries plus the
/// corpus-lifetime `column_hits` counter: evicting an entry (see
/// [`GramCorpus::evict`]) drops its built/failed/attempt contributions from
/// later snapshots. A serving layer that needs lifetime totals across
/// evictions keeps its own [`ServeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorpusStats {
    /// Distinct columns interned (normalization passes actually run).
    pub columns_interned: usize,
    /// `column()` calls served from the intern cache.
    pub column_hits: usize,
    /// Distinct `(column, size-range)` [`ColumnStats`] built.
    pub stats_built: usize,
    /// `stats()` calls served from cache.
    pub stats_hits: usize,
    /// Distinct `(column, size-range)` [`NGramIndex`]es built.
    pub indexes_built: usize,
    /// `index()` calls served from cache.
    pub index_hits: usize,
    /// Column builds that panicked and were recorded as sticky failures.
    pub columns_failed: usize,
    /// `ColumnStats` builds recorded as sticky failures.
    pub stats_failed: usize,
    /// `NGramIndex` builds recorded as sticky failures.
    pub indexes_failed: usize,
    /// Total column build attempts behind the resident entries (≥
    /// `columns_interned + columns_failed`; the excess is retried
    /// transient failures).
    pub column_attempts: usize,
    /// Total `ColumnStats` build attempts behind the resident entries.
    pub stats_attempts: usize,
    /// Total `NGramIndex` build attempts behind the resident entries.
    pub index_attempts: usize,
    /// Distinct `(column, size-range)` `ColumnSignature`s built.
    pub signatures_built: usize,
    /// `signature()` calls served from cache.
    pub signature_hits: usize,
    /// `ColumnSignature` builds recorded as sticky failures.
    pub signatures_failed: usize,
    /// Total `ColumnSignature` build attempts behind the resident entries.
    pub signature_attempts: usize,
    /// Successful [`GramCorpus::append_column`] calls (lifetime counter,
    /// like `column_hits` — not dropped by eviction).
    pub appends: usize,
    /// Appends whose artifact carry-forward panicked and degraded to
    /// rebuild-on-next-access (lifetime counter; the appended entry itself
    /// still exists, with empty artifact caches).
    pub appends_degraded: usize,
}

impl CorpusStats {
    /// Whole-column normalization passes the corpus avoided relative to the
    /// per-call path (one per cache hit).
    pub fn normalizations_saved(&self) -> usize {
        self.column_hits
    }

    /// Total sticky build failures across all artifact kinds.
    pub fn total_failures(&self) -> usize {
        self.columns_failed + self.stats_failed + self.indexes_failed + self.signatures_failed
    }
}

/// A per-size-range artifact cache: the built artifact or its sticky
/// contained failure (plus its attempt count), keyed by `(n_min, n_max)`.
type ArtifactCache<A> = FxHashMap<(usize, usize), Built<A>>;

/// One interned column: its normalized cells — flattened into a
/// [`ColumnArena`] at build time — plus lazily built, cached gram artifacts
/// per `(n_min, n_max)` size range. Obtained from [`GramCorpus::column`];
/// shared across pairs (and worker threads) via `Arc`, so every scan worker
/// borrows `&str` slices out of the one arena instead of cloning cells.
#[derive(Debug)]
pub struct CorpusColumn {
    normalized: ColumnArena,
    /// The *unfinished* chain over the raw (pre-normalization) cells — the
    /// state [`GramCorpus::append_column`] continues from, so a grown
    /// column re-keys without re-hashing its old cells. `finish()` of this
    /// state is exactly the fingerprint the entry is interned under.
    raw_fingerprint: ColumnFingerprint,
    generation: u64,
    retry: CorpusRetryPolicy,
    stats: Mutex<ArtifactCache<ColumnStats>>,
    indexes: Mutex<ArtifactCache<NGramIndex>>,
    signatures: Mutex<ArtifactCache<ColumnSignature>>,
    stats_hits: AtomicUsize,
    index_hits: AtomicUsize,
    signature_hits: AtomicUsize,
}

impl CorpusColumn {
    fn build<C: CellText + ?Sized>(
        raw: &C,
        options: &NormalizeOptions,
        retry: CorpusRetryPolicy,
        generation: u64,
        raw_fingerprint: ColumnFingerprint,
    ) -> Result<Self, ArenaError> {
        Ok(Self {
            normalized: ColumnArena::try_normalized(raw, options)?,
            raw_fingerprint,
            generation,
            retry,
            stats: Mutex::new(FxHashMap::default()),
            indexes: Mutex::new(FxHashMap::default()),
            signatures: Mutex::new(FxHashMap::default()),
            stats_hits: AtomicUsize::new(0),
            index_hits: AtomicUsize::new(0),
            signature_hits: AtomicUsize::new(0),
        })
    }

    /// The column's normalized cells, in row order, as a shared arena.
    pub fn normalized(&self) -> &ColumnArena {
        &self.normalized
    }

    /// The corpus-unique, monotonically increasing build generation of this
    /// entry: a column re-interned after an eviction carries a strictly
    /// greater generation than the evicted build, which is how cache-layer
    /// tests prove "this is a rebuild, not the old entry".
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Estimated resident memory of this entry: the normalized arena (text
    /// buffer + offset array) plus every *successfully built* cached stats
    /// map and index posting list. This is the per-entry accounting the
    /// serving layer's byte-budgeted eviction sums; sticky failures hold no
    /// artifact and contribute nothing.
    pub fn approximate_bytes(&self) -> usize {
        let mut bytes = self.normalized.approximate_bytes();
        for built in fault::lock_recover(&self.stats).values() {
            if let Ok(stats) = &built.result {
                bytes += stats.approximate_bytes();
            }
        }
        for built in fault::lock_recover(&self.indexes).values() {
            if let Ok(index) = &built.result {
                bytes += index.approximate_bytes();
            }
        }
        for built in fault::lock_recover(&self.signatures).values() {
            if let Ok(signature) = &built.result {
                bytes += signature.approximate_bytes();
            }
        }
        bytes
    }

    /// The column's [`ColumnStats`] over grams of sizes `n_min..=n_max`,
    /// built on first request and cached (exactly-once under concurrency).
    /// A panicking build is retried per the corpus's [`CorpusRetryPolicy`];
    /// once attempts are exhausted it is contained and recorded as a sticky
    /// [`CorpusFailure`] served to every requester of this entry; the cache
    /// lock is never poisoned by it.
    pub fn try_stats(&self, n_min: usize, n_max: usize) -> Result<Arc<ColumnStats>, CorpusFailure> {
        if fault::should_poison(FaultSite::CorpusStatsBuild) {
            fault::poison_mutex(&self.stats);
        }
        let mut cache = fault::lock_recover(&self.stats);
        if let Some(entry) = cache.get(&(n_min, n_max)) {
            self.stats_hits.fetch_add(1, Ordering::Relaxed);
            return entry.result.clone();
        }
        let (result, attempts) = build_with_retry(self.retry, "stats", || {
            fault::fire(FaultSite::CorpusStatsBuild);
            Ok(Arc::new(ColumnStats::build_on(&self.normalized, n_min, n_max)))
        });
        cache.insert((n_min, n_max), Built { result: result.clone(), attempts });
        result
    }

    /// Infallible [`Self::try_stats`]: panics with the recorded failure's
    /// message when the entry is a sticky failure (callers that need
    /// containment use `try_stats`).
    pub fn stats(&self, n_min: usize, n_max: usize) -> Arc<ColumnStats> {
        self.try_stats(n_min, n_max).unwrap_or_else(|failure| panic!("{failure}"))
    }

    /// The column's inverted [`NGramIndex`] over sizes `n_min..=n_max`,
    /// built on first request and cached (exactly-once under concurrency),
    /// with the same sticky-failure containment as [`Self::try_stats`].
    pub fn try_index(&self, n_min: usize, n_max: usize) -> Result<Arc<NGramIndex>, CorpusFailure> {
        if fault::should_poison(FaultSite::CorpusIndexBuild) {
            fault::poison_mutex(&self.indexes);
        }
        let mut cache = fault::lock_recover(&self.indexes);
        if let Some(entry) = cache.get(&(n_min, n_max)) {
            self.index_hits.fetch_add(1, Ordering::Relaxed);
            return entry.result.clone();
        }
        let (result, attempts) = build_with_retry(self.retry, "index", || {
            fault::fire(FaultSite::CorpusIndexBuild);
            NGramIndex::try_build_on(&self.normalized, n_min, n_max)
                .map(Arc::new)
                .map_err(|e| CorpusFailure::from_arena("index", e))
        });
        cache.insert((n_min, n_max), Built { result: result.clone(), attempts });
        result
    }

    /// Infallible [`Self::try_index`]: panics with the recorded failure's
    /// message when the entry is a sticky failure.
    pub fn index(&self, n_min: usize, n_max: usize) -> Arc<NGramIndex> {
        self.try_index(n_min, n_max).unwrap_or_else(|failure| panic!("{failure}"))
    }

    /// The column's discovery [`ColumnSignature`] over sizes
    /// `n_min..=n_max` (anchors at size `n_min`), built on first request
    /// and cached (exactly-once under concurrency), with the same
    /// sticky-failure containment as [`Self::try_stats`]. The build reads
    /// the column's cached stats — a sticky stats failure surfaces here as
    /// the same typed failure instead of a fresh panic.
    pub fn try_signature(
        &self,
        n_min: usize,
        n_max: usize,
    ) -> Result<Arc<ColumnSignature>, CorpusFailure> {
        if fault::should_poison(FaultSite::CorpusSignatureBuild) {
            fault::poison_mutex(&self.signatures);
        }
        let mut cache = fault::lock_recover(&self.signatures);
        if let Some(entry) = cache.get(&(n_min, n_max)) {
            self.signature_hits.fetch_add(1, Ordering::Relaxed);
            return entry.result.clone();
        }
        let (result, attempts) = build_with_retry(self.retry, "signature", || {
            fault::fire(FaultSite::CorpusSignatureBuild);
            let stats = self.try_stats(n_min, n_max)?;
            Ok(Arc::new(ColumnSignature::build(&self.normalized, &stats, n_min)))
        });
        cache.insert((n_min, n_max), Built { result: result.clone(), attempts });
        result
    }

    /// Infallible [`Self::try_signature`]: panics with the recorded
    /// failure's message when the entry is a sticky failure.
    pub fn signature(&self, n_min: usize, n_max: usize) -> Arc<ColumnSignature> {
        self.try_signature(n_min, n_max).unwrap_or_else(|failure| panic!("{failure}"))
    }
}

/// A cached intern cell: exactly one racer builds, and what it records —
/// the built column or its contained failure, plus the attempt count — is
/// what every requester of this fingerprint observes from then on.
type ColumnCell = OnceLock<Built<CorpusColumn>>;

/// A repository-wide interned corpus of column text (see the module docs).
///
/// One corpus serves one [`NormalizeOptions`]; callers whose configuration
/// normalizes differently must not share it (the matcher asserts this).
///
/// The intern map holds a per-key `OnceLock` cell, so the global mutex is
/// held only to insert or look up the cell — the O(cells) normalization
/// build runs *outside* it. Concurrent workers interning distinct columns
/// proceed in parallel; only racers on the same column wait on its cell
/// (and exactly one of them builds).
#[derive(Debug)]
pub struct GramCorpus {
    options: NormalizeOptions,
    retry: CorpusRetryPolicy,
    columns: Mutex<FxHashMap<u64, Arc<ColumnCell>>>,
    column_hits: AtomicUsize,
    /// Lifetime count of successful [`Self::append_column`] calls.
    appends: AtomicUsize,
    /// Lifetime count of appends whose artifact carry-forward panicked and
    /// degraded to rebuild-on-next-access.
    appends_degraded: AtomicUsize,
    /// Build-generation counter: every column build attempt draws a fresh,
    /// strictly increasing tag (see [`CorpusColumn::generation`]).
    generations: AtomicU64,
    /// Debug-build collision check: the raw cells behind every fingerprint,
    /// compared on each cache hit. At 64 chained bits a repository would
    /// need billions of distinct columns before a collision becomes likely;
    /// if one ever occurs, failing loudly beats silently serving another
    /// column's grams.
    #[cfg(debug_assertions)]
    shadow: Mutex<FxHashMap<u64, Vec<String>>>,
}

impl GramCorpus {
    /// Creates an empty corpus normalizing with `options`, under the
    /// default (no-retry) build policy.
    pub fn new(options: NormalizeOptions) -> Self {
        Self::with_retry(options, CorpusRetryPolicy::default())
    }

    /// Creates an empty corpus normalizing with `options` whose lazy builds
    /// run under `retry` (see [`CorpusRetryPolicy`]).
    pub fn with_retry(options: NormalizeOptions, retry: CorpusRetryPolicy) -> Self {
        Self {
            options,
            retry,
            columns: Mutex::new(FxHashMap::default()),
            column_hits: AtomicUsize::new(0),
            appends: AtomicUsize::new(0),
            appends_degraded: AtomicUsize::new(0),
            generations: AtomicU64::new(0),
            #[cfg(debug_assertions)]
            shadow: Mutex::new(FxHashMap::default()),
        }
    }

    /// The normalization this corpus applies to every interned column.
    pub fn options(&self) -> &NormalizeOptions {
        &self.options
    }

    /// The retry policy every lazy build of this corpus runs under.
    pub fn retry_policy(&self) -> CorpusRetryPolicy {
        self.retry
    }

    /// Interns `raw` (keyed by [`column_fingerprint`]) and returns its
    /// entry; the column is normalized exactly once across all calls, from
    /// any thread. The normalization runs outside the global intern lock —
    /// distinct columns build concurrently, racers on the same column wait
    /// on its cell. A panicking build is contained and recorded as this
    /// fingerprint's sticky [`CorpusFailure`].
    pub fn try_column(&self, raw: &[String]) -> Result<Arc<CorpusColumn>, CorpusFailure> {
        self.try_column_on(raw)
    }

    /// [`Self::try_column`] over any [`CellText`] column: a raw
    /// [`ColumnArena`] from ingest and a `Vec<String>` column with the same
    /// cells fingerprint identically and share one intern entry. A column
    /// that exceeds the arena's `u32` capacity is recorded as this
    /// fingerprint's sticky failure, like any other contained build error.
    pub fn try_column_on<C: CellText + ?Sized>(
        &self,
        raw: &C,
    ) -> Result<Arc<CorpusColumn>, CorpusFailure> {
        if fault::should_poison(FaultSite::CorpusColumnBuild) {
            fault::poison_mutex(&self.columns);
        }
        let running = running_column_fingerprint(raw);
        let key = running.finish();
        let cell = {
            let mut columns = fault::lock_recover(&self.columns);
            if let Some(cell) = columns.get(&key) {
                #[cfg(debug_assertions)]
                {
                    let shadow = fault::lock_recover(&self.shadow);
                    // Invariant is local (audited): every insert into
                    // `columns` writes the matching `shadow` entry inside
                    // the same `columns`-lock critical section below, so a
                    // key found in `columns` is always shadowed. Debug-only
                    // code either way — never reachable in release builds.
                    let prev = shadow.get(&key).expect("shadowed column present");
                    debug_assert!(
                        prev.iter().map(String::as_str).eq(raw.cells()),
                        "column fingerprint collision: two distinct columns hash to {key:#x}"
                    );
                }
                Arc::clone(cell)
            } else {
                let cell = Arc::new(ColumnCell::new());
                columns.insert(key, Arc::clone(&cell));
                #[cfg(debug_assertions)]
                fault::lock_recover(&self.shadow)
                    .insert(key, raw.cells().map(str::to_owned).collect());
                cell
            }
        };
        let mut built = false;
        let entry = cell.get_or_init(|| {
            built = true;
            let (result, attempts) = build_with_retry(self.retry, "column", || {
                fault::fire(FaultSite::CorpusColumnBuild);
                // Each attempt draws a fresh generation; the successful
                // attempt's tag is the one the entry keeps. Uniqueness and
                // monotonicity — not density — are the contract.
                let generation = self.generations.fetch_add(1, Ordering::Relaxed);
                CorpusColumn::build(raw, &self.options, self.retry, generation, running)
                    .map(Arc::new)
                    .map_err(|e| CorpusFailure::from_arena("column", e))
            });
            Built { result, attempts }
        });
        if !built {
            // Served from cache (whether the cell pre-existed or another
            // racer built it first): one whole-column normalization saved.
            self.column_hits.fetch_add(1, Ordering::Relaxed);
        }
        entry.result.clone()
    }

    /// Infallible [`Self::try_column`]: panics with the recorded failure's
    /// message when the entry is a sticky failure (callers that need
    /// containment use `try_column`).
    pub fn column(&self, raw: &[String]) -> Arc<CorpusColumn> {
        self.try_column(raw).unwrap_or_else(|failure| panic!("{failure}"))
    }

    /// Number of distinct columns interned (successfully built) so far.
    pub fn column_count(&self) -> usize {
        fault::lock_recover(&self.columns)
            .values()
            .filter(|cell| matches!(cell.get(), Some(built) if built.result.is_ok()))
            .count()
    }

    /// The resident, successfully built entries as `(fingerprint,
    /// approximate bytes)` pairs, sorted by fingerprint (a deterministic
    /// order for tests and eviction sweeps). In-flight builds and sticky
    /// failures are not listed — only entries [`Self::evict`] would free
    /// bytes for.
    pub fn resident_entries(&self) -> Vec<(u64, usize)> {
        let columns = fault::lock_recover(&self.columns);
        let mut entries: Vec<(u64, usize)> = columns
            .iter()
            .filter_map(|(&fingerprint, cell)| match cell.get() {
                Some(built) => match &built.result {
                    Ok(column) => Some((fingerprint, column.approximate_bytes())),
                    Err(_) => None,
                },
                None => None,
            })
            .collect();
        entries.sort_unstable_by_key(|&(fingerprint, _)| fingerprint);
        entries
    }

    /// Total approximate bytes of every resident built entry (the sum of
    /// [`Self::resident_entries`]) — what a byte budget is enforced
    /// against.
    pub fn resident_bytes(&self) -> usize {
        self.resident_entries().iter().map(|&(_, bytes)| bytes).sum()
    }

    /// The approximate byte footprint of the built entry for `fingerprint`,
    /// or `None` when the fingerprint is absent, still building, or a
    /// sticky failure.
    pub fn entry_bytes(&self, fingerprint: u64) -> Option<usize> {
        let columns = fault::lock_recover(&self.columns);
        let built = columns.get(&fingerprint)?.get()?;
        match &built.result {
            Ok(column) => Some(column.approximate_bytes()),
            Err(_) => None,
        }
    }

    /// Whether a *completed, successfully built* entry for `fingerprint` is
    /// resident (the serving layer's hit test).
    pub fn contains(&self, fingerprint: u64) -> bool {
        let columns = fault::lock_recover(&self.columns);
        matches!(
            columns.get(&fingerprint).and_then(|cell| cell.get()),
            Some(built) if built.result.is_ok()
        )
    }

    /// Evicts the completed entry for `fingerprint`, returning the
    /// approximate bytes freed — the built column's footprint, or 0 for a
    /// sticky failure (failures hold no artifact but occupy a map slot).
    /// Returns `None` when the fingerprint is absent **or its build is
    /// still in flight** (an in-flight cell is owned by the builder racer;
    /// evicting it would re-introduce the duplicated-build race interning
    /// exists to prevent). A later request for the same content re-interns
    /// and rebuilds under a fresh, strictly greater generation; because
    /// every artifact is a pure function of cells/options/range, eviction
    /// never changes results.
    pub fn evict(&self, fingerprint: u64) -> Option<usize> {
        let mut columns = fault::lock_recover(&self.columns);
        let freed = match columns.get(&fingerprint) {
            Some(cell) => match cell.get() {
                Some(built) => match &built.result {
                    Ok(column) => column.approximate_bytes(),
                    Err(_) => 0,
                },
                None => return None, // in-flight build: not evictable
            },
            None => return None,
        };
        columns.remove(&fingerprint);
        #[cfg(debug_assertions)]
        fault::lock_recover(&self.shadow).remove(&fingerprint);
        Some(freed)
    }

    /// Appends `delta`'s raw cells to the resident column interned under
    /// `fingerprint`, interning the grown column as a **new entry** keyed
    /// by the final column's content fingerprint (returned on success).
    /// The old entry is left resident — the serving layer decides whether
    /// to evict it (and transfers its cache metadata).
    ///
    /// Every cached artifact of the old entry is carried forward through
    /// the incremental append paths ([`ColumnStats::append_rows_on`],
    /// [`NGramIndex::try_append_on`], [`ColumnSignature::append_rows`]),
    /// each of which is **bit-identical** to a fresh build over the final
    /// column — so a grown entry serves exactly what re-interning the final
    /// column from scratch would. The new entry draws a fresh, strictly
    /// greater [`CorpusColumn::generation`], making "this is post-append
    /// state" observable, and the re-keying continues the old entry's
    /// unfinished fingerprint chain — O(delta) hashing, not O(column).
    ///
    /// # Failure containment
    ///
    /// * Appending to an absent, in-flight, or sticky-failed entry returns
    ///   a typed [`CorpusFailure`] (`artifact: "append"`) and changes
    ///   nothing.
    /// * A capacity overflow while normalizing or concatenating the delta
    ///   returns the same typed error a fresh build of the final column
    ///   would record, and changes nothing.
    /// * A *panic* during the artifact carry-forward (the
    ///   [`FaultSite::CorpusAppend`] injection point) degrades the new
    ///   entry to **rebuild-on-next-access**: it is interned with the
    ///   correct grown arena but *empty* artifact caches, so the next
    ///   stats/index/signature request rebuilds from the final column —
    ///   never silently stale artifacts. Degraded appends are counted in
    ///   [`CorpusStats::appends_degraded`].
    pub fn append_column<C: CellText + ?Sized>(
        &self,
        fingerprint: u64,
        delta: &C,
    ) -> Result<u64, CorpusFailure> {
        let old = {
            let columns = fault::lock_recover(&self.columns);
            let cell = columns.get(&fingerprint).ok_or_else(|| CorpusFailure {
                artifact: "append",
                message: format!("no resident entry for fingerprint {fingerprint:#x}"),
            })?;
            let built = cell.get().ok_or_else(|| CorpusFailure {
                artifact: "append",
                message: format!("entry {fingerprint:#x} is still building"),
            })?;
            built.result.clone().map_err(|failure| CorpusFailure {
                artifact: "append",
                message: format!("cannot append to a failed entry: {failure}"),
            })?
        };
        let old_len = old.normalized.len();
        let mut running = old.raw_fingerprint;
        for cell in delta.cells() {
            running.absorb(cell);
        }
        let new_fingerprint = running.finish();
        if delta.cell_count() == 0 {
            // Empty delta: the grown column IS the old column.
            self.appends.fetch_add(1, Ordering::Relaxed);
            return Ok(fingerprint);
        }
        let delta_arena = ColumnArena::try_normalized(delta, &self.options)
            .map_err(|e| CorpusFailure::from_arena("append", e))?;
        let mut normalized = old.normalized.clone();
        normalized
            .try_append_arena(&delta_arena)
            .map_err(|e| CorpusFailure::from_arena("append", e))?;
        // Carry every cached artifact forward incrementally. A panic here
        // (injected or real) must not leave a half-updated cache: the whole
        // carry-forward runs under catch_unwind and a failure degrades to
        // empty caches — the next access rebuilds from the (correct) grown
        // arena, so staleness is impossible by construction.
        type Carried = (
            ArtifactCache<ColumnStats>,
            ArtifactCache<NGramIndex>,
            ArtifactCache<ColumnSignature>,
        );
        let carried: Result<Carried, _> = catch_unwind(AssertUnwindSafe(|| {
            fault::fire(FaultSite::CorpusAppend);
            let mut stats_cache: ArtifactCache<ColumnStats> = FxHashMap::default();
            for (&(n_min, n_max), built) in fault::lock_recover(&old.stats).iter() {
                // Sticky failures are not carried: they stay absent so the
                // next access re-attempts against the final column (a
                // deterministic failure simply recurs there).
                if let Ok(stats) = &built.result {
                    let mut grown = ColumnStats::clone(stats);
                    grown.append_rows_on(&normalized, old_len, n_min, n_max);
                    stats_cache.insert(
                        (n_min, n_max),
                        Built { result: Ok(Arc::new(grown)), attempts: 1 },
                    );
                }
            }
            let mut index_cache: ArtifactCache<NGramIndex> = FxHashMap::default();
            for (&range, built) in fault::lock_recover(&old.indexes).iter() {
                if let Ok(index) = &built.result {
                    let mut grown = NGramIndex::clone(index);
                    let result = match grown.try_append_on(&normalized, old_len) {
                        Ok(()) => Ok(Arc::new(grown)),
                        // The same typed error a fresh build of the final
                        // column would record — sticky, like that build.
                        Err(e) => Err(CorpusFailure::from_arena("index", e)),
                    };
                    index_cache.insert(range, Built { result, attempts: 1 });
                }
            }
            let mut signature_cache: ArtifactCache<ColumnSignature> = FxHashMap::default();
            for (&(n_min, n_max), built) in fault::lock_recover(&old.signatures).iter() {
                if let Ok(signature) = &built.result {
                    // The signature fold needs the final column's stats for
                    // this range; the signature build path always populates
                    // the stats cache, so this is normally a lookup.
                    let stats = match stats_cache
                        .get(&(n_min, n_max))
                        .and_then(|b| b.result.as_ref().ok())
                    {
                        Some(stats) => Arc::clone(stats),
                        None => Arc::new(ColumnStats::build_on(&normalized, n_min, n_max)),
                    };
                    let mut grown = ColumnSignature::clone(signature);
                    grown.append_rows(&normalized, &stats, old_len, n_max);
                    signature_cache.insert(
                        (n_min, n_max),
                        Built { result: Ok(Arc::new(grown)), attempts: 1 },
                    );
                }
            }
            (stats_cache, index_cache, signature_cache)
        }));
        let (stats_cache, index_cache, signature_cache) = match carried {
            Ok(caches) => caches,
            Err(_) => {
                // Degrade to rebuild-on-next-access: never stale.
                self.appends_degraded.fetch_add(1, Ordering::Relaxed);
                (FxHashMap::default(), FxHashMap::default(), FxHashMap::default())
            }
        };
        let generation = self.generations.fetch_add(1, Ordering::Relaxed);
        let column = CorpusColumn {
            normalized,
            raw_fingerprint: running,
            generation,
            retry: self.retry,
            stats: Mutex::new(stats_cache),
            indexes: Mutex::new(index_cache),
            signatures: Mutex::new(signature_cache),
            stats_hits: AtomicUsize::new(0),
            index_hits: AtomicUsize::new(0),
            signature_hits: AtomicUsize::new(0),
        };
        let cell = {
            let mut columns = fault::lock_recover(&self.columns);
            match columns.get(&new_fingerprint) {
                Some(cell) => Arc::clone(cell),
                None => {
                    let cell = Arc::new(ColumnCell::new());
                    columns.insert(new_fingerprint, Arc::clone(&cell));
                    #[cfg(debug_assertions)]
                    {
                        let mut shadow = fault::lock_recover(&self.shadow);
                        let mut cells = shadow.get(&fingerprint).cloned().unwrap_or_default();
                        cells.extend(delta.cells().map(str::to_owned));
                        shadow.insert(new_fingerprint, cells);
                    }
                    cell
                }
            }
        };
        // If a racer (or an earlier intern of the same final content)
        // already built this fingerprint, keep the existing entry — the
        // contents are identical by construction.
        cell.get_or_init(|| Built { result: Ok(Arc::new(column)), attempts: 1 });
        self.appends.fetch_add(1, Ordering::Relaxed);
        Ok(new_fingerprint)
    }

    /// A snapshot of the intern/build/hit counters (see [`CorpusStats`]).
    /// Columns whose build is still in flight on another thread are not
    /// counted yet.
    pub fn stats(&self) -> CorpusStats {
        let columns = fault::lock_recover(&self.columns);
        let mut stats = CorpusStats {
            columns_interned: 0,
            column_hits: self.column_hits.load(Ordering::Relaxed),
            appends: self.appends.load(Ordering::Relaxed),
            appends_degraded: self.appends_degraded.load(Ordering::Relaxed),
            ..CorpusStats::default()
        };
        for entry in columns.values().filter_map(|cell| cell.get()) {
            stats.column_attempts += entry.attempts;
            let column = match &entry.result {
                Ok(column) => column,
                Err(_) => {
                    stats.columns_failed += 1;
                    continue;
                }
            };
            stats.columns_interned += 1;
            for built in fault::lock_recover(&column.stats).values() {
                stats.stats_attempts += built.attempts;
                match &built.result {
                    Ok(_) => stats.stats_built += 1,
                    Err(_) => stats.stats_failed += 1,
                }
            }
            stats.stats_hits += column.stats_hits.load(Ordering::Relaxed);
            for built in fault::lock_recover(&column.indexes).values() {
                stats.index_attempts += built.attempts;
                match &built.result {
                    Ok(_) => stats.indexes_built += 1,
                    Err(_) => stats.indexes_failed += 1,
                }
            }
            stats.index_hits += column.index_hits.load(Ordering::Relaxed);
            for built in fault::lock_recover(&column.signatures).values() {
                stats.signature_attempts += built.attempts;
                match &built.result {
                    Ok(_) => stats.signatures_built += 1,
                    Err(_) => stats.signatures_failed += 1,
                }
            }
            stats.signature_hits += column.signature_hits.load(Ordering::Relaxed);
        }
        stats
    }
}

/// Lifetime counters of a **resident corpus cache** (the `tjoin-serve`
/// layer), reported next to [`CorpusStats`] on batch outcomes. Where
/// `CorpusStats` snapshots the currently resident entries, `ServeStats`
/// accumulates across evictions for the cache's whole lifetime; all
/// counters are updated serially at request admission/release, so their
/// values are deterministic for a given request sequence regardless of
/// worker thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Distinct requested columns served from the resident cache.
    pub hits: usize,
    /// Distinct requested columns that were not resident (built during the
    /// run that requested them).
    pub misses: usize,
    /// Columns newly retained by the cache after a run.
    pub inserts: usize,
    /// Entries evicted to satisfy the byte budget.
    pub evictions: usize,
    /// Approximate bytes currently resident (after the last release).
    pub bytes_resident: usize,
    /// Requests queued and not yet run at the time of the snapshot.
    pub queue_depth: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(values: &[&str]) -> Vec<String> {
        values.iter().map(|v| v.to_string()).collect()
    }

    #[test]
    fn same_content_interns_once() {
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let a = col(&["Rafiei, Davood", "Bowling, Michael"]);
        // A *different allocation* with the same content must hit the same
        // entry: interning is by content, not identity.
        let first = corpus.column(&a);
        let second = corpus.column(&a.clone());
        assert!(Arc::ptr_eq(&first, &second));
        let stats = corpus.stats();
        assert_eq!(stats.columns_interned, 1);
        assert_eq!(stats.column_hits, 1);
        assert_eq!(stats.normalizations_saved(), 1);
        assert_eq!(stats.total_failures(), 0);
    }

    #[test]
    fn signatures_cache_exactly_once_and_count_bytes() {
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let column = corpus.column(&col(&["Rafiei, Davood", "Bowling, Michael"]));
        let before = column.approximate_bytes();
        let first = column.signature(4, 8);
        let second = column.signature(4, 8);
        assert!(Arc::ptr_eq(&first, &second), "cached signature is shared");
        let other_range = column.signature(5, 8);
        assert!(!Arc::ptr_eq(&first, &other_range), "size ranges cache separately");
        let stats = corpus.stats();
        assert_eq!(stats.signatures_built, 2);
        assert_eq!(stats.signature_hits, 1);
        assert_eq!(stats.signatures_failed, 0);
        assert_eq!(stats.signature_attempts, 2);
        // The signature build pulls the column's stats through the stats
        // cache (one build per range), and the resident footprint grows by
        // the cached signatures.
        assert_eq!(stats.stats_built, 2);
        assert!(column.approximate_bytes() > before);
    }

    #[test]
    fn distinct_columns_get_distinct_entries() {
        // Exercises the debug-build fingerprint-collision check across many
        // near-identical columns (single-cell edits, reorders, length
        // changes) — the shapes where a weak chain would collide.
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let mut entries = Vec::new();
        for i in 0..200 {
            let c = col(&[&format!("value-{i:03}"), "shared suffix"]);
            entries.push(corpus.column(&c));
        }
        entries.push(corpus.column(&col(&["shared suffix", "value-000"])));
        entries.push(corpus.column(&col(&["value-000"])));
        entries.push(corpus.column(&col(&["value-000", "shared suffix", ""])));
        assert_eq!(corpus.column_count(), 203);
        for (i, a) in entries.iter().enumerate() {
            for b in &entries[i + 1..] {
                assert!(!Arc::ptr_eq(a, b));
            }
        }
        assert_eq!(corpus.stats().column_hits, 0);
    }

    #[test]
    fn normalization_applied_once_and_matches_per_call() {
        use crate::normalize::normalize_for_matching;
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let raw = col(&["  Rafiei,   DAVOOD ", "M  Bowling"]);
        let entry = corpus.column(&raw);
        let expected: Vec<String> = raw
            .iter()
            .map(|v| normalize_for_matching(v, &NormalizeOptions::default()))
            .collect();
        let normalized: Vec<&str> = entry.normalized().cells().collect();
        assert_eq!(normalized, expected.iter().map(String::as_str).collect::<Vec<_>>());
        assert_eq!(entry.normalized().cell(0), "rafiei, davood");
    }

    #[test]
    fn arena_column_interns_to_same_entry_as_vec_column() {
        // Interning is by cell *content*: the same column handed over as a
        // Vec<String> and as a raw ColumnArena must hit one entry.
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let raw = col(&["Rafiei, Davood", "Bowling, Michael"]);
        let arena = ColumnArena::from_cells(raw.as_slice());
        assert_eq!(column_fingerprint(&raw), column_fingerprint_on(&arena));
        let from_vec = corpus.column(&raw);
        let from_arena = corpus.try_column_on(&arena).unwrap();
        assert!(Arc::ptr_eq(&from_vec, &from_arena));
        let stats = corpus.stats();
        assert_eq!(stats.columns_interned, 1);
        assert_eq!(stats.column_hits, 1);
    }

    #[test]
    fn stats_and_index_cached_per_size_range() {
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let entry = corpus.column(&col(&["abcdef", "abcxyz"]));
        let s1 = entry.stats(2, 4);
        let s2 = entry.stats(2, 4);
        assert!(Arc::ptr_eq(&s1, &s2));
        let s3 = entry.stats(3, 5); // different range: a different artifact
        assert!(!Arc::ptr_eq(&s1, &s3));
        let i1 = entry.index(2, 4);
        let i2 = entry.index(2, 4);
        assert!(Arc::ptr_eq(&i1, &i2));
        let stats = corpus.stats();
        assert_eq!(stats.stats_built, 2);
        assert_eq!(stats.stats_hits, 1);
        assert_eq!(stats.indexes_built, 1);
        assert_eq!(stats.index_hits, 1);
        // The cached artifacts equal a direct per-call build.
        let direct = ColumnStats::build_on(entry.normalized(), 2, 4);
        assert_eq!(s1.row_count, direct.row_count);
        assert_eq!(s1.distinct_ngrams(), direct.distinct_ngrams());
        assert_eq!(i1.rows_containing("abc"), &[0, 1]);
    }

    #[test]
    fn concurrent_interning_builds_each_column_once() {
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let shared = col(&["Rafiei, Davood", "Bowling, Michael", "Gosgnach, Simon"]);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let entry = corpus.column(&shared);
                    let _ = entry.stats(4, 8);
                    let _ = entry.index(4, 8);
                });
            }
        });
        let stats = corpus.stats();
        assert_eq!(stats.columns_interned, 1);
        assert_eq!(stats.column_hits, 7);
        assert_eq!(stats.stats_built, 1);
        assert_eq!(stats.indexes_built, 1);
        assert_eq!(stats.stats_hits + 1 + stats.index_hits + 1, 16);
    }

    #[test]
    fn empty_column_interns_fine() {
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let entry = corpus.column(&[]);
        assert!(entry.normalized().is_empty());
        assert_eq!(entry.stats(4, 20).row_count, 0);
        assert_eq!(entry.index(4, 20).row_count(), 0);
        // Empty and single-empty-cell columns are distinct contents.
        let single_empty = corpus.column(&col(&[""]));
        assert!(!Arc::ptr_eq(&entry, &single_empty));
    }

    #[test]
    fn column_fingerprint_distinguishes_shape() {
        assert_ne!(
            column_fingerprint(&col(&["a", "b"])),
            column_fingerprint(&col(&["b", "a"]))
        );
        assert_ne!(column_fingerprint(&col(&["ab"])), column_fingerprint(&col(&["a", "b"])));
        assert_ne!(column_fingerprint(&[]), column_fingerprint(&col(&[""])));
    }

    #[test]
    fn entry_bytes_grow_with_cached_artifacts() {
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let raw = col(&["abcdef", "abcxyz"]);
        let fp = column_fingerprint(&raw);
        let entry = corpus.column(&raw);
        let base = entry.approximate_bytes();
        assert!(base >= entry.normalized().approximate_bytes());
        let _ = entry.stats(2, 4);
        let with_stats = entry.approximate_bytes();
        assert!(with_stats > base);
        let _ = entry.index(2, 4);
        let with_index = entry.approximate_bytes();
        assert!(with_index > with_stats);
        // The corpus-level accounting sees the same footprint.
        assert_eq!(corpus.entry_bytes(fp), Some(with_index));
        assert_eq!(corpus.resident_entries(), vec![(fp, with_index)]);
        assert_eq!(corpus.resident_bytes(), with_index);
        assert_eq!(corpus.entry_bytes(fp ^ 1), None);
    }

    #[test]
    fn evict_then_reintern_bumps_generation() {
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let a = col(&["alpha", "beta"]);
        let b = col(&["gamma"]);
        let fp_a = column_fingerprint(&a);
        let first = corpus.column(&a);
        let kept = corpus.column(&b);
        assert!(corpus.contains(fp_a));
        let freed = corpus.evict(fp_a).expect("completed entry evicts");
        assert!(freed > 0);
        assert!(!corpus.contains(fp_a));
        assert_eq!(corpus.entry_bytes(fp_a), None);
        assert_eq!(corpus.evict(fp_a), None); // already gone
        assert_eq!(corpus.column_count(), 1);
        // Unrelated entries are untouched.
        assert!(Arc::ptr_eq(&kept, &corpus.column(&b)));
        // Re-interning rebuilds: a fresh entry under a strictly greater
        // generation, with identical content (eviction never changes what
        // a corpus serves, only when it is built).
        let second = corpus.column(&a);
        assert!(!Arc::ptr_eq(&first, &second));
        assert!(second.generation() > first.generation());
        assert_eq!(first.normalized(), second.normalized());
        // The stats snapshot covers resident entries only.
        assert_eq!(corpus.stats().columns_interned, 2);
    }

    #[test]
    fn append_column_matches_fresh_intern_bit_identically() {
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let base = col(&["Rafiei, Davood", "Bowling, Michael"]);
        let delta = col(&["  Nascimento,   MARIO ", "Gosgnach, Simon"]);
        let mut final_cells = base.clone();
        final_cells.extend(delta.iter().cloned());

        let old_fp = column_fingerprint(&base);
        let old = corpus.column(&base);
        let _ = old.stats(4, 8);
        let _ = old.index(4, 8);
        let _ = old.signature(4, 8);
        let old_generation = old.generation();

        let new_fp = corpus.append_column(old_fp, &delta).expect("append succeeds");
        assert_eq!(new_fp, column_fingerprint(&final_cells), "re-keying matches a fresh pass");
        assert!(corpus.contains(old_fp), "eviction of the old entry is the serving layer's call");
        let grown = corpus.column(&final_cells);
        assert!(grown.generation() > old_generation);

        // A fresh corpus over the final column is the oracle: every carried
        // artifact must be bit-identical.
        let fresh_corpus = GramCorpus::new(NormalizeOptions::default());
        let fresh = fresh_corpus.column(&final_cells);
        assert_eq!(grown.normalized(), fresh.normalized());
        assert_eq!(*grown.stats(4, 8), *fresh.stats(4, 8));
        assert_eq!(*grown.index(4, 8), *fresh.index(4, 8));
        assert_eq!(*grown.signature(4, 8), *fresh.signature(4, 8));

        let stats = corpus.stats();
        assert_eq!(stats.appends, 1);
        assert_eq!(stats.appends_degraded, 0);
        // The carried artifacts were NOT rebuilt: requesting them hits.
        let hits_before = corpus.stats().stats_hits;
        let _ = grown.stats(4, 8);
        assert_eq!(corpus.stats().stats_hits, hits_before + 1);
    }

    #[test]
    fn append_column_empty_delta_is_identity() {
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let base = col(&["alpha", "beta"]);
        let fp = column_fingerprint(&base);
        let _ = corpus.column(&base);
        let same = corpus.append_column(fp, &Vec::<String>::new()).unwrap();
        assert_eq!(same, fp);
        assert_eq!(corpus.stats().appends, 1);
        assert_eq!(corpus.column_count(), 1);
    }

    #[test]
    fn append_to_absent_or_failed_entry_is_a_typed_error() {
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let failure = corpus.append_column(0xDEAD, &col(&["x"])).unwrap_err();
        assert_eq!(failure.artifact, "append");
        assert!(failure.message.contains("no resident entry"));
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn injected_append_panic_degrades_to_rebuild_never_stale() {
        use crate::fault::{FaultKind, FaultPlan};
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let base = col(&["Rafiei, Davood", "Bowling, Michael"]);
        let delta = col(&["Nascimento, Mario"]);
        let mut final_cells = base.clone();
        final_cells.extend(delta.iter().cloned());
        let old_fp = column_fingerprint(&base);
        let old = corpus.column(&base);
        let _ = old.stats(4, 8);
        let _ = old.index(4, 8);

        let plan = FaultPlan::new().inject(0, FaultSite::CorpusAppend, FaultKind::Panic);
        let new_fp = fault::with_pair_scope(&plan, 0, || corpus.append_column(old_fp, &delta))
            .expect("a degraded append still interns the grown column");
        assert_eq!(new_fp, column_fingerprint(&final_cells));
        let stats = corpus.stats();
        assert_eq!(stats.appends, 1);
        assert_eq!(stats.appends_degraded, 1);

        // Degraded means empty caches (sticky rebuild-on-next-access), so
        // the next request REBUILDS — and what it builds is the fresh
        // oracle over the final column, never a stale carry.
        let grown = corpus.column(&final_cells);
        let built_before = corpus.stats().stats_built;
        let grown_stats = grown.stats(4, 8);
        assert_eq!(corpus.stats().stats_built, built_before + 1, "cache was empty: a real build");
        let fresh_corpus = GramCorpus::new(NormalizeOptions::default());
        let fresh = fresh_corpus.column(&final_cells);
        assert_eq!(*grown_stats, *fresh.stats(4, 8));
        assert_eq!(*grown.index(4, 8), *fresh.index(4, 8));
    }

    #[test]
    fn attempts_counters_match_builds_without_faults() {
        let corpus = GramCorpus::new(NormalizeOptions::default());
        assert_eq!(corpus.retry_policy(), CorpusRetryPolicy::default());
        let entry = corpus.column(&col(&["abcdef", "abcxyz"]));
        let _ = entry.stats(2, 4);
        let _ = entry.stats(3, 5);
        let _ = entry.index(2, 4);
        let stats = corpus.stats();
        assert_eq!(stats.column_attempts, 1);
        assert_eq!(stats.stats_attempts, 2);
        assert_eq!(stats.index_attempts, 1);
    }

    #[test]
    fn deterministic_failures_short_circuit_retry() {
        use std::cell::Cell;
        // A typed error is a pure function of the inputs: even a generous
        // policy must not re-run the build.
        let calls = Cell::new(0usize);
        let policy = CorpusRetryPolicy::new(5, Duration::ZERO);
        let (result, attempts) = build_with_retry::<CorpusColumn>(policy, "column", || {
            calls.set(calls.get() + 1);
            Err(CorpusFailure::from_arena(
                "column",
                ArenaError::RowCountOverflow { rows: 7 },
            ))
        });
        assert!(result.is_err());
        assert_eq!(attempts, 1);
        assert_eq!(calls.get(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempt_policy_rejected() {
        let _ = CorpusRetryPolicy::new(0, Duration::ZERO);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn transient_panic_recovers_under_retry() {
        use crate::fault::{FaultKind, FaultPlan};
        let corpus = GramCorpus::with_retry(
            NormalizeOptions::default(),
            CorpusRetryPolicy::new(3, Duration::ZERO),
        );
        // Panic once, then succeed: the transient shape the retry policy
        // exists for.
        let plan =
            FaultPlan::new().inject_limited(0, FaultSite::CorpusColumnBuild, FaultKind::Panic, 1);
        let raw = col(&["abcdef", "abcxyz"]);
        let entry = fault::with_pair_scope(&plan, 0, || corpus.try_column(&raw))
            .expect("transient failure recovers");
        assert_eq!(entry.normalized().cell(0), "abcdef");
        let stats = corpus.stats();
        assert_eq!(stats.columns_interned, 1);
        assert_eq!(stats.columns_failed, 0);
        assert_eq!(stats.column_attempts, 2); // one absorbed panic + success
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn exhausted_retries_stay_sticky() {
        use crate::fault::{FaultKind, FaultPlan};
        let corpus = GramCorpus::with_retry(
            NormalizeOptions::default(),
            CorpusRetryPolicy::new(3, Duration::ZERO),
        );
        // Unlimited panic: every attempt fails, the failure goes sticky.
        let plan = FaultPlan::new().inject(0, FaultSite::CorpusStatsBuild, FaultKind::Panic);
        let entry = corpus.column(&col(&["abcdef", "abcxyz"]));
        let failure =
            fault::with_pair_scope(&plan, 0, || entry.try_stats(2, 4)).unwrap_err();
        assert_eq!(failure.artifact, "stats");
        // Sticky: a later call outside any fault scope observes the same
        // recorded failure instead of rebuilding.
        assert_eq!(entry.try_stats(2, 4).unwrap_err(), failure);
        let stats = corpus.stats();
        assert_eq!(stats.stats_failed, 1);
        assert_eq!(stats.stats_attempts, 3); // every allowed attempt ran
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn slow_faults_are_absorbed_in_one_attempt() {
        use crate::fault::{FaultKind, FaultPlan};
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let plan = FaultPlan::new().inject_limited(
            0,
            FaultSite::CorpusIndexBuild,
            FaultKind::Slow(Duration::from_millis(1)),
            1,
        );
        let entry = corpus.column(&col(&["abcdef"]));
        let index = fault::with_pair_scope(&plan, 0, || entry.try_index(2, 3)).unwrap();
        assert_eq!(index.row_count(), 1);
        // Slowness is not failure: one attempt, nothing retried.
        assert_eq!(corpus.stats().index_attempts, 1);
    }

    #[test]
    fn poisoned_corpus_locks_are_recovered_not_fatal() {
        // Poison every corpus lock from a side thread, then use the corpus
        // normally: lock_recover must serve consistent cached state.
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let entry = corpus.column(&col(&["abcdef", "abcxyz"]));
        let before = entry.stats(2, 4);
        fault::poison_mutex(&corpus.columns);
        fault::poison_mutex(&entry.stats);
        fault::poison_mutex(&entry.indexes);
        let again = corpus.column(&col(&["abcdef", "abcxyz"]));
        assert!(Arc::ptr_eq(&entry, &again));
        assert!(Arc::ptr_eq(&before, &again.stats(2, 4)));
        let _ = again.index(2, 4);
        let stats = corpus.stats();
        assert_eq!(stats.columns_interned, 1);
        assert_eq!(stats.stats_built, 1);
        assert_eq!(stats.indexes_built, 1);
        assert_eq!(stats.total_failures(), 0);
    }
}
