//! Repository-wide interned text corpus.
//!
//! The repository workloads the paper targets (and GXJoin/QJoin evaluate)
//! join *many* column pairs, and the same column frequently appears in
//! several pairs — one master column probed against many candidate targets.
//! The per-pair matcher path re-derives that column's text artifacts on
//! every call: normalization of every cell, [`ColumnStats`] for IRF, and
//! the inverted [`NGramIndex`]. A [`GramCorpus`] amortizes that work across
//! the whole repository:
//!
//! * **Columns are interned by content.** [`GramCorpus::column`] keys each
//!   column by a 64-bit chained fingerprint of its cells
//!   ([`fingerprint64_chain`] over per-cell [`fingerprint64`]s) and
//!   normalizes it exactly once, no matter how many pairs reference it. A
//!   debug-build shadow map holds the raw cells and asserts the column
//!   fingerprints never collide on the interned corpus.
//! * **Gram artifacts are cached per size range.** A [`CorpusColumn`] lazily
//!   builds — and then shares via `Arc` — its [`ColumnStats`] and
//!   [`NGramIndex`] per `(n_min, n_max)`, so a column probed by k pairs
//!   under one matcher configuration derives its grams once, not k times.
//! * **Construction is thread-safe, exactly-once, and concurrent across
//!   columns.** The intern map holds a per-column `OnceLock` cell; the
//!   global lock covers only the cell lookup/insert, and the O(cells)
//!   normalization runs outside it — workers interning *distinct* columns
//!   proceed in parallel, while racers on the *same* column wait on its
//!   cell and exactly one builds. Per-range artifact builds lock only
//!   their own column. [`GramCorpus::stats`] exposes the intern/build/hit
//!   counters the differential tests and the `join_throughput` bench
//!   assert on.
//! * **Build failures are contained and sticky.** Every lazy build runs
//!   under `catch_unwind`: a panicking `ColumnStats`/`NGramIndex`/column
//!   build records a [`CorpusFailure`] *in the cache entry* instead of
//!   poisoning the lock, so one bad column fails exactly the pairs that
//!   reference it — cleanly, via the `try_*` accessors — while every other
//!   entry keeps serving. Corpus locks are taken through
//!   [`crate::fault::lock_recover`], so even an externally poisoned mutex
//!   (exercised by the fault-injection harness) cannot take down later
//!   hits. Failed entries are counted in [`CorpusStats`].
//!
//! Everything a corpus serves is a pure function of the column's cells, the
//! corpus's [`NormalizeOptions`], and the requested size range — the same
//! inputs the per-call path feeds `ColumnStats::build`/`NGramIndex::build`
//! directly. Matcher output over a corpus is therefore bit-identical to the
//! per-call path, which `crates/join/tests/proptest_batch.rs` enforces
//! differentially.

use crate::arena::{ArenaError, CellText, ColumnArena};
use crate::fault::{self, FaultSite};
use crate::fingerprint::{fingerprint64, fingerprint64_chain};
use crate::fxhash::FxHashMap;
use crate::index::NGramIndex;
use crate::normalize::NormalizeOptions;
use crate::scoring::ColumnStats;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The content fingerprint a corpus keys a column by: a length-seeded chain
/// of every cell's [`fingerprint64`].
pub fn column_fingerprint(cells: &[String]) -> u64 {
    column_fingerprint_on(cells)
}

/// [`column_fingerprint`] over any [`CellText`] column. The fingerprint is
/// a pure function of the cell *contents*, so a `Vec<String>` column and a
/// [`ColumnArena`] holding the same cells intern to the same corpus entry.
pub fn column_fingerprint_on<C: CellText + ?Sized>(column: &C) -> u64 {
    column.cells().fold(
        0x9E37_79B9_7F4A_7C15 ^ column.cell_count() as u64,
        |acc, cell| fingerprint64_chain(acc, fingerprint64(cell)),
    )
}

/// A contained, sticky corpus build failure: the artifact whose lazy build
/// panicked plus the panic's message. Recorded in the cache entry, so every
/// later request for the same artifact observes the same failure instead of
/// a poisoned lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusFailure {
    /// Which artifact failed to build (`"column"`, `"stats"`, `"index"`).
    pub artifact: &'static str,
    /// The contained panic's message.
    pub message: String,
}

impl CorpusFailure {
    fn new(artifact: &'static str, payload: Box<dyn std::any::Any + Send>) -> Self {
        Self {
            artifact,
            message: fault::panic_message(&*payload),
        }
    }

    fn from_arena(artifact: &'static str, error: ArenaError) -> Self {
        Self {
            artifact,
            message: error.to_string(),
        }
    }
}

impl fmt::Display for CorpusFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corpus {} build failed: {}", self.artifact, self.message)
    }
}

impl std::error::Error for CorpusFailure {}

/// Intern/build/hit counters of a [`GramCorpus`] (see [`GramCorpus::stats`]).
///
/// `columns_interned` is the number of *distinct* columns normalized — each
/// exactly once — while `column_hits` counts the [`GramCorpus::column`]
/// calls served from cache: every hit is a whole-column normalization the
/// per-call path would have re-run. The same applies to the stats/index
/// pairs of counters. The `*_failed` counters record sticky build failures
/// (always 0 outside fault injection and pathological inputs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorpusStats {
    /// Distinct columns interned (normalization passes actually run).
    pub columns_interned: usize,
    /// `column()` calls served from the intern cache.
    pub column_hits: usize,
    /// Distinct `(column, size-range)` [`ColumnStats`] built.
    pub stats_built: usize,
    /// `stats()` calls served from cache.
    pub stats_hits: usize,
    /// Distinct `(column, size-range)` [`NGramIndex`]es built.
    pub indexes_built: usize,
    /// `index()` calls served from cache.
    pub index_hits: usize,
    /// Column builds that panicked and were recorded as sticky failures.
    pub columns_failed: usize,
    /// `ColumnStats` builds recorded as sticky failures.
    pub stats_failed: usize,
    /// `NGramIndex` builds recorded as sticky failures.
    pub indexes_failed: usize,
}

impl CorpusStats {
    /// Whole-column normalization passes the corpus avoided relative to the
    /// per-call path (one per cache hit).
    pub fn normalizations_saved(&self) -> usize {
        self.column_hits
    }

    /// Total sticky build failures across all artifact kinds.
    pub fn total_failures(&self) -> usize {
        self.columns_failed + self.stats_failed + self.indexes_failed
    }
}

/// A per-size-range artifact cache entry: the built artifact or its sticky
/// contained failure, keyed by `(n_min, n_max)`.
type ArtifactCache<A> = FxHashMap<(usize, usize), Result<Arc<A>, CorpusFailure>>;

/// One interned column: its normalized cells — flattened into a
/// [`ColumnArena`] at build time — plus lazily built, cached gram artifacts
/// per `(n_min, n_max)` size range. Obtained from [`GramCorpus::column`];
/// shared across pairs (and worker threads) via `Arc`, so every scan worker
/// borrows `&str` slices out of the one arena instead of cloning cells.
#[derive(Debug)]
pub struct CorpusColumn {
    normalized: ColumnArena,
    stats: Mutex<ArtifactCache<ColumnStats>>,
    indexes: Mutex<ArtifactCache<NGramIndex>>,
    stats_hits: AtomicUsize,
    index_hits: AtomicUsize,
}

impl CorpusColumn {
    fn build<C: CellText + ?Sized>(
        raw: &C,
        options: &NormalizeOptions,
    ) -> Result<Self, ArenaError> {
        Ok(Self {
            normalized: ColumnArena::try_normalized(raw, options)?,
            stats: Mutex::new(FxHashMap::default()),
            indexes: Mutex::new(FxHashMap::default()),
            stats_hits: AtomicUsize::new(0),
            index_hits: AtomicUsize::new(0),
        })
    }

    /// The column's normalized cells, in row order, as a shared arena.
    pub fn normalized(&self) -> &ColumnArena {
        &self.normalized
    }

    /// The column's [`ColumnStats`] over grams of sizes `n_min..=n_max`,
    /// built on first request and cached (exactly-once under concurrency).
    /// A panicking build is contained and recorded as a sticky
    /// [`CorpusFailure`] served to every requester of this entry; the cache
    /// lock is never poisoned by it.
    pub fn try_stats(&self, n_min: usize, n_max: usize) -> Result<Arc<ColumnStats>, CorpusFailure> {
        if fault::should_poison(FaultSite::CorpusStatsBuild) {
            fault::poison_mutex(&self.stats);
        }
        let mut cache = fault::lock_recover(&self.stats);
        if let Some(entry) = cache.get(&(n_min, n_max)) {
            self.stats_hits.fetch_add(1, Ordering::Relaxed);
            return entry.clone();
        }
        let built = catch_unwind(AssertUnwindSafe(|| {
            fault::fire(FaultSite::CorpusStatsBuild);
            Arc::new(ColumnStats::build_on(&self.normalized, n_min, n_max))
        }))
        .map_err(|payload| CorpusFailure::new("stats", payload));
        cache.insert((n_min, n_max), built.clone());
        built
    }

    /// Infallible [`Self::try_stats`]: panics with the recorded failure's
    /// message when the entry is a sticky failure (callers that need
    /// containment use `try_stats`).
    pub fn stats(&self, n_min: usize, n_max: usize) -> Arc<ColumnStats> {
        self.try_stats(n_min, n_max).unwrap_or_else(|failure| panic!("{failure}"))
    }

    /// The column's inverted [`NGramIndex`] over sizes `n_min..=n_max`,
    /// built on first request and cached (exactly-once under concurrency),
    /// with the same sticky-failure containment as [`Self::try_stats`].
    pub fn try_index(&self, n_min: usize, n_max: usize) -> Result<Arc<NGramIndex>, CorpusFailure> {
        if fault::should_poison(FaultSite::CorpusIndexBuild) {
            fault::poison_mutex(&self.indexes);
        }
        let mut cache = fault::lock_recover(&self.indexes);
        if let Some(entry) = cache.get(&(n_min, n_max)) {
            self.index_hits.fetch_add(1, Ordering::Relaxed);
            return entry.clone();
        }
        let built = catch_unwind(AssertUnwindSafe(|| {
            fault::fire(FaultSite::CorpusIndexBuild);
            NGramIndex::try_build_on(&self.normalized, n_min, n_max).map(Arc::new)
        }))
        .map_err(|payload| CorpusFailure::new("index", payload))
        .and_then(|r| r.map_err(|e| CorpusFailure::from_arena("index", e)));
        cache.insert((n_min, n_max), built.clone());
        built
    }

    /// Infallible [`Self::try_index`]: panics with the recorded failure's
    /// message when the entry is a sticky failure.
    pub fn index(&self, n_min: usize, n_max: usize) -> Arc<NGramIndex> {
        self.try_index(n_min, n_max).unwrap_or_else(|failure| panic!("{failure}"))
    }
}

/// A cached intern cell: exactly one racer builds, and what it records —
/// the built column or its contained failure — is what every requester of
/// this fingerprint observes from then on.
type ColumnCell = OnceLock<Result<Arc<CorpusColumn>, CorpusFailure>>;

/// A repository-wide interned corpus of column text (see the module docs).
///
/// One corpus serves one [`NormalizeOptions`]; callers whose configuration
/// normalizes differently must not share it (the matcher asserts this).
///
/// The intern map holds a per-key `OnceLock` cell, so the global mutex is
/// held only to insert or look up the cell — the O(cells) normalization
/// build runs *outside* it. Concurrent workers interning distinct columns
/// proceed in parallel; only racers on the same column wait on its cell
/// (and exactly one of them builds).
#[derive(Debug)]
pub struct GramCorpus {
    options: NormalizeOptions,
    columns: Mutex<FxHashMap<u64, Arc<ColumnCell>>>,
    column_hits: AtomicUsize,
    /// Debug-build collision check: the raw cells behind every fingerprint,
    /// compared on each cache hit. At 64 chained bits a repository would
    /// need billions of distinct columns before a collision becomes likely;
    /// if one ever occurs, failing loudly beats silently serving another
    /// column's grams.
    #[cfg(debug_assertions)]
    shadow: Mutex<FxHashMap<u64, Vec<String>>>,
}

impl GramCorpus {
    /// Creates an empty corpus normalizing with `options`.
    pub fn new(options: NormalizeOptions) -> Self {
        Self {
            options,
            columns: Mutex::new(FxHashMap::default()),
            column_hits: AtomicUsize::new(0),
            #[cfg(debug_assertions)]
            shadow: Mutex::new(FxHashMap::default()),
        }
    }

    /// The normalization this corpus applies to every interned column.
    pub fn options(&self) -> &NormalizeOptions {
        &self.options
    }

    /// Interns `raw` (keyed by [`column_fingerprint`]) and returns its
    /// entry; the column is normalized exactly once across all calls, from
    /// any thread. The normalization runs outside the global intern lock —
    /// distinct columns build concurrently, racers on the same column wait
    /// on its cell. A panicking build is contained and recorded as this
    /// fingerprint's sticky [`CorpusFailure`].
    pub fn try_column(&self, raw: &[String]) -> Result<Arc<CorpusColumn>, CorpusFailure> {
        self.try_column_on(raw)
    }

    /// [`Self::try_column`] over any [`CellText`] column: a raw
    /// [`ColumnArena`] from ingest and a `Vec<String>` column with the same
    /// cells fingerprint identically and share one intern entry. A column
    /// that exceeds the arena's `u32` capacity is recorded as this
    /// fingerprint's sticky failure, like any other contained build error.
    pub fn try_column_on<C: CellText + ?Sized>(
        &self,
        raw: &C,
    ) -> Result<Arc<CorpusColumn>, CorpusFailure> {
        if fault::should_poison(FaultSite::CorpusColumnBuild) {
            fault::poison_mutex(&self.columns);
        }
        let key = column_fingerprint_on(raw);
        let cell = {
            let mut columns = fault::lock_recover(&self.columns);
            if let Some(cell) = columns.get(&key) {
                #[cfg(debug_assertions)]
                {
                    let shadow = fault::lock_recover(&self.shadow);
                    // Invariant is local (audited): every insert into
                    // `columns` writes the matching `shadow` entry inside
                    // the same `columns`-lock critical section below, so a
                    // key found in `columns` is always shadowed. Debug-only
                    // code either way — never reachable in release builds.
                    let prev = shadow.get(&key).expect("shadowed column present");
                    debug_assert!(
                        prev.iter().map(String::as_str).eq(raw.cells()),
                        "column fingerprint collision: two distinct columns hash to {key:#x}"
                    );
                }
                Arc::clone(cell)
            } else {
                let cell = Arc::new(ColumnCell::new());
                columns.insert(key, Arc::clone(&cell));
                #[cfg(debug_assertions)]
                fault::lock_recover(&self.shadow)
                    .insert(key, raw.cells().map(str::to_owned).collect());
                cell
            }
        };
        let mut built = false;
        let entry = cell.get_or_init(|| {
            built = true;
            catch_unwind(AssertUnwindSafe(|| {
                fault::fire(FaultSite::CorpusColumnBuild);
                CorpusColumn::build(raw, &self.options).map(Arc::new)
            }))
            .map_err(|payload| CorpusFailure::new("column", payload))
            .and_then(|r| r.map_err(|e| CorpusFailure::from_arena("column", e)))
        });
        if !built {
            // Served from cache (whether the cell pre-existed or another
            // racer built it first): one whole-column normalization saved.
            self.column_hits.fetch_add(1, Ordering::Relaxed);
        }
        entry.clone()
    }

    /// Infallible [`Self::try_column`]: panics with the recorded failure's
    /// message when the entry is a sticky failure (callers that need
    /// containment use `try_column`).
    pub fn column(&self, raw: &[String]) -> Arc<CorpusColumn> {
        self.try_column(raw).unwrap_or_else(|failure| panic!("{failure}"))
    }

    /// Number of distinct columns interned (successfully built) so far.
    pub fn column_count(&self) -> usize {
        fault::lock_recover(&self.columns)
            .values()
            .filter(|cell| matches!(cell.get(), Some(Ok(_))))
            .count()
    }

    /// A snapshot of the intern/build/hit counters (see [`CorpusStats`]).
    /// Columns whose build is still in flight on another thread are not
    /// counted yet.
    pub fn stats(&self) -> CorpusStats {
        let columns = fault::lock_recover(&self.columns);
        let mut stats = CorpusStats {
            columns_interned: 0,
            column_hits: self.column_hits.load(Ordering::Relaxed),
            ..CorpusStats::default()
        };
        for entry in columns.values().filter_map(|cell| cell.get()) {
            let column = match entry {
                Ok(column) => column,
                Err(_) => {
                    stats.columns_failed += 1;
                    continue;
                }
            };
            stats.columns_interned += 1;
            for built in fault::lock_recover(&column.stats).values() {
                match built {
                    Ok(_) => stats.stats_built += 1,
                    Err(_) => stats.stats_failed += 1,
                }
            }
            stats.stats_hits += column.stats_hits.load(Ordering::Relaxed);
            for built in fault::lock_recover(&column.indexes).values() {
                match built {
                    Ok(_) => stats.indexes_built += 1,
                    Err(_) => stats.indexes_failed += 1,
                }
            }
            stats.index_hits += column.index_hits.load(Ordering::Relaxed);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(values: &[&str]) -> Vec<String> {
        values.iter().map(|v| v.to_string()).collect()
    }

    #[test]
    fn same_content_interns_once() {
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let a = col(&["Rafiei, Davood", "Bowling, Michael"]);
        // A *different allocation* with the same content must hit the same
        // entry: interning is by content, not identity.
        let first = corpus.column(&a);
        let second = corpus.column(&a.clone());
        assert!(Arc::ptr_eq(&first, &second));
        let stats = corpus.stats();
        assert_eq!(stats.columns_interned, 1);
        assert_eq!(stats.column_hits, 1);
        assert_eq!(stats.normalizations_saved(), 1);
        assert_eq!(stats.total_failures(), 0);
    }

    #[test]
    fn distinct_columns_get_distinct_entries() {
        // Exercises the debug-build fingerprint-collision check across many
        // near-identical columns (single-cell edits, reorders, length
        // changes) — the shapes where a weak chain would collide.
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let mut entries = Vec::new();
        for i in 0..200 {
            let c = col(&[&format!("value-{i:03}"), "shared suffix"]);
            entries.push(corpus.column(&c));
        }
        entries.push(corpus.column(&col(&["shared suffix", "value-000"])));
        entries.push(corpus.column(&col(&["value-000"])));
        entries.push(corpus.column(&col(&["value-000", "shared suffix", ""])));
        assert_eq!(corpus.column_count(), 203);
        for (i, a) in entries.iter().enumerate() {
            for b in &entries[i + 1..] {
                assert!(!Arc::ptr_eq(a, b));
            }
        }
        assert_eq!(corpus.stats().column_hits, 0);
    }

    #[test]
    fn normalization_applied_once_and_matches_per_call() {
        use crate::normalize::normalize_for_matching;
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let raw = col(&["  Rafiei,   DAVOOD ", "M  Bowling"]);
        let entry = corpus.column(&raw);
        let expected: Vec<String> = raw
            .iter()
            .map(|v| normalize_for_matching(v, &NormalizeOptions::default()))
            .collect();
        let normalized: Vec<&str> = entry.normalized().cells().collect();
        assert_eq!(normalized, expected.iter().map(String::as_str).collect::<Vec<_>>());
        assert_eq!(entry.normalized().cell(0), "rafiei, davood");
    }

    #[test]
    fn arena_column_interns_to_same_entry_as_vec_column() {
        // Interning is by cell *content*: the same column handed over as a
        // Vec<String> and as a raw ColumnArena must hit one entry.
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let raw = col(&["Rafiei, Davood", "Bowling, Michael"]);
        let arena = ColumnArena::from_cells(raw.as_slice());
        assert_eq!(column_fingerprint(&raw), column_fingerprint_on(&arena));
        let from_vec = corpus.column(&raw);
        let from_arena = corpus.try_column_on(&arena).unwrap();
        assert!(Arc::ptr_eq(&from_vec, &from_arena));
        let stats = corpus.stats();
        assert_eq!(stats.columns_interned, 1);
        assert_eq!(stats.column_hits, 1);
    }

    #[test]
    fn stats_and_index_cached_per_size_range() {
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let entry = corpus.column(&col(&["abcdef", "abcxyz"]));
        let s1 = entry.stats(2, 4);
        let s2 = entry.stats(2, 4);
        assert!(Arc::ptr_eq(&s1, &s2));
        let s3 = entry.stats(3, 5); // different range: a different artifact
        assert!(!Arc::ptr_eq(&s1, &s3));
        let i1 = entry.index(2, 4);
        let i2 = entry.index(2, 4);
        assert!(Arc::ptr_eq(&i1, &i2));
        let stats = corpus.stats();
        assert_eq!(stats.stats_built, 2);
        assert_eq!(stats.stats_hits, 1);
        assert_eq!(stats.indexes_built, 1);
        assert_eq!(stats.index_hits, 1);
        // The cached artifacts equal a direct per-call build.
        let direct = ColumnStats::build_on(entry.normalized(), 2, 4);
        assert_eq!(s1.row_count, direct.row_count);
        assert_eq!(s1.distinct_ngrams(), direct.distinct_ngrams());
        assert_eq!(i1.rows_containing("abc"), &[0, 1]);
    }

    #[test]
    fn concurrent_interning_builds_each_column_once() {
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let shared = col(&["Rafiei, Davood", "Bowling, Michael", "Gosgnach, Simon"]);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let entry = corpus.column(&shared);
                    let _ = entry.stats(4, 8);
                    let _ = entry.index(4, 8);
                });
            }
        });
        let stats = corpus.stats();
        assert_eq!(stats.columns_interned, 1);
        assert_eq!(stats.column_hits, 7);
        assert_eq!(stats.stats_built, 1);
        assert_eq!(stats.indexes_built, 1);
        assert_eq!(stats.stats_hits + 1 + stats.index_hits + 1, 16);
    }

    #[test]
    fn empty_column_interns_fine() {
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let entry = corpus.column(&[]);
        assert!(entry.normalized().is_empty());
        assert_eq!(entry.stats(4, 20).row_count, 0);
        assert_eq!(entry.index(4, 20).row_count(), 0);
        // Empty and single-empty-cell columns are distinct contents.
        let single_empty = corpus.column(&col(&[""]));
        assert!(!Arc::ptr_eq(&entry, &single_empty));
    }

    #[test]
    fn column_fingerprint_distinguishes_shape() {
        assert_ne!(
            column_fingerprint(&col(&["a", "b"])),
            column_fingerprint(&col(&["b", "a"]))
        );
        assert_ne!(column_fingerprint(&col(&["ab"])), column_fingerprint(&col(&["a", "b"])));
        assert_ne!(column_fingerprint(&[]), column_fingerprint(&col(&[""])));
    }

    #[test]
    fn poisoned_corpus_locks_are_recovered_not_fatal() {
        // Poison every corpus lock from a side thread, then use the corpus
        // normally: lock_recover must serve consistent cached state.
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let entry = corpus.column(&col(&["abcdef", "abcxyz"]));
        let before = entry.stats(2, 4);
        fault::poison_mutex(&corpus.columns);
        fault::poison_mutex(&entry.stats);
        fault::poison_mutex(&entry.indexes);
        let again = corpus.column(&col(&["abcdef", "abcxyz"]));
        assert!(Arc::ptr_eq(&entry, &again));
        assert!(Arc::ptr_eq(&before, &again.stats(2, 4)));
        let _ = again.index(2, 4);
        let stats = corpus.stats();
        assert_eq!(stats.columns_interned, 1);
        assert_eq!(stats.stats_built, 1);
        assert_eq!(stats.indexes_built, 1);
        assert_eq!(stats.total_failures(), 0);
    }
}
