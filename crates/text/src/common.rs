//! Common-substring detection between a source and a target string.
//!
//! A *placeholder* (Definition 4 of the paper) is a contiguous block of the
//! target that can be produced from the source by a non-constant unit — with
//! copy-based units this is exactly a common substring of the two strings.
//! The synthesis engine works with *maximal-length* placeholders (Section
//! 4.1.3): common blocks of the target that cannot be extended on either side
//! and still occur in the source. This module computes those blocks, plus the
//! classic longest-common-substring used by the Auto-FuzzyJoin baseline's
//! similarity measures.

use serde::{Deserialize, Serialize};

/// A maximal common block of the target with respect to the source.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CommonMatch {
    /// Start character position of the block in the *target*.
    pub target_start: usize,
    /// End character position (exclusive) of the block in the target.
    pub target_end: usize,
    /// Every character position in the *source* where the block occurs.
    pub source_positions: Vec<usize>,
}

impl CommonMatch {
    /// Character length of the matched block.
    pub fn len(&self) -> usize {
        self.target_end - self.target_start
    }

    /// Whether the block is empty (never produced by the detector).
    pub fn is_empty(&self) -> bool {
        self.target_end == self.target_start
    }
}

/// Finds, for every target position, the length of the longest substring of
/// the target starting there that also occurs in the source, and keeps the
/// *maximal* ones: blocks that are not contained in a longer block starting
/// earlier. This is exactly the set of maximal-length placeholders of the
/// pair (Section 4.1.3).
///
/// The comparison is case-sensitive; callers wanting the paper's
/// case-insensitive behaviour normalize first (see
/// [`crate::normalize::normalize_for_matching`]).
///
/// Complexity: O(|target| · |source| · L) in the worst case with the simple
/// scanning strategy used here (L = average match length); row values in the
/// paper's datasets are at most a few hundred characters, where this is
/// faster in practice than building a suffix automaton per row.
pub fn common_substring_matches(source: &str, target: &str) -> Vec<CommonMatch> {
    let s: Vec<char> = source.chars().collect();
    let t: Vec<char> = target.chars().collect();
    if s.is_empty() || t.is_empty() {
        return Vec::new();
    }

    // max_len[i] = length of the longest common block starting at target i.
    let mut max_len = vec![0usize; t.len()];
    for i in 0..t.len() {
        let mut best = 0usize;
        for j in 0..s.len() {
            if s[j] != t[i] {
                continue;
            }
            let mut l = 1usize;
            while i + l < t.len() && j + l < s.len() && t[i + l] == s[j + l] {
                l += 1;
            }
            best = best.max(l);
        }
        max_len[i] = best;
    }

    let mut out = Vec::new();
    for i in 0..t.len() {
        if max_len[i] == 0 {
            continue;
        }
        // Maximal on the left: not a proper suffix of the block starting at i-1.
        if i > 0 && max_len[i - 1] > max_len[i] {
            continue;
        }
        let block: String = t[i..i + max_len[i]].iter().collect();
        let source_positions = find_char_positions(&s, &t[i..i + max_len[i]]);
        debug_assert!(!source_positions.is_empty());
        out.push(CommonMatch {
            target_start: i,
            target_end: i + max_len[i],
            source_positions,
        });
        let _ = block;
    }
    out
}

/// All character positions in `haystack` where `needle` occurs (overlapping
/// matches included); both are given as char slices.
fn find_char_positions(haystack: &[char], needle: &[char]) -> Vec<usize> {
    if needle.is_empty() || needle.len() > haystack.len() {
        return Vec::new();
    }
    (0..=haystack.len() - needle.len())
        .filter(|&i| &haystack[i..i + needle.len()] == needle)
        .collect()
}

/// The longest common substring of `a` and `b`.
///
/// Returns `(length, start_in_a, start_in_b)` in character positions; a zero
/// length means the strings share no characters.
pub fn longest_common_substring(a: &str, b: &str) -> (usize, usize, usize) {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    if av.is_empty() || bv.is_empty() {
        return (0, 0, 0);
    }
    // Rolling DP over b to keep memory at O(|b|).
    let mut prev = vec![0usize; bv.len() + 1];
    let mut best = (0usize, 0usize, 0usize);
    for (i, &ca) in av.iter().enumerate() {
        let mut curr = vec![0usize; bv.len() + 1];
        for (j, &cb) in bv.iter().enumerate() {
            if ca == cb {
                let l = prev[j] + 1;
                curr[j + 1] = l;
                if l > best.0 {
                    best = (l, i + 1 - l, j + 1 - l);
                }
            }
        }
        prev = curr;
    }
    best
}

/// Length of the longest common substring normalized by the length of the
/// shorter string (in `0.0..=1.0`); one of the similarity signals used by the
/// Auto-FuzzyJoin baseline.
pub fn lcs_ratio(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let min = la.min(lb);
    if min == 0 {
        return 0.0;
    }
    longest_common_substring(a, b).0 as f64 / min as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(source: &str, target: &str) -> Vec<(String, usize)> {
        common_substring_matches(source, target)
            .into_iter()
            .map(|m| {
                let t: Vec<char> = target.chars().collect();
                (
                    t[m.target_start..m.target_end].iter().collect(),
                    m.source_positions.len(),
                )
            })
            .collect()
    }

    #[test]
    fn paper_email_example() {
        // source "bowling, michael", target "michael.bowling@ualberta.ca":
        // the copied blocks "michael" and "bowling" must both be found.
        let found = blocks("bowling, michael", "michael.bowling@ualberta.ca");
        let texts: Vec<&str> = found.iter().map(|(t, _)| t.as_str()).collect();
        assert!(texts.contains(&"michael"), "found: {texts:?}");
        assert!(texts.contains(&"bowling"), "found: {texts:?}");
    }

    #[test]
    fn maximality_no_contained_blocks() {
        // Every reported block must not be extendable to the left:
        // "abcd" in source, target "abcdx": block "abcd" only, not "bcd".
        let found = blocks("abcd", "abcdx");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].0, "abcd");
    }

    #[test]
    fn multiple_source_occurrences_counted() {
        let m = common_substring_matches("abab", "ab");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].source_positions, vec![0, 2]);
        assert_eq!(m[0].len(), 2);
        assert!(!m[0].is_empty());
    }

    #[test]
    fn disjoint_strings_have_no_matches() {
        assert!(common_substring_matches("abc", "xyz").is_empty());
        assert!(common_substring_matches("", "xyz").is_empty());
        assert!(common_substring_matches("abc", "").is_empty());
    }

    #[test]
    fn overlapping_blocks_reported_when_maximal() {
        // source "abcd efg", target "abcdefg": target block "abcd" (from pos 0)
        // and "defg"? t="abcdefg": at i=0 longest common with "abcd efg" is
        // "abcd" (len 4). At i=1 "bcd" (len 3) -> suffix of previous, skipped.
        // At i=3 "d" ... longest starting at 3: "defg"? source has "d efg" so
        // "d" then space; longest is "d" (len 1) -> contained. At i=4 "efg"
        // (len 3) not contained since max_len[3] = 1 < 3+1. So blocks: abcd, efg.
        let found = blocks("abcd efg", "abcdefg");
        let texts: Vec<&str> = found.iter().map(|(t, _)| t.as_str()).collect();
        assert_eq!(texts, vec!["abcd", "efg"]);
    }

    #[test]
    fn single_characters_can_be_blocks() {
        let found = blocks("xay", "a-a");
        let texts: Vec<&str> = found.iter().map(|(t, _)| t.as_str()).collect();
        assert_eq!(texts, vec!["a", "a"]);
    }

    #[test]
    fn longest_common_substring_basic() {
        let (len, pa, pb) = longest_common_substring("hello world", "yellow");
        // "ello" is common: a[1..5], b[1..5]
        assert_eq!((len, pa, pb), (4, 1, 1));
        assert_eq!(longest_common_substring("", "abc"), (0, 0, 0));
        assert_eq!(longest_common_substring("abc", ""), (0, 0, 0));
        assert_eq!(longest_common_substring("abc", "abc"), (3, 0, 0));
    }

    #[test]
    fn lcs_ratio_bounds() {
        assert!((lcs_ratio("abc", "abc") - 1.0).abs() < 1e-12);
        assert_eq!(lcs_ratio("", "abc"), 0.0);
        let r = lcs_ratio("abcdef", "xxabxx");
        assert!(r > 0.0 && r < 1.0);
    }

    #[test]
    fn unicode_blocks() {
        let found = blocks("café au lait", "the café");
        let texts: Vec<&str> = found.iter().map(|(t, _)| t.as_str()).collect();
        assert!(texts.iter().any(|t| t.contains("café")), "found {texts:?}");
    }
}
