//! Inverse Row Frequency (IRF) and the representative score (Rscore).
//!
//! Section 4.2.1 of the paper, equations (1) and (2):
//!
//! * `IRF(t, c) = 1 / (number of rows in column c that contain t)`
//! * `Rscore(t) = IRF(t, SC) · IRF(t, TC)`
//!
//! An n-gram with a high Rscore is rare in both columns and therefore a good
//! *representative* of the entity described by a row — common prefixes, stop
//! words, and shared domain suffixes (the paper's "@ualberta.ca" example) get
//! low scores and are not used to pair rows.

use crate::arena::CellText;
use crate::fingerprint::fingerprint64;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ngram::for_each_ngram_in_sizes;
use serde::{Deserialize, Serialize};

/// Per-column n-gram statistics: for each n-gram (of any size in the indexed
/// range), the number of rows of the column that contain it at least once.
///
/// Frequencies are keyed by the gram's 64-bit [`fingerprint64`] instead of an
/// owned `String`: a stats build allocates no gram text at all — grams stream
/// out of the column (arena or `Vec<String>` alike) as borrowed slices and
/// only their fingerprints are stored. A debug-build shadow map asserts the
/// fingerprints never collide on the indexed corpus, the same guard the
/// inverted index uses.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Number of rows in the column.
    pub row_count: usize,
    /// gram fingerprint → number of rows containing the gram.
    row_frequency: FxHashMap<u64, u32>,
}

impl ColumnStats {
    /// Builds statistics for `rows`, counting every distinct n-gram with size
    /// in `[n_min, n_max]` once per row in which it occurs.
    pub fn build<S: AsRef<str> + Sync>(rows: &[S], n_min: usize, n_max: usize) -> Self {
        Self::build_on(rows, n_min, n_max)
    }

    /// [`Self::build`] over any [`CellText`] column — the arena-backed hot
    /// path; behaviour is identical for identical cell contents.
    pub fn build_on<C: CellText + ?Sized>(column: &C, n_min: usize, n_max: usize) -> Self {
        let mut row_frequency: FxHashMap<u64, u32> = FxHashMap::default();
        // Debug-build fingerprint → first gram text, asserting no collisions.
        #[cfg(debug_assertions)]
        let mut shadow: FxHashMap<u64, String> = FxHashMap::default();
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        for row in 0..column.cell_count() {
            let row = column.cell(row);
            seen.clear();
            for_each_ngram_in_sizes(row, n_min, n_max, &mut |g| {
                let key = fingerprint64(g);
                #[cfg(debug_assertions)]
                {
                    let prev = shadow.entry(key).or_insert_with(|| g.to_owned());
                    debug_assert_eq!(
                        prev, g,
                        "gram fingerprint collision: {prev:?} vs {g:?} both hash to {key:#x}"
                    );
                }
                if seen.insert(key) {
                    *row_frequency.entry(key).or_insert(0) += 1;
                }
            });
        }
        Self {
            row_count: column.cell_count(),
            row_frequency,
        }
    }

    /// Folds the rows `from_row..` of `column` into existing statistics —
    /// the **incremental append** path. `self` must have been built (with
    /// the same `n_min`/`n_max`) over exactly `column`'s first `from_row`
    /// cells; `column` is the *final* column (old rows plus the appended
    /// delta). Because the per-row counting loop is row-independent (each
    /// row contributes its distinct grams once, regardless of other rows),
    /// replaying it over only the new rows leaves the stats **bit-identical**
    /// to a fresh [`Self::build_on`] over the final column — which the
    /// differential proptest suite enforces.
    pub fn append_rows_on<C: CellText + ?Sized>(
        &mut self,
        column: &C,
        from_row: usize,
        n_min: usize,
        n_max: usize,
    ) {
        assert_eq!(
            self.row_count, from_row,
            "append_rows_on: stats cover {} rows but the delta starts at row {from_row}",
            self.row_count
        );
        #[cfg(debug_assertions)]
        let mut shadow: FxHashMap<u64, String> = FxHashMap::default();
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        for row in from_row..column.cell_count() {
            let row = column.cell(row);
            seen.clear();
            for_each_ngram_in_sizes(row, n_min, n_max, &mut |g| {
                let key = fingerprint64(g);
                #[cfg(debug_assertions)]
                {
                    let prev = shadow.entry(key).or_insert_with(|| g.to_owned());
                    debug_assert_eq!(
                        prev, g,
                        "gram fingerprint collision: {prev:?} vs {g:?} both hash to {key:#x}"
                    );
                }
                if seen.insert(key) {
                    *self.row_frequency.entry(key).or_insert(0) += 1;
                }
            });
        }
        self.row_count = column.cell_count();
    }

    /// Number of rows containing `gram` (0 when unseen).
    pub fn row_frequency(&self, gram: &str) -> u32 {
        self.row_frequency
            .get(&fingerprint64(gram))
            .copied()
            .unwrap_or(0)
    }

    /// Number of distinct n-grams indexed.
    pub fn distinct_ngrams(&self) -> usize {
        self.row_frequency.len()
    }

    /// The distinct gram fingerprints indexed by this stats map, in hash-map
    /// (i.e. unspecified) order. Consumers needing determinism must fold the
    /// stream through an order-independent reduction — the MinHash signature
    /// build takes a per-lane minimum, so any iteration order produces the
    /// same signature.
    pub fn gram_fingerprints(&self) -> impl Iterator<Item = u64> + '_ {
        self.row_frequency.keys().copied()
    }

    /// Estimated memory footprint of the stats map: per entry, the 8-byte
    /// gram fingerprint, the 4-byte row count, and the same fixed hash-map
    /// overhead estimate [`crate::index::NGramIndex::approximate_bytes`]
    /// uses — the serving layer's per-column byte accounting sums this with
    /// the arena and index footprints.
    pub fn approximate_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.row_frequency.len()
                * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>() + 48)
    }

    /// IRF of `gram` in this column (equation 1). Zero when the gram never
    /// occurs (so that unseen grams never look representative).
    pub fn irf(&self, gram: &str) -> f64 {
        match self.row_frequency(gram) {
            0 => 0.0,
            f => 1.0 / f as f64,
        }
    }
}

/// IRF of a gram given the number of rows containing it (equation 1).
pub fn irf(rows_containing: usize) -> f64 {
    if rows_containing == 0 {
        0.0
    } else {
        1.0 / rows_containing as f64
    }
}

/// Representative score of `gram` across a source and a target column
/// (equation 2): the product of the two IRFs. Zero when the gram is absent
/// from either column, so only grams appearing on both sides can pair rows.
pub fn rscore(gram: &str, source: &ColumnStats, target: &ColumnStats) -> f64 {
    source.irf(gram) * target.irf(gram)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irf_definition() {
        assert_eq!(irf(0), 0.0);
        assert_eq!(irf(1), 1.0);
        assert_eq!(irf(4), 0.25);
    }

    #[test]
    fn column_stats_row_frequency_counts_rows_not_occurrences() {
        // "aaaa" contains the 2-gram "aa" three times but in one row only.
        let stats = ColumnStats::build(&["aaaa", "aab"], 2, 2);
        assert_eq!(stats.row_count, 2);
        assert_eq!(stats.row_frequency("aa"), 2);
        assert_eq!(stats.row_frequency("ab"), 1);
        assert_eq!(stats.row_frequency("zz"), 0);
    }

    #[test]
    fn column_stats_multi_size() {
        let stats = ColumnStats::build(&["abc"], 2, 3);
        assert_eq!(stats.row_frequency("ab"), 1);
        assert_eq!(stats.row_frequency("abc"), 1);
        assert_eq!(stats.row_frequency("a"), 0); // size 1 not indexed
        assert!(stats.distinct_ngrams() >= 3);
    }

    #[test]
    fn irf_in_column() {
        let stats = ColumnStats::build(&["ab", "ab", "cd", "ab"], 2, 2);
        assert!((stats.irf("ab") - 1.0 / 3.0).abs() < 1e-12);
        assert!((stats.irf("cd") - 1.0).abs() < 1e-12);
        assert_eq!(stats.irf("zz"), 0.0);
    }

    #[test]
    fn rscore_is_product_and_zero_when_one_sided() {
        let src = ColumnStats::build(&["rafiei davood", "nascimento mario"], 4, 4);
        let tgt = ColumnStats::build(&["drafiei", "nascimento"], 4, 4);
        // "afie" appears in 1 source row and 1 target row -> 1.0
        assert!((rscore("afie", &src, &tgt) - 1.0).abs() < 1e-12);
        // "мари" absent everywhere -> 0
        assert_eq!(rscore("мари", &src, &tgt), 0.0);
        // a gram only in the source -> 0
        assert_eq!(rscore("davo", &src, &tgt), 0.0);
    }

    #[test]
    fn common_suffix_scores_low() {
        // Every email shares "@ua" - its rscore must be far below a rare gram.
        let src = ColumnStats::build(&["rafiei, davood", "bowling, michael"], 3, 3);
        let tgt = ColumnStats::build(&["drafiei@ua.ca", "mbowling@ua.ca"], 3, 3);
        let shared = rscore("@ua", &src, &tgt); // absent in source -> 0 anyway
        let rare = rscore("afi", &src, &tgt);
        assert!(rare > shared);
        // And within the target column alone, IRF of the shared suffix is lower.
        assert!(tgt.irf("@ua") < tgt.irf("owl"));
    }

    #[test]
    fn approximate_bytes_tracks_distinct_grams() {
        let small = ColumnStats::build(&["ab"], 2, 2);
        let large = ColumnStats::build(&["abcdefgh", "ijklmnop"], 2, 4);
        assert!(small.approximate_bytes() >= std::mem::size_of::<ColumnStats>());
        assert!(large.approximate_bytes() > small.approximate_bytes());
        // Identical content builds account identically (the serving layer's
        // eviction bookkeeping relies on this being deterministic).
        let again = ColumnStats::build(&["abcdefgh", "ijklmnop"], 2, 4);
        assert_eq!(large.approximate_bytes(), again.approximate_bytes());
    }

    #[test]
    fn appended_stats_match_fresh_build() {
        let final_rows = ["rafiei davood", "nascimento mario", "drafiei", "", "mario n"];
        for split in 0..=final_rows.len() {
            let mut grown = ColumnStats::build(&final_rows[..split], 2, 4);
            grown.append_rows_on(final_rows.as_slice(), split, 2, 4);
            let fresh = ColumnStats::build(&final_rows, 2, 4);
            assert_eq!(grown, fresh, "split at {split}");
        }
    }

    #[test]
    #[should_panic(expected = "delta starts at row")]
    fn appended_stats_reject_row_mismatch() {
        let mut stats = ColumnStats::build(&["ab"], 2, 2);
        stats.append_rows_on(["ab", "cd", "ef"].as_slice(), 2, 2, 2);
    }

    #[test]
    fn empty_column() {
        let stats = ColumnStats::build(&Vec::<String>::new(), 2, 4);
        assert_eq!(stats.row_count, 0);
        assert_eq!(stats.irf("ab"), 0.0);
        assert_eq!(stats.distinct_ngrams(), 0);
    }
}
