//! Inverted n-gram index.
//!
//! Section 4.2.1: "we build an inverted index for n-grams that appear in
//! either the source or the target columns. For a fast access, the inverted
//! index is organized as a hash with every n-gram of size n0 ≤ n ≤ nmax as a
//! key and the row ids where the n-gram appears as a data value."
//!
//! Posting lists are keyed by a 64-bit fingerprint of the gram rather than
//! an owned `String`: index construction stores one `u64` per distinct gram
//! instead of allocating each gram's text, and lookups hash the query gram
//! without materializing it. A debug-build shadow map verifies the
//! fingerprints never collide on the indexed corpus (at 64 bits, a corpus
//! would need billions of distinct grams before collisions become likely).

use crate::arena::{checked_row_count, ArenaError, CellText};
use crate::fingerprint::fingerprint64;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ngram::for_each_ngram_in_sizes;
use serde::{Deserialize, Serialize};

/// An inverted index from character n-grams (sizes `n_min..=n_max`) to the
/// ids of the rows containing them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NGramIndex {
    n_min: usize,
    n_max: usize,
    rows: usize,
    postings: FxHashMap<u64, Vec<u32>>,
}

impl NGramIndex {
    /// Builds the index over `rows`; row ids are the positions in the slice.
    ///
    /// Each row id appears at most once in a posting list even when the
    /// n-gram occurs several times in that row, and posting lists are sorted.
    ///
    /// Panics when the column exceeds the `u32` row-id space; use
    /// [`Self::try_build_on`] for the typed-error form.
    pub fn build<S: AsRef<str> + Sync>(rows: &[S], n_min: usize, n_max: usize) -> Self {
        match Self::try_build_on(rows, n_min, n_max) {
            Ok(index) => index,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Self::build`] over any [`CellText`] column (the arena-backed hot
    /// path), rejecting columns whose row count cannot be addressed by `u32`
    /// row ids with a typed [`ArenaError`] instead of silently wrapping the
    /// id cast.
    pub fn try_build_on<C: CellText + ?Sized>(
        column: &C,
        n_min: usize,
        n_max: usize,
    ) -> Result<Self, ArenaError> {
        assert!(n_min >= 1, "n_min must be at least 1");
        assert!(n_min <= n_max, "n_min must not exceed n_max");
        // Guard the whole id space up front: after this check, every row
        // index below `rows_u32` fits losslessly in the posting entries.
        let rows_u32 = checked_row_count(column.cell_count())?;
        let mut postings: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        // Debug-build shadow map fingerprint → first gram text seen, used to
        // assert fingerprints are collision-free on the indexed corpus.
        #[cfg(debug_assertions)]
        let mut shadow: FxHashMap<u64, String> = FxHashMap::default();
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        for row_id in 0..rows_u32 {
            let row = column.cell(row_id as usize);
            seen.clear();
            for_each_ngram_in_sizes(row, n_min, n_max, &mut |g| {
                let key = fingerprint64(g);
                #[cfg(debug_assertions)]
                {
                    let prev = shadow.entry(key).or_insert_with(|| g.to_owned());
                    debug_assert_eq!(
                        prev, g,
                        "gram fingerprint collision: {prev:?} vs {g:?} both hash to {key:#x}"
                    );
                }
                if seen.insert(key) {
                    postings.entry(key).or_default().push(row_id);
                }
            });
        }
        // Rows are visited in ascending order and each contributes a given
        // key at most once, so the lists are already sorted and unique; the
        // pass below is a cheap invariant backstop.
        for list in postings.values_mut() {
            list.sort_unstable();
            list.dedup();
        }
        Ok(Self {
            n_min,
            n_max,
            rows: rows_u32 as usize,
            postings,
        })
    }

    /// Extends the index with the rows `from_row..` of `column` — the
    /// **incremental append** path. `self` must have been built (with the
    /// same size range) over exactly `column`'s first `from_row` cells;
    /// `column` is the *final* column. Every new row id is strictly greater
    /// than every indexed id, so per-list sortedness and uniqueness are
    /// preserved by plain pushes — no re-sort — and the result is
    /// **bit-identical** to a fresh [`Self::try_build_on`] over the final
    /// column (the differential proptest suite enforces this). A capacity
    /// overflow is rejected up front with the same typed error a fresh
    /// build on the final column would return, leaving `self` unchanged.
    pub fn try_append_on<C: CellText + ?Sized>(
        &mut self,
        column: &C,
        from_row: usize,
    ) -> Result<(), ArenaError> {
        assert_eq!(
            self.rows, from_row,
            "try_append_on: index covers {} rows but the delta starts at row {from_row}",
            self.rows
        );
        let rows_u32 = checked_row_count(column.cell_count())?;
        // Invariant is local (audited): `from_row == self.rows`, and
        // `self.rows` was itself produced by a `checked_row_count` in the
        // constructor (or a previous append), so the cast is lossless.
        let from_u32 = checked_row_count(from_row)?;
        #[cfg(debug_assertions)]
        let mut shadow: FxHashMap<u64, String> = FxHashMap::default();
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        for row_id in from_u32..rows_u32 {
            let row = column.cell(row_id as usize);
            seen.clear();
            for_each_ngram_in_sizes(row, self.n_min, self.n_max, &mut |g| {
                let key = fingerprint64(g);
                #[cfg(debug_assertions)]
                {
                    let prev = shadow.entry(key).or_insert_with(|| g.to_owned());
                    debug_assert_eq!(
                        prev, g,
                        "gram fingerprint collision: {prev:?} vs {g:?} both hash to {key:#x}"
                    );
                }
                if seen.insert(key) {
                    self.postings.entry(key).or_default().push(row_id);
                }
            });
        }
        self.rows = rows_u32 as usize;
        Ok(())
    }

    /// The n-gram size range `(n_min, n_max)` the index covers.
    pub fn size_range(&self) -> (usize, usize) {
        (self.n_min, self.n_max)
    }

    /// Number of indexed rows.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// Number of distinct n-grams indexed.
    pub fn distinct_ngrams(&self) -> usize {
        self.postings.len()
    }

    /// The sorted ids of rows containing `gram`; empty when unseen.
    pub fn rows_containing(&self, gram: &str) -> &[u32] {
        self.postings
            .get(&fingerprint64(gram))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of rows containing `gram` (the denominator of IRF).
    pub fn row_frequency(&self, gram: &str) -> usize {
        self.rows_containing(gram).len()
    }

    /// IRF of `gram` over the indexed column (equation 1 of the paper).
    pub fn irf(&self, gram: &str) -> f64 {
        crate::scoring::irf(self.row_frequency(gram))
    }

    /// Ids of rows containing *any* of the given grams (deduplicated, sorted).
    pub fn rows_containing_any<'a, I>(&self, grams: I) -> Vec<u32>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut out: Vec<u32> = Vec::new();
        for g in grams {
            out.extend_from_slice(self.rows_containing(g));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Estimated memory footprint in bytes (fingerprint keys + posting
    /// lists), used by scalability reporting.
    pub fn approximate_bytes(&self) -> usize {
        self.postings
            .values()
            .map(|v| std::mem::size_of::<u64>() + v.len() * std::mem::size_of::<u32>() + 48)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let rows = vec!["drafiei@ualberta.ca", "mario.nascimento@ualberta.ca"];
        let idx = NGramIndex::build(&rows, 4, 8);
        assert_eq!(idx.row_count(), 2);
        assert_eq!(idx.size_range(), (4, 8));
        assert_eq!(idx.rows_containing("rafi"), &[0]);
        assert_eq!(idx.rows_containing("ualberta"), &[0, 1]);
        assert_eq!(idx.rows_containing("zzzz"), &[] as &[u32]);
    }

    #[test]
    fn row_ids_unique_even_with_repeats() {
        let rows = vec!["abab"];
        let idx = NGramIndex::build(&rows, 2, 2);
        assert_eq!(idx.rows_containing("ab"), &[0]);
    }

    #[test]
    fn irf_from_index() {
        let rows = vec!["abcd", "abef", "xyzw"];
        let idx = NGramIndex::build(&rows, 2, 2);
        assert!((idx.irf("ab") - 0.5).abs() < 1e-12);
        assert!((idx.irf("xy") - 1.0).abs() < 1e-12);
        assert_eq!(idx.irf("qq"), 0.0);
    }

    #[test]
    fn rows_containing_any_dedups() {
        let rows = vec!["abcd", "cdef", "ghij"];
        let idx = NGramIndex::build(&rows, 2, 2);
        let hits = idx.rows_containing_any(["ab", "cd", "ef"]);
        assert_eq!(hits, vec![0, 1]);
        assert!(idx.rows_containing_any(["zz"]).is_empty());
    }

    #[test]
    fn short_rows_skip_large_sizes() {
        let rows = vec!["ab"];
        let idx = NGramIndex::build(&rows, 1, 10);
        assert_eq!(idx.rows_containing("ab"), &[0]);
        assert_eq!(idx.rows_containing("a"), &[0]);
        assert_eq!(idx.distinct_ngrams(), 3); // "a", "b", "ab"
    }

    #[test]
    #[should_panic(expected = "n_min must be at least 1")]
    fn zero_n_min_panics() {
        let _ = NGramIndex::build(&["ab"], 0, 2);
    }

    #[test]
    #[should_panic(expected = "n_min must not exceed n_max")]
    fn inverted_range_panics() {
        let _ = NGramIndex::build(&["ab"], 3, 2);
    }

    #[test]
    fn over_large_column_rejected_with_typed_error_not_wrapped() {
        // Regression: posting construction used `row_id as u32`, which on a
        // >u32::MAX-row column would wrap and corrupt postings. The mock
        // column claims more rows than the id space; the constructor must
        // reject it before reading a single cell.
        struct Huge;
        impl CellText for Huge {
            fn cell_count(&self) -> usize {
                u32::MAX as usize + 2
            }
            fn cell(&self, _row: usize) -> &str {
                unreachable!("over-large column must be rejected before any cell read")
            }
        }
        match NGramIndex::try_build_on(&Huge, 2, 4) {
            Err(ArenaError::RowCountOverflow { rows }) => {
                assert_eq!(rows, u32::MAX as usize + 2);
            }
            other => panic!("expected RowCountOverflow, got {other:?}"),
        }
    }

    #[test]
    fn arena_build_matches_slice_build() {
        use crate::arena::ColumnArena;
        let rows = vec!["drafiei@ualberta.ca".to_string(), "mario@ualberta.ca".to_string()];
        let arena = ColumnArena::from_cells(rows.as_slice());
        let from_slice = NGramIndex::build(&rows, 3, 6);
        let from_arena = NGramIndex::try_build_on(&arena, 3, 6).unwrap();
        assert_eq!(from_slice.row_count(), from_arena.row_count());
        assert_eq!(from_slice.distinct_ngrams(), from_arena.distinct_ngrams());
        for g in ["raf", "ualber", "mario", "@ua"] {
            assert_eq!(from_slice.rows_containing(g), from_arena.rows_containing(g), "gram {g:?}");
        }
    }

    #[test]
    fn appended_index_matches_fresh_build() {
        let final_rows = ["drafiei@ualberta.ca", "mario@ualberta.ca", "abab", "", "drafiei"];
        for split in 0..=final_rows.len() {
            let mut grown = NGramIndex::build(&final_rows[..split], 2, 5);
            grown.try_append_on(final_rows.as_slice(), split).unwrap();
            let fresh = NGramIndex::build(&final_rows, 2, 5);
            assert_eq!(grown, fresh, "split at {split}");
        }
    }

    #[test]
    #[should_panic(expected = "delta starts at row")]
    fn appended_index_rejects_row_mismatch() {
        let mut idx = NGramIndex::build(&["ab"], 2, 2);
        idx.try_append_on(["ab", "cd", "ef"].as_slice(), 2).unwrap();
    }

    #[test]
    fn memory_estimate_positive() {
        let idx = NGramIndex::build(&["abcdef"], 2, 3);
        assert!(idx.approximate_bytes() > 0);
    }

    #[test]
    fn fingerprints_distinguish_length_boundaries() {
        // Grams of different sizes over the same prefix must not collide:
        // the fingerprint mixes in the gram's byte length.
        let rows = vec!["aaaa"];
        let idx = NGramIndex::build(&rows, 1, 4);
        assert_eq!(idx.distinct_ngrams(), 4); // "a", "aa", "aaa", "aaaa"
        for g in ["a", "aa", "aaa", "aaaa"] {
            assert_eq!(idx.rows_containing(g), &[0], "gram {g:?}");
        }
    }

    #[test]
    fn large_corpus_has_no_fingerprint_collisions() {
        // The debug-build shadow map asserts on collision during build; this
        // exercises it over a larger distinct-gram population.
        let rows: Vec<String> = (0..500).map(|i| format!("value-{i:04}-suffix")).collect();
        let idx = NGramIndex::build(&rows, 3, 9);
        assert!(idx.distinct_ngrams() > 3_000);
        assert_eq!(idx.rows_containing("0042"), &[42]);
    }
}
