//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this shim implements the
//! small slice of the `rand 0.8` API the workspace uses: `StdRng` seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer ranges,
//! [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through splitmix64 — deterministic
//! for a given seed, statistically solid for test-data generation, but NOT
//! stream-compatible with the real `rand::rngs::StdRng` (callers in this
//! workspace only rely on determinism, not on specific streams) and not
//! cryptographically secure.

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value interface (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value in `range` (empty ranges panic, matching
    /// `rand`'s behavior).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (`0.0 ..= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        // 53 random mantissa bits, the standard uniform-in-[0,1) recipe.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Ranges that can be sampled uniformly (subset of `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

/// Rejection-free-enough bounded sampling: Lemire's multiply-shift would be
/// rejection-free; plain modulo bias is acceptable for test-data generation
/// but we still use the widening multiply to keep samples well distributed.
fn bounded(rng: &mut (impl Rng + ?Sized), bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample an empty range");
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

/// Integer types uniform sampling works over. The single blanket
/// [`SampleRange`] impl below goes through this trait so that type inference
/// unifies the range's element type with the requested sample type, exactly
/// as real rand's blanket impl does.
pub trait SampleUniform: Copy {
    /// Widens to `i128` (lossless for all supported types).
    fn to_i128(self) -> i128;
    /// Narrows from `i128` (caller guarantees the value is in range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
        assert!(lo < hi, "cannot sample empty range");
        T::from_i128(lo + bounded(rng, (hi - lo) as u64) as i128)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        assert!(lo <= hi, "cannot sample empty range");
        T::from_i128(lo + bounded(rng, (hi - lo + 1) as u64) as i128)
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256** over splitmix64
    /// seeding. See the crate docs for the compatibility caveat.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            Self {
                state: [
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Slice extensions (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<G: Rng + ?Sized>(&mut self, rng: &mut G);

        /// A uniformly random element, `None` when empty.
        fn choose<'a, G: Rng + ?Sized>(&'a self, rng: &mut G) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<G: Rng + ?Sized>(&mut self, rng: &mut G) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, G: Rng + ?Sized>(&'a self, rng: &mut G) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..500 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn choose_from_slice() {
        let mut rng = StdRng::seed_from_u64(11);
        let v = [1, 2, 3];
        assert!(v.contains(v.as_slice().choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }
}
