//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to a crate registry, so this shim
//! provides the only serde surface the workspace uses: the `Serialize` and
//! `Deserialize` derive macros, which here expand to nothing. The derives on
//! workspace types exist for downstream persistence; no code in this
//! workspace calls serde's traits, so no-op derives preserve compilation and
//! behavior. Swap this path dependency for the real `serde` (with the
//! `derive` feature) once registry access is available.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
