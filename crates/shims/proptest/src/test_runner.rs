//! Test-runner configuration and the deterministic RNG behind strategies.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-`proptest!` configuration (subset of proptest's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases like real proptest, overridable via `PROPTEST_CASES`.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Self { cases }
    }
}

/// The RNG driving strategies. Seeded from a hash of the test's module path
/// and name, so every run of a test generates the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// A generator seeded deterministically from `name` (FNV-1a hash).
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        Self {
            rng: StdRng::seed_from_u64(hash),
        }
    }
}
