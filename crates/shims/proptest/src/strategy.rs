//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;

/// A generator of random values (subset of proptest's `Strategy`: generation
/// only, no shrinking — see the crate docs).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategies behind references delegate to the referee, so strategies can be
/// shared without cloning.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).gen_value(rng)
    }
}

/// Always produces a clone of the given value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Uniform choice among branch strategies (the [`crate::prop_oneof!`]
/// backing type). Branches are reference-counted so unions are cheaply
/// cloneable, like real proptest strategies.
pub struct Union<T> {
    branches: Vec<std::rc::Rc<dyn Strategy<Value = T>>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            branches: self.branches.clone(),
        }
    }
}

impl<T> Union<T> {
    /// An empty union; generating from it panics, so always add branches.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self { branches: Vec::new() }
    }

    /// Adds a branch.
    pub fn or(mut self, branch: impl Strategy<Value = T> + 'static) -> Self {
        self.branches.push(std::rc::Rc::new(branch));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        assert!(!self.branches.is_empty(), "prop_oneof! needs at least one branch");
        let idx = rng.rng.gen_range(0..self.branches.len());
        self.branches[idx].gen_value(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String literals are regex-subset strategies, as in real proptest. The
/// pattern is compiled on first use per generation; compile errors panic with
/// the offending pattern.
impl Strategy for &'static str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        crate::string::string_regex(self)
            .unwrap_or_else(|e| panic!("invalid regex strategy {self:?}: {e}"))
            .gen_value(rng)
    }
}
