//! Regex-subset string strategies (subset of `proptest::string`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt;

/// Error compiling a pattern into a strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported regex pattern: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Characters `\PC` (not-Unicode-Other, i.e. printable-ish) draws from:
/// printable ASCII plus a handful of multi-byte characters so char/byte
/// confusion bugs are exercised.
const NON_ASCII_POOL: &[char] = &['é', 'ß', 'λ', 'Ж', '中', '日', '—', '€', 'α', 'ü'];

#[derive(Debug, Clone)]
enum CharSet {
    /// Explicit alternatives (from `[...]` classes or literal characters).
    OneOf(Vec<char>),
    /// `\PC`: printable characters.
    Printable,
}

impl CharSet {
    fn gen_char(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::OneOf(choices) => choices[rng.rng.gen_range(0..choices.len())],
            CharSet::Printable => {
                // 1 in 8 characters comes from the non-ASCII pool.
                if rng.rng.gen_range(0..8usize) == 0 {
                    NON_ASCII_POOL[rng.rng.gen_range(0..NON_ASCII_POOL.len())]
                } else {
                    char::from(rng.rng.gen_range(0x20u8..0x7F))
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Atom {
    set: CharSet,
    min: usize,
    max: usize,
}

/// A compiled regex-subset strategy producing `String`s.
#[derive(Debug, Clone)]
pub struct RegexGeneratorStrategy {
    atoms: Vec<Atom>,
}

impl Strategy for RegexGeneratorStrategy {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in &self.atoms {
            let n = rng.rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                out.push(atom.set.gen_char(rng));
            }
        }
        out
    }
}

/// Compiles `pattern` into a string strategy.
///
/// Supported syntax: literal characters, `[...]` classes with ranges (no
/// negation), `\PC` (printable), `\` escapes, and `{m}` / `{m,n}` / `?` /
/// `*` / `+` repetition suffixes. Anything else returns an [`Error`].
pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .ok_or_else(|| Error(pattern.to_owned()))?
                    + i
                    + 1;
                let body = &chars[i + 1..close];
                if body.first() == Some(&'^') {
                    return Err(Error(pattern.to_owned()));
                }
                let mut choices = Vec::new();
                let mut j = 0;
                while j < body.len() {
                    if j + 2 < body.len() && body[j + 1] == '-' {
                        let (lo, hi) = (body[j], body[j + 2]);
                        if lo > hi {
                            return Err(Error(pattern.to_owned()));
                        }
                        choices.extend(lo..=hi);
                        j += 3;
                    } else {
                        choices.push(body[j]);
                        j += 1;
                    }
                }
                if choices.is_empty() {
                    return Err(Error(pattern.to_owned()));
                }
                i = close + 1;
                CharSet::OneOf(choices)
            }
            '\\' => {
                let next = *chars.get(i + 1).ok_or_else(|| Error(pattern.to_owned()))?;
                if next == 'P' && chars.get(i + 2) == Some(&'C') {
                    i += 3;
                    CharSet::Printable
                } else {
                    i += 2;
                    CharSet::OneOf(vec![next])
                }
            }
            '(' | ')' | '|' | '.' => {
                // Groups, alternation, and the any-char dot are out of scope.
                return Err(Error(pattern.to_owned()));
            }
            c => {
                i += 1;
                CharSet::OneOf(vec![c])
            }
        };

        // Optional repetition suffix.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .ok_or_else(|| Error(pattern.to_owned()))?
                    + i
                    + 1;
                let body: String = chars[i + 1..close].iter().collect();
                let bounds = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().map_err(|_| Error(pattern.to_owned()))?,
                        hi.parse().map_err(|_| Error(pattern.to_owned()))?,
                    ),
                    None => {
                        let n = body.parse().map_err(|_| Error(pattern.to_owned()))?;
                        (n, n)
                    }
                };
                i = close + 1;
                bounds
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        if min > max {
            return Err(Error(pattern.to_owned()));
        }
        atoms.push(Atom { set, min, max });
    }
    Ok(RegexGeneratorStrategy { atoms })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_trailing_dash_is_literal() {
        let strat = string_regex("[a-c_-]{8}").unwrap();
        let mut rng = TestRng::deterministic("dash");
        for _ in 0..50 {
            let s = strat.gen_value(&mut rng);
            assert_eq!(s.chars().count(), 8);
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '_' | '-')), "{s}");
        }
    }

    #[test]
    fn printable_generates_multibyte_sometimes() {
        let strat = string_regex("\\PC{0,30}").unwrap();
        let mut rng = TestRng::deterministic("printable");
        let mut saw_multibyte = false;
        for _ in 0..200 {
            let s = strat.gen_value(&mut rng);
            assert!(s.chars().count() <= 30);
            saw_multibyte |= !s.is_ascii();
        }
        assert!(saw_multibyte, "\\PC never produced a multi-byte character");
    }

    #[test]
    fn exact_repetition() {
        let strat = string_regex("a{3}b").unwrap();
        let mut rng = TestRng::deterministic("exact");
        assert_eq!(strat.gen_value(&mut rng), "aaab");
    }

    #[test]
    fn unsupported_patterns_error() {
        assert!(string_regex("(a|b)").is_err());
        assert!(string_regex("[^a]").is_err());
        assert!(string_regex("[ab").is_err());
        assert!(string_regex("a{2,1}").is_err());
    }
}
