//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this shim implements the
//! subset of proptest the workspace uses: the [`Strategy`] trait with
//! `prop_map`, integer-range / tuple / `Just` / union / collection
//! strategies, a small regex-subset string generator
//! ([`string::string_regex`] and `&str`-literal strategies), and the
//! [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] / [`prop_assert_eq!`]
//! macros.
//!
//! Differences from real proptest, acceptable for this workspace's tests:
//!
//! * **No shrinking** — a failing case panics with the generated inputs'
//!   `Debug` formatting where available (via the assert message).
//! * **Deterministic seeding** — cases derive from a hash of the test name,
//!   so runs are reproducible without a persistence file.
//! * **Regex subset** — only `[class]`, literal chars, `\PC` (printable) and
//!   `{m}` / `{m,n}` / `?` / `*` / `+` repetition are supported.

pub mod strategy;
pub mod string;
pub mod test_runner;

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive length range for collection strategies (subset of
    /// proptest's `SizeRange`). Built via `From` so plain `usize` ranges
    /// infer correctly at `vec()` call sites.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `proptest::collection::vec`: a vector strategy.
    pub fn vec<S>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S>
    where
        S: Strategy,
    {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = (self.len.min..=self.len.max).gen_value(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks uniformly among the branch strategies (subset of proptest's
/// weighted `prop_oneof!`; weights are not supported).
#[macro_export]
macro_rules! prop_oneof {
    ($($branch:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($branch))+
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `fn name(arg in strategy, ...)
/// { body }` items, mirroring the real macro's surface for that shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u8>> {
        prop::collection::vec(0u8..10, 2..5)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -4i32..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in small_vec()) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn oneof_and_map(u in prop_oneof![
            Just(0usize),
            (1usize..5).prop_map(|x| x * 10),
        ]) {
            prop_assert!(u == 0 || (10..50).contains(&u));
        }

        #[test]
        fn string_literal_strategy(s in "[ab]{2,6}") {
            prop_assert!((2..=6).contains(&s.chars().count()));
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }

    #[test]
    fn string_regex_parses_used_patterns() {
        for pattern in [
            "[a-z]{3,8}",
            "[a-zA-Z0-9,;.@ _-]{0,40}",
            "[a-z@. ]{0,6}",
            "\\PC{0,30}",
            "[ab]{0,20}",
            "[a-c,;]{1,20}",
        ] {
            assert!(crate::string::string_regex(pattern).is_ok(), "{pattern}");
        }
    }
}
