//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this shim implements the
//! subset of criterion 0.5 the workspace's benches use: [`Criterion`],
//! benchmark groups, [`Bencher::iter`], [`BenchmarkId`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up, the per-iteration cost is
//! estimated, and then `sample_size` samples are taken, each timing a batch
//! of iterations sized so one sample lasts roughly [`TARGET_SAMPLE_TIME`].
//! The reported figures are the min / median / mean of the per-iteration
//! sample times. There is no statistical outlier analysis, HTML report, or
//! baseline comparison — swap the path dependency for real criterion when
//! registry access is available.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock duration of one sample batch.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: impl Into<BenchmarkId>, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (a no-op here; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Summary statistics of one benchmark run, in per-iteration seconds.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Fastest sample.
    pub min: f64,
    /// Median sample.
    pub median: f64,
    /// Mean over all samples.
    pub mean: f64,
    /// Total iterations executed across samples.
    pub iterations: u64,
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the routine.
pub struct Bencher {
    sample_size: usize,
    measurement: Option<Measurement>,
}

impl Bencher {
    /// Times `routine`, storing per-iteration statistics.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and per-iteration cost estimate.
        let warmup_start = Instant::now();
        black_box(routine());
        let mut estimate = warmup_start.elapsed();
        if estimate.is_zero() {
            estimate = Duration::from_nanos(1);
        }
        let iters_per_sample = (TARGET_SAMPLE_TIME.as_nanos() / estimate.as_nanos())
            .clamp(1, 1_000_000) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64() / iters_per_sample as f64;
            samples.push(elapsed);
            total_iters += iters_per_sample;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        self.measurement = Some(Measurement {
            min,
            median,
            mean,
            iterations: total_iters,
        });
    }
}

/// Formats a per-iteration time in human units.
fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

/// Runs one benchmark and prints a criterion-like summary line. Public so
/// custom harness code can reuse the measurement loop; returns the
/// measurement when the closure called [`Bencher::iter`].
pub fn run_benchmark<F>(name: &str, sample_size: usize, mut f: F) -> Option<Measurement>
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        measurement: None,
    };
    f(&mut bencher);
    match bencher.measurement {
        Some(m) => {
            println!(
                "{name:<50} time: [{} {} {}]",
                format_time(m.min),
                format_time(m.median),
                format_time(m.mean)
            );
            Some(m)
        }
        None => {
            println!("{name:<50} (no measurement: Bencher::iter never called)");
            None
        }
    }
}

/// Declares a benchmark group (both the plain and configured forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_cheap_routine() {
        let m = run_benchmark("noop_add", 5, |b| {
            b.iter(|| black_box(1u64) + black_box(2u64))
        })
        .expect("measurement");
        assert!(m.min > 0.0 && m.min <= m.median && m.median <= m.mean * 2.0);
        assert!(m.iterations >= 5);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("f", |b| b.iter(|| black_box(42)));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(10).to_string(), "10");
    }
}
