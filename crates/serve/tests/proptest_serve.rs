//! Differential proptest gate for the serving layer: residency, eviction,
//! and admission must never change results.
//!
//! Across randomized request workloads (hot-skewed repeat sequences over
//! 1–3 distinct repositories) × byte budgets {unbounded, smaller than any
//! single column, half the workload's footprint, larger than the
//! workload} × runner thread budgets {1, 2, 4} (with 1 repeated, covering
//! rerun determinism):
//!
//! * **Warm is bit-identical to cold.** Every served request's outcome —
//!   per-pair predictions, metrics, transformation sets — equals the cold
//!   oracle: the same repository run on a *fresh* runner with no resident
//!   corpus. This holds under mid-stream eviction (the half-footprint
//!   budget evicts between requests while later requests are still
//!   queued) and under a budget too small for even one column (the cache
//!   ends every release empty).
//! * **The budget is hard at release boundaries.** After every release,
//!   `ServeStats::bytes_resident` is `<=` the configured budget.
//! * **Counters are deterministic.** The full per-request [`ServeStats`]
//!   sequence — hits, misses, inserts, evictions, resident bytes, queue
//!   depth — is identical across reruns and across runner thread budgets,
//!   because cache bookkeeping is serialized in request order.

use proptest::prelude::*;
use tjoin_datasets::{RepositoryConfig, RequestWorkload, RequestWorkloadConfig};
use tjoin_join::{BatchJoinOutcome, BatchJoinRunner, JoinPipelineConfig};
use tjoin_serve::{JoinService, ServeConfig};
use tjoin_text::ServeStats;

/// Asserts two batch outcomes carry identical results: same report order,
/// same per-pair predicted pairs / metrics / candidate counts /
/// transformation sets, same aggregate metrics. (Wall-clock fields,
/// scheduling counters, and serve counters are measurements, not results,
/// and are exempt.)
fn assert_outcomes_identical(a: &BatchJoinOutcome, b: &BatchJoinOutcome, context: &str) {
    assert_eq!(a.reports.len(), b.reports.len(), "{context}: report count");
    assert_eq!(a.faults, b.faults, "{context}: fault tallies");
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.name, rb.name, "{context}: report order");
        assert_eq!(ra.status, rb.status, "{context}: status of {}", ra.name);
        assert_eq!(
            ra.outcome.predicted_pairs, rb.outcome.predicted_pairs,
            "{context}: predicted pairs of {}",
            ra.name
        );
        assert_eq!(ra.outcome.metrics, rb.outcome.metrics, "{context}: metrics of {}", ra.name);
        assert_eq!(
            ra.outcome.candidate_pairs, rb.outcome.candidate_pairs,
            "{context}: candidates of {}",
            ra.name
        );
        assert_eq!(
            ra.outcome.transformations, rb.outcome.transformations,
            "{context}: transformations of {}",
            ra.name
        );
    }
    assert_eq!(a.metrics.micro, b.metrics.micro, "{context}: micro metrics");
    assert_eq!(a.metrics.macro_f1, b.metrics.macro_f1, "{context}: macro F1");
}

fn workload(seed: u64, distinct: usize, requests: usize) -> RequestWorkload {
    RequestWorkloadConfig {
        distinct,
        requests,
        repository: RepositoryConfig::new(2, 10),
    }
    .generate(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn serving_matches_cold_oracle_under_every_budget_and_thread_count(
        seed in 0u64..1_000_000,
        distinct in 1usize..4,
        requests in 1usize..6,
    ) {
        let w = workload(seed, distinct, requests);
        let config = JoinPipelineConfig::default();

        // Cold oracle: every request on a fresh runner, no residency.
        let oracle: Vec<BatchJoinOutcome> = w
            .sequence
            .iter()
            .map(|&r| BatchJoinRunner::new(config.clone(), 2).run(&w.repositories[r]))
            .collect();

        // The workload's unbounded resident footprint, to size the
        // mid-stream-eviction budget.
        let footprint = {
            let service = JoinService::new(config.clone(), 2, ServeConfig::default());
            for &r in &w.sequence {
                prop_assert!(service.submit(w.repositories[r].clone()).is_ok());
            }
            service.drain();
            service.stats().bytes_resident
        };
        prop_assert!(footprint > 0, "n-gram serving must leave columns resident");

        let budgets = [
            None,                      // unbounded: no eviction ever
            Some(1),                   // smaller than any single column: always empty
            Some(footprint / 2 + 1),   // mid-stream eviction between requests
            Some(footprint * 2),       // roomy: everything stays resident
        ];
        for budget in budgets {
            let mut reference_stats: Option<Vec<ServeStats>> = None;
            // Threads {1, 2, 4}, with 1 repeated: the repeat pins rerun
            // determinism, the spread pins thread invariance.
            for threads in [1usize, 2, 4, 1] {
                let service = JoinService::new(
                    config.clone(),
                    threads,
                    ServeConfig { byte_budget: budget, ..ServeConfig::default() },
                );
                for &r in &w.sequence {
                    prop_assert!(service.submit(w.repositories[r].clone()).is_ok());
                }
                let outcomes = service.drain();
                prop_assert_eq!(outcomes.len(), w.sequence.len());
                let mut stats_sequence = Vec::new();
                for (i, (ticket, outcome)) in outcomes.iter().enumerate() {
                    prop_assert_eq!(*ticket, i as u64, "FIFO ticket order");
                    assert_outcomes_identical(
                        outcome,
                        &oracle[i],
                        &format!(
                            "request {i} (repository {}) under budget {budget:?} at {threads} threads",
                            w.sequence[i]
                        ),
                    );
                    let stats = outcome.serve.expect("service stamps serve stats");
                    if let Some(limit) = budget {
                        prop_assert!(
                            stats.bytes_resident <= limit,
                            "budget {} overshot after request {}: {} bytes resident",
                            limit, i, stats.bytes_resident
                        );
                    }
                    stats_sequence.push(stats);
                }
                match &reference_stats {
                    None => reference_stats = Some(stats_sequence),
                    Some(reference) => prop_assert_eq!(
                        &stats_sequence, reference,
                        "serve counters must be identical across thread budgets and reruns \
                         ({} threads, budget {:?})",
                        threads, budget
                    ),
                }
            }
        }
    }
}
