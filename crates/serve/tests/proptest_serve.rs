//! Differential proptest gate for the serving layer: residency, eviction,
//! and admission must never change results.
//!
//! Across randomized request workloads (hot-skewed repeat sequences over
//! 1–3 distinct repositories) × byte budgets {unbounded, smaller than any
//! single column, half the workload's footprint, larger than the
//! workload} × runner thread budgets {1, 2, 4} (with 1 repeated, covering
//! rerun determinism):
//!
//! * **Warm is bit-identical to cold.** Every served request's outcome —
//!   per-pair predictions, metrics, transformation sets — equals the cold
//!   oracle: the same repository run on a *fresh* runner with no resident
//!   corpus. This holds under mid-stream eviction (the half-footprint
//!   budget evicts between requests while later requests are still
//!   queued) and under a budget too small for even one column (the cache
//!   ends every release empty).
//! * **The budget is hard at release boundaries.** After every release,
//!   `ServeStats::bytes_resident` is `<=` the configured budget.
//! * **Counters are deterministic.** The full per-request [`ServeStats`]
//!   sequence — hits, misses, inserts, evictions, resident bytes, queue
//!   depth — is identical across reruns and across runner thread budgets,
//!   because cache bookkeeping is serialized in request order.
//! * **Concurrent drains change nothing logical.** For a fixed submission
//!   sequence, draining the queue from {2, 4} threads keeps every
//!   per-ticket result bit-identical to a single-threaded drain, and the
//!   quiescent hits / misses / inserts equal the serial drain's — the
//!   reserve-time counter decisions are serialized by submission, so
//!   release interleaving cannot shuffle them. (Evictions and resident
//!   bytes are physical and only pinned under budgets where eviction
//!   cannot trigger.)

use proptest::prelude::*;
use tjoin_datasets::{RepositoryConfig, RequestWorkload, RequestWorkloadConfig};
use tjoin_join::{BatchJoinOutcome, BatchJoinRunner, JoinPipelineConfig};
use tjoin_serve::{JoinService, ServeConfig};
use tjoin_text::ServeStats;

/// Asserts two batch outcomes carry identical results: same report order,
/// same per-pair predicted pairs / metrics / candidate counts /
/// transformation sets, same aggregate metrics. (Wall-clock fields,
/// scheduling counters, and serve counters are measurements, not results,
/// and are exempt.)
fn assert_outcomes_identical(a: &BatchJoinOutcome, b: &BatchJoinOutcome, context: &str) {
    assert_eq!(a.reports.len(), b.reports.len(), "{context}: report count");
    assert_eq!(a.faults, b.faults, "{context}: fault tallies");
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.name, rb.name, "{context}: report order");
        assert_eq!(ra.status, rb.status, "{context}: status of {}", ra.name);
        assert_eq!(
            ra.outcome.predicted_pairs, rb.outcome.predicted_pairs,
            "{context}: predicted pairs of {}",
            ra.name
        );
        assert_eq!(ra.outcome.metrics, rb.outcome.metrics, "{context}: metrics of {}", ra.name);
        assert_eq!(
            ra.outcome.candidate_pairs, rb.outcome.candidate_pairs,
            "{context}: candidates of {}",
            ra.name
        );
        assert_eq!(
            ra.outcome.transformations, rb.outcome.transformations,
            "{context}: transformations of {}",
            ra.name
        );
    }
    assert_eq!(a.metrics.micro, b.metrics.micro, "{context}: micro metrics");
    assert_eq!(a.metrics.macro_f1, b.metrics.macro_f1, "{context}: macro F1");
}

fn workload(seed: u64, distinct: usize, requests: usize) -> RequestWorkload {
    RequestWorkloadConfig {
        distinct,
        requests,
        repository: RepositoryConfig::new(2, 10),
    }
    .generate(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn serving_matches_cold_oracle_under_every_budget_and_thread_count(
        seed in 0u64..1_000_000,
        distinct in 1usize..4,
        requests in 1usize..6,
    ) {
        let w = workload(seed, distinct, requests);
        let config = JoinPipelineConfig::default();

        // Cold oracle: every request on a fresh runner, no residency.
        let oracle: Vec<BatchJoinOutcome> = w
            .sequence
            .iter()
            .map(|&r| BatchJoinRunner::new(config.clone(), 2).run(&w.repositories[r]))
            .collect();

        // The workload's unbounded resident footprint, to size the
        // mid-stream-eviction budget.
        let footprint = {
            let service = JoinService::new(config.clone(), 2, ServeConfig::default());
            for &r in &w.sequence {
                prop_assert!(service.submit(w.repositories[r].clone()).is_ok());
            }
            service.drain();
            service.stats().bytes_resident
        };
        prop_assert!(footprint > 0, "n-gram serving must leave columns resident");

        let budgets = [
            None,                      // unbounded: no eviction ever
            Some(1),                   // smaller than any single column: always empty
            Some(footprint / 2 + 1),   // mid-stream eviction between requests
            Some(footprint * 2),       // roomy: everything stays resident
        ];
        for budget in budgets {
            let mut reference_stats: Option<Vec<ServeStats>> = None;
            // Threads {1, 2, 4}, with 1 repeated: the repeat pins rerun
            // determinism, the spread pins thread invariance.
            for threads in [1usize, 2, 4, 1] {
                let service = JoinService::new(
                    config.clone(),
                    threads,
                    ServeConfig { byte_budget: budget, ..ServeConfig::default() },
                );
                for &r in &w.sequence {
                    prop_assert!(service.submit(w.repositories[r].clone()).is_ok());
                }
                let outcomes = service.drain();
                prop_assert_eq!(outcomes.len(), w.sequence.len());
                let mut stats_sequence = Vec::new();
                for (i, (ticket, outcome)) in outcomes.iter().enumerate() {
                    prop_assert_eq!(*ticket, i as u64, "FIFO ticket order");
                    assert_outcomes_identical(
                        outcome,
                        &oracle[i],
                        &format!(
                            "request {i} (repository {}) under budget {budget:?} at {threads} threads",
                            w.sequence[i]
                        ),
                    );
                    let stats = outcome.serve.expect("service stamps serve stats");
                    if let Some(limit) = budget {
                        prop_assert!(
                            stats.bytes_resident <= limit,
                            "budget {} overshot after request {}: {} bytes resident",
                            limit, i, stats.bytes_resident
                        );
                    }
                    stats_sequence.push(stats);
                }
                match &reference_stats {
                    None => reference_stats = Some(stats_sequence),
                    Some(reference) => prop_assert_eq!(
                        &stats_sequence, reference,
                        "serve counters must be identical across thread budgets and reruns \
                         ({} threads, budget {:?})",
                        threads, budget
                    ),
                }
            }
        }
    }

    #[test]
    fn concurrent_drains_keep_results_exact_and_logical_counters_invariant(
        seed in 0u64..1_000_000,
        distinct in 1usize..3,
        requests in 2usize..6,
    ) {
        let w = workload(seed, distinct, requests);
        let config = JoinPipelineConfig::default();

        // A budget of one byte forces eviction (including of pinned
        // entries) between and *during* concurrent requests — the
        // adversarial case for insert accounting.
        for budget in [None, Some(1)] {
            let serve_config = ServeConfig { byte_budget: budget, ..ServeConfig::default() };

            // Serial oracle: same submissions, one drain thread.
            let service = JoinService::new(config.clone(), 2, serve_config.clone());
            for &r in &w.sequence {
                prop_assert!(service.submit(w.repositories[r].clone()).is_ok());
            }
            let oracle = service.drain();
            let oracle_stats = service.stats();

            for drain_threads in [2usize, 4] {
                let service = JoinService::new(config.clone(), 2, serve_config.clone());
                for &r in &w.sequence {
                    prop_assert!(service.submit(w.repositories[r].clone()).is_ok());
                }
                let mut outcomes = Vec::new();
                std::thread::scope(|scope| {
                    let workers: Vec<_> = (0..drain_threads)
                        .map(|_| {
                            scope.spawn(|| {
                                let mut mine = Vec::new();
                                while let Some(entry) = service.run_next() {
                                    mine.push(entry);
                                }
                                mine
                            })
                        })
                        .collect();
                    for worker in workers {
                        outcomes.extend(worker.join().expect("drain thread panicked"));
                    }
                });
                outcomes.sort_by_key(|&(ticket, _)| ticket);
                prop_assert_eq!(outcomes.len(), oracle.len(), "every ticket drained once");
                for ((ticket, outcome), (oracle_ticket, oracle_outcome)) in
                    outcomes.iter().zip(&oracle)
                {
                    prop_assert_eq!(ticket, oracle_ticket);
                    assert_outcomes_identical(
                        outcome,
                        oracle_outcome,
                        &format!(
                            "ticket {ticket} drained by {drain_threads} threads under budget {budget:?}"
                        ),
                    );
                }
                let stats = service.stats();
                let context = format!("{drain_threads} drain threads, budget {budget:?}");
                prop_assert_eq!(stats.hits, oracle_stats.hits, "hits ({})", &context);
                prop_assert_eq!(stats.misses, oracle_stats.misses, "misses ({})", &context);
                prop_assert_eq!(stats.inserts, oracle_stats.inserts, "inserts ({})", &context);
                if budget.is_none() {
                    // Without a budget eviction never runs, so even the
                    // physical counters are pinned.
                    prop_assert_eq!(stats.evictions, 0, "evictions ({})", &context);
                    prop_assert_eq!(
                        stats.bytes_resident, oracle_stats.bytes_resident,
                        "resident bytes ({})", &context
                    );
                }
            }
        }
    }
}
