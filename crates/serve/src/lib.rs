//! # tjoin-serve
//!
//! A serving layer over the batch join runner: a **resident corpus cache**
//! that keeps [`GramCorpus`] column artifacts (normalized arenas, gram
//! statistics, n-gram indexes) alive *across* runs, plus request admission
//! in front of the work-stealing scheduler. Repeated requests over
//! overlapping repositories — the many-tenant regime the paper's
//! repository-scale experiments imply — skip re-normalization and
//! re-indexing entirely on warm columns.
//!
//! # Residency
//!
//! [`ResidentCorpus`] owns one `Arc<GramCorpus>` shared with every
//! [`BatchJoinRunner`] hooked up via
//! [`BatchJoinRunner::with_corpus`]. Columns are keyed by their content
//! fingerprint ([`tjoin_text::column_fingerprint`]), so two requests
//! containing the same cells — same repository resubmitted, or distinct
//! repositories sharing a column — resolve to one resident entry. Because
//! every corpus artifact is a pure function of (cells, normalize options,
//! gram-size range), **residency can never change results**: a warm run is
//! bit-identical to a cold one, and mid-stream eviction only changes
//! counters and wall-clock. The differential suite
//! (`tests/proptest_serve.rs`) proves this rather than assuming it.
//!
//! A request passes through three serialized phases:
//!
//! 1. **reserve** (at admission): the request's columns are
//!    fingerprint-pre-scanned and *pinned* — per-reference counts of
//!    queued interest, two references per pair (source + target). Each
//!    distinct fingerprint is counted right here as a *hit* (resident, or
//!    already pending a build by an earlier queued request) or a *miss*
//!    (this reservation becomes the fingerprint's **designated builder**),
//!    and takes its LRU touch in first-appearance order;
//! 2. **begin** (at dequeue): a phase-order assertion — every counter
//!    decision was already made at reserve time;
//! 3. **release** (after the run): each designated-builder fingerprint
//!    that the run actually made resident counts as an *insert*, the pins
//!    drop, and the cache evicts down to its byte budget.
//!
//! # Eviction invariants
//!
//! The byte budget ([`ServeConfig::byte_budget`]) is **hard at release
//! boundaries**: after every release, resident bytes are `<=` the budget —
//! even when that means evicting the entry the run just used, or a budget
//! smaller than any single column leaves the cache empty. *During* a run
//! the corpus may transiently overshoot (results are sacrosanct; the
//! budget is enforced at the serialized release points, not mid-build).
//! Victims are chosen by the ascending order key
//!
//! ```text
//! (pinned, ever_hit, last_touch, fingerprint)
//! ```
//!
//! so eviction prefers, in order: columns **no queued request still
//! references** (the refcount pre-scan — fully-consumed columns go first,
//! eagerly), columns **never once served warm** (streamed through once and
//! never reused), then **least-recently-used**, with the fingerprint as a
//! deterministic tie-break. Pinned entries are evicted only as a last
//! resort; a queued request whose pinned column was sacrificed simply
//! rebuilds it — a counter change, never a result change.
//!
//! Entry footprints are never remembered from admission time: artifacts
//! built *after* a column became resident (an index requested later, a
//! discovery signature, an append's carry-forward) grow the entry, so
//! [`ResidentCorpus`] recomputes sizes at every enforcement point and
//! trusts only the bytes [`GramCorpus::evict`] reports it actually freed.
//!
//! # Appends
//!
//! [`ResidentCorpus::append_column`] grows a resident column in place:
//! the corpus carries every cached artifact forward incrementally
//! (bit-identical to re-interning the final column — see the `tjoin-text`
//! crate docs), the cache entry re-keys to the grown column's fingerprint
//! with its LRU metadata transferred, and the byte budget is re-enforced
//! immediately — an append is a release boundary. Columns pinned by a
//! queued request refuse to append, because the queued request reserved
//! the old content.
//!
//! # Admission
//!
//! [`JoinService`] puts a bounded FIFO queue (the classic bounded-buffer
//! backpressure shape) in front of the runner:
//! [`JoinService::submit`] pins the request's columns and enqueues it, or
//! rejects it with the typed [`AdmissionError::QueueFull`] when
//! `queue_capacity` requests are already waiting — the caller sheds load
//! explicitly instead of queueing without bound. [`JoinService::run_next`]
//! dequeues in FIFO order, runs the request through the shared runner, and
//! stamps the release-time [`ServeStats`] snapshot onto
//! [`BatchJoinOutcome::serve`], next to the corpus's own
//! [`CorpusStats`](tjoin_text::CorpusStats).
//!
//! # Determinism
//!
//! All cache bookkeeping happens under one mutex, *outside* the parallel
//! run, and every **logical** counter decision — hit, miss, builder
//! designation, LRU touch — is made at *reserve* time, which
//! [`JoinService::submit`] serializes in admission order (the reservation
//! is taken while the queue lock is held). Insert accounting belongs to
//! the designated builder alone, so release order cannot shuffle it. The
//! consequence, proven by `tests/proptest_serve.rs`: for a fixed
//! submission sequence, the quiescent hits / misses / inserts are
//! identical whether the queue is drained by one thread or many, at any
//! runner thread budget, and per-ticket results stay bit-identical to a
//! serial drain. Evictions and resident bytes remain *physical* counters:
//! they report what eviction actually did, which under concurrent drains
//! depends on release interleaving (never on results — residency cannot
//! change results).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::{BTreeMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use tjoin_datasets::ColumnPair;
use tjoin_join::{BatchJoinOutcome, BatchJoinRunner, JoinPipelineConfig, RowMatchingStrategy};
use tjoin_text::{
    column_fingerprint, CorpusFailure, CorpusRetryPolicy, GramCorpus, NormalizeOptions, ServeStats,
};

/// Recovers a lock whether or not a holder panicked (cache metadata stays
/// consistent because every mutation completes before the guard drops).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Configuration of the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Resident-corpus byte budget, enforced at every release; `None`
    /// disables eviction (the corpus grows with the workload).
    pub byte_budget: Option<usize>,
    /// Maximum queued (admitted but not yet run) requests; submissions
    /// beyond it are rejected with [`AdmissionError::QueueFull`].
    pub queue_capacity: usize,
    /// Retry policy for the shared corpus's lazy artifact builds (see
    /// [`CorpusRetryPolicy`]).
    pub retry: CorpusRetryPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            byte_budget: None,
            queue_capacity: 64,
            retry: CorpusRetryPolicy::default(),
        }
    }
}

/// Typed admission rejection — the caller's signal to shed load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The bounded request queue is at capacity.
    QueueFull {
        /// The configured [`ServeConfig::queue_capacity`].
        capacity: usize,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull { capacity } => {
                write!(f, "request queue is full ({capacity} requests waiting)")
            }
        }
    }
}

impl Error for AdmissionError {}

/// Per-fingerprint cache metadata. An entry exists while the fingerprint
/// is pinned by a queued request or resident in the corpus.
#[derive(Debug, Default, Clone, Copy)]
struct EntryMeta {
    /// Outstanding queued references (each pair pins source + target).
    pinned: usize,
    /// Whether this entry was ever served warm from residency.
    ever_hit: bool,
    /// Logical clock of the last reserve-time touch (0 = never touched).
    last_touch: u64,
    /// Queued reservations designated to build this column (a later
    /// reservation seeing `pending_builds > 0` counts a hit: by its turn
    /// in the FIFO the column is expected warm).
    pending_builds: usize,
    /// Set when eviction removes this column within the current build
    /// generation, so the designated builder's release still counts its
    /// insert even if another request's release evicted the column first.
    built: bool,
}

/// Lifetime counters of one [`ResidentCorpus`].
#[derive(Debug, Default, Clone, Copy)]
struct Totals {
    hits: usize,
    misses: usize,
    inserts: usize,
    evictions: usize,
}

#[derive(Debug, Default)]
struct CacheState {
    clock: u64,
    entries: BTreeMap<u64, EntryMeta>,
    totals: Totals,
}

/// A request's pinned interest in the cache, produced by
/// [`ResidentCorpus::reserve`] and consumed by
/// [`ResidentCorpus::release`]. Dropping a reservation without releasing
/// it leaks its pins; the phased API expects reserve → begin → release.
#[derive(Debug)]
pub struct Reservation {
    /// Distinct column fingerprints in first-appearance order.
    fingerprints: Vec<u64>,
    /// Pin counts per fingerprint (parallel to `fingerprints`).
    references: Vec<usize>,
    /// Per-fingerprint warmth decided at [`ResidentCorpus::reserve`]:
    /// resident in the corpus, or already pending a build by an earlier
    /// queued reservation. `!warm[i]` marks this reservation as the
    /// fingerprint's *designated builder* (parallel to `fingerprints`).
    warm: Vec<bool>,
    begun: bool,
}

impl Reservation {
    /// Number of distinct columns this request references.
    pub fn distinct_columns(&self) -> usize {
        self.fingerprints.len()
    }
}

/// The resident corpus cache: one shared [`GramCorpus`] plus the
/// byte-budgeted LRU metadata that decides what stays resident between
/// runs (see the crate docs for the full invariants).
#[derive(Debug)]
pub struct ResidentCorpus {
    corpus: Arc<GramCorpus>,
    byte_budget: Option<usize>,
    state: Mutex<CacheState>,
}

impl ResidentCorpus {
    /// Creates a resident cache whose corpus normalizes with `options`
    /// (must match the runner's matcher configuration — the runner asserts
    /// this) and retries failed builds per `config.retry`.
    /// `config.queue_capacity` only matters to [`JoinService`].
    pub fn new(options: NormalizeOptions, config: ServeConfig) -> Self {
        Self {
            corpus: Arc::new(GramCorpus::with_retry(options, config.retry)),
            byte_budget: config.byte_budget,
            state: Mutex::new(CacheState::default()),
        }
    }

    /// The shared corpus handle, for [`BatchJoinRunner::with_corpus`].
    pub fn shared(&self) -> Arc<GramCorpus> {
        Arc::clone(&self.corpus)
    }

    /// The underlying corpus (e.g. for [`GramCorpus::stats`], reported
    /// next to this cache's [`ServeStats`]).
    pub fn corpus(&self) -> &GramCorpus {
        &self.corpus
    }

    /// The configured byte budget.
    pub fn byte_budget(&self) -> Option<usize> {
        self.byte_budget
    }

    /// Phase 1 (admission): fingerprint-pre-scans `repository`, pins every
    /// referenced column — two references per pair — and makes every
    /// logical counter decision for the request: each distinct fingerprint
    /// is a hit when warm (resident, or pending a build by an earlier
    /// queued reservation) or a miss that designates this reservation its
    /// builder, and takes its LRU touch in first-appearance order. Because
    /// [`JoinService::submit`] reserves while holding the queue lock,
    /// these decisions are serialized in admission order no matter how
    /// many threads later drain the queue.
    pub fn reserve(&self, repository: &[ColumnPair]) -> Reservation {
        let mut fingerprints = Vec::new();
        let mut references = Vec::new();
        for pair in repository {
            for column in [&pair.source, &pair.target] {
                let fingerprint = column_fingerprint(column);
                match fingerprints.iter().position(|&f| f == fingerprint) {
                    Some(i) => references[i] += 1,
                    None => {
                        fingerprints.push(fingerprint);
                        references.push(1);
                    }
                }
            }
        }
        let mut warm = Vec::with_capacity(fingerprints.len());
        let mut state = lock(&self.state);
        let state = &mut *state;
        for (&fingerprint, &count) in fingerprints.iter().zip(&references) {
            let meta = state.entries.entry(fingerprint).or_default();
            meta.pinned += count;
            state.clock += 1;
            meta.last_touch = state.clock;
            let is_warm = self.corpus.contains(fingerprint) || meta.pending_builds > 0;
            if is_warm {
                state.totals.hits += 1;
                meta.ever_hit = true;
            } else {
                state.totals.misses += 1;
                meta.pending_builds += 1;
                meta.built = false;
            }
            warm.push(is_warm);
        }
        Reservation {
            fingerprints,
            references,
            warm,
            begun: false,
        }
    }

    /// Phase 2 (dequeue): marks the reservation begun. Every counter
    /// decision was already made at reserve time; this is the phase-order
    /// assertion that keeps the reserve → begin → release discipline
    /// checked at runtime.
    ///
    /// # Panics
    ///
    /// Panics if the reservation was already begun.
    pub fn begin(&self, reservation: &mut Reservation) {
        assert!(!reservation.begun, "reservation begun twice");
        reservation.begun = true;
    }

    /// Phase 3 (after the run): counts an insert for each designated-
    /// builder fingerprint the run actually made resident, drops the pins,
    /// evicts down to the byte budget, and returns the post-release
    /// [`ServeStats`] snapshot (with `queue_depth` 0 — [`JoinService`]
    /// overwrites it).
    ///
    /// # Panics
    ///
    /// Panics if [`Self::begin`] was never called on the reservation.
    pub fn release(&self, reservation: Reservation) -> ServeStats {
        assert!(reservation.begun, "release of a reservation that never began");
        let mut state = lock(&self.state);
        let state = &mut *state;
        for (i, &fingerprint) in reservation.fingerprints.iter().enumerate() {
            let meta = state.entries.entry(fingerprint).or_default();
            if !reservation.warm[i] {
                // Designated builder: the insert is this reservation's to
                // count. `built` covers the column being evicted by another
                // request's release before this one got here; a column the
                // run never interned (Golden strategy, aborted pair) counts
                // nothing.
                if self.corpus.contains(fingerprint) || meta.built {
                    state.totals.inserts += 1;
                }
                meta.pending_builds = meta.pending_builds.saturating_sub(1);
            }
            meta.pinned = meta.pinned.saturating_sub(reservation.references[i]);
        }
        self.evict_to_budget(state);
        // Drop metadata nothing references: unpinned, no pending build,
        // and not resident.
        let corpus = &self.corpus;
        state.entries.retain(|&fingerprint, meta| {
            meta.pinned > 0 || meta.pending_builds > 0 || corpus.contains(fingerprint)
        });
        self.snapshot(state)
    }

    /// Runs `repository` through `runner` with the full reserve → begin →
    /// release cycle and stamps the release snapshot onto the outcome. The
    /// runner must share this cache's corpus
    /// (`runner.with_corpus(resident.shared())`) for residency to have any
    /// effect; the runner asserts the normalize options agree.
    pub fn run(&self, runner: &BatchJoinRunner, repository: &[ColumnPair]) -> BatchJoinOutcome {
        let mut reservation = self.reserve(repository);
        self.begin(&mut reservation);
        let mut outcome = runner.run(repository);
        outcome.serve = Some(self.release(reservation));
        outcome
    }

    /// Appends `delta`'s rows to the resident column keyed by
    /// `fingerprint`, re-keying the cache entry to the grown column's
    /// content fingerprint (returned). The corpus carries every cached
    /// artifact forward incrementally ([`GramCorpus::append_column`] — the
    /// grown entry is bit-identical to re-interning the final column from
    /// scratch), the old entry is evicted, its LRU metadata transfers to
    /// the new key with a fresh touch, and the byte budget is re-enforced
    /// with the grown entry's **recomputed** footprint — an append is a
    /// release boundary, so the hard-budget invariant holds right here,
    /// not at the next request.
    ///
    /// Columns pinned by a queued request refuse to append (typed
    /// [`CorpusFailure`], artifact `"append"`): the queued request reserved
    /// the *old* content, and swapping it out from under the FIFO would
    /// make results depend on append timing. Drain the queue first.
    pub fn append_column<C: tjoin_text::CellText + ?Sized>(
        &self,
        fingerprint: u64,
        delta: &C,
    ) -> Result<u64, CorpusFailure> {
        let mut state = lock(&self.state);
        let state = &mut *state;
        if let Some(meta) = state.entries.get(&fingerprint) {
            if meta.pinned > 0 {
                return Err(CorpusFailure {
                    artifact: "append",
                    message: format!(
                        "column {fingerprint:#x} is pinned by {} queued reference(s)",
                        meta.pinned
                    ),
                });
            }
        }
        let new_fingerprint = self.corpus.append_column(fingerprint, delta)?;
        if new_fingerprint != fingerprint {
            // The grown column superseded the old entry; nothing queued
            // references it (the pin check above), so reclaim it now.
            if self.corpus.evict(fingerprint).is_some() {
                state.totals.evictions += 1;
            }
            let mut meta = state.entries.remove(&fingerprint).unwrap_or_default();
            state.clock += 1;
            meta.last_touch = state.clock;
            state.entries.insert(new_fingerprint, meta);
        }
        self.evict_to_budget(state);
        Ok(new_fingerprint)
    }

    /// A point-in-time counter snapshot (no release; `queue_depth` 0).
    pub fn stats(&self) -> ServeStats {
        let state = lock(&self.state);
        self.snapshot(&state)
    }

    fn snapshot(&self, state: &CacheState) -> ServeStats {
        ServeStats {
            hits: state.totals.hits,
            misses: state.totals.misses,
            inserts: state.totals.inserts,
            evictions: state.totals.evictions,
            bytes_resident: self.corpus.resident_bytes(),
            queue_depth: 0,
        }
    }

    /// Evicts ascending by `(pinned, ever_hit, last_touch, fingerprint)`
    /// until resident bytes fit the budget (see the crate docs).
    ///
    /// Entry sizes are **recomputed here**, not remembered from admission:
    /// artifacts built after a column became resident (indexes, signatures,
    /// append carry-forwards) grow its footprint, and an admission-time
    /// size would understate both what is resident and what eviction
    /// frees. Each successful eviction subtracts the bytes [`GramCorpus::
    /// evict`] *actually* reclaimed, and the loop re-snapshots until a
    /// fresh sum confirms the budget holds (or nothing more can be
    /// evicted — every survivor's build is in flight).
    fn evict_to_budget(&self, state: &mut CacheState) {
        let Some(budget) = self.byte_budget else {
            return;
        };
        loop {
            let mut resident = self.corpus.resident_entries();
            let mut total: usize = resident.iter().map(|&(_, bytes)| bytes).sum();
            if total <= budget {
                return;
            }
            resident.sort_by_key(|&(fingerprint, _)| {
                let meta = state.entries.get(&fingerprint).copied().unwrap_or_default();
                (meta.pinned > 0, meta.ever_hit, meta.last_touch, fingerprint)
            });
            let mut evicted_any = false;
            for (fingerprint, _) in resident {
                if total <= budget {
                    break;
                }
                if let Some(freed) = self.corpus.evict(fingerprint) {
                    total = total.saturating_sub(freed);
                    evicted_any = true;
                    state.totals.evictions += 1;
                    // Remember the build this eviction erased, so the column's
                    // designated builder still counts its insert at release.
                    if let Some(meta) = state.entries.get_mut(&fingerprint) {
                        meta.built = true;
                    }
                }
            }
            if !evicted_any {
                return;
            }
        }
    }
}

/// One admitted, not-yet-run request.
#[derive(Debug)]
struct QueuedRequest {
    ticket: u64,
    repository: Vec<ColumnPair>,
    reservation: Reservation,
}

#[derive(Debug, Default)]
struct ServiceQueue {
    next_ticket: u64,
    waiting: VecDeque<QueuedRequest>,
}

/// Request admission in front of a shared [`BatchJoinRunner`]: a bounded
/// FIFO queue whose entries pin their columns in the [`ResidentCorpus`]
/// from submission to release (see the crate docs).
#[derive(Debug)]
pub struct JoinService {
    resident: ResidentCorpus,
    runner: BatchJoinRunner,
    queue: Mutex<ServiceQueue>,
    capacity: usize,
}

impl JoinService {
    /// Builds a service whose runner applies `config` under `threads`
    /// shared worker threads, with the resident corpus wired in. The
    /// corpus normalizes exactly as the n-gram matcher does (under
    /// [`RowMatchingStrategy::Golden`] the corpus goes unused but the
    /// admission queue still applies).
    pub fn new(config: JoinPipelineConfig, threads: usize, serve: ServeConfig) -> Self {
        let options = match &config.matching {
            RowMatchingStrategy::NGram(matcher) => matcher.normalize,
            RowMatchingStrategy::Golden => NormalizeOptions::default(),
        };
        let capacity = serve.queue_capacity;
        let resident = ResidentCorpus::new(options, serve);
        let runner = BatchJoinRunner::new(config, threads).with_corpus(resident.shared());
        Self {
            resident,
            runner,
            queue: Mutex::new(ServiceQueue::default()),
            capacity,
        }
    }

    /// The resident cache (counters, corpus stats, byte budget).
    pub fn resident(&self) -> &ResidentCorpus {
        &self.resident
    }

    /// The shared runner every request runs through.
    pub fn runner(&self) -> &BatchJoinRunner {
        &self.runner
    }

    /// Admits `repository`, pinning its columns and queueing it FIFO.
    /// Returns the request's ticket, or [`AdmissionError::QueueFull`] —
    /// without touching the cache — when the queue is at capacity.
    pub fn submit(&self, repository: Vec<ColumnPair>) -> Result<u64, AdmissionError> {
        let mut queue = lock(&self.queue);
        if queue.waiting.len() >= self.capacity {
            return Err(AdmissionError::QueueFull {
                capacity: self.capacity,
            });
        }
        let reservation = self.resident.reserve(&repository);
        let ticket = queue.next_ticket;
        queue.next_ticket += 1;
        queue.waiting.push_back(QueuedRequest {
            ticket,
            repository,
            reservation,
        });
        Ok(ticket)
    }

    /// Queued (admitted but not yet run) requests.
    pub fn queue_depth(&self) -> usize {
        lock(&self.queue).waiting.len()
    }

    /// Dequeues and runs the oldest request; `None` when the queue is
    /// empty. The outcome carries the release-time [`ServeStats`] with the
    /// post-dequeue queue depth.
    pub fn run_next(&self) -> Option<(u64, BatchJoinOutcome)> {
        let QueuedRequest {
            ticket,
            repository,
            mut reservation,
        } = lock(&self.queue).waiting.pop_front()?;
        self.resident.begin(&mut reservation);
        let mut outcome = self.runner.run(&repository);
        let mut stats = self.resident.release(reservation);
        stats.queue_depth = self.queue_depth();
        outcome.serve = Some(stats);
        Some((ticket, outcome))
    }

    /// Runs every queued request in FIFO order.
    pub fn drain(&self) -> Vec<(u64, BatchJoinOutcome)> {
        let mut outcomes = Vec::new();
        while let Some(entry) = self.run_next() {
            outcomes.push(entry);
        }
        outcomes
    }

    /// Lifetime cache counters with the current queue depth.
    pub fn stats(&self) -> ServeStats {
        let mut stats = self.resident.stats();
        stats.queue_depth = self.queue_depth();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tjoin_datasets::RepositoryConfig;

    fn assert_outcomes_identical(a: &BatchJoinOutcome, b: &BatchJoinOutcome, context: &str) {
        assert_eq!(a.reports.len(), b.reports.len(), "{context}: report count");
        assert_eq!(a.faults, b.faults, "{context}: fault tallies");
        for (ra, rb) in a.reports.iter().zip(&b.reports) {
            assert_eq!(ra.name, rb.name, "{context}: report order");
            assert_eq!(ra.status, rb.status, "{context}: status of {}", ra.name);
            assert_eq!(
                ra.outcome.predicted_pairs, rb.outcome.predicted_pairs,
                "{context}: predicted pairs of {}",
                ra.name
            );
            assert_eq!(ra.outcome.metrics, rb.outcome.metrics, "{context}: metrics of {}", ra.name);
        }
        assert_eq!(a.metrics.micro, b.metrics.micro, "{context}: micro");
        assert_eq!(a.metrics.macro_f1, b.metrics.macro_f1, "{context}: macro");
    }

    fn small_repo(seed: u64) -> Vec<ColumnPair> {
        RepositoryConfig::new(3, 16).generate(seed)
    }

    #[test]
    fn warm_run_is_bit_identical_and_counts_hits() {
        let resident = ResidentCorpus::new(NormalizeOptions::default(), ServeConfig::default());
        let runner =
            BatchJoinRunner::new(JoinPipelineConfig::default(), 2).with_corpus(resident.shared());
        let repo = small_repo(21);

        let cold = resident.run(&runner, &repo);
        let cold_stats = cold.serve.expect("serve stats stamped");
        assert_eq!(cold_stats.hits, 0);
        assert_eq!(cold_stats.misses, 6, "3 pairs x 2 distinct columns");
        assert_eq!(cold_stats.inserts, 6);
        assert_eq!(cold_stats.evictions, 0);
        assert!(cold_stats.bytes_resident > 0);

        let warm = resident.run(&runner, &repo);
        let warm_stats = warm.serve.expect("serve stats stamped");
        assert_outcomes_identical(&cold, &warm, "warm vs cold");
        assert_eq!(warm_stats.hits, 6, "every column resident on the second run");
        assert_eq!(warm_stats.misses, 6, "lifetime counter keeps the cold misses");
        assert_eq!(warm_stats.inserts, 6);
        assert_eq!(warm_stats.bytes_resident, cold_stats.bytes_resident);
    }

    #[test]
    fn hard_budget_holds_after_every_release() {
        let unbounded = ResidentCorpus::new(NormalizeOptions::default(), ServeConfig::default());
        let budgeted = ResidentCorpus::new(
            NormalizeOptions::default(),
            ServeConfig {
                byte_budget: Some(2_000),
                ..ServeConfig::default()
            },
        );
        let free_runner =
            BatchJoinRunner::new(JoinPipelineConfig::default(), 2).with_corpus(unbounded.shared());
        let tight_runner =
            BatchJoinRunner::new(JoinPipelineConfig::default(), 2).with_corpus(budgeted.shared());
        for seed in [1, 2, 1, 3, 1] {
            let repo = small_repo(seed);
            let free = unbounded.run(&free_runner, &repo);
            let tight = budgeted.run(&tight_runner, &repo);
            assert_outcomes_identical(&free, &tight, "eviction must not change results");
            let stats = tight.serve.expect("serve stats stamped");
            assert!(
                stats.bytes_resident <= 2_000,
                "budget overshot: {} bytes resident",
                stats.bytes_resident
            );
        }
        assert!(
            budgeted.stats().evictions > 0,
            "a 2 kB budget must evict under multi-repository traffic"
        );
    }

    #[test]
    fn lru_prefers_never_hit_then_oldest() {
        let hot = small_repo(5);
        let cold = small_repo(6);
        // Size the budget off an unbudgeted probe: fits the hot repository
        // with slack, but not both repositories at once.
        let probe = ResidentCorpus::new(NormalizeOptions::default(), ServeConfig::default());
        let probe_runner =
            BatchJoinRunner::new(JoinPipelineConfig::default(), 1).with_corpus(probe.shared());
        probe.run(&probe_runner, &hot);
        let budget = probe.stats().bytes_resident * 3 / 2;

        let resident = ResidentCorpus::new(
            NormalizeOptions::default(),
            ServeConfig {
                byte_budget: Some(budget),
                ..ServeConfig::default()
            },
        );
        let runner =
            BatchJoinRunner::new(JoinPipelineConfig::default(), 1).with_corpus(resident.shared());
        resident.run(&runner, &hot);
        let second = resident.run(&runner, &hot).serve.expect("serve stats stamped");
        assert_eq!(second.hits, 6, "warm rerun marks the hot columns ever-hit");
        resident.run(&runner, &cold);
        let fourth = resident.run(&runner, &hot).serve.expect("serve stats stamped");
        assert_eq!(
            fourth.hits,
            12,
            "the cold run must evict its own never-hit columns, not the hot ones"
        );
        assert!(fourth.evictions > 0, "two repositories cannot both fit the budget");
        for pair in &hot {
            assert!(resident.corpus().contains(column_fingerprint(&pair.source)));
            assert!(resident.corpus().contains(column_fingerprint(&pair.target)));
        }
    }

    #[test]
    fn queue_rejects_beyond_capacity_and_preserves_fifo() {
        let service = JoinService::new(
            JoinPipelineConfig::default(),
            2,
            ServeConfig {
                queue_capacity: 2,
                ..ServeConfig::default()
            },
        );
        let first = service.submit(small_repo(31)).expect("first admitted");
        let second = service.submit(small_repo(32)).expect("second admitted");
        assert_eq!(
            service.submit(small_repo(33)),
            Err(AdmissionError::QueueFull { capacity: 2 }),
        );
        assert_eq!(service.queue_depth(), 2);
        assert_eq!(service.stats().queue_depth, 2);

        let outcomes = service.drain();
        let tickets: Vec<u64> = outcomes.iter().map(|&(t, _)| t).collect();
        assert_eq!(tickets, vec![first, second], "FIFO order");
        assert_eq!(outcomes[0].1.serve.expect("stamped").queue_depth, 1);
        assert_eq!(outcomes[1].1.serve.expect("stamped").queue_depth, 0);
        assert_eq!(service.queue_depth(), 0);
        // Capacity freed: the rejected repository now admits.
        assert!(service.submit(small_repo(33)).is_ok());
        assert_eq!(
            format!("{}", AdmissionError::QueueFull { capacity: 2 }),
            "request queue is full (2 requests waiting)"
        );
    }

    #[test]
    fn submitted_requests_pin_their_columns_against_eviction() {
        // Tiny budget, but the queued request's pins keep its columns
        // evicting last: after run 1 evicts to budget, run 2 (same repo,
        // already queued at pin time) still proceeds correctly.
        let service = JoinService::new(
            JoinPipelineConfig::default(),
            2,
            ServeConfig {
                byte_budget: Some(1),
                ..ServeConfig::default()
            },
        );
        let repo = small_repo(41);
        service.submit(repo.clone()).expect("admitted");
        service.submit(repo).expect("admitted");
        let outcomes = service.drain();
        assert_eq!(outcomes.len(), 2);
        let last = outcomes[1].1.serve.expect("stamped");
        assert!(last.bytes_resident <= 1, "budget of one byte empties the cache");
        assert!(last.evictions >= last.inserts, "every insert must eventually evict");
        assert_outcomes_identical(
            &outcomes[0].1,
            &outcomes[1].1,
            "eviction between identical requests",
        );
    }

    #[test]
    fn shared_columns_across_repositories_resolve_to_one_entry() {
        let resident = ResidentCorpus::new(NormalizeOptions::default(), ServeConfig::default());
        let runner =
            BatchJoinRunner::new(JoinPipelineConfig::default(), 2).with_corpus(resident.shared());
        let repo = small_repo(51);
        let mut reservation = resident.reserve(&repo);
        assert_eq!(reservation.distinct_columns(), 6);
        resident.begin(&mut reservation);
        runner.run(&repo);
        resident.release(reservation);

        // A second repository re-using one column pair of the first adds
        // only the two genuinely new columns.
        let mut overlap = small_repo(52);
        overlap[0] = repo[0].clone();
        let warm = resident.run(&runner, &overlap).serve.expect("stamped");
        assert_eq!(warm.hits, 2, "the shared pair's two columns hit");
        assert_eq!(warm.misses, 6 + 4, "lifetime misses: first repo + two new pairs");
    }

    #[test]
    fn discovery_signatures_ride_the_resident_corpus() {
        use tjoin_join::DiscoveryConfig;
        let resident = ResidentCorpus::new(NormalizeOptions::default(), ServeConfig::default());
        let runner =
            BatchJoinRunner::new(JoinPipelineConfig::default(), 2).with_corpus(resident.shared());
        let repo = small_repo(71);
        let discovery = DiscoveryConfig::paper_default();

        let cold = runner.discover_and_run(&repo, &discovery);
        let between = resident.corpus().stats();
        assert!(between.signatures_built > 0, "cold discovery signs the repository");

        let warm = runner.discover_and_run(&repo, &discovery);
        let after = resident.corpus().stats();
        assert_eq!(
            after.signatures_built, between.signatures_built,
            "warm discovery must not rebuild signatures"
        );
        assert!(
            after.signature_hits > between.signature_hits,
            "warm discovery is served from the resident signature cache"
        );
        assert_outcomes_identical(&cold.outcome, &warm.outcome, "warm vs cold discovery");
        assert_eq!(cold.shortlist.ranked.len(), warm.shortlist.ranked.len());
    }

    #[test]
    fn release_evicts_entries_whose_artifacts_grew_after_admission() {
        // Size the budget around the *arena-only* footprint of one repo's
        // columns, then grow the entries after admission by building
        // indexes and signatures directly. The next release must recompute
        // the grown footprints and evict back under the budget — an
        // admission-time size would say everything still fits.
        let repo = small_repo(81);
        let probe = ResidentCorpus::new(NormalizeOptions::default(), ServeConfig::default());
        for pair in &repo {
            probe.corpus().column(&pair.source);
            probe.corpus().column(&pair.target);
        }
        let arena_only = probe.corpus().resident_bytes();

        let budget = arena_only * 2;
        let resident = ResidentCorpus::new(
            NormalizeOptions::default(),
            ServeConfig {
                byte_budget: Some(budget),
                ..ServeConfig::default()
            },
        );
        let mut reservation = resident.reserve(&repo);
        resident.begin(&mut reservation);
        for pair in &repo {
            resident.corpus().column(&pair.source);
            resident.corpus().column(&pair.target);
        }
        let after_admission = resident.release(reservation);
        assert!(after_admission.bytes_resident <= budget, "arenas alone fit the budget");
        assert_eq!(after_admission.evictions, 0);

        // Post-admission growth: stats + index + signature per column.
        for pair in &repo {
            for column in [&pair.source, &pair.target] {
                let entry = resident.corpus().column(column);
                let _ = entry.index(4, 8);
                let _ = entry.signature(4, 8);
            }
        }
        assert!(
            resident.corpus().resident_bytes() > budget,
            "the grown artifacts must overshoot the budget for this test to bite"
        );

        // An empty release is a pure budget-enforcement boundary.
        let mut empty = resident.reserve(&[]);
        resident.begin(&mut empty);
        let stats = resident.release(empty);
        assert!(
            stats.bytes_resident <= budget,
            "release must recompute grown entry bytes: {} resident > {} budget",
            stats.bytes_resident,
            budget
        );
        assert!(stats.evictions > 0, "the grown entries forced evictions");
    }

    #[test]
    fn append_rekeys_the_entry_and_transfers_metadata() {
        let resident = ResidentCorpus::new(NormalizeOptions::default(), ServeConfig::default());
        let base: Vec<String> = vec!["Rafiei, Davood".into(), "Bowling, Michael".into()];
        let delta: Vec<String> = vec!["Nascimento, Mario".into()];
        let mut final_cells = base.clone();
        final_cells.extend(delta.iter().cloned());
        let old_fp = column_fingerprint(&base);
        let entry = resident.corpus().column(&base);
        let _ = entry.stats(4, 8);
        let _ = entry.index(4, 8);

        let new_fp = resident.append_column(old_fp, &delta).expect("append succeeds");
        assert_eq!(new_fp, column_fingerprint(&final_cells));
        assert!(!resident.corpus().contains(old_fp), "the old entry was reclaimed");
        assert!(resident.corpus().contains(new_fp));
        assert_eq!(resident.stats().evictions, 1, "re-keying evicts the superseded entry");

        // The grown entry serves exactly what a fresh intern of the final
        // column serves (carry-forward, not rebuild).
        let fresh = ResidentCorpus::new(NormalizeOptions::default(), ServeConfig::default());
        let oracle = fresh.corpus().column(&final_cells);
        let grown = resident.corpus().column(&final_cells);
        assert_eq!(*grown.stats(4, 8), *oracle.stats(4, 8));
        assert_eq!(*grown.index(4, 8), *oracle.index(4, 8));
        assert_eq!(resident.corpus().stats().appends, 1);

        // Appending to the old key again is a typed error: the entry moved.
        let err = resident.append_column(old_fp, &delta).expect_err("old key is gone");
        assert_eq!(err.artifact, "append");
    }

    #[test]
    fn append_refuses_pinned_columns() {
        let service = JoinService::new(
            JoinPipelineConfig::default(),
            2,
            ServeConfig::default(),
        );
        let repo = small_repo(91);
        let pinned_fp = column_fingerprint(&repo[0].source);
        service.submit(repo.clone()).expect("admitted");

        let delta: Vec<String> = vec!["late arrival".into()];
        let err = service
            .resident()
            .append_column(pinned_fp, &delta)
            .expect_err("a queued request pins its columns against appends");
        assert_eq!(err.artifact, "append");
        assert!(err.message.contains("pinned"), "unexpected message: {}", err.message);

        // Drained, the pin drops and the append proceeds.
        service.drain();
        let new_fp = service
            .resident()
            .append_column(pinned_fp, &delta)
            .expect("unpinned column appends");
        let mut final_cells = repo[0].source.clone();
        final_cells.extend(delta);
        assert_eq!(new_fp, column_fingerprint(&final_cells));
    }

    #[test]
    fn append_heavy_workload_never_exceeds_hard_budget() {
        // Regression for stale byte accounting: appends grow an entry's
        // footprint (arena + carried stats/index/signature) well past its
        // admission-time size. Every append re-enforces the budget with
        // recomputed sizes, so resident bytes stay under the hard cap
        // after every single step.
        let base: Vec<String> = (0..8).map(|i| format!("seed row number {i:04}")).collect();
        let probe = ResidentCorpus::new(NormalizeOptions::default(), ServeConfig::default());
        let probe_entry = probe.corpus().column(&base);
        let _ = probe_entry.stats(4, 8);
        let _ = probe_entry.index(4, 8);
        let budget = probe.corpus().resident_bytes() * 3;

        let resident = ResidentCorpus::new(
            NormalizeOptions::default(),
            ServeConfig {
                byte_budget: Some(budget),
                ..ServeConfig::default()
            },
        );
        let entry = resident.corpus().column(&base);
        let _ = entry.stats(4, 8);
        let _ = entry.index(4, 8);

        let mut cells = base;
        let mut fingerprint = column_fingerprint(&cells);
        for step in 0..32 {
            let delta: Vec<String> =
                (0..8).map(|i| format!("appended row {step:04}-{i:04}")).collect();
            cells.extend(delta.iter().cloned());
            match resident.append_column(fingerprint, &delta) {
                Ok(new_fp) => {
                    fingerprint = new_fp;
                    assert_eq!(fingerprint, column_fingerprint(&cells));
                }
                // The grown entry outgrew the whole budget and was evicted
                // at a previous append boundary ("no resident entry");
                // re-intern the accumulated column and keep appending —
                // the budget must hold regardless.
                Err(err) => {
                    assert_eq!(err.artifact, "append");
                    fingerprint = column_fingerprint(&cells);
                    let entry = resident.corpus().column(&cells);
                    let _ = entry.stats(4, 8);
                    let mut boundary = resident.reserve(&[]);
                    resident.begin(&mut boundary);
                    resident.release(boundary);
                }
            }
            assert!(
                resident.corpus().resident_bytes() <= budget,
                "budget overshot after append {}: {} > {}",
                step,
                resident.corpus().resident_bytes(),
                budget
            );
        }
        assert!(
            resident.stats().evictions > 0,
            "a tripled-footprint budget must evict under 32 growth steps"
        );
    }

    #[test]
    fn golden_strategy_serves_without_a_corpus() {
        let config = JoinPipelineConfig {
            matching: RowMatchingStrategy::Golden,
            ..JoinPipelineConfig::default()
        };
        let service = JoinService::new(config, 2, ServeConfig::default());
        service.submit(small_repo(61)).expect("admitted");
        let outcomes = service.drain();
        assert_eq!(outcomes.len(), 1);
        let stats = outcomes[0].1.serve.expect("stamped");
        // The runner never interns under Golden: the pre-scan counts
        // misses, nothing becomes resident.
        assert_eq!(stats.misses, 6);
        assert_eq!(stats.inserts, 0);
        assert_eq!(stats.bytes_resident, 0);
    }
}
