//! # tjoin-discovery
//!
//! Repository-scale joinable-pair discovery: decide *which* column pairs
//! are worth the expensive match→synthesize→join pipeline without running
//! it. The batch and serve layers are handed their [`ColumnPair`]s; a real
//! data lake has thousands of tables, and the O(tables²) pair space is
//! what every query hits first (QJoin frames this as transformation-aware
//! discovery with learned budgets; this crate is the deterministic
//! cost-guided first cut that keeps the repo's differential-oracle
//! discipline).
//!
//! ## Signature layout
//!
//! Discovery reads one [`ColumnSignature`] per column, computed once into
//! the shared [`GramCorpus`] (`CorpusColumn::try_signature`) next to the
//! stats and index artifacts — a resident corpus (`tjoin-serve`) therefore
//! serves **warm discovery near-free**. A signature is two things:
//!
//! * the exact, sorted **anchor set**: fingerprints of every gram of size
//!   exactly `n_min` in the normalized column, and
//! * fixed-width **one-permutation MinHash lanes** (`SIGNATURE_WIDTH` ×
//!   u64, one `mix64` per distinct gram) over the full `[n_min, n_max]`
//!   gram-fingerprint stream of the column's stats.
//!
//! ## Shortlist scoring, and why recall is 1.0 by construction
//!
//! The n-gram matcher can only pair rows through a shared gram with size
//! in `[n_min, n_max]`, and any shared gram of length `n ≥ n_min` contains
//! a shared length-`n_min` substring. So **a pair whose anchor sets are
//! disjoint cannot produce a single candidate row match** — pruning on
//! `shared_anchors < min_anchor_overlap` (default 1) is *sound*, not
//! heuristic, and the differential suite proves shortlist recall 1.0
//! against the brute-force all-pairs oracle. The MinHash lanes are used
//! only to *order* the surviving candidates (estimated gram overlap,
//! [`ColumnSignature::estimated_overlap`]) — a score can be wrong without
//! costing recall. [`SignatureIndex`] inverts the anchor sets so candidate
//! generation probes shared anchors instead of scoring the full cross
//! product; a brute-force scorer ([`discover_reference`]) is retained as
//! the oracle and the two are bit-identical.
//!
//! ## Budget semantics
//!
//! Discovery itself is cheap (signatures are one pass per distinct column,
//! amortized by the corpus); the budgets bound what runs *after* it:
//!
//! * [`DiscoveryConfig::top_k`] caps how many shortlisted pairs the full
//!   pipeline is spent on — pairs cut by the cap are reported as
//!   budget-pruned, separately from the provably-unjoinable prunes,
//!   because cutting them *can* cost recall (the cap is an explicit
//!   cost/recall trade the caller opts into; the default `None` keeps the
//!   recall guarantee).
//! * Raising [`DiscoveryConfig::min_anchor_overlap`] above 1 demands more
//!   shared evidence per pair — same trade, same reporting.
//! * The per-pair `RunBudget` / work-stealing machinery of the batch
//!   runner applies unchanged to the shortlisted pairs
//!   (`BatchJoinRunner::discover_and_run` in `tjoin-join`).
//!
//! ## Determinism under ties
//!
//! MinHash overlap estimates are quantized (lane-agreement fractions), so
//! score ties across *distinct* pairs are common, and a `top_k` cut
//! through a tie group must not depend on the order the repository
//! happened to arrive in. Every rank therefore orders by
//! `(estimated_overlap desc, shared_anchors desc, content fingerprint
//! asc, position asc)` — the fingerprint ([`PairCandidate::fingerprint`],
//! a chain of both columns' content fingerprints) decides within tie
//! groups by *content*, and the positional key only separates exact
//! duplicate column pairs.
//!
//! ## Shortlist deltas (the append model)
//!
//! When a repository grows — rows appended to resident columns via
//! `GramCorpus::append_column`, new pairs added at the end —
//! [`shortlist_repository_delta`] re-signs **only** the changed and new
//! pairs and carries every unchanged pair's recorded evidence forward
//! from the previous [`RepositoryShortlist`] (budget-cut pairs keep their
//! scores for exactly this reason). Unchanged pruned pairs stay pruned:
//! anchor disjointness is a property of the columns, and the columns did
//! not change. The re-rank and `top_k` cut run through the same serial
//! pass as the full path, so the delta verdict is bit-identical to
//! re-shortlisting the final repository from scratch — invalidation can
//! never change results, only how much signing work was spent.
//!
//! ## Oracle discipline
//!
//! Three retained oracles lock the layer down differentially:
//! [`discover_reference`] (brute-force pairwise anchor intersection, must
//! be bit-identical to the indexed path), the small-scale brute-force
//! all-pairs *pipeline* run (every pair the pipeline can join must be
//! shortlisted — recall 1.0), and running the shortlist's pair list
//! through the plain batch runner (end-to-end `discover_and_run` outcomes
//! must be bit-identical to it). A column whose signature build fails is
//! **conservatively retained** — discovery can only prune what it can
//! prove, and a sticky corpus failure proves nothing.
//!
//! The anchor fingerprints feeding [`SignatureIndex`] carry the same
//! debug-build shadow-map collision guard the `NGramIndex` posting keys
//! use (`tjoin_text::CollisionGuard`, applied at signature build where the
//! gram text is still in hand, with a forced-collision regression test).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tjoin_datasets::ColumnPair;
use tjoin_text::{
    chunk_map, fingerprint64_chain, ColumnSignature, CorpusFailure, FxHashMap, FxHashSet,
    GramCorpus, NormalizeOptions,
};

/// Configuration of a discovery pass. `n_min`/`n_max`/`normalize` must
/// match the matcher configuration the shortlisted pairs will run under —
/// the recall guarantee is relative to *that* matcher's gram range
/// (`BatchJoinRunner::discover_and_run` asserts the equality).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscoveryConfig {
    /// Smallest gram size of the matcher the shortlist feeds; also the
    /// anchor gram size.
    pub n_min: usize,
    /// Largest gram size of the matcher the shortlist feeds.
    pub n_max: usize,
    /// Normalization applied before signing (must equal the matcher's).
    pub normalize: NormalizeOptions,
    /// Minimum shared anchors for a pair to survive. The default 1 is the
    /// sound setting (recall 1.0); higher values trade recall for cost.
    pub min_anchor_overlap: usize,
    /// Optional cap on the shortlist length (best-scored pairs kept).
    /// `None` (the default) keeps every survivor — the recall-preserving
    /// setting; a cap is an explicit cost/recall trade.
    pub top_k: Option<usize>,
    /// Worker threads for the signature-building pass (1 = sequential).
    /// Signatures are pure per-column functions, so output is
    /// bit-identical at any value.
    pub threads: usize,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        Self {
            n_min: 4,
            n_max: 20,
            normalize: NormalizeOptions::default(),
            min_anchor_overlap: 1,
            top_k: None,
            threads: 1,
        }
    }
}

impl DiscoveryConfig {
    /// The paper-default gram range (`n0 = 4`, `nmax = 20`) with the
    /// recall-preserving pruning settings.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Builder-style setter for the thread count (clamped to at least one).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builder-style setter for the shortlist cap.
    pub fn with_top_k(mut self, top_k: usize) -> Self {
        self.top_k = Some(top_k);
        self
    }
}

/// A shortlisted source × target column combination with its evidence:
/// the exact shared-anchor count (why it survived pruning — the
/// explainability hook GXJoin argues for) and the MinHash overlap estimate
/// (why it is ranked where it is).
#[derive(Debug, Clone, PartialEq)]
pub struct PairCandidate {
    /// Index into the source signature slice.
    pub source: u32,
    /// Index into the target signature slice.
    pub target: u32,
    /// Exact size of the anchor-set intersection (≥ the configured
    /// minimum).
    pub shared_anchors: usize,
    /// MinHash-estimated shared distinct grams across the full size range
    /// (the ranking score).
    pub estimated_overlap: f64,
    /// Content fingerprint of the pair (a chain of both columns'
    /// [`ColumnSignature::content_fingerprint`]s) — the tie-break that
    /// keeps `top_k` cuts deterministic under MinHash score ties: two
    /// repositories holding the same columns cut the same *content*, no
    /// matter how their pair lists are ordered.
    pub fingerprint: u64,
}

/// The result of scoring a source × target signature cross product:
/// surviving candidates in rank order plus the size of the space they were
/// pruned from.
#[derive(Debug, Clone, PartialEq)]
pub struct Shortlist {
    /// Survivors, ordered by (estimated overlap desc, shared anchors desc,
    /// (source, target) asc) — deterministic and thread-invariant.
    pub candidates: Vec<PairCandidate>,
    /// Total combinations considered (`sources × targets`).
    pub considered: usize,
}

impl Shortlist {
    /// Combinations pruned (provably-unjoinable plus any `top_k` cut).
    pub fn pruned(&self) -> usize {
        self.considered - self.candidates.len()
    }

    /// Fraction of the pair space pruned (0 when nothing was considered).
    pub fn pruning_ratio(&self) -> f64 {
        if self.considered == 0 {
            return 0.0;
        }
        self.pruned() as f64 / self.considered as f64
    }
}

/// Inverted index over anchor fingerprints: anchor → the (ascending)
/// target-column ids whose signatures contain it. Probing a source
/// signature walks its anchors' posting lists and counts hits per target —
/// exactly the pairwise sorted-merge intersection [`discover_reference`]
/// computes, reorganized so targets sharing nothing are never visited.
///
/// The index keys are the signature anchor fingerprints, which were
/// checked against gram-text collisions by the debug shadow map at
/// signature build time (see the crate docs) — the same guard discipline
/// as the `NGramIndex` posting keys.
#[derive(Debug, Default)]
pub struct SignatureIndex {
    postings: FxHashMap<u64, Vec<u32>>,
    columns: usize,
}

impl SignatureIndex {
    /// Builds the index over `targets`, identified by their slice position.
    /// Posting lists are ascending by construction (columns are inserted
    /// in order).
    pub fn build(targets: &[Arc<ColumnSignature>]) -> Self {
        let mut postings: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for (id, signature) in targets.iter().enumerate() {
            // Column counts were checked at ingest (`assert_row_indexable`
            // / `checked_row_count`); a repository of more than u32::MAX
            // *columns* is far beyond that and cannot round-trip ids.
            let id = u32::try_from(id).expect("more than u32::MAX target columns");
            for &anchor in signature.anchors() {
                postings.entry(anchor).or_default().push(id);
            }
        }
        Self { postings, columns: targets.len() }
    }

    /// Number of indexed target columns.
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Number of distinct anchors indexed.
    pub fn distinct_anchors(&self) -> usize {
        self.postings.len()
    }

    /// Exact shared-anchor counts between `probe` and every indexed target
    /// that shares at least one anchor, as `(target id, shared)` pairs in
    /// ascending target order. Targets sharing nothing are absent — the
    /// pruning this index exists for.
    pub fn shared_anchor_counts(&self, probe: &ColumnSignature) -> Vec<(u32, usize)> {
        let mut counts = vec![0usize; self.columns];
        for anchor in probe.anchors() {
            if let Some(targets) = self.postings.get(anchor) {
                for &target in targets {
                    counts[target as usize] += 1;
                }
            }
        }
        counts
            .into_iter()
            .enumerate()
            .filter(|(_, shared)| *shared > 0)
            .map(|(target, shared)| (target as u32, shared))
            .collect()
    }
}

/// Ranks candidates deterministically: estimated overlap descending, then
/// shared anchors descending, then content fingerprint ascending, then
/// (source, target) ascending. `f64` scores are compared by total order;
/// every score is computed by the same pure expression on both discovery
/// paths, so the rank is bit-identical between them and across thread
/// counts. The fingerprint outranks the positional tie-break so a `top_k`
/// cut through a group of MinHash ties selects by *content*, invariant
/// under input reordering; positions only break exact-duplicate columns.
fn rank(candidates: &mut Vec<PairCandidate>, top_k: Option<usize>) {
    candidates.sort_by(|a, b| {
        b.estimated_overlap
            .total_cmp(&a.estimated_overlap)
            .then(b.shared_anchors.cmp(&a.shared_anchors))
            .then(a.fingerprint.cmp(&b.fingerprint))
            .then(a.source.cmp(&b.source))
            .then(a.target.cmp(&b.target))
    });
    if let Some(k) = top_k {
        candidates.truncate(k);
    }
}

/// The pair-level content fingerprint rank ties break on: a seeded,
/// order-sensitive chain of both columns' content fingerprints. Seeding
/// matters — a bare `chain(source, target)` XORs the inputs first, so
/// every identical-column pair (`source == target`) would collapse to the
/// single value `mix64(0)` and the tie-break would stop discriminating
/// exactly where ties are densest.
fn pair_fingerprint(source: &ColumnSignature, target: &ColumnSignature) -> u64 {
    const PAIR_SEED: u64 = 0x9E37_79B9_7F4A_7C15;
    fingerprint64_chain(
        fingerprint64_chain(PAIR_SEED, source.content_fingerprint()),
        target.content_fingerprint(),
    )
}

/// Prunes and ranks the `sources` × `targets` pair space through a
/// [`SignatureIndex`] over the targets. Bit-identical to
/// [`discover_reference`] (the retained brute-force oracle) by the
/// differential suite; only wall-clock differs.
pub fn discover(
    sources: &[Arc<ColumnSignature>],
    targets: &[Arc<ColumnSignature>],
    config: &DiscoveryConfig,
) -> Shortlist {
    let index = SignatureIndex::build(targets);
    let mut candidates = Vec::new();
    for (source_id, source) in sources.iter().enumerate() {
        let source_id = u32::try_from(source_id).expect("more than u32::MAX source columns");
        for (target_id, shared) in index.shared_anchor_counts(source) {
            if shared >= config.min_anchor_overlap.max(1) {
                let target = &targets[target_id as usize];
                candidates.push(PairCandidate {
                    source: source_id,
                    target: target_id,
                    shared_anchors: shared,
                    estimated_overlap: source.estimated_overlap(target),
                    fingerprint: pair_fingerprint(source, target),
                });
            }
        }
    }
    rank(&mut candidates, config.top_k);
    Shortlist { candidates, considered: sources.len() * targets.len() }
}

/// The brute-force discovery oracle: every source × target combination
/// scored by direct sorted-merge anchor intersection, no index. Retained
/// as the differential reference for [`discover`].
pub fn discover_reference(
    sources: &[Arc<ColumnSignature>],
    targets: &[Arc<ColumnSignature>],
    config: &DiscoveryConfig,
) -> Shortlist {
    let mut candidates = Vec::new();
    for (source_id, source) in sources.iter().enumerate() {
        let source_id = u32::try_from(source_id).expect("more than u32::MAX source columns");
        for (target_id, target) in targets.iter().enumerate() {
            let shared = source.shared_anchors(target);
            if shared >= config.min_anchor_overlap.max(1) {
                candidates.push(PairCandidate {
                    source: source_id,
                    target: u32::try_from(target_id).expect("more than u32::MAX target columns"),
                    shared_anchors: shared,
                    estimated_overlap: source.estimated_overlap(target),
                    fingerprint: pair_fingerprint(source, target),
                });
            }
        }
    }
    rank(&mut candidates, config.top_k);
    Shortlist { candidates, considered: sources.len() * targets.len() }
}

/// Interns `cells` into `corpus` and returns its cached discovery
/// signature for the config's gram range — the per-column primitive both
/// the repository shortlister and the bench's cross-product legs use.
pub fn corpus_signature(
    corpus: &GramCorpus,
    cells: &[String],
    config: &DiscoveryConfig,
) -> Result<Arc<ColumnSignature>, CorpusFailure> {
    corpus.try_column_on(cells)?.try_signature(config.n_min, config.n_max)
}

/// One retained entry of a [`RepositoryShortlist`]: the repository index
/// and name of the surviving pair plus its evidence. `signature_failed`
/// marks conservative retention — a sticky corpus failure on either column
/// proves nothing, so the pair runs (and its evidence fields are zero).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredPair {
    /// Index into the repository slice the shortlist was built from.
    pub index: usize,
    /// The pair's name.
    pub name: String,
    /// Exact shared anchors between the pair's columns (0 when
    /// `signature_failed`).
    pub shared_anchors: usize,
    /// MinHash-estimated shared distinct grams (0 when `signature_failed`).
    pub estimated_overlap: f64,
    /// Content fingerprint of the pair's two columns (see
    /// [`PairCandidate::fingerprint`]; 0 when `signature_failed`) — the
    /// rank tie-break, and the identity a [`shortlist_repository_delta`]
    /// carry-forward preserves.
    pub fingerprint: u64,
    /// True when a signature build failed and the pair was retained
    /// conservatively instead of scored.
    pub signature_failed: bool,
}

/// A pruned entry of a [`RepositoryShortlist`]: index and name only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrunedPair {
    /// Index into the repository slice.
    pub index: usize,
    /// The pair's name.
    pub name: String,
}

/// The discovery verdict over a repository's pair list: which pairs the
/// full pipeline should be spent on (in rank order), which were provably
/// pruned, and which a `top_k` budget cut.
#[derive(Debug, Clone, PartialEq)]
pub struct RepositoryShortlist {
    /// Retained pairs in run order: scored survivors ranked by (estimated
    /// overlap desc, shared anchors desc, content fingerprint asc, index
    /// asc), then conservatively retained signature-failure pairs in index
    /// order.
    pub ranked: Vec<ScoredPair>,
    /// Pairs with fewer than `min_anchor_overlap` shared anchors — at the
    /// default minimum of 1, *provably* unjoinable under the matcher the
    /// config mirrors. In index order.
    pub pruned: Vec<PrunedPair>,
    /// Scored survivors cut by the `top_k` cap (empty without a cap) — a
    /// budget decision, not a proof, reported separately. In rank order,
    /// evidence kept: a later [`shortlist_repository_delta`] re-ranks these
    /// against fresh scores without re-signing them.
    pub pruned_by_budget: Vec<ScoredPair>,
    /// Repository size the shortlist was built from.
    pub considered: usize,
}

impl RepositoryShortlist {
    /// Fraction of the repository's pairs not run (0 on an empty
    /// repository).
    pub fn pruning_ratio(&self) -> f64 {
        if self.considered == 0 {
            return 0.0;
        }
        (self.pruned.len() + self.pruned_by_budget.len()) as f64 / self.considered as f64
    }

    /// A shortlist that retains every pair unscored, in input order — the
    /// degenerate verdict for matching strategies discovery cannot reason
    /// about (golden row pairs need no shared text).
    pub fn retain_all(repository: &[ColumnPair]) -> Self {
        Self {
            ranked: repository
                .iter()
                .enumerate()
                .map(|(index, pair)| ScoredPair {
                    index,
                    name: pair.name.clone(),
                    shared_anchors: 0,
                    estimated_overlap: 0.0,
                    fingerprint: 0,
                    signature_failed: false,
                })
                .collect(),
            pruned: Vec::new(),
            pruned_by_budget: Vec::new(),
            considered: repository.len(),
        }
    }
}

/// Per-pair signature evidence, before the serial rank/prune pass.
#[derive(Clone, Copy)]
struct PairEvidence {
    shared: usize,
    overlap: f64,
    fingerprint: u64,
    failed: bool,
}

/// How one repository pair enters the rank/prune pass: freshly (or
/// carried-forward) scored, or known-pruned from an unchanged previous
/// verdict (evidence below the anchor minimum; its exact value no longer
/// matters).
enum PairDisposition {
    Scored(PairEvidence),
    StillPruned,
}

/// Signs one pair through the corpus and condenses the evidence. A
/// signature failure on either column comes back `failed` (conservative
/// retention downstream).
fn sign_pair(corpus: &GramCorpus, pair: &ColumnPair, config: &DiscoveryConfig) -> PairEvidence {
    let scored = corpus_signature(corpus, &pair.source, config).and_then(|source| {
        corpus_signature(corpus, &pair.target, config).map(|target| (source, target))
    });
    match scored {
        Ok((source, target)) => PairEvidence {
            shared: source.shared_anchors(&target),
            overlap: source.estimated_overlap(&target),
            fingerprint: pair_fingerprint(&source, &target),
            failed: false,
        },
        Err(_) => PairEvidence { shared: 0, overlap: 0.0, fingerprint: 0, failed: true },
    }
}

/// The serial classify → rank → cut pass shared by the full and delta
/// shortlist paths — one implementation, so the delta path cannot drift
/// from the oracle it must stay bit-identical to.
fn assemble_shortlist(
    repository: &[ColumnPair],
    dispositions: Vec<PairDisposition>,
    config: &DiscoveryConfig,
) -> RepositoryShortlist {
    let mut scored: Vec<ScoredPair> = Vec::new();
    let mut retained_failures: Vec<ScoredPair> = Vec::new();
    let mut pruned: Vec<PrunedPair> = Vec::new();
    for (index, (pair, disposition)) in repository.iter().zip(dispositions).enumerate() {
        let evidence = match disposition {
            PairDisposition::Scored(evidence) => evidence,
            PairDisposition::StillPruned => {
                pruned.push(PrunedPair { index, name: pair.name.clone() });
                continue;
            }
        };
        let entry = ScoredPair {
            index,
            name: pair.name.clone(),
            shared_anchors: evidence.shared,
            estimated_overlap: evidence.overlap,
            fingerprint: evidence.fingerprint,
            signature_failed: evidence.failed,
        };
        if evidence.failed {
            retained_failures.push(entry);
        } else if evidence.shared >= config.min_anchor_overlap.max(1) {
            scored.push(entry);
        } else {
            pruned.push(PrunedPair { index, name: pair.name.clone() });
        }
    }
    scored.sort_by(|a, b| {
        b.estimated_overlap
            .total_cmp(&a.estimated_overlap)
            .then(b.shared_anchors.cmp(&a.shared_anchors))
            .then(a.fingerprint.cmp(&b.fingerprint))
            .then(a.index.cmp(&b.index))
    });
    let mut pruned_by_budget = Vec::new();
    if let Some(k) = config.top_k {
        pruned_by_budget = scored.split_off(k.min(scored.len()));
    }
    scored.extend(retained_failures);
    RepositoryShortlist {
        ranked: scored,
        pruned,
        pruned_by_budget,
        considered: repository.len(),
    }
}

/// Shortlists a repository's pair list: signs every column through
/// `corpus` (signature builds parallelized over `config.threads`; pure
/// per-column work, so the result is thread-invariant), prunes pairs whose
/// columns share fewer than `min_anchor_overlap` anchors, ranks the
/// survivors, and applies the `top_k` budget. Signature failures retain
/// conservatively (see [`ScoredPair::signature_failed`]).
pub fn shortlist_repository(
    repository: &[ColumnPair],
    corpus: &GramCorpus,
    config: &DiscoveryConfig,
) -> RepositoryShortlist {
    assert_eq!(
        corpus.options(),
        &config.normalize,
        "discovery corpus must normalize like the discovery config"
    );
    let dispositions: Vec<PairDisposition> =
        chunk_map(repository, config.threads.max(1), |pair| {
            PairDisposition::Scored(sign_pair(corpus, pair, config))
        });
    assemble_shortlist(repository, dispositions, config)
}

/// What changed since a previous [`RepositoryShortlist`] was taken: the
/// verdict to carry forward plus the indices (into the *final* repository
/// slice) of pairs whose columns gained rows. Indices at or beyond
/// `previous.considered` are new pairs and are re-signed automatically —
/// they do not need listing.
#[derive(Debug, Clone, Copy)]
pub struct ShortlistDelta<'a> {
    /// The verdict over the repository before the appends.
    pub previous: &'a RepositoryShortlist,
    /// Indices of pairs whose source or target column changed.
    pub changed: &'a [usize],
}

/// Re-shortlists `repository` after an append, re-signing **only** the
/// changed and new pairs and carrying every unchanged pair's evidence
/// forward from `delta.previous`:
///
/// * unchanged ranked / budget-cut pairs reuse their recorded
///   (shared, overlap, fingerprint) — no corpus access at all;
/// * unchanged *pruned* pairs stay pruned (their columns did not change,
///   so the proof of anchor disjointness still holds);
/// * unchanged signature-failure pairs stay conservatively retained (the
///   failure is sticky in the corpus until evicted — exactly what a full
///   re-run against the same corpus would see).
///
/// Re-ranking, re-pruning, and the `top_k` cut then run through the same
/// serial pass as [`shortlist_repository`], so the result is
/// **bit-identical** to a full shortlist of the final repository (same
/// corpus, same config — the differential suite proves it); only the
/// signing work is O(changed) instead of O(repository).
///
/// # Panics
///
/// Panics if `config` disagrees with the corpus's normalize options, or if
/// an unchanged index is absent from every bucket of `delta.previous`
/// (an incomplete `changed` list — the carry-forward would be unsound).
pub fn shortlist_repository_delta(
    repository: &[ColumnPair],
    corpus: &GramCorpus,
    config: &DiscoveryConfig,
    delta: ShortlistDelta<'_>,
) -> RepositoryShortlist {
    assert_eq!(
        corpus.options(),
        &config.normalize,
        "discovery corpus must normalize like the discovery config"
    );
    let changed: FxHashSet<usize> = delta.changed.iter().copied().collect();
    let mut carried: FxHashMap<usize, PairEvidence> = FxHashMap::default();
    for entry in delta.previous.ranked.iter().chain(&delta.previous.pruned_by_budget) {
        carried.insert(
            entry.index,
            PairEvidence {
                shared: entry.shared_anchors,
                overlap: entry.estimated_overlap,
                fingerprint: entry.fingerprint,
                failed: entry.signature_failed,
            },
        );
    }
    let pruned_before: FxHashSet<usize> =
        delta.previous.pruned.iter().map(|entry| entry.index).collect();

    let dispositions: Vec<PairDisposition> = repository
        .iter()
        .enumerate()
        .map(|(index, pair)| {
            if changed.contains(&index) || index >= delta.previous.considered {
                PairDisposition::Scored(sign_pair(corpus, pair, config))
            } else if let Some(&evidence) = carried.get(&index) {
                PairDisposition::Scored(evidence)
            } else if pruned_before.contains(&index) {
                PairDisposition::StillPruned
            } else {
                panic!(
                    "shortlist delta: pair {index} is neither changed nor present \
                     in the previous shortlist — incomplete changed list?"
                );
            }
        })
        .collect();
    assemble_shortlist(repository, dispositions, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tjoin_text::ColumnStats;

    fn sig(rows: &[&str]) -> Arc<ColumnSignature> {
        let rows: Vec<String> = rows.iter().map(|r| r.to_lowercase()).collect();
        let stats = ColumnStats::build(&rows, 4, 8);
        Arc::new(ColumnSignature::build(rows.as_slice(), &stats, 4))
    }

    fn cfg() -> DiscoveryConfig {
        DiscoveryConfig { n_max: 8, ..DiscoveryConfig::default() }
    }

    fn pair(name: &str, source: &[&str], target: &[&str]) -> ColumnPair {
        ColumnPair {
            name: name.to_string(),
            source: source.iter().map(|s| s.to_string()).collect(),
            target: target.iter().map(|s| s.to_string()).collect(),
            golden: Vec::new(),
        }
    }

    #[test]
    fn index_matches_reference_on_a_mixed_repository() {
        let sources = vec![
            sig(&["davood rafiei", "mario nascimento"]),
            sig(&["completely different content"]),
            sig(&[]),
        ];
        let targets = vec![
            sig(&["drafiei", "mnascimento"]),
            sig(&["davood", "mario"]),
            sig(&["zzzz yyyy xxxx"]),
        ];
        let fast = discover(&sources, &targets, &cfg());
        let slow = discover_reference(&sources, &targets, &cfg());
        assert_eq!(fast, slow);
        assert_eq!(fast.considered, 9);
        assert!(fast.pruned() > 0, "disjoint combos must be pruned");
        for candidate in &fast.candidates {
            assert!(candidate.shared_anchors >= 1);
        }
    }

    #[test]
    fn rank_is_deterministic_and_overlap_ordered() {
        let sources = vec![sig(&["shared-anchor-text plus lots of extra grams here"])];
        let targets = vec![
            sig(&["shared-anchor-text plus lots of extra grams here"]),
            sig(&["shared-anchor-text"]),
        ];
        let shortlist = discover(&sources, &targets, &cfg());
        assert_eq!(shortlist.candidates.len(), 2);
        // The identical column shares every gram; it must outrank the
        // partial overlap.
        assert_eq!(shortlist.candidates[0].target, 0);
        assert!(
            shortlist.candidates[0].estimated_overlap
                >= shortlist.candidates[1].estimated_overlap
        );
    }

    #[test]
    fn top_k_caps_the_shortlist() {
        let sources = vec![sig(&["aaaa bbbb cccc dddd"])];
        let targets = vec![
            sig(&["aaaa bbbb cccc dddd"]),
            sig(&["aaaa bbbb"]),
            sig(&["aaaa"]),
        ];
        let capped = discover(&sources, &targets, &cfg().with_top_k(1));
        assert_eq!(capped.candidates.len(), 1);
        assert_eq!(capped.candidates[0].target, 0);
        assert_eq!(capped.pruned(), 2);
    }

    #[test]
    fn empty_inputs_are_degenerate_not_fatal() {
        let none: Vec<Arc<ColumnSignature>> = Vec::new();
        let some = vec![sig(&["abcdef"])];
        assert_eq!(discover(&none, &some, &cfg()).considered, 0);
        assert_eq!(discover(&some, &none, &cfg()).candidates.len(), 0);
        assert_eq!(discover(&none, &none, &cfg()).pruning_ratio(), 0.0);
    }

    #[test]
    fn shortlist_repository_prunes_disjoint_pairs_only() {
        let repository = vec![
            pair("joinable", &["davood rafiei"], &["drafiei"]),
            pair("disjoint", &["aaaaaaaa"], &["bbbbbbbb"]),
            pair("identical", &["mario nascimento"], &["mario nascimento"]),
        ];
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let config = DiscoveryConfig { n_max: 20, ..DiscoveryConfig::default() };
        let shortlist = shortlist_repository(&repository, &corpus, &config);
        assert_eq!(shortlist.considered, 3);
        assert_eq!(shortlist.pruned.len(), 1);
        assert_eq!(shortlist.pruned[0].name, "disjoint");
        assert!(shortlist.pruned_by_budget.is_empty());
        let names: Vec<&str> = shortlist.ranked.iter().map(|s| s.name.as_str()).collect();
        // The identical pair shares everything and must outrank the
        // partial-overlap pair.
        assert_eq!(names, vec!["identical", "joinable"]);
        assert!((shortlist.pruning_ratio() - 1.0 / 3.0).abs() < 1e-12);
        // Thread-invariance of the signing pass.
        for threads in [2, 4] {
            let threaded = shortlist_repository(
                &repository,
                &GramCorpus::new(NormalizeOptions::default()),
                &config.clone().with_threads(threads),
            );
            assert_eq!(threaded, shortlist);
        }
    }

    #[test]
    fn shortlist_repository_warm_pass_hits_the_signature_cache() {
        let repository = vec![
            pair("a", &["davood rafiei"], &["drafiei"]),
            pair("b", &["davood rafiei"], &["mnascimento"]),
        ];
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let config = DiscoveryConfig::paper_default();
        let cold = shortlist_repository(&repository, &corpus, &config);
        let built = corpus.stats();
        // 3 distinct columns (the source is shared): 3 signature builds.
        assert_eq!(built.signatures_built, 3);
        let warm = shortlist_repository(&repository, &corpus, &config);
        assert_eq!(warm, cold);
        let hits = corpus.stats();
        assert_eq!(hits.signatures_built, 3, "warm pass builds nothing");
        assert!(hits.signature_hits >= 4, "warm pass is served from cache");
    }

    /// An injected signature-build failure must *retain* every affected
    /// pair (discovery prunes only what it can prove) and report the
    /// failure through the corpus counters.
    #[test]
    #[cfg(feature = "fault-injection")]
    fn injected_signature_failures_retain_conservatively() {
        use tjoin_text::fault::with_pair_scope;
        use tjoin_text::{FaultKind, FaultPlan, FaultSite};
        let repository = vec![
            pair("joinable", &["davood rafiei"], &["drafiei"]),
            pair("disjoint", &["aaaaaaaa"], &["bbbbbbbb"]),
        ];
        let corpus = GramCorpus::new(NormalizeOptions::default());
        // Unlimited fire budget: every signature build inside the scope
        // fails, exhausting the retry policy into a sticky failure.
        let plan =
            FaultPlan::new().inject(0, FaultSite::CorpusSignatureBuild, FaultKind::Panic);
        let config = DiscoveryConfig::paper_default(); // threads = 1: in-scope builds
        let faulted =
            with_pair_scope(&plan, 0, || shortlist_repository(&repository, &corpus, &config));
        assert_eq!(faulted.ranked.len(), 2, "failed signatures retain every pair");
        assert!(faulted.ranked.iter().all(|entry| entry.signature_failed));
        assert!(faulted.pruned.is_empty());
        assert!(corpus.stats().signatures_failed > 0);
        // The failures are sticky, so a fault-free rerun on the same corpus
        // still retains; a fresh corpus prunes the disjoint pair again.
        let sticky = shortlist_repository(&repository, &corpus, &config);
        assert_eq!(sticky.ranked.len(), 2);
        let fresh = shortlist_repository(
            &repository,
            &GramCorpus::new(NormalizeOptions::default()),
            &config,
        );
        assert_eq!(fresh.pruned.len(), 1);
    }

    #[test]
    fn tie_heavy_top_k_cut_selects_by_content_not_position() {
        // Four pairs of identical single-cell columns, all the same
        // length: every pair scores overlap 1.0 with the same anchor
        // count — a pure MinHash tie group. A top_k cut through it must
        // select the same *content* no matter how the repository is
        // ordered; before the fingerprint tie-break, the positional key
        // made the cut an accident of input order.
        let cells = ["abcdefgh-1", "abcdefgh-2", "abcdefgh-3", "abcdefgh-4"];
        let forward: Vec<ColumnPair> =
            cells.iter().map(|c| pair(c, &[c], &[c])).collect();
        let reversed: Vec<ColumnPair> = forward.iter().rev().cloned().collect();
        let config = DiscoveryConfig { n_max: 8, top_k: Some(2), ..DiscoveryConfig::default() };

        let cut_names = |repo: &[ColumnPair]| -> Vec<String> {
            let shortlist =
                shortlist_repository(repo, &GramCorpus::new(NormalizeOptions::default()), &config);
            assert_eq!(shortlist.ranked.len(), 2);
            assert_eq!(shortlist.pruned_by_budget.len(), 2);
            let scores: Vec<(f64, usize)> = shortlist
                .ranked
                .iter()
                .chain(&shortlist.pruned_by_budget)
                .map(|entry| (entry.estimated_overlap, entry.shared_anchors))
                .collect();
            assert!(scores.windows(2).all(|w| w[0] == w[1]), "all four pairs must tie");
            let fingerprints: Vec<u64> =
                shortlist.ranked.iter().map(|entry| entry.fingerprint).collect();
            assert!(fingerprints.windows(2).all(|w| w[0] < w[1]), "ties order by fingerprint");
            shortlist.ranked.iter().map(|entry| entry.name.clone()).collect()
        };
        assert_eq!(
            cut_names(&forward),
            cut_names(&reversed),
            "a tie-group cut must be input-order invariant"
        );
    }

    #[test]
    fn tie_heavy_cross_product_cut_is_order_invariant() {
        // Same property on the signature-level path: identical source and
        // target sets in two orders, top_k smaller than the tie group.
        let cells = ["abcdefgh-1", "abcdefgh-2", "abcdefgh-3"];
        let forward: Vec<Arc<ColumnSignature>> = cells.iter().map(|c| sig(&[c])).collect();
        let reversed: Vec<Arc<ColumnSignature>> = forward.iter().rev().cloned().collect();
        let config = DiscoveryConfig { n_max: 8, top_k: Some(4), ..DiscoveryConfig::default() };
        let fingerprints = |shortlist: &Shortlist| -> Vec<u64> {
            shortlist.candidates.iter().map(|c| c.fingerprint).collect()
        };
        let fwd = discover(&forward, &forward, &config);
        let rev = discover(&reversed, &reversed, &config);
        assert_eq!(
            fingerprints(&fwd),
            fingerprints(&rev),
            "the cut must keep the same pair content in both orders"
        );
        assert_eq!(fwd, discover_reference(&forward, &forward, &config));
    }

    #[test]
    fn shortlist_delta_is_bit_identical_to_full_rebuild() {
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let config = DiscoveryConfig { n_max: 8, ..DiscoveryConfig::default() };
        let before = vec![
            pair("joinable", &["davood rafiei", "mario nascimento"], &["drafiei"]),
            pair("disjoint", &["aaaaaaaa"], &["bbbbbbbb"]),
            pair("growing", &["michael bowling"], &["mbowling"]),
        ];
        let previous = shortlist_repository(&before, &corpus, &config);
        assert_eq!(previous.pruned.len(), 1);

        // Pair 2's source gains a row; a brand-new pair arrives at the end.
        let mut after = before.clone();
        after[2].source.push("denilson barbosa".to_string());
        after.push(pair("new", &["jorg sander"], &["jsander"]));

        let delta = shortlist_repository_delta(
            &after,
            &corpus,
            &config,
            ShortlistDelta { previous: &previous, changed: &[2] },
        );
        let full =
            shortlist_repository(&after, &GramCorpus::new(NormalizeOptions::default()), &config);
        assert_eq!(delta, full, "delta shortlist must equal a from-scratch rebuild");

        // The carry-forward really skipped re-signing: only the changed
        // pair's grown source and the new pair's two columns are signed
        // beyond the first pass (the target of pair 2 is a cache hit).
        let counters = corpus.stats();
        assert_eq!(counters.signatures_built, 6 + 3, "6 cold columns + 3 delta builds");
    }

    #[test]
    fn shortlist_delta_with_top_k_recuts_against_carried_scores() {
        // A budget-cut pair must displace an unchanged ranked pair when an
        // append raises its score past the leader's — which requires the
        // cut list to carry its evidence forward and the leader's carried
        // score to re-enter the same rank pass.
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let config = DiscoveryConfig { n_max: 8, top_k: Some(1), ..DiscoveryConfig::default() };
        let before = vec![
            pair("leader", &["abcdefghij"], &["abcdefghij"]),
            pair("runner-up", &["qrstuvwxyz"], &["qrstuvwx"]),
        ];
        let previous = shortlist_repository(&before, &corpus, &config);
        assert_eq!(previous.ranked[0].name, "leader");
        assert_eq!(previous.pruned_by_budget.len(), 1);
        assert_eq!(previous.pruned_by_budget[0].name, "runner-up");

        // Both runner-up columns gain a long shared row: its shared-gram
        // estimate grows well past the unchanged leader's.
        let mut after = before.clone();
        after[1].source.push("0123456789012345".to_string());
        after[1].target.push("0123456789012345".to_string());
        let delta = shortlist_repository_delta(
            &after,
            &corpus,
            &config,
            ShortlistDelta { previous: &previous, changed: &[1] },
        );
        let full =
            shortlist_repository(&after, &GramCorpus::new(NormalizeOptions::default()), &config);
        assert_eq!(delta, full);
        assert_eq!(delta.ranked[0].name, "runner-up", "the cut re-ranks on fresh scores");
        assert_eq!(delta.pruned_by_budget[0].name, "leader", "the old leader is cut");
    }

    #[test]
    #[should_panic(expected = "incomplete changed list")]
    fn shortlist_delta_rejects_unaccounted_pairs() {
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let config = DiscoveryConfig { n_max: 8, ..DiscoveryConfig::default() };
        let repo = vec![pair("a", &["davood rafiei"], &["drafiei"])];
        let previous = shortlist_repository(&repo, &corpus, &config);
        // Lie about the previous verdict's coverage: a two-pair repository
        // against a one-pair history with an empty changed list.
        let bigger = vec![repo[0].clone(), pair("b", &["mario"], &["mario"])];
        let mut previous = previous;
        previous.considered = 2;
        let _ = shortlist_repository_delta(
            &bigger,
            &corpus,
            &config,
            ShortlistDelta { previous: &previous, changed: &[] },
        );
    }

    #[test]
    fn retain_all_keeps_input_order() {
        let repository = vec![
            pair("x", &["a"], &["b"]),
            pair("y", &["c"], &["d"]),
        ];
        let all = RepositoryShortlist::retain_all(&repository);
        assert_eq!(all.ranked.len(), 2);
        assert_eq!(all.ranked[0].name, "x");
        assert_eq!(all.ranked[1].name, "y");
        assert_eq!(all.pruning_ratio(), 0.0);
    }
}
