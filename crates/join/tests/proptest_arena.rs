//! Acceptance gate for the columnar-arena hot path: matcher, equi-join, and
//! batch outputs on arena-backed columns must be bit-identical — same pairs,
//! same order — to the retained `Vec<String>` reference representation at
//! {1, 2, 4} threads.
//!
//! Four legs:
//!
//! * the per-call arena matcher (`find_candidates_arena`) vs
//!   `tjoin_matching::reference::find_candidates_reference` on the same rows;
//! * the corpus-backed arena matcher (`try_find_candidates_arena` against a
//!   shared `GramCorpus`) vs the same oracle — and vs the `Vec<String>`
//!   corpus path, which must intern to the same entries;
//! * the arena-backed parallel equi-join vs
//!   `tjoin_join::reference::equi_join_reference`;
//! * the batch runner over pairs round-tripped through `ArenaPair`.
//!
//! Row shapes reuse the differential-suite mix (multi-byte UTF-8, empties,
//! sub-`n_min` rows, duplicate fan-out, exact copies, gibberish) — the
//! places where arena offset arithmetic or shared-slice scanning could
//! diverge from per-cell owned strings.

use proptest::prelude::*;
use tjoin_datasets::ColumnPair;
use tjoin_join::reference::equi_join_reference;
use tjoin_join::{BatchJoinRunner, JoinPipeline, JoinPipelineConfig};
use tjoin_matching::reference::find_candidates_reference;
use tjoin_matching::{NGramMatcher, NGramMatcherConfig};
use tjoin_text::GramCorpus;
use tjoin_units::{Transformation, Unit};

/// One generated row: `(source_value, target_value)`. The `kind` selects a
/// row shape; the `seed` varies its content deterministically.
fn row_from(kind: u8, seed: u64) -> (String, String) {
    let a = seed % 50;
    let b = (seed / 50) % 37;
    match kind % 9 {
        0 => (format!("last{a:02}, first{b:02}"), format!("f{b:02} last{a:02}")),
        1 => (format!("name{a:02}, x{b:02}"), format!("x{b:02} name{a:02} common")),
        // Source row shorter than the default n_min = 4.
        2 => ("ab".into(), format!("f{b:02} last{a:02}")),
        3 => (String::new(), format!("t{a:02}")),
        4 => (format!("last{a:02}, first{b:02}"), String::new()),
        // Duplicate-prone target (many-to-many fan-out).
        5 => (format!("dup{:02}, val", seed % 4), format!("dup{:02}", seed % 4)),
        6 => (format!("last{a:02}, first{b:02}"), format!("zz-{:04}-qq", seed % 10_000)),
        // Multi-byte UTF-8 rows (arena offsets must stay char-aligned).
        7 => (format!("Ωμέγα{a:02}, πρώτο{b:02}"), format!("π{b:02} ωμέγα{a:02}")),
        _ => (format!("same value {a:02}"), format!("same value {a:02}")),
    }
}

fn build_pair(specs: &[(u8, u64)]) -> ColumnPair {
    let mut source = Vec::with_capacity(specs.len());
    let mut target = Vec::with_capacity(specs.len());
    for &(kind, seed) in specs {
        let (s, t) = row_from(kind, seed);
        source.push(s);
        target.push(t);
    }
    ColumnPair::aligned("proptest-arena", source, target)
}

fn join_transformations() -> Vec<Transformation> {
    vec![
        Transformation::new(vec![
            Unit::split_substr(' ', 1, 0, 1),
            Unit::literal(" "),
            Unit::split(',', 0),
        ]),
        Transformation::single(Unit::split(',', 0)),
        Transformation::single(Unit::substr(0, 6)),
        Transformation::new(vec![Unit::substr(0, 1), Unit::literal(" "), Unit::split(',', 0)]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The per-call arena matcher is bit-identical to the size-major
    /// `Vec<String>` oracle at every thread count.
    #[test]
    fn arena_matcher_matches_reference(
        specs in prop::collection::vec((0u8..9, 0u64..1_000_000), 0..24),
        cap_raw in 0usize..7,
    ) {
        let pair = build_pair(&specs);
        let arena_pair = pair.to_arena().expect("test columns fit u32 space");
        let config = NGramMatcherConfig {
            max_matches_per_representative: (cap_raw > 0).then_some(cap_raw),
            ..NGramMatcherConfig::default()
        };
        let oracle = find_candidates_reference(&config, &pair);
        for threads in [1usize, 2, 4] {
            let matcher = NGramMatcher::new(config.clone().with_threads(threads));
            let found = matcher.find_candidates_arena(&arena_pair);
            prop_assert_eq!(&found, &oracle, "arena matcher diverged at {} threads", threads);
        }
    }

    /// The corpus-backed arena matcher equals the oracle AND the
    /// `Vec<String>` corpus path: both representations of the same cells
    /// intern to the same corpus entries and produce identical matches.
    #[test]
    fn corpus_arena_matcher_matches_reference_and_vec_path(
        specs in prop::collection::vec((0u8..9, 0u64..1_000_000), 0..20),
    ) {
        let pair = build_pair(&specs);
        let arena_pair = pair.to_arena().expect("test columns fit u32 space");
        let config = NGramMatcherConfig::default();
        let oracle = find_candidates_reference(&config, &pair);
        for threads in [1usize, 2, 4] {
            let matcher = NGramMatcher::new(config.clone().with_threads(threads));
            let corpus = GramCorpus::new(config.normalize);
            let via_vec = matcher.find_candidates_in(&pair, &corpus);
            let via_arena = matcher
                .try_find_candidates_arena(&arena_pair, Some(&corpus), None)
                .expect("corpus scan succeeds on test data");
            prop_assert_eq!(&via_vec, &oracle, "vec corpus path diverged at {} threads", threads);
            prop_assert_eq!(&via_arena, &oracle, "arena corpus path diverged at {} threads", threads);
            // Same cells through both representations intern to the same
            // entries: 4 lookups (vec + arena, source + target) against 1
            // distinct column when source == target by content, else 2.
            let distinct = if tjoin_text::column_fingerprint(&pair.source)
                == tjoin_text::column_fingerprint(&pair.target)
            {
                1
            } else {
                2
            };
            let stats = corpus.stats();
            prop_assert_eq!(stats.columns_interned, distinct);
            prop_assert_eq!(stats.column_hits, 4 - distinct);
        }
    }

    /// The arena-backed parallel equi-join is bit-identical to the retained
    /// owned-string-keyed oracle at every thread count, and `ArenaPair`
    /// round-trips the column pair it was built from.
    #[test]
    fn arena_equi_join_matches_reference(
        specs in prop::collection::vec((0u8..9, 0u64..1_000_000), 0..32),
    ) {
        let pair = build_pair(&specs);
        let arena_pair = pair.to_arena().expect("test columns fit u32 space");
        prop_assert_eq!(&arena_pair.to_column_pair(), &pair);

        let transformations = join_transformations();
        let refs: Vec<&Transformation> = transformations.iter().collect();
        let base = JoinPipelineConfig::paper_default();
        let oracle = equi_join_reference(&pair, refs.iter().copied(), &base.synthesis.normalize);
        for threads in [1usize, 2, 4] {
            let pipeline = JoinPipeline::new(base.clone().with_threads(threads));
            let predicted = pipeline.equi_join(&pair, refs.iter().copied());
            prop_assert_eq!(&predicted, &oracle, "equi-join diverged at {} threads", threads);
        }
    }

    /// The batch runner over pairs round-tripped through `ArenaPair` is
    /// thread-invariant and equal to the batch over the original pairs.
    #[test]
    fn batch_over_arena_roundtrip_matches_original(
        specs in prop::collection::vec((0u8..9, 0u64..1_000_000), 1..12),
    ) {
        let pair = build_pair(&specs);
        let roundtripped = pair.to_arena().expect("fits").to_column_pair();
        let repository = vec![pair, roundtripped];
        let config = JoinPipelineConfig::paper_default();
        let baseline = BatchJoinRunner::new(config.clone(), 1).run(&repository);
        prop_assert_eq!(
            &baseline.reports[0].outcome.predicted_pairs,
            &baseline.reports[1].outcome.predicted_pairs
        );
        prop_assert_eq!(&baseline.reports[0].outcome.metrics, &baseline.reports[1].outcome.metrics);
        for threads in [2usize, 4] {
            let parallel = BatchJoinRunner::new(config.clone(), threads).run(&repository);
            for (serial, threaded) in baseline.reports.iter().zip(&parallel.reports) {
                prop_assert_eq!(
                    &serial.outcome.predicted_pairs, &threaded.outcome.predicted_pairs,
                    "batch diverged at {} threads", threads
                );
                prop_assert_eq!(&serial.outcome.metrics, &threaded.outcome.metrics);
            }
        }
    }
}
