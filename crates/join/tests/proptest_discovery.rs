//! Differential suite for signature-shortlist discovery.
//!
//! Across random generated repositories (3–6 pairs × 8–16 rows) × decoy
//! fractions {0, 0.25, 0.5, 0.75} × {1, 2, 4} threads (runner and
//! signature-pass alike), three invariants are proven against retained
//! oracles:
//!
//! * **Shortlist recall is 1.0.** Every pair the full brute-force
//!   all-pairs batch run can join (non-empty predicted pairs) appears in
//!   the shortlist — the anchor-pruning soundness argument of
//!   `tjoin-discovery`, checked differentially rather than assumed.
//! * **The shortlist is deterministic and thread-invariant.** The same
//!   repository shortlists identically at every thread count and across
//!   reruns — ranked order, pruned set, and budget cuts all equal.
//! * **`discover_and_run` is the plain runner on the shortlist.** Its
//!   batch outcome is bit-identical to `BatchJoinRunner::run` over the
//!   ranked pair list, and the indexed signature scorer (`discover`) is
//!   bit-identical to the brute-force pairwise oracle
//!   (`discover_reference`) on the repository's column signatures.

use proptest::prelude::*;
use tjoin_datasets::{ColumnPair, RepositoryConfig};
use tjoin_discovery::{corpus_signature, discover, discover_reference};
use tjoin_join::{
    BatchJoinOutcome, BatchJoinRunner, DiscoveryConfig, JoinPipelineConfig, RepositoryShortlist,
};
use tjoin_text::{GramCorpus, NormalizeOptions};

/// Asserts two batch outcomes carry identical results: same report order,
/// same per-pair predicted pairs / metrics / candidate counts /
/// transformation sets, same aggregate metrics. (Wall-clock fields and
/// scheduling counters are measurements, not results, and are exempt.)
fn assert_outcomes_identical(a: &BatchJoinOutcome, b: &BatchJoinOutcome, context: &str) {
    assert_eq!(a.reports.len(), b.reports.len(), "{context}: report count");
    assert_eq!(a.faults, b.faults, "{context}: fault tallies");
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.name, rb.name, "{context}: report order");
        assert_eq!(ra.status, rb.status, "{context}: status of {}", ra.name);
        assert_eq!(
            ra.outcome.predicted_pairs, rb.outcome.predicted_pairs,
            "{context}: predicted pairs of {}",
            ra.name
        );
        assert_eq!(ra.outcome.metrics, rb.outcome.metrics, "{context}: metrics of {}", ra.name);
        assert_eq!(
            ra.outcome.candidate_pairs, rb.outcome.candidate_pairs,
            "{context}: candidates of {}",
            ra.name
        );
        assert_eq!(
            ra.outcome.transformations, rb.outcome.transformations,
            "{context}: transformations of {}",
            ra.name
        );
    }
    assert_eq!(a.metrics.micro, b.metrics.micro, "{context}: micro metrics");
    assert_eq!(a.metrics.macro_f1, b.metrics.macro_f1, "{context}: macro F1");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn shortlist_recall_is_one_and_discover_and_run_matches_the_plain_runner(
        seed in 0u64..1_000_000,
        pairs in 3usize..7,
        rows in 8usize..17,
        decoy_choice in 0usize..4,
    ) {
        let decoys = [0.0, 0.25, 0.5, 0.75][decoy_choice];
        let repository = RepositoryConfig::new(pairs, rows).with_decoys(decoys).generate(seed);
        let config = JoinPipelineConfig::paper_default();

        // Brute-force all-pairs oracle: the full pipeline over EVERY pair.
        // A pair is truly joinable when that run predicts row pairs for it.
        let all_pairs = BatchJoinRunner::new(config.clone(), 2).run(&repository);
        let joinable: Vec<&str> = all_pairs
            .reports
            .iter()
            .filter(|r| !r.outcome.predicted_pairs.is_empty())
            .map(|r| r.name.as_str())
            .collect();

        let mut reference: Option<RepositoryShortlist> = None;
        for threads in [1usize, 2, 4] {
            let runner = BatchJoinRunner::new(config.clone(), threads);
            let discovery = DiscoveryConfig::paper_default().with_threads(threads);
            let discovered = runner.discover_and_run(&repository, &discovery);

            // Recall 1.0: no pipeline-joinable pair may be pruned.
            for name in &joinable {
                prop_assert!(
                    discovered.shortlist.ranked.iter().any(|entry| entry.name == *name),
                    "pipeline-joinable pair {} pruned at {} threads (seed {})",
                    name, threads, seed
                );
            }
            // Fault-free runs never fall back to conservative retention.
            prop_assert!(
                discovered.shortlist.ranked.iter().all(|entry| !entry.signature_failed),
                "unexpected signature failure at {} threads", threads
            );

            // The discovered outcome is the plain runner on the shortlist.
            let sublist: Vec<ColumnPair> = discovered
                .shortlist
                .ranked
                .iter()
                .map(|entry| repository[entry.index].clone())
                .collect();
            let plain = runner.run(&sublist);
            assert_outcomes_identical(
                &discovered.outcome,
                &plain,
                &format!("discover_and_run vs plain run at {threads} threads (seed {seed})"),
            );

            // Shortlist determinism and thread invariance.
            match &reference {
                None => reference = Some(discovered.shortlist.clone()),
                Some(reference) => prop_assert_eq!(
                    &discovered.shortlist, reference,
                    "shortlist diverged at {} threads (seed {})", threads, seed
                ),
            }
        }

        // The indexed scorer is bit-identical to the brute-force pairwise
        // oracle on the repository's own column signatures.
        let corpus = GramCorpus::new(NormalizeOptions::default());
        let discovery = DiscoveryConfig::paper_default();
        let sources: Vec<_> = repository
            .iter()
            .map(|p| corpus_signature(&corpus, &p.source, &discovery).expect("fault-free build"))
            .collect();
        let targets: Vec<_> = repository
            .iter()
            .map(|p| corpus_signature(&corpus, &p.target, &discovery).expect("fault-free build"))
            .collect();
        prop_assert_eq!(
            discover(&sources, &targets, &discovery),
            discover_reference(&sources, &targets, &discovery),
            "indexed discovery diverged from the brute-force oracle (seed {})", seed
        );
    }
}
