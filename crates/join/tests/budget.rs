//! Budget-degradation suite for the batch layer (no features required):
//! cap-based budgets are charged at pipeline admission, so which pairs
//! overrun is a pure function of the input — deterministic, thread-
//! invariant, and identical between the work-stealing driver and the
//! static-split oracle. Over-budget pairs degrade to `TimedOut` with their
//! completed-phase data intact; in-budget neighbors are untouched.

use tjoin_datasets::ColumnPair;
use tjoin_join::{BatchJoinRunner, JoinPipelineConfig, PairPhase, PairStatus};
use tjoin_text::{BudgetExceeded, RunBudget};

/// Three joinable pairs of known sizes: 4, 8, and 16 rows per side.
fn sized_repository() -> Vec<ColumnPair> {
    [4usize, 8, 16]
        .into_iter()
        .map(|rows| {
            let source: Vec<String> =
                (0..rows).map(|i| format!("last{i:02}r{rows}, first{i:02}")).collect();
            let target: Vec<String> =
                (0..rows).map(|i| format!("f{i:02} last{i:02}r{rows}")).collect();
            ColumnPair::aligned(format!("rows-{rows:02}"), source, target)
        })
        .collect()
}

#[test]
fn row_cap_overruns_are_deterministic_and_thread_invariant() {
    let repository = sized_repository();
    // 20 admitted rows per pair (source + target): 4- and 8-row pairs fit
    // (8 and 16 charged), the 16-row pair (32 charged) does not.
    let budget = RunBudget::unlimited().with_row_cap(20);
    let oracle = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), 1)
        .with_budget(budget)
        .run_static(&repository);
    assert_eq!(oracle.faults.ok_pairs, 2);
    assert_eq!(oracle.faults.timed_out_pairs, 1);
    for threads in [1usize, 2, 4] {
        for run in [
            BatchJoinRunner::new(JoinPipelineConfig::paper_default(), threads)
                .with_budget(budget)
                .run(&repository),
            BatchJoinRunner::new(JoinPipelineConfig::paper_default(), threads)
                .with_budget(budget)
                .run_static(&repository),
        ] {
            assert_eq!(run.faults, oracle.faults, "at {threads} threads");
            for (rr, ro) in run.reports.iter().zip(&oracle.reports) {
                assert_eq!(rr.name, ro.name);
                assert_eq!(rr.status, ro.status, "{} at {threads} threads", rr.name);
                assert_eq!(rr.outcome.predicted_pairs, ro.outcome.predicted_pairs);
                assert_eq!(rr.outcome.metrics, ro.outcome.metrics);
            }
        }
    }
    // The overrun is attributed to admission (before matching ran) with
    // the rows axis, and carries the empty-phases outcome.
    let big = &oracle.reports[2];
    assert_eq!(
        big.status,
        PairStatus::TimedOut { phase: PairPhase::Matching, exceeded: BudgetExceeded::Rows }
    );
    assert_eq!(big.outcome.candidate_pairs, 0);
    assert!(big.outcome.predicted_pairs.is_empty());
    assert!(big.outcome.transformations.transformations.is_empty());
    // In-budget pairs still join.
    assert!(oracle.reports[0].outcome.metrics.f1 > 0.8);
    assert!(oracle.reports[1].outcome.metrics.f1 > 0.8);
}

#[test]
fn byte_cap_overruns_are_deterministic_and_thread_invariant() {
    let repository = sized_repository();
    // The 4-row pair carries ~150 cell bytes; the larger two exceed 400.
    let budget = RunBudget::unlimited().with_byte_cap(400);
    let oracle = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), 1)
        .with_budget(budget)
        .run_static(&repository);
    let expected: Vec<bool> = repository
        .iter()
        .map(|pair| {
            let bytes: usize = pair
                .source
                .iter()
                .chain(pair.target.iter())
                .map(|cell| cell.len())
                .sum();
            bytes as u64 <= 400
        })
        .collect();
    assert!(expected[0], "smallest pair must fit the cap for the test to bite");
    assert!(!expected[2], "largest pair must exceed the cap");
    for threads in [1usize, 2, 4] {
        let run = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), threads)
            .with_budget(budget)
            .run(&repository);
        assert_eq!(run.faults, oracle.faults, "at {threads} threads");
        for (report, fits) in run.reports.iter().zip(&expected) {
            if *fits {
                assert!(report.status.is_ok(), "{}: {:?}", report.name, report.status);
            } else {
                assert_eq!(
                    report.status,
                    PairStatus::TimedOut {
                        phase: PairPhase::Matching,
                        exceeded: BudgetExceeded::Bytes,
                    },
                    "{}",
                    report.name
                );
            }
        }
    }
}

#[test]
fn unlimited_budget_is_bit_identical_to_no_budget() {
    let repository = sized_repository();
    for threads in [1usize, 4] {
        let plain =
            BatchJoinRunner::new(JoinPipelineConfig::paper_default(), threads).run(&repository);
        let budgeted = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), threads)
            .with_budget(RunBudget::unlimited())
            .run(&repository);
        assert_eq!(plain.faults, budgeted.faults);
        for (rp, rb) in plain.reports.iter().zip(&budgeted.reports) {
            assert_eq!(rp.status, rb.status);
            assert_eq!(rp.outcome.predicted_pairs, rb.outcome.predicted_pairs);
            assert_eq!(rp.outcome.metrics, rb.outcome.metrics);
            assert_eq!(rp.outcome.candidate_pairs, rb.outcome.candidate_pairs);
            assert_eq!(rp.outcome.transformations, rb.outcome.transformations);
        }
    }
}

#[test]
fn zero_deadline_degrades_every_pair_without_killing_the_run() {
    let repository = sized_repository();
    let budget = RunBudget::unlimited().with_deadline(std::time::Duration::ZERO);
    for threads in [1usize, 4] {
        let run = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), threads)
            .with_budget(budget)
            .run(&repository);
        assert_eq!(run.faults.timed_out_pairs, repository.len(), "at {threads} threads");
        assert_eq!(run.faults.ok_pairs, 0);
        for report in &run.reports {
            assert!(
                matches!(
                    report.status,
                    PairStatus::TimedOut { exceeded: BudgetExceeded::Deadline, .. }
                ),
                "{}: {:?}",
                report.name,
                report.status
            );
        }
        // Aggregates still computed over the degraded reports.
        assert_eq!(run.metrics.pairs, repository.len());
        assert_eq!(run.metrics.joined_pairs, 0);
    }
}
