//! Differential fault-injection suite for the batch containment layer
//! (compiled only with `--features fault-injection`).
//!
//! The gate: run the work-stealing batch driver under a deterministic
//! [`FaultPlan`] with K injected faults and prove, across random
//! repositories × {1, 2, 4} threads, that
//!
//! * exactly the panic-faulted pairs report [`PairStatus::Failed`] — no
//!   fault ever takes down a neighbor (columns are made pair-unique here,
//!   so sticky corpus failures stay per-pair; the shared-column spillover
//!   semantics get their own targeted test);
//! * every non-faulted pair's outcome is **bit-identical** to the
//!   fault-free static@1 oracle;
//! * the [`BatchFaultStats`] tallies and per-pair statuses are
//!   thread-invariant;
//! * no panic ever escapes `run_with_faults` (every test below returning
//!   normally is the proof — the scheduler re-raises only its own bugs).
//!
//! `PoisonLock` faults are the resilience half: a poisoned report slot or
//! corpus cache lock is *recovered*, so those runs must be entirely `Ok`
//! and bit-identical to the oracle.

use proptest::prelude::*;
use std::collections::HashSet;
use std::time::Duration;
use tjoin_datasets::ColumnPair;
use tjoin_join::{
    BatchJoinOutcome, BatchJoinRunner, JoinPipelineConfig, PairPhase, PairStatus,
};
use tjoin_text::{FaultKind, FaultPlan, FaultSite, RunBudget};

/// Every *pipeline-phase* injection site. `FaultSite::SchedulerTask` is
/// deliberately excluded: it fires outside every guarded phase, so its
/// failures attribute to `PairPhase::Scheduler` rather than the phase the
/// assertions here expect — it gets its own targeted regression test below.
const SITES: [FaultSite; 8] = [
    FaultSite::MatchPhase,
    FaultSite::CorpusColumnBuild,
    FaultSite::CorpusStatsBuild,
    FaultSite::CorpusIndexBuild,
    FaultSite::SynthesisPhase,
    FaultSite::CoverageScan,
    FaultSite::JoinPhase,
    FaultSite::SlotStore,
];

/// Silences the panic output of *injected* panics (they are the point of
/// this suite and would otherwise flood the test log); every other panic —
/// assertion failures included — still reaches the previous hook.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !message.contains("injected panic") && !message.contains("poisoning mutex") {
                previous(info);
            }
        }));
    });
}

/// A joinable `"last, first" -> "f last"` repository whose every value
/// carries its pair index, so no two pairs share a column and a sticky
/// corpus failure can only fail the pair it was injected into.
fn build_repository(seeds: &[u64], rows: usize) -> Vec<ColumnPair> {
    seeds
        .iter()
        .enumerate()
        .map(|(p, &seed)| {
            let mut source = Vec::with_capacity(rows);
            let mut target = Vec::with_capacity(rows);
            for row in 0..rows {
                let s = seed.wrapping_add(row as u64 * 9973);
                let (a, b) = (s % 50, (s / 50) % 37);
                source.push(format!("last{a:02}p{p}, first{b:02}"));
                target.push(format!("f{b:02} last{a:02}p{p}"));
            }
            ColumnPair::aligned(format!("pair-{p:02}"), source, target)
        })
        .collect()
}

/// Asserts a non-faulted report equals the oracle's, bit for bit.
fn assert_report_matches_oracle(run: &BatchJoinOutcome, oracle: &BatchJoinOutcome, i: usize) {
    let (ra, rb) = (&run.reports[i], &oracle.reports[i]);
    assert_eq!(ra.name, rb.name);
    assert_eq!(ra.status, PairStatus::Ok, "{}: unexpected status", ra.name);
    assert_eq!(ra.outcome.predicted_pairs, rb.outcome.predicted_pairs, "{}", ra.name);
    assert_eq!(ra.outcome.metrics, rb.outcome.metrics, "{}", ra.name);
    assert_eq!(ra.outcome.candidate_pairs, rb.outcome.candidate_pairs, "{}", ra.name);
    assert_eq!(ra.outcome.transformations, rb.outcome.transformations, "{}", ra.name);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The differential fault gate (see the module docs).
    #[test]
    fn injected_faults_are_contained_and_neighbors_bit_identical(
        seeds in prop::collection::vec(0u64..1_000_000, 2..6),
        rows in 2usize..8,
        faults in prop::collection::vec((0usize..8, 0usize..8, 0u8..2), 0..6),
    ) {
        quiet_injected_panics();
        let repository = build_repository(&seeds, rows);
        let config = JoinPipelineConfig::paper_default();
        let oracle = BatchJoinRunner::new(config.clone(), 1).run_static(&repository);

        let mut plan = FaultPlan::new();
        let mut used: HashSet<(usize, FaultSite)> = HashSet::new();
        let mut expected_failed: HashSet<usize> = HashSet::new();
        for &(pair_sel, site_sel, kind_sel) in &faults {
            let is_panic = kind_sel == 1;
            let pair = pair_sel % repository.len();
            let site = SITES[site_sel % SITES.len()];
            if !used.insert((pair, site)) {
                continue; // one fault per (pair, site): keep semantics unambiguous
            }
            let kind = if is_panic { FaultKind::Panic } else { FaultKind::PoisonLock };
            plan = plan.inject(pair, site, kind);
            // `fire` never runs at SlotStore (it is a poison-only site), so
            // a Panic there is inert; every other site's Panic fails its
            // pair. PoisonLock anywhere is recovered.
            if is_panic && site != FaultSite::SlotStore {
                expected_failed.insert(pair);
            }
        }

        let mut status_runs = Vec::new();
        for threads in [1usize, 2, 4] {
            let run = BatchJoinRunner::new(config.clone(), threads)
                .run_with_faults(&repository, &plan);
            prop_assert_eq!(run.reports.len(), repository.len());
            prop_assert_eq!(
                run.faults.failed_pairs, expected_failed.len(),
                "tally mismatch at {} threads", threads
            );
            prop_assert_eq!(run.faults.timed_out_pairs, 0);
            prop_assert_eq!(
                run.faults.ok_pairs,
                repository.len() - expected_failed.len()
            );
            for i in 0..repository.len() {
                if expected_failed.contains(&i) {
                    prop_assert!(
                        matches!(run.reports[i].status, PairStatus::Failed(_)),
                        "pair {} should have failed at {} threads, got {:?}",
                        i, threads, run.reports[i].status
                    );
                } else {
                    assert_report_matches_oracle(&run, &oracle, i);
                }
            }
            status_runs.push(
                run.reports.iter().map(|r| r.status.clone()).collect::<Vec<_>>()
            );
        }
        // Statuses — including the deterministic panic messages — cannot
        // depend on the thread count.
        prop_assert_eq!(&status_runs[0], &status_runs[1]);
        prop_assert_eq!(&status_runs[1], &status_runs[2]);
    }
}

/// A panic at each fire site lands in the right phase of the right pair,
/// with the injected message preserved verbatim through containment.
#[test]
fn panic_sites_attribute_to_their_phase() {
    quiet_injected_panics();
    let repository = build_repository(&[11, 22, 33], 4);
    let config = JoinPipelineConfig::paper_default();
    let oracle = BatchJoinRunner::new(config.clone(), 1).run_static(&repository);
    let cases = [
        (FaultSite::MatchPhase, PairPhase::Matching, "injected panic at MatchPhase (pair 1)"),
        (FaultSite::SynthesisPhase, PairPhase::Synthesis, "injected panic at SynthesisPhase"),
        (FaultSite::CoverageScan, PairPhase::Synthesis, "injected panic at CoverageScan"),
        (FaultSite::JoinPhase, PairPhase::Join, "injected panic at JoinPhase"),
        (FaultSite::CorpusColumnBuild, PairPhase::Matching, "corpus column build failed"),
        (FaultSite::CorpusStatsBuild, PairPhase::Matching, "corpus stats build failed"),
        (FaultSite::CorpusIndexBuild, PairPhase::Matching, "corpus index build failed"),
    ];
    for (site, phase, needle) in cases {
        let plan = FaultPlan::new().inject(1, site, FaultKind::Panic);
        for threads in [1usize, 2] {
            let run = BatchJoinRunner::new(config.clone(), threads)
                .run_with_faults(&repository, &plan);
            match &run.reports[1].status {
                PairStatus::Failed(error) => {
                    assert_eq!(error.phase, phase, "{site:?} at {threads} threads");
                    assert!(
                        error.message.contains(needle),
                        "{site:?}: message {:?} missing {:?}",
                        error.message,
                        needle
                    );
                }
                other => panic!("{site:?} at {threads} threads: expected Failed, got {other:?}"),
            }
            assert_report_matches_oracle(&run, &oracle, 0);
            assert_report_matches_oracle(&run, &oracle, 2);
        }
    }
}

/// An injected slow phase plus a deadline degrades that pair to `TimedOut`
/// in the stalled phase; its neighbors (with their own fresh tokens)
/// finish untouched.
#[test]
fn slow_phase_with_deadline_times_out_only_the_stalled_pair() {
    quiet_injected_panics();
    let repository = build_repository(&[5, 7], 4);
    let plan = FaultPlan::new().inject(
        0,
        FaultSite::SynthesisPhase,
        FaultKind::Slow(Duration::from_secs(2)),
    );
    let runner = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), 2)
        .with_budget(RunBudget::unlimited().with_deadline(Duration::from_millis(250)));
    let run = runner.run_with_faults(&repository, &plan);
    match run.reports[0].status {
        PairStatus::TimedOut { phase, exceeded } => {
            assert_eq!(phase, PairPhase::Synthesis);
            assert_eq!(exceeded, tjoin_text::BudgetExceeded::Deadline);
        }
        ref other => panic!("expected TimedOut, got {other:?}"),
    }
    // The stalled pair still carries its completed matching phase.
    assert!(run.reports[0].outcome.candidate_pairs > 0);
    assert!(run.reports[0].outcome.predicted_pairs.is_empty());
    assert!(run.reports[1].status.is_ok());
    assert!(run.reports[1].outcome.metrics.f1 > 0.8);
    assert_eq!(run.faults.timed_out_pairs, 1);
    assert_eq!(run.faults.ok_pairs, 1);
}

/// Poisoned locks — report slots and every corpus cache — are recovered,
/// not fatal: the whole run stays `Ok` and bit-identical to the oracle.
#[test]
fn poisoned_locks_recover_to_a_clean_run() {
    quiet_injected_panics();
    let repository = build_repository(&[3, 13, 31], 5);
    let config = JoinPipelineConfig::paper_default();
    let oracle = BatchJoinRunner::new(config.clone(), 1).run_static(&repository);
    let plan = FaultPlan::new()
        .inject(0, FaultSite::SlotStore, FaultKind::PoisonLock)
        .inject(0, FaultSite::CorpusStatsBuild, FaultKind::PoisonLock)
        .inject(1, FaultSite::CorpusColumnBuild, FaultKind::PoisonLock)
        .inject(2, FaultSite::CorpusIndexBuild, FaultKind::PoisonLock);
    for threads in [2usize, 4] {
        let run = BatchJoinRunner::new(config.clone(), threads)
            .run_with_faults(&repository, &plan);
        assert_eq!(run.faults.failed_pairs, 0, "at {threads} threads");
        assert_eq!(run.faults.ok_pairs, repository.len());
        for i in 0..repository.len() {
            assert_report_matches_oracle(&run, &oracle, i);
        }
    }
}

/// The documented spillover of the shared-corpus design: a column's failed
/// artifact build is *sticky*, so every pair referencing that column fails
/// — deterministically, serially ordered here at one worker. Containment
/// is still per-pair (the run completes; unrelated pairs stay `Ok`).
#[test]
fn sticky_shared_column_failure_fails_every_referencing_pair() {
    quiet_injected_panics();
    let source: Vec<String> = (0..5).map(|i| format!("last{i:02}, first{i:02}")).collect();
    let mut repository: Vec<ColumnPair> = (0..2)
        .map(|p| {
            let target: Vec<String> =
                (0..5).map(|i| format!("f{i:02}.{p} last{i:02}")).collect();
            ColumnPair::aligned(format!("shared-{p}"), source.clone(), target)
        })
        .collect();
    // An unrelated third pair that must not be touched by the spillover.
    repository.extend(build_repository(&[99], 5));
    let plan = FaultPlan::new().inject(0, FaultSite::CorpusStatsBuild, FaultKind::Panic);
    let run = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), 1)
        .run_with_faults(&repository, &plan);
    for i in [0usize, 1] {
        match &run.reports[i].status {
            PairStatus::Failed(error) => {
                assert_eq!(error.phase, PairPhase::Matching, "pair {i}");
                assert!(error.message.contains("corpus stats build failed"), "pair {i}");
            }
            other => panic!("pair {i}: expected sticky Failed, got {other:?}"),
        }
    }
    assert!(run.reports[2].status.is_ok());
    assert_eq!(run.faults.failed_pairs, 2);
    assert_eq!(run.faults.ok_pairs, 1);
}

/// A panic at the scheduler-task site — outside every guarded pipeline
/// phase — is caught by the scheduler backstop: the pair fails with
/// [`PairPhase::Scheduler`] *and* the backstop records elapsed-at-failure
/// in `BatchSchedulerStats::scheduler_failures` (regression: these trips
/// used to carry no timing at all).
#[test]
fn scheduler_task_panic_records_elapsed_at_failure() {
    quiet_injected_panics();
    let repository = build_repository(&[41, 42, 43], 4);
    let config = JoinPipelineConfig::paper_default();
    let oracle = BatchJoinRunner::new(config.clone(), 1).run_static(&repository);
    let plan = FaultPlan::new().inject(1, FaultSite::SchedulerTask, FaultKind::Panic);
    for threads in [1usize, 2, 4] {
        let run =
            BatchJoinRunner::new(config.clone(), threads).run_with_faults(&repository, &plan);
        match &run.reports[1].status {
            PairStatus::Failed(error) => {
                assert_eq!(error.phase, PairPhase::Scheduler, "at {threads} threads");
                assert!(
                    error.message.contains("injected panic at SchedulerTask (pair 1)"),
                    "message {:?}",
                    error.message
                );
            }
            other => panic!("expected Failed at {threads} threads, got {other:?}"),
        }
        // The backstop attributed wall-clock to the trip.
        assert_eq!(run.scheduler.scheduler_failures.len(), 1, "at {threads} threads");
        let failure = run.scheduler.scheduler_failures[0];
        assert_eq!(failure.pair, 1);
        assert!(failure.elapsed < Duration::from_secs(10));
        assert_report_matches_oracle(&run, &oracle, 0);
        assert_report_matches_oracle(&run, &oracle, 2);
    }
    // Several trips are reported sorted by pair index, whatever order the
    // workers hit them in.
    let plan = FaultPlan::new()
        .inject(2, FaultSite::SchedulerTask, FaultKind::Panic)
        .inject(0, FaultSite::SchedulerTask, FaultKind::Panic);
    let run = BatchJoinRunner::new(config.clone(), 4).run_with_faults(&repository, &plan);
    let failed: Vec<usize> =
        run.scheduler.scheduler_failures.iter().map(|f| f.pair).collect();
    assert_eq!(failed, vec![0, 2]);
    // A fault-free run records none.
    let clean = BatchJoinRunner::new(config, 2).run(&repository);
    assert!(clean.scheduler.scheduler_failures.is_empty());
}

/// Panics injected at every site of one pair at once: the first phase to
/// hit wins, exactly one pair fails, and nothing escapes the runner.
#[test]
fn panic_at_every_site_still_fails_exactly_one_pair() {
    quiet_injected_panics();
    let repository = build_repository(&[1, 2, 3, 4], 4);
    let config = JoinPipelineConfig::paper_default();
    let oracle = BatchJoinRunner::new(config.clone(), 1).run_static(&repository);
    let mut plan = FaultPlan::new();
    for site in SITES {
        plan = plan.inject(2, site, FaultKind::Panic);
    }
    for threads in [1usize, 4] {
        let run = BatchJoinRunner::new(config.clone(), threads)
            .run_with_faults(&repository, &plan);
        assert_eq!(run.faults.failed_pairs, 1, "at {threads} threads");
        match &run.reports[2].status {
            PairStatus::Failed(error) => assert_eq!(error.phase, PairPhase::Matching),
            other => panic!("expected Failed, got {other:?}"),
        }
        for i in [0usize, 1, 3] {
            assert_report_matches_oracle(&run, &oracle, i);
        }
    }
}
