//! End-to-end differential oracle suite for the repository-scale matching
//! and join layer.
//!
//! Three production paths are proven bit-identical — same pairs, same order,
//! same metrics — to their retained serial oracles, across randomized
//! column pairs × {1, 2, 4} threads × both matching strategies:
//!
//! * the planned-parallel n-gram matcher vs
//!   `tjoin_matching::reference::find_candidates_reference`;
//! * the parallel fingerprint equi-join vs
//!   `tjoin_join::reference::equi_join_reference`;
//! * the full pipeline (and the batch runner over a generated repository)
//!   vs its own single-threaded run.
//!
//! Generated pairs mix coverable format-family rows with empty values,
//! rows shorter than `n_min`, duplicated target values (many-to-many
//! fan-out), exact source==target copies, and non-coverable gibberish —
//! the shapes where chunk boundaries, dedup order, or fingerprint
//! confirmation could silently diverge.
//!
//! The `#[ignore]`d test at the bottom is the slow repository-scale sweep,
//! run in CI via `cargo test -q -p tjoin-join -- --ignored`.

use proptest::prelude::*;
use tjoin_datasets::{ColumnPair, RepositoryConfig};
use tjoin_join::reference::equi_join_reference;
use tjoin_join::{BatchJoinRunner, JoinPipeline, JoinPipelineConfig, RowMatchingStrategy};
use tjoin_matching::reference::find_candidates_reference;
use tjoin_matching::{NGramMatcher, NGramMatcherConfig};
use tjoin_units::{Transformation, Unit};

/// One generated row: `(source_value, target_value)`. The `kind` selects a
/// row shape; the `seed` varies its content deterministically.
fn row_from(kind: u8, seed: u64) -> (String, String) {
    let a = seed % 50;
    let b = (seed / 50) % 37;
    match kind % 8 {
        // Coverable name-style rows (the matcher/join bread and butter).
        0 => (format!("last{a:02}, first{b:02}"), format!("f{b:02} last{a:02}")),
        // Coverable but with a shared promiscuous token on the target side.
        1 => (format!("name{a:02}, x{b:02}"), format!("x{b:02} name{a:02} common")),
        // Source row shorter than the default n_min = 4.
        2 => ("ab".into(), format!("f{b:02} last{a:02}")),
        // Empty source value.
        3 => (String::new(), format!("t{a:02}")),
        // Empty target value.
        4 => (format!("last{a:02}, first{b:02}"), String::new()),
        // Duplicate-prone target: one of four canned values, so several
        // rows share it (many-to-many fan-out).
        5 => (format!("dup{:02}, val", seed % 4), format!("dup{:02}", seed % 4)),
        // Non-coverable gibberish on the target side.
        6 => (format!("last{a:02}, first{b:02}"), format!("zz-{:04}-qq", seed % 10_000)),
        // Exact copy: source == target.
        _ => (format!("same value {a:02}"), format!("same value {a:02}")),
    }
}

fn build_pair(specs: &[(u8, u64)]) -> ColumnPair {
    let mut source = Vec::with_capacity(specs.len());
    let mut target = Vec::with_capacity(specs.len());
    for &(kind, seed) in specs {
        let (s, t) = row_from(kind, seed);
        source.push(s);
        target.push(t);
    }
    ColumnPair::aligned("proptest", source, target)
}

/// A small transformation vocabulary for the equi-join legs, including
/// programs that never apply and programs with overlapping outputs (the
/// cross-transformation dedup paths).
fn join_transformations() -> Vec<Transformation> {
    vec![
        Transformation::new(vec![
            Unit::split_substr(' ', 1, 0, 1),
            Unit::literal(" "),
            Unit::split(',', 0),
        ]),
        Transformation::single(Unit::split(',', 0)),
        Transformation::single(Unit::substr(0, 6)),
        Transformation::new(vec![Unit::substr(0, 1), Unit::literal(" "), Unit::split(',', 0)]),
        Transformation::single(Unit::split('-', 2)),
        Transformation::new(vec![Unit::literal("f"), Unit::split_substr(' ', 1, 1, 3)]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The planned parallel matcher is bit-identical to the retained
    /// size-major oracle at every thread count.
    #[test]
    fn parallel_matcher_matches_reference(
        specs in prop::collection::vec((0u8..8, 0u64..1_000_000), 0..24),
        cap_raw in 0usize..7,
    ) {
        let pair = build_pair(&specs);
        // 0 means uncapped; otherwise a tight cap of 1..=6.
        let config = NGramMatcherConfig {
            max_matches_per_representative: (cap_raw > 0).then_some(cap_raw),
            ..NGramMatcherConfig::default()
        };
        let oracle = find_candidates_reference(&config, &pair);
        for threads in [1usize, 2, 4] {
            let found = NGramMatcher::new(config.clone().with_threads(threads))
                .find_candidates(&pair);
            prop_assert_eq!(&found, &oracle, "matcher diverged at {} threads", threads);
        }
    }

    /// The parallel fingerprint equi-join is bit-identical to the retained
    /// owned-string-keyed oracle at every thread count.
    #[test]
    fn fingerprint_equi_join_matches_reference(
        specs in prop::collection::vec((0u8..8, 0u64..1_000_000), 0..32),
    ) {
        let pair = build_pair(&specs);
        let transformations = join_transformations();
        let refs: Vec<&Transformation> = transformations.iter().collect();
        let base = JoinPipelineConfig::paper_default();
        let oracle = equi_join_reference(&pair, refs.iter().copied(), &base.synthesis.normalize);
        for threads in [1usize, 2, 4] {
            let pipeline = JoinPipeline::new(base.clone().with_threads(threads));
            let predicted = pipeline.equi_join(&pair, refs.iter().copied());
            prop_assert_eq!(&predicted, &oracle, "equi-join diverged at {} threads", threads);
        }
    }

    /// The full pipeline — matching, synthesis, support filtering,
    /// fingerprint join, metrics — is thread-invariant under both matching
    /// strategies, and its predicted pairs equal the reference equi-join of
    /// its own discovered transformation set.
    #[test]
    fn pipeline_thread_invariant_under_both_strategies(
        specs in prop::collection::vec((0u8..8, 0u64..1_000_000), 1..12),
    ) {
        let pair = build_pair(&specs);
        for matching in [
            RowMatchingStrategy::NGram(NGramMatcherConfig::default()),
            RowMatchingStrategy::Golden,
        ] {
            let base = JoinPipelineConfig {
                matching: matching.clone(),
                ..JoinPipelineConfig::paper_default()
            };
            let baseline = JoinPipeline::new(base.clone()).run(&pair);
            let oracle_join = equi_join_reference(
                &pair,
                baseline.transformations.iter().map(|t| &t.transformation),
                &base.synthesis.normalize,
            );
            prop_assert_eq!(&baseline.predicted_pairs, &oracle_join);
            for threads in [2usize, 4] {
                let outcome = JoinPipeline::new(base.clone().with_threads(threads)).run(&pair);
                prop_assert_eq!(
                    &outcome.predicted_pairs, &baseline.predicted_pairs,
                    "pipeline pairs diverged at {} threads", threads
                );
                prop_assert_eq!(outcome.metrics, baseline.metrics);
                prop_assert_eq!(outcome.candidate_pairs, baseline.candidate_pairs);
            }
        }
    }
}

/// The slow repository-scale sweep (the CI `--ignored` slot): a generated
/// heterogeneous repository driven by the batch runner at {1, 4} threads
/// must reproduce, pair for pair, the per-pair pipeline's outcomes and the
/// two serial oracles.
#[test]
#[ignore]
fn large_repository_batch_sweep_matches_oracles() {
    let repository = RepositoryConfig::new(10, 150).generate(42);
    let config = JoinPipelineConfig::paper_default();

    let baseline = BatchJoinRunner::new(config.clone(), 1).run(&repository);
    let parallel = BatchJoinRunner::new(config.clone(), 4).run(&repository);
    assert_eq!(baseline.reports.len(), repository.len());

    for ((pair, serial), threaded) in repository
        .iter()
        .zip(&baseline.reports)
        .zip(&parallel.reports)
    {
        assert_eq!(serial.name, pair.name);
        assert_eq!(
            serial.outcome.predicted_pairs, threaded.outcome.predicted_pairs,
            "batch diverged across thread budgets on {}",
            pair.name
        );
        assert_eq!(serial.outcome.metrics, threaded.outcome.metrics);

        // Per-pair pipeline reproduces the batch outcome exactly.
        let solo = JoinPipeline::new(config.clone()).run(pair);
        assert_eq!(solo.predicted_pairs, serial.outcome.predicted_pairs, "{}", pair.name);
        assert_eq!(solo.metrics, serial.outcome.metrics);

        // Matcher oracle on the raw pair.
        let matcher_config = NGramMatcherConfig::default();
        let oracle_matches = find_candidates_reference(&matcher_config, pair);
        for threads in [2usize, 4] {
            let found = NGramMatcher::new(matcher_config.clone().with_threads(threads))
                .find_candidates(pair);
            assert_eq!(found, oracle_matches, "matcher diverged on {}", pair.name);
        }

        // Equi-join oracle over the discovered transformation set.
        let oracle_join = equi_join_reference(
            pair,
            solo.transformations.iter().map(|t| &t.transformation),
            &config.synthesis.normalize,
        );
        assert_eq!(solo.predicted_pairs, oracle_join, "join diverged on {}", pair.name);
    }
    assert_eq!(baseline.metrics.micro, parallel.metrics.micro);
    assert!(
        baseline.metrics.joined_pairs >= 6,
        "repository unexpectedly unjoinable: {:?}",
        baseline.metrics
    );
}
