//! Differential suite for the repository-wide gram corpus and the
//! work-stealing batch scheduler.
//!
//! Two invariants are proven against retained oracles, across randomized
//! repositories (optionally skewed toward one dominant pair, optionally
//! sharing one source column across every pair after the first — the two
//! compose, so a dominant pair rides alongside corpus-contending peers) ×
//! {1, 2, 4} threads:
//!
//! * **Work stealing never changes results.** `BatchJoinRunner::run` (the
//!   work-stealing pair queue + shared `GramCorpus`) must produce exactly
//!   the per-pair outcomes, report ordering, and aggregate
//!   `RepositoryMetrics` of the retained static-split driver
//!   `BatchJoinRunner::run_static` (per-call artifacts, contiguous up-front
//!   chunks) — at any thread budget on either side.
//! * **Corpus reuse never changes matches.** The matcher over a shared
//!   `GramCorpus` (`find_candidates_in`) must be bit-identical — same
//!   pairs, same order — to its per-call path and to the serial oracle
//!   `find_candidates_reference`, and its intern/build counters must be
//!   exact (one normalization per distinct column) and thread-invariant.
//!
//! The `#[ignore]`d test at the bottom is the slow skewed repository-scale
//! sweep, run in CI via `cargo test -q -p tjoin-join --release -- --ignored`
//! (the existing slow slot).

use proptest::prelude::*;
use tjoin_datasets::{ColumnPair, RepositoryConfig};
use tjoin_join::{BatchJoinOutcome, BatchJoinRunner, JoinPipelineConfig};
use tjoin_matching::reference::find_candidates_reference;
use tjoin_matching::{NGramMatcher, NGramMatcherConfig};
use tjoin_text::GramCorpus;

/// One generated row: `(source_value, target_value)` — the same row-shape
/// vocabulary as `proptest_join.rs` (coverable, promiscuous, short, empty,
/// duplicate-prone, gibberish, copy).
fn row_from(kind: u8, seed: u64) -> (String, String) {
    let a = seed % 50;
    let b = (seed / 50) % 37;
    match kind % 8 {
        0 => (format!("last{a:02}, first{b:02}"), format!("f{b:02} last{a:02}")),
        1 => (format!("name{a:02}, x{b:02}"), format!("x{b:02} name{a:02} common")),
        2 => ("ab".into(), format!("f{b:02} last{a:02}")),
        3 => (String::new(), format!("t{a:02}")),
        4 => (format!("last{a:02}, first{b:02}"), String::new()),
        5 => (format!("dup{:02}, val", seed % 4), format!("dup{:02}", seed % 4)),
        6 => (format!("last{a:02}, first{b:02}"), format!("zz-{:04}-qq", seed % 10_000)),
        _ => (format!("same value {a:02}"), format!("same value {a:02}")),
    }
}

/// Builds a repository from per-pair `(kind, seed)` specs. `skew`
/// multiplies the first pair's row count (the dominant-pair shape the
/// work-stealing queue exists for); `shared_source` gives every pair
/// *after the first* the same source column (maximal corpus reuse), so the
/// two knobs compose: a dominant unshared pair can ride alongside a block
/// of peers contending on one shared column's corpus entry.
fn build_repository(
    specs: &[(u8, u64)],
    base_rows: usize,
    skew: usize,
    shared_source: bool,
) -> Vec<ColumnPair> {
    let column = |kind: u8, seed: u64, rows: usize| -> (Vec<String>, Vec<String>) {
        let mut source = Vec::with_capacity(rows);
        let mut target = Vec::with_capacity(rows);
        for row in 0..rows {
            let (s, t) = row_from(kind, seed.wrapping_add(row as u64 * 9973));
            source.push(s);
            target.push(t);
        }
        (source, target)
    };
    let shared = specs
        .first()
        .map(|&(kind, seed)| column(kind, seed, base_rows).0);
    specs
        .iter()
        .enumerate()
        .map(|(i, &(kind, seed))| {
            let rows = if i == 0 { base_rows * skew.max(1) } else { base_rows };
            let (source, target) = column(kind, seed, rows);
            // Pairs after the first share one source column (same row
            // count by construction); the first pair keeps its own —
            // possibly skew-inflated — source.
            let source = match (&shared, shared_source, i) {
                (Some(shared), true, 1..) => shared.clone(),
                _ => source,
            };
            ColumnPair::aligned(format!("pair-{i:02}"), source, target)
        })
        .collect()
}

/// Asserts two batch outcomes carry identical results: same report order,
/// same per-pair predicted pairs / metrics / candidate counts /
/// transformation sets, same aggregate metrics. (Wall-clock fields and
/// scheduling counters are measurements, not results, and are exempt.)
fn assert_outcomes_identical(a: &BatchJoinOutcome, b: &BatchJoinOutcome, context: &str) {
    assert_eq!(a.reports.len(), b.reports.len(), "{context}: report count");
    assert_eq!(a.faults, b.faults, "{context}: fault tallies");
    for (ra, rb) in a.reports.iter().zip(&b.reports) {
        assert_eq!(ra.name, rb.name, "{context}: report order");
        assert_eq!(ra.status, rb.status, "{context}: status of {}", ra.name);
        assert_eq!(
            ra.outcome.predicted_pairs, rb.outcome.predicted_pairs,
            "{context}: predicted pairs of {}",
            ra.name
        );
        assert_eq!(ra.outcome.metrics, rb.outcome.metrics, "{context}: metrics of {}", ra.name);
        assert_eq!(
            ra.outcome.candidate_pairs, rb.outcome.candidate_pairs,
            "{context}: candidates of {}",
            ra.name
        );
        assert_eq!(
            ra.outcome.transformations, rb.outcome.transformations,
            "{context}: transformations of {}",
            ra.name
        );
    }
    assert_eq!(a.metrics.pairs, b.metrics.pairs, "{context}");
    assert_eq!(a.metrics.joined_pairs, b.metrics.joined_pairs, "{context}");
    assert_eq!(a.metrics.micro, b.metrics.micro, "{context}");
    assert_eq!(a.metrics.macro_f1, b.metrics.macro_f1, "{context}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Work-stealing batch outcomes equal the static-split oracle's on
    /// random (possibly skewed, possibly column-sharing) repositories at
    /// every thread budget, and the corpus counters are thread-invariant.
    #[test]
    fn work_stealing_batch_matches_static_oracle(
        specs in prop::collection::vec((0u8..8, 0u64..1_000_000), 1..5),
        base_rows in 1usize..7,
        skew_sel in 0u8..3,
        shared_sel in 0u8..2,
    ) {
        let skew = [1usize, 3, 5][skew_sel as usize % 3];
        let repository = build_repository(&specs, base_rows, skew, shared_sel == 1);
        let config = JoinPipelineConfig::paper_default();
        let oracle = BatchJoinRunner::new(config.clone(), 1).run_static(&repository);
        let mut corpus_counts = Vec::new();
        for threads in [1usize, 2, 4] {
            let runner = BatchJoinRunner::new(config.clone(), threads);
            let stealing = runner.run(&repository);
            assert_outcomes_identical(&stealing, &oracle, &format!("ws@{threads}"));
            let static_split = runner.run_static(&repository);
            assert_outcomes_identical(&static_split, &oracle, &format!("static@{threads}"));
            // Scheduling accounting: every task ran exactly once within
            // the budget.
            let s = &stealing.scheduler;
            prop_assert_eq!(s.tasks_per_worker.iter().sum::<usize>(), repository.len());
            prop_assert!(s.workers * s.inner_threads <= threads);
            prop_assert!(s.stolen_tasks <= repository.len());
            corpus_counts.push(s.corpus.expect("n-gram batch builds a corpus"));
        }
        // Interning is content-driven: the counters cannot depend on the
        // thread count.
        prop_assert_eq!(corpus_counts[0], corpus_counts[1]);
        prop_assert_eq!(corpus_counts[1], corpus_counts[2]);
        // Every pair references 2 columns; distinct + cache-served column
        // requests must account for exactly that.
        let c = corpus_counts[0];
        prop_assert_eq!(c.columns_interned + c.column_hits, 2 * repository.len());
        if shared_sel == 1 && repository.len() > 2 {
            // Pairs 1.. share one source column: after one of them interns
            // it, the rest are served from cache.
            prop_assert!(c.column_hits >= repository.len() - 2);
        }
    }

    /// The matcher over a shared corpus is bit-identical to its per-call
    /// path and to the serial reference oracle — including when the corpus
    /// is reused across several pairs and thread counts.
    #[test]
    fn corpus_matcher_matches_per_call_and_reference(
        specs in prop::collection::vec((0u8..8, 0u64..1_000_000), 1..4),
        rows in 1usize..12,
    ) {
        let repository = build_repository(&specs, rows, 1, false);
        let config = NGramMatcherConfig::default();
        let corpus = GramCorpus::new(config.normalize);
        for pair in &repository {
            let oracle = find_candidates_reference(&config, pair);
            for threads in [1usize, 2, 4] {
                let matcher = NGramMatcher::new(config.clone().with_threads(threads));
                prop_assert_eq!(
                    &matcher.find_candidates_in(pair, &corpus), &oracle,
                    "corpus matcher diverged on {} at {} threads", pair.name, threads
                );
                prop_assert_eq!(
                    &matcher.find_candidates(pair), &oracle,
                    "per-call matcher diverged on {}", pair.name
                );
            }
        }
        // Exactly one interning per distinct column, however many calls.
        let stats = corpus.stats();
        let mut distinct: Vec<Vec<String>> = Vec::new();
        for pair in &repository {
            for column in [&pair.source, &pair.target] {
                if !distinct.contains(column) {
                    distinct.push(column.clone());
                }
            }
        }
        prop_assert_eq!(stats.columns_interned, distinct.len());
        prop_assert_eq!(
            stats.columns_interned + stats.column_hits,
            2 * repository.len() * 3 // one column() per side per thread count
        );
    }
}

/// A column referenced by k pairs is normalized and gram-indexed exactly
/// once — the amortization claim, checked by evaluation counts (robust on
/// the one-core box: no timing involved).
#[test]
fn shared_column_interned_exactly_once_across_k_pairs() {
    let k = 5usize;
    let shared_source: Vec<String> = (0..8)
        .map(|i| format!("last{i:02}, first{i:02}"))
        .collect();
    let repository: Vec<ColumnPair> = (0..k)
        .map(|p| {
            let target: Vec<String> = (0..8).map(|i| format!("f{i:02}.{p} last{i:02}")).collect();
            ColumnPair::aligned(format!("k-{p}"), shared_source.clone(), target)
        })
        .collect();
    for threads in [1usize, 4] {
        let batch =
            BatchJoinRunner::new(JoinPipelineConfig::paper_default(), threads).run(&repository);
        let corpus = batch.scheduler.corpus.expect("corpus present");
        // 1 shared source + k distinct targets interned; the source's k-1
        // later references are cache hits (normalizations saved), and its
        // ColumnStats is built once and hit k-1 times.
        assert_eq!(corpus.columns_interned, 1 + k, "at {threads} threads");
        assert_eq!(corpus.column_hits, k - 1, "at {threads} threads");
        assert_eq!(corpus.normalizations_saved(), k - 1);
        assert_eq!(corpus.stats_built, 1 + k);
        assert_eq!(corpus.stats_hits, k - 1);
        assert_eq!(corpus.indexes_built, k);
        assert_eq!(corpus.index_hits, 0);
        let oracle =
            BatchJoinRunner::new(JoinPipelineConfig::paper_default(), threads).run_static(&repository);
        assert_outcomes_identical(&batch, &oracle, "shared-column");
        assert!(batch.metrics.joined_pairs >= 1);
    }
}

/// The slow skewed repository-scale sweep (the CI `--ignored` release
/// slot): a generated repository whose first pair is ~6x its peers, driven
/// by the work-stealing runner at {1, 2, 4} threads against the
/// static-split oracle, with thread-invariant corpus counters.
#[test]
#[ignore]
fn large_skewed_repository_sweep_matches_static_oracle() {
    let repository = RepositoryConfig::new(8, 100).with_skew(6.0).generate(21);
    assert!(
        repository[0].source.len() >= 5 * repository[1].source.len(),
        "skew generator failed to produce a dominant pair: {} vs {}",
        repository[0].source.len(),
        repository[1].source.len()
    );
    let config = JoinPipelineConfig::paper_default();
    let oracle = BatchJoinRunner::new(config.clone(), 1).run_static(&repository);
    // Static-split thread-invariance is proptest-covered above; the sweep
    // re-checks it once at the full budget to bound CI wall-clock.
    let static_4 = BatchJoinRunner::new(config.clone(), 4).run_static(&repository);
    assert_outcomes_identical(&static_4, &oracle, "skewed static@4");
    let mut corpus_counts = Vec::new();
    for threads in [1usize, 2, 4] {
        let runner = BatchJoinRunner::new(config.clone(), threads);
        let stealing = runner.run(&repository);
        assert_outcomes_identical(&stealing, &oracle, &format!("skewed ws@{threads}"));
        let s = &stealing.scheduler;
        assert_eq!(s.tasks_per_worker.iter().sum::<usize>(), repository.len());
        assert!(s.workers * s.inner_threads <= threads);
        corpus_counts.push(s.corpus.expect("corpus present"));
    }
    assert_eq!(corpus_counts[0], corpus_counts[1]);
    assert_eq!(corpus_counts[1], corpus_counts[2]);
    assert_eq!(
        corpus_counts[0].columns_interned + corpus_counts[0].column_hits,
        2 * repository.len()
    );
    // The generated repository must actually join (the sweep is vacuous on
    // an unjoinable workload).
    assert!(
        oracle.metrics.joined_pairs >= 5,
        "repository unexpectedly unjoinable: {:?}",
        oracle.metrics
    );
}
