//! Join quality metrics (precision, recall, F1) — Table 3 of the paper.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Precision / recall / F1 of predicted join pairs against the golden
/// mapping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct JoinMetrics {
    /// Number of predicted pairs.
    pub predicted: usize,
    /// Number of golden pairs.
    pub golden: usize,
    /// Predicted pairs that are golden.
    pub true_positives: usize,
    /// Precision = TP / predicted.
    pub precision: f64,
    /// Recall = TP / golden.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl JoinMetrics {
    /// Builds the metric set from raw counts — the single place the
    /// precision / recall / F1 formulas (and their empty-set conventions:
    /// zero, not NaN) live. Used by [`evaluate_join`] for one pair and by
    /// the batch runner's micro-average over summed repository counts.
    pub fn from_counts(true_positives: usize, predicted: usize, golden: usize) -> Self {
        let precision = if predicted == 0 {
            0.0
        } else {
            true_positives as f64 / predicted as f64
        };
        let recall = if golden == 0 {
            0.0
        } else {
            true_positives as f64 / golden as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            predicted,
            golden,
            true_positives,
            precision,
            recall,
            f1,
        }
    }
}

/// Evaluates predicted `(source_row, target_row)` pairs against the golden
/// mapping. Duplicates on either side are counted once.
pub fn evaluate_join(predicted: &[(u32, u32)], golden: &[(u32, u32)]) -> JoinMetrics {
    let predicted_set: HashSet<(u32, u32)> = predicted.iter().copied().collect();
    let golden_set: HashSet<(u32, u32)> = golden.iter().copied().collect();
    let true_positives = predicted_set.intersection(&golden_set).count();
    JoinMetrics::from_counts(true_positives, predicted_set.len(), golden_set.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_join() {
        let m = evaluate_join(&[(0, 0), (1, 1)], &[(0, 0), (1, 1)]);
        assert_eq!(m.true_positives, 2);
        assert!((m.f1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_tradeoff() {
        // 1 TP out of 2 predictions, 1 of 4 golden pairs found.
        let m = evaluate_join(&[(0, 0), (5, 5)], &[(0, 0), (1, 1), (2, 2), (3, 3)]);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 0.25).abs() < 1e-12);
        assert!((m.f1 - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(evaluate_join(&[], &[(0, 0)]).f1, 0.0);
        assert_eq!(evaluate_join(&[(0, 0)], &[]).f1, 0.0);
        assert_eq!(evaluate_join(&[], &[]).f1, 0.0);
    }

    #[test]
    fn duplicates_deduplicated() {
        let m = evaluate_join(&[(0, 0), (0, 0)], &[(0, 0)]);
        assert_eq!(m.predicted, 1);
        assert!((m.precision - 1.0).abs() < 1e-12);
    }
}
