//! # tjoin-join
//!
//! The end-to-end join layer (Sections 4.2 and 6.5 of the paper), built for
//! repository-scale workloads: one column pair runs through the parallel
//! [`pipeline`], and a whole repository of pairs runs through the shared
//! thread-budget [`batch`] driver.
//!
//! # The per-pair pipeline
//!
//! 1. find candidate joinable row pairs (the planned-parallel n-gram
//!    matcher of `tjoin-matching`, or the golden mapping for oracle
//!    experiments);
//! 2. discover a transformation set over those pairs with the synthesis
//!    engine (or a baseline);
//! 3. keep transformations above a minimum support;
//! 4. apply them to every source row and equi-join the transformed values
//!    against the target column — a *fingerprint join*: both columns
//!    normalized once, target rows bucketed by the 64-bit
//!    [`tjoin_text::fingerprint64`] of their normalized value, probes
//!    confirmed with an exact string comparison, and the apply loop chunked
//!    over source-row ranges across `SynthesisConfig::threads` workers;
//! 5. evaluate the predicted row pairs against the golden mapping
//!    (precision / recall / F1 — Table 3).
//!
//! # Determinism and the reference oracles
//!
//! Every parallel stage is bit-identical at any thread count. The serial
//! pre-parallel implementations are retained as differential oracles —
//! [`reference::equi_join_reference`] here and
//! `tjoin_matching::reference::find_candidates_reference` for the matcher —
//! and `tests/proptest_join.rs` proves production output identical to them
//! across random column pairs × {1, 2, 4} threads × both matching
//! strategies.
//!
//! # Repository-scale batching
//!
//! [`batch::BatchJoinRunner`] runs match → synthesize → join over many
//! column pairs (the GXJoin/QJoin many-column-pairs regime) under one
//! shared thread budget. Pairs are *tasks on a work-stealing queue*: a
//! fixed pool of workers claims the next unprocessed pair from an atomic
//! cursor, so skewed repositories (one huge pair) no longer strand the rest
//! of the pool the way the retained static chunk split
//! ([`batch::BatchJoinRunner::run_static`], the differential oracle) does;
//! each task's pipeline receives `threads / workers` inner threads, so the
//! pool never exceeds the budget. All workers share one
//! [`tjoin_text::GramCorpus`], so a column referenced by several pairs is
//! normalized and gram-indexed once per repository. Per-pair
//! [`JoinOutcome`]s aggregate into [`batch::RepositoryMetrics`] (micro /
//! macro quality, per-phase time totals), and
//! [`batch::BatchSchedulerStats`] reports the scheduling counters (tasks
//! per worker, steals, corpus reuse). `tests/proptest_batch.rs` proves
//! work-stealing outcomes identical to the static-split oracle across
//! random, skewed, and shared-column repositories × {1, 2, 4} threads.
//! `tjoin_datasets::repository` generates heterogeneous workloads (names /
//! phones / dates / web formats, controllable noise, non-joinable decoys,
//! and a skew knob) for it.
//!
//! # Fault isolation and budgets
//!
//! A repository run must survive its worst pair. Both batch drivers route
//! every pair through [`pipeline::JoinPipeline::run_guarded`], which
//! contains failures *per pair*:
//!
//! * a phase that panics — or depends on a shared-corpus artifact whose
//!   build failed (sticky [`tjoin_text::CorpusFailure`]) — degrades to
//!   [`pipeline::PairStatus::Failed`] with the phase and panic message,
//!   keeping every completed phase's outcome fields;
//! * an optional per-pair [`tjoin_text::RunBudget`]
//!   ([`batch::BatchJoinRunner::with_budget`]) bounds cost: row/byte caps
//!   are charged once at admission (deterministic and thread-invariant by
//!   construction) and the wall-clock deadline is checked cooperatively at
//!   the matcher-scan, coverage, selection, and join loop boundaries,
//!   yielding [`pipeline::PairStatus::TimedOut`] with the tripped axis.
//!   Budgeted aborts are all-or-nothing: no truncated result is ever
//!   reported as complete;
//! * fault-free guarded runs are bit-identical to the unguarded pipeline —
//!   the guarded path runs the same phase code, not a fork of it — and
//!   per-status tallies land in [`batch::BatchFaultStats`].
//!
//! The `fault-injection` feature compiles in the deterministic
//! [`tjoin_text::FaultPlan`] harness
//! ([`batch::BatchJoinRunner::run_with_faults`]); `tests/proptest_faults.rs`
//! proves that with K injected faults every non-faulted pair stays
//! bit-identical to the fault-free oracle and exactly the faulted pairs
//! report non-Ok statuses, across random repositories × {1, 2, 4} threads.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod evaluate;
pub mod incremental;
pub mod pipeline;
pub mod reference;

pub use batch::{
    BatchFaultStats, BatchJoinOutcome, BatchJoinRunner, BatchSchedulerStats,
    DiscoveredBatchOutcome, PairJoinReport, RepositoryMetrics, SchedulerFailure,
};
pub use incremental::{AppendReport, IncrementalCoverage, IncrementalJoin, IncrementalJoinConfig};
pub use tjoin_discovery::{
    shortlist_repository_delta, DiscoveryConfig, PairCandidate, PrunedPair, RepositoryShortlist,
    ScoredPair, ShortlistDelta,
};
pub use evaluate::{evaluate_join, JoinMetrics};
pub use pipeline::{
    GuardedJoinOutcome, JoinOutcome, JoinPipeline, JoinPipelineConfig, PairError, PairPhase,
    PairStatus, RowMatchingStrategy,
};
pub use reference::equi_join_reference;
