//! # tjoin-join
//!
//! The end-to-end join pipeline (Section 4.2 and Section 6.5 of the paper):
//!
//! 1. find candidate joinable row pairs (n-gram matching, or the golden
//!    mapping for oracle experiments);
//! 2. discover a transformation set over those pairs with the synthesis
//!    engine (or a baseline);
//! 3. keep transformations above a minimum support;
//! 4. apply them to every source row and equi-join the transformed values
//!    against the target column;
//! 5. evaluate the predicted row pairs against the golden mapping
//!    (precision / recall / F1 — Table 3).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod evaluate;
pub mod pipeline;

pub use evaluate::{evaluate_join, JoinMetrics};
pub use pipeline::{JoinOutcome, JoinPipeline, JoinPipelineConfig, RowMatchingStrategy};
