//! Repository-scale batch joining.
//!
//! GXJoin and QJoin frame joinability discovery as a *many-column-pairs*
//! problem: a table repository yields hundreds of candidate column pairs,
//! each of which must be matched, synthesized over, and joined. The
//! [`BatchJoinRunner`] drives the per-pair [`JoinPipeline`] across such a
//! repository under one shared thread budget:
//!
//! * pairs are chunked across `min(threads, pairs)` workers (pair-level
//!   parallelism — the axis with no shared state at all);
//! * each worker's pipeline receives the remaining budget
//!   (`threads / workers`, at least 1) for its *inner* parallel stages
//!   (matcher row scan, synthesis coverage, equi-join apply), so total
//!   concurrency stays within the budget instead of multiplying;
//! * per-pair [`JoinOutcome`]s are collected in repository order and
//!   aggregated into [`RepositoryMetrics`].
//!
//! Every stage of the per-pair pipeline is bit-identical at any thread
//! count (see the pipeline and matcher module docs), so a batch run
//! produces exactly the outcomes the per-pair pipeline would — batching
//! changes wall-clock, never results. `tests/paper_claims.rs` pins the
//! end-to-end version of that claim on a generated repository.

use crate::evaluate::JoinMetrics;
use crate::pipeline::{JoinOutcome, JoinPipeline, JoinPipelineConfig};
use std::time::Duration;
use tjoin_datasets::ColumnPair;

/// One repository entry's result: the pair's name plus its pipeline
/// outcome.
#[derive(Debug, Clone)]
pub struct PairJoinReport {
    /// The column pair's name (from [`ColumnPair::name`]).
    pub name: String,
    /// The per-pair pipeline outcome.
    pub outcome: JoinOutcome,
}

/// Aggregate quality and cost over a repository run.
#[derive(Debug, Clone, Default)]
pub struct RepositoryMetrics {
    /// Number of column pairs processed.
    pub pairs: usize,
    /// Pairs for which at least one row pair was predicted.
    pub joined_pairs: usize,
    /// Micro-averaged join quality: true positives, predictions, and golden
    /// pairs summed over the repository before computing precision /
    /// recall / F1 (large pairs weigh more).
    pub micro: JoinMetrics,
    /// Macro-averaged F1: the unweighted mean of per-pair F1 (every pair
    /// weighs the same; decoy pairs with no golden mapping score 0 and drag
    /// this down by design).
    pub macro_f1: f64,
    /// Total wall-clock spent in row matching across all pairs.
    pub matching_time: Duration,
    /// Total wall-clock spent in transformation discovery across all pairs.
    pub synthesis_time: Duration,
    /// Total wall-clock spent applying transformations and equi-joining.
    pub join_time: Duration,
}

/// The result of a batch run: per-pair reports in repository order plus the
/// aggregate metrics.
#[derive(Debug, Clone)]
pub struct BatchJoinOutcome {
    /// One report per input pair, in input order.
    pub reports: Vec<PairJoinReport>,
    /// Aggregate repository metrics.
    pub metrics: RepositoryMetrics,
}

/// Drives the per-pair join pipeline across a repository of column pairs
/// under a shared thread budget (see the module docs).
#[derive(Debug, Clone)]
pub struct BatchJoinRunner {
    config: JoinPipelineConfig,
    threads: usize,
}

impl BatchJoinRunner {
    /// Creates a runner applying `config` to every pair with a shared
    /// budget of `threads` worker threads (clamped to at least one). Any
    /// thread setting already present in `config` is overridden by the
    /// budget split.
    pub fn new(config: JoinPipelineConfig, threads: usize) -> Self {
        config.synthesis.validate();
        Self {
            config,
            threads: threads.max(1),
        }
    }

    /// The shared thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs match → synthesize → join on every pair of the repository and
    /// aggregates the outcomes. Reports are returned in input order and
    /// are bit-identical to running the per-pair pipeline directly.
    pub fn run(&self, repository: &[ColumnPair]) -> BatchJoinOutcome {
        let workers = self.threads.min(repository.len()).max(1);
        let inner_threads = (self.threads / workers).max(1);
        let pair_config = self.config.clone().with_threads(inner_threads);

        // Contiguous pair chunks across the worker budget, concatenated in
        // order. Outcomes are thread-invariant, so chunk boundaries cannot
        // change results.
        let pipeline = JoinPipeline::new(pair_config);
        let reports: Vec<PairJoinReport> =
            tjoin_text::chunk_map(repository, workers, |pair| PairJoinReport {
                name: pair.name.clone(),
                outcome: pipeline.run(pair),
            });

        let metrics = aggregate(&reports);
        BatchJoinOutcome { reports, metrics }
    }
}

/// Computes the repository aggregate of a report list.
fn aggregate(reports: &[PairJoinReport]) -> RepositoryMetrics {
    let mut metrics = RepositoryMetrics {
        pairs: reports.len(),
        ..RepositoryMetrics::default()
    };
    let (mut tp, mut predicted, mut golden) = (0usize, 0usize, 0usize);
    let mut f1_sum = 0.0f64;
    for report in reports {
        let m = &report.outcome.metrics;
        tp += m.true_positives;
        predicted += m.predicted;
        golden += m.golden;
        f1_sum += m.f1;
        if m.predicted > 0 {
            metrics.joined_pairs += 1;
        }
        metrics.matching_time += report.outcome.matching_time;
        metrics.synthesis_time += report.outcome.synthesis_time;
        metrics.join_time += report.outcome.join_time;
    }
    metrics.micro = JoinMetrics::from_counts(tp, predicted, golden);
    metrics.macro_f1 = if reports.is_empty() { 0.0 } else { f1_sum / reports.len() as f64 };
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::RowMatchingStrategy;

    fn small_repository() -> Vec<ColumnPair> {
        vec![
            ColumnPair::aligned(
                "names",
                vec![
                    "Rafiei, Davood".into(),
                    "Nascimento, Mario".into(),
                    "Bowling, Michael".into(),
                    "Gosgnach, Simon".into(),
                ],
                vec![
                    "D Rafiei".into(),
                    "M Nascimento".into(),
                    "M Bowling".into(),
                    "S Gosgnach".into(),
                ],
            ),
            ColumnPair::aligned(
                "emails",
                vec![
                    "smith.john@example.org".into(),
                    "doe.jane@example.org".into(),
                    "wong.alex@example.org".into(),
                ],
                vec!["john".into(), "jane".into(), "alex".into()],
            ),
        ]
    }

    /// A pair whose target shares no structure with the source: no string
    /// transformation can cover it, so a correct batch run predicts
    /// nothing for it.
    fn decoy_pair() -> ColumnPair {
        ColumnPair {
            name: "decoy".into(),
            source: vec![
                "Rafiei, Davood".into(),
                "Nascimento, Mario".into(),
                "Bowling, Michael".into(),
            ],
            target: vec!["qqxx-0017-zz".into(), "ttyy-9321-vv".into(), "rrww-4205-kk".into()],
            golden: vec![],
        }
    }

    #[test]
    fn batch_matches_per_pair_pipeline() {
        let config = JoinPipelineConfig::paper_default();
        let repository = small_repository();
        for threads in [1usize, 2, 4] {
            let batch = BatchJoinRunner::new(config.clone(), threads).run(&repository);
            assert_eq!(batch.reports.len(), repository.len());
            for (pair, report) in repository.iter().zip(&batch.reports) {
                assert_eq!(report.name, pair.name);
                let solo = JoinPipeline::new(config.clone()).run(pair);
                assert_eq!(
                    report.outcome.predicted_pairs, solo.predicted_pairs,
                    "pair {} diverged at {threads} threads",
                    pair.name
                );
                assert_eq!(report.outcome.metrics, solo.metrics);
            }
        }
    }

    #[test]
    fn aggregate_metrics_add_up() {
        let repository = small_repository();
        let batch = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), 2).run(&repository);
        let m = &batch.metrics;
        assert_eq!(m.pairs, 2);
        assert_eq!(m.joined_pairs, 2);
        let golden_total: usize = batch.reports.iter().map(|r| r.outcome.metrics.golden).sum();
        assert_eq!(m.micro.golden, golden_total);
        assert!(m.micro.f1 > 0.8, "micro f1 {}", m.micro.f1);
        assert!(m.macro_f1 > 0.8, "macro f1 {}", m.macro_f1);
    }

    #[test]
    fn decoy_pair_predicts_nothing() {
        let mut repository = small_repository();
        repository.push(decoy_pair());
        let batch = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), 4).run(&repository);
        let decoy = batch.reports.iter().find(|r| r.name == "decoy").unwrap();
        assert!(
            decoy.outcome.predicted_pairs.is_empty(),
            "decoy predicted {:?}",
            decoy.outcome.predicted_pairs
        );
        // The joinable pairs are unaffected by the decoy riding along.
        assert_eq!(batch.metrics.joined_pairs, 2);
        assert_eq!(batch.metrics.pairs, 3);
    }

    #[test]
    fn empty_repository() {
        let batch = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), 4).run(&[]);
        assert!(batch.reports.is_empty());
        assert_eq!(batch.metrics.pairs, 0);
        assert_eq!(batch.metrics.macro_f1, 0.0);
        assert_eq!(batch.metrics.micro.f1, 0.0);
    }

    #[test]
    fn golden_strategy_batch() {
        let config = JoinPipelineConfig {
            matching: RowMatchingStrategy::Golden,
            ..JoinPipelineConfig::paper_default()
        };
        let batch = BatchJoinRunner::new(config, 2).run(&small_repository());
        assert!((batch.metrics.micro.recall - 1.0).abs() < 1e-9, "{:?}", batch.metrics);
    }

    #[test]
    fn thread_budget_clamped() {
        assert_eq!(BatchJoinRunner::new(JoinPipelineConfig::paper_default(), 0).threads(), 1);
    }
}
