//! Repository-scale batch joining.
//!
//! GXJoin and QJoin frame joinability discovery as a *many-column-pairs*
//! problem: a table repository yields hundreds of candidate column pairs,
//! each of which must be matched, synthesized over, and joined. The
//! [`BatchJoinRunner`] drives the per-pair [`JoinPipeline`] across such a
//! repository under one shared thread budget.
//!
//! # Work-stealing scheduling
//!
//! [`BatchJoinRunner::run`] treats pairs as *tasks on a shared queue*: a
//! fixed pool of `min(threads, pairs)` workers repeatedly claims the next
//! unprocessed pair (an atomic cursor — the degenerate but exact form of
//! work stealing: every idle worker steals from one global queue), so a
//! skewed repository whose huge pair lands on one worker no longer strands
//! the rest of the pool the way a static up-front chunk split does. Each
//! task's pipeline receives an inner budget of `threads / workers` threads
//! (at least 1) for its parallel stages (matcher row scan, synthesis
//! coverage, equi-join apply), so workers × inner never exceeds the budget.
//! Under the n-gram strategy all workers share one [`GramCorpus`], so a
//! column referenced by several pairs is normalized and indexed once per
//! repository. By default the corpus lives for the whole run and is
//! dropped at the end: peak memory is the repository's distinct-column
//! text plus its gram artifacts, rather than the per-pair transient of the
//! static path — the price of cross-pair reuse. A long-lived deployment
//! attaches an external resident corpus instead
//! ([`BatchJoinRunner::with_corpus`]): the `tjoin-serve` layer keeps one
//! corpus across runs under a byte-budgeted eviction policy, so repeated
//! requests over overlapping repositories skip re-normalization entirely —
//! with results guaranteed bit-identical either way. Scheduling counters
//! (tasks per worker, steal count relative to the static split, corpus
//! reuse) are reported in [`BatchSchedulerStats`].
//!
//! # The retained static-split oracle
//!
//! [`BatchJoinRunner::run_static`] is the pre-work-stealing driver, kept
//! verbatim: pairs chunked contiguously across workers up front
//! (`tjoin_text::chunk_map`), per-call matcher artifacts, no shared corpus.
//! Because every stage of the per-pair pipeline is bit-identical at any
//! thread count (see the pipeline and matcher module docs), both drivers
//! must produce exactly the same per-pair [`JoinOutcome`]s — same pairs,
//! same order, same metrics — and the same [`RepositoryMetrics`] at any
//! thread budget; only wall-clock (and the scheduling counters) may differ.
//! The differential proptest suite `tests/proptest_batch.rs` enforces that
//! across random, skewed, and shared-column repositories × {1, 2, 4}
//! threads, and `tests/paper_claims.rs` pins the end-to-end quality claim
//! on a generated repository.
//!
//! (Wall-clock fields — the `Duration`s inside outcomes and metrics — are
//! measurements, not results; the identity claim covers everything else.)
//!
//! # Fault isolation and budgets
//!
//! A repository run is only as robust as its worst pair, so both drivers
//! route every pair through [`JoinPipeline::run_guarded`]: a pair whose
//! phase panics (or that hits a sticky shared-corpus build failure) lands
//! in its report slot as [`PairStatus::Failed`] with the phase and panic
//! message, while the remaining workers keep draining the queue — one
//! poisoned pair never takes down the batch. A scheduler-level
//! `catch_unwind` backstops panics outside the guarded phases, and the
//! worker-join / slot paths recover poisoned locks instead of propagating
//! them. An optional [`RunBudget`] ([`BatchJoinRunner::with_budget`])
//! bounds each pair: row/byte caps are charged deterministically at
//! admission and a wall-clock deadline is checked cooperatively at phase
//! loop boundaries, so an over-budget pair degrades to
//! [`PairStatus::TimedOut`] with its completed-phase metrics intact.
//! Per-status tallies are reported in [`BatchFaultStats`]; aggregate
//! metrics still cover *all* reports (a failed pair contributes its empty
//! prediction, exactly as the static oracle sees it).
//!
//! # Discovery-first runs
//!
//! [`BatchJoinRunner::discover_and_run`] puts the signature shortlister
//! (`tjoin-discovery`) in front of the pipeline: every column is signed
//! once into the run's gram corpus (the attached resident corpus when one
//! exists — warm discovery is then served straight from cache), pairs
//! whose anchor sets prove them unjoinable are pruned, and the existing
//! work-stealing/budget machinery runs only the ranked survivors. The
//! batch outcome is bit-identical to calling [`BatchJoinRunner::run`] on
//! the shortlisted sublist directly (the discovery differential suite
//! enforces this); under [`RowMatchingStrategy::Golden`] discovery proves
//! nothing and every pair is retained.
//!
//! The `fault-injection` feature compiles in the deterministic
//! [`FaultPlan`](tjoin_text::FaultPlan) harness
//! ([`BatchJoinRunner::run_with_faults`]): named injection points keyed by
//! (pair index, phase) drive the differential gate in
//! `tests/proptest_faults.rs` — with K injected faults, every non-faulted
//! pair stays bit-identical to the fault-free oracle and exactly the
//! faulted pairs report non-[`Ok`](PairStatus::Ok) statuses.

use crate::evaluate::JoinMetrics;
use crate::pipeline::{
    GuardedJoinOutcome, JoinOutcome, JoinPipeline, JoinPipelineConfig, PairError, PairPhase,
    PairStatus, RowMatchingStrategy,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tjoin_datasets::ColumnPair;
use tjoin_discovery::{shortlist_repository, DiscoveryConfig, RepositoryShortlist};
use tjoin_text::{
    fault, CorpusStats, FaultKind, FaultPlan, FaultSite, GramCorpus, RunBudget, ServeStats,
};

/// One repository entry's result: the pair's name, its pipeline outcome,
/// and the isolation status that produced it.
#[derive(Debug, Clone)]
pub struct PairJoinReport {
    /// The column pair's name (from [`ColumnPair::name`]).
    pub name: String,
    /// The per-pair pipeline outcome (partial when `status` is not
    /// [`PairStatus::Ok`] — see [`GuardedJoinOutcome`]).
    pub outcome: JoinOutcome,
    /// What happened to the pair: completed, contained failure, or budget
    /// overrun.
    pub status: PairStatus,
}

/// Per-status pair tallies of a batch run — the containment ledger: the
/// three counters always sum to the repository size, and on a fault-free,
/// unbudgeted run `failed_pairs` and `timed_out_pairs` are zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchFaultStats {
    /// Pairs whose every phase completed ([`PairStatus::Ok`]).
    pub ok_pairs: usize,
    /// Pairs with a contained panic or corpus failure
    /// ([`PairStatus::Failed`]).
    pub failed_pairs: usize,
    /// Pairs whose [`RunBudget`] tripped ([`PairStatus::TimedOut`]).
    pub timed_out_pairs: usize,
}

/// Aggregate quality and cost over a repository run.
#[derive(Debug, Clone, Default)]
pub struct RepositoryMetrics {
    /// Number of column pairs processed.
    pub pairs: usize,
    /// Pairs for which at least one row pair was predicted.
    pub joined_pairs: usize,
    /// Micro-averaged join quality: true positives, predictions, and golden
    /// pairs summed over the repository before computing precision /
    /// recall / F1 (large pairs weigh more).
    pub micro: JoinMetrics,
    /// Macro-averaged F1: the unweighted mean of per-pair F1 (every pair
    /// weighs the same; decoy pairs with no golden mapping score 0 and drag
    /// this down by design).
    pub macro_f1: f64,
    /// Total wall-clock spent in row matching across all pairs.
    pub matching_time: Duration,
    /// Total wall-clock spent in transformation discovery across all pairs.
    pub synthesis_time: Duration,
    /// Total wall-clock spent applying transformations and equi-joining.
    pub join_time: Duration,
}

/// Elapsed-at-failure attribution for one scheduler-level `catch_unwind`
/// trip: a panic that escaped every guarded pipeline phase
/// ([`PairPhase::Scheduler`]) carries no per-phase timing, so the backstop
/// records how long the task had been running when it unwound — otherwise a
/// scheduler-level failure is wall-clock-invisible in the batch report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerFailure {
    /// Repository index of the pair whose task tripped the backstop.
    pub pair: usize,
    /// Wall-clock from task start to the backstop catching the unwind.
    pub elapsed: Duration,
}

/// Scheduling counters of a batch run — wall-clock-side observability that
/// never influences results (outcomes are identical whatever these say).
#[derive(Debug, Clone, Default)]
pub struct BatchSchedulerStats {
    /// Workers in the pool (`min(threads, pairs)`, at least 1).
    pub workers: usize,
    /// Inner thread budget each task's pipeline ran with
    /// (`threads / workers`, at least 1) — workers × inner ≤ budget.
    pub inner_threads: usize,
    /// Tasks each worker executed, by worker index. Under work stealing on
    /// a skewed repository this is *uneven by design* — fast workers drain
    /// the queue while a slow pair occupies its worker.
    pub tasks_per_worker: Vec<usize>,
    /// Tasks a worker executed that the static contiguous split would have
    /// assigned to a different worker — the imbalance the queue absorbed.
    /// Always 0 for [`BatchJoinRunner::run_static`].
    pub stolen_tasks: usize,
    /// Shared-corpus reuse counters (`None` for the static oracle path and
    /// under [`RowMatchingStrategy::Golden`], which match without text
    /// artifacts). With an external resident corpus
    /// ([`BatchJoinRunner::with_corpus`]) this snapshots that corpus *after
    /// the run* — counters accumulate across runs.
    pub corpus: Option<CorpusStats>,
    /// Scheduler-level `catch_unwind` trips ([`PairPhase::Scheduler`])
    /// with their elapsed-at-failure, sorted by pair index. Empty on a
    /// fault-free run and always empty for [`BatchJoinRunner::run_static`]
    /// (the oracle path has no scheduler backstop of its own to attribute).
    pub scheduler_failures: Vec<SchedulerFailure>,
}

/// The result of a batch run: per-pair reports in repository order plus the
/// aggregate metrics and scheduling counters.
#[derive(Debug, Clone)]
pub struct BatchJoinOutcome {
    /// One report per input pair, in input order.
    pub reports: Vec<PairJoinReport>,
    /// Aggregate repository metrics.
    pub metrics: RepositoryMetrics,
    /// Scheduling counters (see [`BatchSchedulerStats`]).
    pub scheduler: BatchSchedulerStats,
    /// Per-status pair tallies (see [`BatchFaultStats`]).
    pub faults: BatchFaultStats,
    /// Resident-cache counters when the run was served by the `tjoin-serve`
    /// layer; `None` for a directly driven run (both drivers). The serving
    /// layer fills this in at request release — the runner itself never
    /// writes it, keeping results independent of how the run was admitted.
    pub serve: Option<ServeStats>,
}

/// The result of a discovery-first batch run
/// ([`BatchJoinRunner::discover_and_run`]): the discovery verdict plus the
/// batch outcome over exactly the shortlisted pairs. The shortlist's
/// `ranked` order *is* the report order of `outcome` — report `i` is the
/// pair `shortlist.ranked[i]` names.
#[derive(Debug, Clone)]
pub struct DiscoveredBatchOutcome {
    /// Which pairs ran, which were provably pruned, and which a `top_k`
    /// budget cut (see [`RepositoryShortlist`]).
    pub shortlist: RepositoryShortlist,
    /// The batch outcome over the shortlisted sublist, bit-identical to
    /// [`BatchJoinRunner::run`] on that sublist.
    pub outcome: BatchJoinOutcome,
}

/// Drives the per-pair join pipeline across a repository of column pairs
/// under a shared thread budget (see the module docs).
#[derive(Debug, Clone)]
pub struct BatchJoinRunner {
    config: JoinPipelineConfig,
    threads: usize,
    budget: Option<RunBudget>,
    corpus: Option<Arc<GramCorpus>>,
}

impl BatchJoinRunner {
    /// Creates a runner applying `config` to every pair with a shared
    /// budget of `threads` worker threads (clamped to at least one). Any
    /// thread setting already present in `config` is overridden by the
    /// budget split.
    pub fn new(config: JoinPipelineConfig, threads: usize) -> Self {
        config.synthesis.validate();
        Self {
            config,
            threads: threads.max(1),
            budget: None,
            corpus: None,
        }
    }

    /// Uses `corpus` as the shared gram corpus of subsequent [`Self::run`]s
    /// instead of building one per run — the `tjoin-serve` resident-cache
    /// hookup: a corpus that outlives the run keeps its interned columns,
    /// so repeated requests over overlapping repositories skip
    /// re-normalization and re-indexing entirely. The corpus's
    /// [`NormalizeOptions`](tjoin_text::NormalizeOptions) must match the
    /// runner's n-gram matcher configuration (asserted at run time); it is
    /// ignored under [`RowMatchingStrategy::Golden`]. Results are
    /// bit-identical to a per-run corpus — every artifact is a pure
    /// function of cells, options, and size range — only counters and
    /// wall-clock differ.
    pub fn with_corpus(mut self, corpus: Arc<GramCorpus>) -> Self {
        self.corpus = Some(corpus);
        self
    }

    /// Applies a per-pair [`RunBudget`] to every pair of subsequent runs
    /// (each pair gets its *own* fresh token — budgets bound pairs, not the
    /// repository). Cap overruns are deterministic and thread-invariant;
    /// deadline overruns depend on wall-clock.
    pub fn with_budget(mut self, budget: RunBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The shared thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The worker count and per-task inner thread budget the runner derives
    /// from its budget for a repository of `pairs` pairs.
    fn split(&self, pairs: usize) -> (usize, usize) {
        let workers = self.threads.min(pairs).max(1);
        let inner_threads = (self.threads / workers).max(1);
        (workers, inner_threads)
    }

    /// Runs match → synthesize → join on every pair of the repository with
    /// the work-stealing pair queue and the shared gram corpus, and
    /// aggregates the outcomes. Reports are returned in input order and are
    /// bit-identical to [`Self::run_static`] — and to running the per-pair
    /// pipeline directly — at any thread budget.
    pub fn run(&self, repository: &[ColumnPair]) -> BatchJoinOutcome {
        self.run_inner(repository, None, None)
    }

    /// Discovery-first run: signs every column of `repository` into the
    /// run's corpus, prunes pairs whose anchor sets prove them unjoinable
    /// (see the `tjoin-discovery` crate docs — recall 1.0 at the default
    /// settings), and spends the full pipeline only on the ranked
    /// shortlist under the runner's existing thread/`RunBudget` machinery.
    /// The embedded [`BatchJoinOutcome`] is bit-identical to
    /// [`Self::run`] over the shortlisted sublist.
    ///
    /// The discovery config's gram range and normalization must equal the
    /// runner's matcher configuration — the recall guarantee is relative
    /// to that matcher. Under [`RowMatchingStrategy::Golden`] (golden row
    /// pairs need no shared text) every pair is retained unscored.
    pub fn discover_and_run(
        &self,
        repository: &[ColumnPair],
        discovery: &DiscoveryConfig,
    ) -> DiscoveredBatchOutcome {
        let ngram = match &self.config.matching {
            RowMatchingStrategy::NGram(cfg) => cfg,
            RowMatchingStrategy::Golden => {
                return DiscoveredBatchOutcome {
                    shortlist: RepositoryShortlist::retain_all(repository),
                    outcome: self.run_inner(repository, None, None),
                };
            }
        };
        assert_eq!(
            (discovery.n_min, discovery.n_max),
            (ngram.n_min, ngram.n_max),
            "discovery gram range must equal the matcher's (the recall guarantee is relative to it)"
        );
        assert_eq!(
            discovery.normalize, ngram.normalize,
            "discovery must normalize like the matcher"
        );
        // Sign into the resident corpus when one is attached (warm
        // discovery is then a pure cache read); otherwise one owned corpus
        // serves both the discovery pass and the pipeline run, so nothing
        // is normalized twice.
        let owned;
        let corpus: &GramCorpus = match &self.corpus {
            Some(shared) => {
                assert_eq!(
                    shared.options(),
                    &ngram.normalize,
                    "shared corpus must normalize like the runner's matcher config"
                );
                shared.as_ref()
            }
            None => {
                owned = GramCorpus::new(ngram.normalize);
                &owned
            }
        };
        let shortlist = shortlist_repository(repository, corpus, discovery);
        let sublist: Vec<ColumnPair> = shortlist
            .ranked
            .iter()
            .map(|entry| repository[entry.index].clone())
            .collect();
        let outcome = self.run_inner(&sublist, None, Some(corpus));
        DiscoveredBatchOutcome { shortlist, outcome }
    }

    /// [`Self::run`] under a deterministic [`FaultPlan`]: each worker sets
    /// the plan's (pair index) scope around its task, so
    /// [`fault::fire`]-instrumented points panic, stall, or poison exactly
    /// where the plan says — the test harness for the containment layer.
    /// Only compiled with the `fault-injection` feature; release builds
    /// carry no injection code.
    #[cfg(feature = "fault-injection")]
    pub fn run_with_faults(&self, repository: &[ColumnPair], plan: &FaultPlan) -> BatchJoinOutcome {
        self.run_inner(repository, Some(plan), None)
    }

    /// `warm` is a pre-signed corpus the discovery pass already built —
    /// it takes priority over the runner's own corpus selection so a
    /// discovery-first run never normalizes a column twice. Results are
    /// unaffected either way (every corpus artifact is a pure function of
    /// cells/options/range); only counters and wall-clock differ.
    fn run_inner(
        &self,
        repository: &[ColumnPair],
        plan: Option<&FaultPlan>,
        warm: Option<&GramCorpus>,
    ) -> BatchJoinOutcome {
        if repository.is_empty() {
            return BatchJoinOutcome {
                reports: Vec::new(),
                metrics: RepositoryMetrics::default(),
                scheduler: BatchSchedulerStats {
                    workers: 0,
                    inner_threads: self.threads,
                    ..BatchSchedulerStats::default()
                },
                faults: BatchFaultStats::default(),
                serve: None,
            };
        }
        let (workers, inner_threads) = self.split(repository.len());
        let pipeline = JoinPipeline::new(self.config.clone().with_threads(inner_threads));
        // The gram corpus the run shares: the external resident handle when
        // one was attached ([`Self::with_corpus`]), else a per-run corpus
        // dropped at the end — the original one-shot behaviour.
        let mut owned: Option<GramCorpus> = None;
        let corpus: Option<&GramCorpus> = match &self.config.matching {
            RowMatchingStrategy::NGram(cfg) => match (warm, &self.corpus) {
                (Some(prewarmed), _) => {
                    assert_eq!(
                        prewarmed.options(),
                        &cfg.normalize,
                        "discovery corpus must normalize like the runner's matcher config"
                    );
                    Some(prewarmed)
                }
                (None, Some(shared)) => {
                    assert_eq!(
                        shared.options(),
                        &cfg.normalize,
                        "shared corpus must normalize like the runner's matcher config"
                    );
                    Some(shared.as_ref())
                }
                (None, None) => Some(owned.insert(GramCorpus::new(cfg.normalize))),
            },
            RowMatchingStrategy::Golden => None,
        };
        let scheduler_failures: Mutex<Vec<SchedulerFailure>> = Mutex::new(Vec::new());
        let run_pair = |task: usize, pair: &ColumnPair| -> PairJoinReport {
            // All guarded phases — including lazy shared-corpus builds,
            // which happen inside the matcher call — execute on this worker
            // thread, so the plan's thread-local (pair, site) scope covers
            // exactly this task's instrumented points.
            let exec = || -> GuardedJoinOutcome {
                let started = Instant::now();
                catch_unwind(AssertUnwindSafe(|| {
                    fault::fire(FaultSite::SchedulerTask);
                    pipeline.run_guarded(pair, corpus, self.budget.as_ref())
                }))
                .unwrap_or_else(|payload| {
                    // Scheduler-level backstop: a panic outside the guarded
                    // phases still fails only this pair — and records its
                    // elapsed-at-failure, since no phase timing exists.
                    fault::lock_recover(&scheduler_failures)
                        .push(SchedulerFailure { pair: task, elapsed: started.elapsed() });
                    GuardedJoinOutcome {
                        outcome: JoinPipeline::empty_outcome(pair),
                        status: PairStatus::Failed(PairError {
                            phase: PairPhase::Scheduler,
                            message: fault::panic_message(&*payload),
                        }),
                    }
                })
            };
            let guarded = match plan {
                Some(plan) => fault::with_pair_scope(plan, task, exec),
                None => exec(),
            };
            PairJoinReport {
                name: pair.name.clone(),
                outcome: guarded.outcome,
                status: guarded.status,
            }
        };

        // The static contiguous split, used only to *count* steals: a task
        // is "stolen" when the queue hands it to a worker the static split
        // would not have given it to.
        let static_chunk = repository.len().div_ceil(workers);

        let mut tasks_per_worker = vec![0usize; workers];
        let stolen = AtomicUsize::new(0);
        let mut reports: Vec<PairJoinReport>;
        if workers <= 1 {
            // Serial fast path: one worker owns the whole queue.
            reports = repository
                .iter()
                .enumerate()
                .map(|(task, pair)| run_pair(task, pair))
                .collect();
            tasks_per_worker[0] = repository.len();
        } else {
            // The shared pair queue: an atomic cursor every worker claims
            // the next task from. Results land in per-pair slots, so output
            // order is input order no matter who ran what.
            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<PairJoinReport>>> =
                repository.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|worker| {
                        let (next, slots, stolen, run_pair) = (&next, &slots, &stolen, &run_pair);
                        scope.spawn(move || {
                            let mut executed = 0usize;
                            loop {
                                let task = next.fetch_add(1, Ordering::Relaxed);
                                if task >= repository.len() {
                                    return executed;
                                }
                                let report = run_pair(task, &repository[task]);
                                if let Some(plan) = plan {
                                    if plan.fault_for(task, FaultSite::SlotStore)
                                        == Some(FaultKind::PoisonLock)
                                    {
                                        fault::poison_mutex(&slots[task]);
                                    }
                                }
                                // A slot lock poisoned by an injected (or
                                // real) panic still stores and serves its
                                // report: the data is a plain `Option` with
                                // no invariant a panic could have broken.
                                *fault::lock_recover(&slots[task]) = Some(report);
                                executed += 1;
                                if task / static_chunk != worker {
                                    stolen.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        })
                    })
                    .collect();
                for (worker, handle) in handles.into_iter().enumerate() {
                    // Workers contain per-pair panics themselves; a panic
                    // escaping one is a scheduler bug, re-raised verbatim.
                    tasks_per_worker[worker] = handle
                        .join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
                }
            });
            reports = Vec::with_capacity(repository.len());
            for slot in slots {
                // Invariant is local (audited): the atomic cursor hands out
                // every task index exactly once, each claimant fills its
                // slot before returning, and worker panics were already
                // re-raised above — so no slot can still be `None` here.
                let report = slot
                    .into_inner()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .expect("every task executed");
                reports.push(report);
            }
        }

        let metrics = aggregate(&reports);
        let mut scheduler_failures = scheduler_failures
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        scheduler_failures.sort_unstable_by_key(|failure| failure.pair);
        BatchJoinOutcome {
            faults: tally(&reports),
            metrics,
            reports,
            scheduler: BatchSchedulerStats {
                workers,
                inner_threads,
                tasks_per_worker,
                stolen_tasks: stolen.into_inner(),
                corpus: corpus.map(|c| c.stats()),
                scheduler_failures,
            },
            serve: None,
        }
    }

    /// The retained static-split driver (the differential oracle for
    /// [`Self::run`]): pairs chunked contiguously across the worker budget
    /// up front, per-call matcher artifacts, no shared corpus. Outcomes are
    /// thread-invariant, so this must produce exactly the reports and
    /// metrics the work-stealing driver does.
    pub fn run_static(&self, repository: &[ColumnPair]) -> BatchJoinOutcome {
        let (workers, inner_threads) = self.split(repository.len());
        let pipeline = JoinPipeline::new(self.config.clone().with_threads(inner_threads));

        // Contiguous pair chunks across the worker budget, concatenated in
        // order. Outcomes are thread-invariant, so chunk boundaries cannot
        // change results. The oracle path runs guarded too (no fault plan —
        // it IS the fault-free reference): statuses are all `Ok` without a
        // budget, and cap-based budgets trip identically on both drivers.
        let reports: Vec<PairJoinReport> =
            tjoin_text::chunk_map(repository, workers, |pair| {
                let guarded = pipeline.run_guarded(pair, None, self.budget.as_ref());
                PairJoinReport {
                    name: pair.name.clone(),
                    outcome: guarded.outcome,
                    status: guarded.status,
                }
            });

        let chunk = repository.len().div_ceil(workers).max(1);
        let mut tasks_per_worker = vec![0usize; workers];
        for task in 0..repository.len() {
            tasks_per_worker[(task / chunk).min(workers - 1)] += 1;
        }
        let metrics = aggregate(&reports);
        BatchJoinOutcome {
            faults: tally(&reports),
            metrics,
            reports,
            scheduler: BatchSchedulerStats {
                workers: if repository.is_empty() { 0 } else { workers },
                inner_threads,
                tasks_per_worker: if repository.is_empty() {
                    Vec::new()
                } else {
                    tasks_per_worker
                },
                stolen_tasks: 0,
                corpus: None,
                scheduler_failures: Vec::new(),
            },
            serve: None,
        }
    }
}

/// Tallies report statuses into the containment ledger.
fn tally(reports: &[PairJoinReport]) -> BatchFaultStats {
    let mut faults = BatchFaultStats::default();
    for report in reports {
        match &report.status {
            PairStatus::Ok => faults.ok_pairs += 1,
            PairStatus::Failed(_) => faults.failed_pairs += 1,
            PairStatus::TimedOut { .. } => faults.timed_out_pairs += 1,
        }
    }
    faults
}

/// Computes the repository aggregate of a report list.
fn aggregate(reports: &[PairJoinReport]) -> RepositoryMetrics {
    let mut metrics = RepositoryMetrics {
        pairs: reports.len(),
        ..RepositoryMetrics::default()
    };
    let (mut tp, mut predicted, mut golden) = (0usize, 0usize, 0usize);
    let mut f1_sum = 0.0f64;
    for report in reports {
        let m = &report.outcome.metrics;
        tp += m.true_positives;
        predicted += m.predicted;
        golden += m.golden;
        f1_sum += m.f1;
        if m.predicted > 0 {
            metrics.joined_pairs += 1;
        }
        metrics.matching_time += report.outcome.matching_time;
        metrics.synthesis_time += report.outcome.synthesis_time;
        metrics.join_time += report.outcome.join_time;
    }
    metrics.micro = JoinMetrics::from_counts(tp, predicted, golden);
    metrics.macro_f1 = if reports.is_empty() { 0.0 } else { f1_sum / reports.len() as f64 };
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::RowMatchingStrategy;

    fn small_repository() -> Vec<ColumnPair> {
        vec![
            ColumnPair::aligned(
                "names",
                vec![
                    "Rafiei, Davood".into(),
                    "Nascimento, Mario".into(),
                    "Bowling, Michael".into(),
                    "Gosgnach, Simon".into(),
                ],
                vec![
                    "D Rafiei".into(),
                    "M Nascimento".into(),
                    "M Bowling".into(),
                    "S Gosgnach".into(),
                ],
            ),
            ColumnPair::aligned(
                "emails",
                vec![
                    "smith.john@example.org".into(),
                    "doe.jane@example.org".into(),
                    "wong.alex@example.org".into(),
                ],
                vec!["john".into(), "jane".into(), "alex".into()],
            ),
        ]
    }

    /// A pair whose target shares no structure with the source: no string
    /// transformation can cover it, so a correct batch run predicts
    /// nothing for it.
    fn decoy_pair() -> ColumnPair {
        ColumnPair {
            name: "decoy".into(),
            source: vec![
                "Rafiei, Davood".into(),
                "Nascimento, Mario".into(),
                "Bowling, Michael".into(),
            ],
            target: vec!["qqxx-0017-zz".into(), "ttyy-9321-vv".into(), "rrww-4205-kk".into()],
            golden: vec![],
        }
    }

    /// Asserts two batch outcomes carry identical results (everything but
    /// the wall-clock measurements and scheduling counters).
    fn assert_outcomes_identical(a: &BatchJoinOutcome, b: &BatchJoinOutcome) {
        assert_eq!(a.reports.len(), b.reports.len());
        for (ra, rb) in a.reports.iter().zip(&b.reports) {
            assert_eq!(ra.name, rb.name);
            assert_eq!(ra.status, rb.status, "{}", ra.name);
            assert_eq!(ra.outcome.predicted_pairs, rb.outcome.predicted_pairs, "{}", ra.name);
            assert_eq!(ra.outcome.metrics, rb.outcome.metrics, "{}", ra.name);
            assert_eq!(ra.outcome.candidate_pairs, rb.outcome.candidate_pairs, "{}", ra.name);
            assert_eq!(ra.outcome.transformations, rb.outcome.transformations, "{}", ra.name);
        }
        assert_eq!(a.metrics.pairs, b.metrics.pairs);
        assert_eq!(a.metrics.joined_pairs, b.metrics.joined_pairs);
        assert_eq!(a.metrics.micro, b.metrics.micro);
        assert_eq!(a.metrics.macro_f1, b.metrics.macro_f1);
        assert_eq!(a.faults, b.faults);
    }

    #[test]
    fn discover_and_run_prunes_the_decoy_and_matches_the_plain_run() {
        let config = JoinPipelineConfig::paper_default();
        let mut repository = small_repository();
        repository.push(decoy_pair());
        let discovery = DiscoveryConfig::paper_default();
        let runner = BatchJoinRunner::new(config.clone(), 2);
        let discovered = runner.discover_and_run(&repository, &discovery);
        // The decoy shares no 4-gram with its target: provably pruned.
        assert_eq!(discovered.shortlist.pruned.len(), 1);
        assert_eq!(discovered.shortlist.pruned[0].name, "decoy");
        assert_eq!(discovered.shortlist.ranked.len(), 2);
        assert!(discovered.shortlist.ranked.iter().all(|s| !s.signature_failed));
        // Bit-identity with the plain runner over the shortlisted sublist.
        let sublist: Vec<ColumnPair> = discovered
            .shortlist
            .ranked
            .iter()
            .map(|entry| repository[entry.index].clone())
            .collect();
        let oracle = runner.run(&sublist);
        assert_outcomes_identical(&discovered.outcome, &oracle);
        assert!(discovered.outcome.metrics.joined_pairs > 0);
    }

    #[test]
    fn discover_and_run_serves_discovery_from_an_attached_corpus() {
        let config = JoinPipelineConfig::paper_default();
        let repository = small_repository();
        let discovery = DiscoveryConfig::paper_default();
        let corpus = Arc::new(GramCorpus::new(
            match &config.matching {
                RowMatchingStrategy::NGram(cfg) => cfg.normalize,
                RowMatchingStrategy::Golden => unreachable!("paper default is NGram"),
            },
        ));
        let runner = BatchJoinRunner::new(config, 2).with_corpus(Arc::clone(&corpus));
        let cold = runner.discover_and_run(&repository, &discovery);
        let built = corpus.stats().signatures_built;
        assert!(built > 0, "discovery signs into the attached corpus");
        let warm = runner.discover_and_run(&repository, &discovery);
        assert_eq!(warm.shortlist, cold.shortlist);
        assert_outcomes_identical(&warm.outcome, &cold.outcome);
        let stats = corpus.stats();
        assert_eq!(stats.signatures_built, built, "warm discovery builds nothing");
        assert!(stats.signature_hits > 0, "warm discovery is a cache read");
    }

    #[test]
    fn discover_and_run_under_golden_strategy_retains_everything() {
        let config = JoinPipelineConfig {
            matching: RowMatchingStrategy::Golden,
            ..JoinPipelineConfig::paper_default()
        };
        let mut repository = small_repository();
        repository.push(decoy_pair());
        let runner = BatchJoinRunner::new(config, 2);
        let discovered = runner.discover_and_run(&repository, &DiscoveryConfig::paper_default());
        assert_eq!(discovered.shortlist.ranked.len(), repository.len());
        assert!(discovered.shortlist.pruned.is_empty());
        let oracle = runner.run(&repository);
        assert_outcomes_identical(&discovered.outcome, &oracle);
    }

    #[test]
    fn batch_matches_per_pair_pipeline_and_static_oracle() {
        let config = JoinPipelineConfig::paper_default();
        let repository = small_repository();
        let oracle = BatchJoinRunner::new(config.clone(), 1).run_static(&repository);
        for threads in [1usize, 2, 4] {
            let batch = BatchJoinRunner::new(config.clone(), threads).run(&repository);
            assert_eq!(batch.reports.len(), repository.len());
            assert_outcomes_identical(&batch, &oracle);
            for (pair, report) in repository.iter().zip(&batch.reports) {
                assert_eq!(report.name, pair.name);
                let solo = JoinPipeline::new(config.clone()).run(pair);
                assert_eq!(
                    report.outcome.predicted_pairs, solo.predicted_pairs,
                    "pair {} diverged at {threads} threads",
                    pair.name
                );
                assert_eq!(report.outcome.metrics, solo.metrics);
            }
            // Every task ran exactly once, on some worker.
            assert_eq!(
                batch.scheduler.tasks_per_worker.iter().sum::<usize>(),
                repository.len()
            );
            assert!(batch.scheduler.workers * batch.scheduler.inner_threads <= threads.max(1));
        }
    }

    #[test]
    fn shared_corpus_reused_across_pairs_sharing_a_column() {
        // Three pairs probing the same source column: the corpus must
        // intern it once and serve the other two references from cache.
        let source: Vec<String> = vec![
            "Rafiei, Davood".into(),
            "Bowling, Michael".into(),
            "Gosgnach, Simon".into(),
        ];
        let repository: Vec<ColumnPair> = [
            vec!["D Rafiei".into(), "M Bowling".into(), "S Gosgnach".into()],
            vec!["d.rafiei".into(), "m.bowling".into(), "s.gosgnach".into()],
            vec!["RAFIEI D".into(), "BOWLING M".into(), "GOSGNACH S".into()],
        ]
        .into_iter()
        .enumerate()
        .map(|(i, target)| ColumnPair::aligned(format!("shared-{i}"), source.clone(), target))
        .collect();

        for threads in [1usize, 4] {
            let batch =
                BatchJoinRunner::new(JoinPipelineConfig::paper_default(), threads).run(&repository);
            let corpus = batch.scheduler.corpus.expect("n-gram strategy builds a corpus");
            // 1 shared source + 3 distinct targets = 4 interned columns for
            // 6 references: 2 normalizations saved, at any thread count.
            assert_eq!(corpus.columns_interned, 4, "at {threads} threads");
            assert_eq!(corpus.column_hits, 2, "at {threads} threads");
            assert_eq!(corpus.stats_built, 4);
            assert_eq!(corpus.stats_hits, 2);
            let oracle = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), threads)
                .run_static(&repository);
            assert_outcomes_identical(&batch, &oracle);
            assert!(oracle.scheduler.corpus.is_none());
        }
    }

    #[test]
    fn external_corpus_shared_across_runs_is_bit_identical() {
        let config = JoinPipelineConfig::paper_default();
        let repository = small_repository();
        let cold = BatchJoinRunner::new(config.clone(), 2).run(&repository);
        let normalize = match &config.matching {
            RowMatchingStrategy::NGram(cfg) => cfg.normalize,
            RowMatchingStrategy::Golden => unreachable!("paper default matches by n-gram"),
        };
        let resident = Arc::new(GramCorpus::new(normalize));
        let runner = BatchJoinRunner::new(config, 2).with_corpus(Arc::clone(&resident));
        let first = runner.run(&repository);
        assert_outcomes_identical(&first, &cold);
        // The corpus outlived the run: 4 distinct columns stay resident.
        assert_eq!(resident.stats().columns_interned, 4);
        let cold_hits = cold.scheduler.corpus.expect("n-gram run has corpus stats").column_hits;
        // The warm rerun re-interns nothing — every column reference hits.
        let second = runner.run(&repository);
        assert_outcomes_identical(&second, &cold);
        let warm = resident.stats();
        assert_eq!(warm.columns_interned, 4);
        assert_eq!(warm.column_attempts, 4);
        assert_eq!(warm.column_hits, cold_hits * 2 + 4);
        // The run-level snapshot is the resident corpus's (accumulating).
        assert_eq!(second.scheduler.corpus, Some(warm));
        // Serve counters belong to the serving layer, not the runner.
        assert!(cold.serve.is_none() && first.serve.is_none() && second.serve.is_none());
    }

    #[test]
    fn aggregate_metrics_add_up() {
        let repository = small_repository();
        let batch = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), 2).run(&repository);
        let m = &batch.metrics;
        assert_eq!(m.pairs, 2);
        assert_eq!(m.joined_pairs, 2);
        let golden_total: usize = batch.reports.iter().map(|r| r.outcome.metrics.golden).sum();
        assert_eq!(m.micro.golden, golden_total);
        assert!(m.micro.f1 > 0.8, "micro f1 {}", m.micro.f1);
        assert!(m.macro_f1 > 0.8, "macro f1 {}", m.macro_f1);
    }

    #[test]
    fn decoy_pair_predicts_nothing() {
        let mut repository = small_repository();
        repository.push(decoy_pair());
        let batch = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), 4).run(&repository);
        let decoy = batch.reports.iter().find(|r| r.name == "decoy").unwrap();
        assert!(
            decoy.outcome.predicted_pairs.is_empty(),
            "decoy predicted {:?}",
            decoy.outcome.predicted_pairs
        );
        // The joinable pairs are unaffected by the decoy riding along.
        assert_eq!(batch.metrics.joined_pairs, 2);
        assert_eq!(batch.metrics.pairs, 3);
    }

    #[test]
    fn empty_repository() {
        for outcome in [
            BatchJoinRunner::new(JoinPipelineConfig::paper_default(), 4).run(&[]),
            BatchJoinRunner::new(JoinPipelineConfig::paper_default(), 4).run_static(&[]),
        ] {
            assert!(outcome.reports.is_empty());
            assert_eq!(outcome.metrics.pairs, 0);
            assert_eq!(outcome.metrics.macro_f1, 0.0);
            assert_eq!(outcome.metrics.micro.f1, 0.0);
            assert_eq!(outcome.scheduler.workers, 0);
            assert!(outcome.scheduler.tasks_per_worker.is_empty());
            assert_eq!(outcome.scheduler.stolen_tasks, 0);
        }
    }

    #[test]
    fn single_pair_repository() {
        // One pair, budget 4: one worker takes the whole inner budget.
        let repository = vec![small_repository().remove(0)];
        let batch = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), 4).run(&repository);
        assert_eq!(batch.scheduler.workers, 1);
        assert_eq!(batch.scheduler.inner_threads, 4);
        assert_eq!(batch.scheduler.tasks_per_worker, vec![1]);
        assert_eq!(batch.scheduler.stolen_tasks, 0);
        let oracle =
            BatchJoinRunner::new(JoinPipelineConfig::paper_default(), 1).run_static(&repository);
        assert_outcomes_identical(&batch, &oracle);
        assert_eq!(batch.metrics.joined_pairs, 1);
    }

    #[test]
    fn all_decoy_repository_predicts_nothing() {
        let repository: Vec<ColumnPair> = (0..3)
            .map(|i| {
                let mut p = decoy_pair();
                p.name = format!("decoy-{i}");
                p
            })
            .collect();
        for threads in [1usize, 4] {
            let batch =
                BatchJoinRunner::new(JoinPipelineConfig::paper_default(), threads).run(&repository);
            assert_eq!(batch.metrics.joined_pairs, 0);
            assert_eq!(batch.metrics.micro.predicted, 0);
            assert_eq!(batch.metrics.macro_f1, 0.0);
            for report in &batch.reports {
                assert!(report.outcome.predicted_pairs.is_empty(), "{}", report.name);
            }
            let oracle = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), threads)
                .run_static(&repository);
            assert_outcomes_identical(&batch, &oracle);
        }
    }

    #[test]
    fn golden_strategy_batch() {
        let config = JoinPipelineConfig {
            matching: RowMatchingStrategy::Golden,
            ..JoinPipelineConfig::paper_default()
        };
        let batch = BatchJoinRunner::new(config, 2).run(&small_repository());
        assert!((batch.metrics.micro.recall - 1.0).abs() < 1e-9, "{:?}", batch.metrics);
        // Golden matching needs no text artifacts: no corpus is built.
        assert!(batch.scheduler.corpus.is_none());
    }

    #[test]
    fn thread_budget_clamped() {
        assert_eq!(BatchJoinRunner::new(JoinPipelineConfig::paper_default(), 0).threads(), 1);
    }

    #[test]
    fn worker_inner_product_never_exceeds_budget() {
        for (threads, pairs) in [(1usize, 5usize), (2, 5), (4, 2), (4, 12), (7, 3), (16, 4)] {
            let runner = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), threads);
            let (workers, inner) = runner.split(pairs);
            assert!(workers * inner <= threads, "budget exceeded at {threads}t/{pairs}p");
            assert!(workers >= 1 && inner >= 1);
        }
    }

    #[test]
    fn clean_run_reports_all_ok() {
        let repository = small_repository();
        for threads in [1usize, 4] {
            let batch =
                BatchJoinRunner::new(JoinPipelineConfig::paper_default(), threads).run(&repository);
            assert_eq!(
                batch.faults,
                BatchFaultStats { ok_pairs: 2, failed_pairs: 0, timed_out_pairs: 0 }
            );
            for report in &batch.reports {
                assert!(report.status.is_ok(), "{}: {:?}", report.name, report.status);
            }
        }
    }

    #[test]
    fn row_cap_degrades_oversized_pairs_thread_invariantly() {
        // `emails` has 6 rows, `names` 8: a 7-row cap admits only `emails`.
        let repository = small_repository();
        let budget = RunBudget::unlimited().with_row_cap(7);
        let oracle = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), 1)
            .with_budget(budget)
            .run_static(&repository);
        assert_eq!(
            oracle.faults,
            BatchFaultStats { ok_pairs: 1, failed_pairs: 0, timed_out_pairs: 1 }
        );
        for threads in [1usize, 2, 4] {
            let batch = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), threads)
                .with_budget(budget)
                .run(&repository);
            assert_outcomes_identical(&batch, &oracle);
            let names = batch.reports.iter().find(|r| r.name == "names").unwrap();
            assert_eq!(
                names.status,
                PairStatus::TimedOut {
                    phase: PairPhase::Matching,
                    exceeded: tjoin_text::BudgetExceeded::Rows,
                }
            );
            assert!(names.outcome.predicted_pairs.is_empty());
            // The in-budget pair is untouched by its neighbor's overrun.
            let emails = batch.reports.iter().find(|r| r.name == "emails").unwrap();
            assert!(emails.status.is_ok());
            assert!(emails.outcome.metrics.f1 > 0.8, "{:?}", emails.outcome.metrics);
        }
    }

    #[test]
    fn zero_deadline_times_out_every_pair() {
        let repository = small_repository();
        let budget = RunBudget::unlimited().with_deadline(Duration::ZERO);
        for threads in [1usize, 4] {
            let batch = BatchJoinRunner::new(JoinPipelineConfig::paper_default(), threads)
                .with_budget(budget)
                .run(&repository);
            assert_eq!(batch.faults.timed_out_pairs, repository.len());
            assert_eq!(batch.faults.ok_pairs, 0);
            for report in &batch.reports {
                assert!(
                    matches!(
                        report.status,
                        PairStatus::TimedOut {
                            exceeded: tjoin_text::BudgetExceeded::Deadline,
                            ..
                        }
                    ),
                    "{}: {:?}",
                    report.name,
                    report.status
                );
            }
        }
    }
}
