//! Delta-aware incremental join maintenance.
//!
//! The batch pipeline treats every repository snapshot as immutable: a row
//! append means re-matching, re-synthesizing, and re-joining the whole pair
//! from scratch. This module keeps a joined pair **live** under appends
//! instead, following the workspace's oracle discipline — every incremental
//! path has its from-scratch counterpart retained as the differential
//! reference:
//!
//! * [`IncrementalCoverage`] maintains the per-transformation covered-row
//!   lists of a fixed transformation set under appended candidate rows.
//!   Coverage is **row-independent** (each row is scanned against each
//!   transformation in isolation — see `tjoin_core::coverage`), so scoring
//!   only the delta rows and extending the sorted lists is bit-identical to
//!   [`tjoin_core::coverage::compute_coverage`] over the final candidate
//!   set. `tests/proptest_incremental.rs` proves this across random append
//!   schedules and thread counts.
//! * [`IncrementalJoin`] composes that with the pipeline: an append
//!   delta-rescores only the rows it added, and the expensive synthesis
//!   stage re-runs **only when the delta's join quality drops below a
//!   configurable floor** ([`IncrementalJoinConfig::resynthesis_floor`]).
//!   Above the floor the existing transformation set is re-applied via
//!   [`JoinPipeline::join_with_transformations`]; below it the outcome is
//!   replaced by a full [`JoinPipeline::run`] over the grown pair —
//!   bit-identical, by construction, to a fresh pipeline on the final data.
//!
//! Incremental maintenance requires [`RowMatchingStrategy::Golden`]: the
//! n-gram matcher selects representative grams from *whole-column* IRF
//! statistics, so an append could retroactively change which old rows are
//! candidates — there is no sound delta for it. Under golden matching the
//! candidate list grows append-only, which is what makes the delta exact.

use std::time::Instant;

use crate::pipeline::{JoinOutcome, JoinPipeline, JoinPipelineConfig, RowMatchingStrategy};
use tjoin_core::coverage::compute_coverage;
use tjoin_core::PairSet;
use tjoin_datasets::{row_id, ColumnPair};
use tjoin_matching::golden_value_pairs;
use tjoin_text::{checked_row_count, NormalizeOptions};
use tjoin_units::Transformation;

/// Configuration of [`IncrementalJoin`].
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalJoinConfig {
    /// Minimum fraction of an append's candidate rows the current
    /// transformation set must cover for the set to be kept. A delta whose
    /// coverage falls below this floor triggers a full re-synthesis over
    /// the grown pair. `0.0` never re-synthesizes; `1.0` re-synthesizes on
    /// any uncovered appended row.
    pub resynthesis_floor: f64,
}

impl Default for IncrementalJoinConfig {
    fn default() -> Self {
        Self {
            resynthesis_floor: 0.5,
        }
    }
}

impl IncrementalJoinConfig {
    fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.resynthesis_floor),
            "resynthesis_floor must be within 0.0..=1.0, got {}",
            self.resynthesis_floor
        );
    }
}

/// Per-transformation covered-row lists maintained incrementally under
/// appended candidate rows.
///
/// Holds a fixed transformation set and, for each transformation, the
/// sorted row indices (into the accumulated candidate list) it covers —
/// the same shape [`tjoin_core::coverage::CoverageOutcome::covered_rows`]
/// produces. [`Self::append_rows`] scores only the delta and extends the
/// lists; the result is bit-identical to a from-scratch
/// [`compute_coverage`] over the final candidates because the coverage scan
/// is row-independent.
#[derive(Debug, Clone)]
pub struct IncrementalCoverage {
    transformations: Vec<Transformation>,
    normalize: NormalizeOptions,
    use_cache: bool,
    threads: usize,
    covered: Vec<Vec<u32>>,
    rows: usize,
}

impl IncrementalCoverage {
    /// Builds the initial state with a full coverage pass over `rows`.
    pub fn new(
        transformations: Vec<Transformation>,
        rows: &[(String, String)],
        normalize: NormalizeOptions,
        use_cache: bool,
        threads: usize,
    ) -> Self {
        let pairs = PairSet::from_strings(rows, &normalize);
        let outcome = compute_coverage(&transformations, &pairs, use_cache, threads);
        Self {
            transformations,
            normalize,
            use_cache,
            threads,
            covered: outcome.covered_rows,
            rows: rows.len(),
        }
    }

    /// Appends candidate rows, scoring **only the delta**: coverage runs
    /// over a delta-only pair set, the returned row ids are offset by the
    /// previous row count, and each sorted covered list is extended in
    /// place. Returns the *delta quality* — the fraction of the appended
    /// rows covered by at least one transformation (`1.0` for an empty
    /// delta, and also when the set itself is empty over a non-empty delta
    /// is `0.0`).
    pub fn append_rows(&mut self, delta: &[(String, String)]) -> f64 {
        if delta.is_empty() {
            return 1.0;
        }
        let base = checked_row_count(self.rows + delta.len())
            .map(|_| self.rows as u32)
            .unwrap_or_else(|e| panic!("appended candidate rows overflow the row-id space: {e}"));
        let pairs = PairSet::from_strings(delta, &self.normalize);
        let outcome = compute_coverage(&self.transformations, &pairs, self.use_cache, self.threads);
        let mut covered_delta = vec![false; delta.len()];
        for (list, fresh) in self.covered.iter_mut().zip(&outcome.covered_rows) {
            for &row in fresh {
                covered_delta[row as usize] = true;
                list.push(base + row);
            }
        }
        self.rows += delta.len();
        covered_delta.iter().filter(|&&c| c).count() as f64 / delta.len() as f64
    }

    /// The transformation set the coverage is maintained for.
    pub fn transformations(&self) -> &[Transformation] {
        &self.transformations
    }

    /// Sorted covered-row lists, one per transformation (input order) —
    /// bit-identical to a from-scratch [`compute_coverage`] over every
    /// candidate row appended so far.
    pub fn covered_rows(&self) -> &[Vec<u32>] {
        &self.covered
    }

    /// Total candidate rows scored so far.
    pub fn rows(&self) -> usize {
        self.rows
    }
}

/// What one [`IncrementalJoin::append`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppendReport {
    /// Number of rows appended to each column.
    pub appended_rows: usize,
    /// Fraction of the appended candidate rows the pre-append
    /// transformation set covered.
    pub delta_quality: f64,
    /// Whether the delta quality fell below the floor and the pair was
    /// fully re-synthesized.
    pub resynthesized: bool,
}

/// A joined column pair kept live under appends.
///
/// Construction runs the full pipeline once; each [`Self::append`] then
/// delta-rescores coverage and either re-applies the existing
/// transformation set (cheap: equi-join + evaluation only) or, when the
/// delta's coverage falls below [`IncrementalJoinConfig::resynthesis_floor`],
/// re-runs the full pipeline over the grown pair. In the re-synthesis case
/// the held [`JoinOutcome`] is bit-identical to a fresh
/// [`JoinPipeline::run`] on the final pair.
#[derive(Debug, Clone)]
pub struct IncrementalJoin {
    pipeline: JoinPipeline,
    config: IncrementalJoinConfig,
    pair: ColumnPair,
    outcome: JoinOutcome,
    coverage: IncrementalCoverage,
}

impl IncrementalJoin {
    /// Runs the full pipeline on `pair` and captures the incremental state.
    ///
    /// Panics unless `pipeline_config.matching` is
    /// [`RowMatchingStrategy::Golden`] (see the module docs for why n-gram
    /// matching admits no sound delta) or if `config` is out of range.
    pub fn new(
        pipeline_config: JoinPipelineConfig,
        config: IncrementalJoinConfig,
        pair: ColumnPair,
    ) -> Self {
        assert!(
            matches!(pipeline_config.matching, RowMatchingStrategy::Golden),
            "incremental join maintenance requires RowMatchingStrategy::Golden: \
             n-gram candidate selection depends on whole-column statistics, so an \
             append could retroactively change old candidates"
        );
        config.validate();
        let pipeline = JoinPipeline::new(pipeline_config);
        let outcome = pipeline.run(&pair);
        let coverage = Self::coverage_state(&pipeline, &outcome, &pair);
        Self {
            pipeline,
            config,
            pair,
            outcome,
            coverage,
        }
    }

    fn coverage_state(
        pipeline: &JoinPipeline,
        outcome: &JoinOutcome,
        pair: &ColumnPair,
    ) -> IncrementalCoverage {
        let candidates = golden_value_pairs(pair);
        let transformations: Vec<Transformation> = outcome
            .transformations
            .transformations
            .iter()
            .map(|c| c.transformation.clone())
            .collect();
        let synthesis = &pipeline.config().synthesis;
        let coverage = IncrementalCoverage::new(
            transformations,
            &candidates,
            synthesis.normalize,
            synthesis.unit_cache,
            synthesis.threads,
        );
        if synthesis.sample_size.is_none() {
            // The greedy cover stores each selected transformation's *full*
            // covered set (not the marginal one), so without sampling the
            // rebuilt lists must equal the pipeline's own — a cheap
            // differential trap on the seeding path.
            let reported: Vec<&Vec<u32>> = outcome
                .transformations
                .transformations
                .iter()
                .map(|c| &c.covered_rows)
                .collect();
            assert!(
                coverage.covered_rows().iter().eq(reported.iter().copied()),
                "seeded incremental coverage diverges from the pipeline's cover"
            );
        }
        coverage
    }

    /// Appends aligned `(source, target)` rows — each delta entry becomes
    /// one new row in both columns, golden-mapped to each other — then
    /// delta-rescores and re-joins (or re-synthesizes, below the floor).
    pub fn append(&mut self, delta: &[(String, String)]) -> AppendReport {
        if delta.is_empty() {
            return AppendReport {
                appended_rows: 0,
                delta_quality: 1.0,
                resynthesized: false,
            };
        }
        for (source, target) in delta {
            let source_id = row_id(self.pair.source.len());
            let target_id = row_id(self.pair.target.len());
            self.pair.source.push(source.clone());
            self.pair.target.push(target.clone());
            self.pair.golden.push((source_id, target_id));
        }
        let delta_quality = self.coverage.append_rows(delta);
        let resynthesized = delta_quality < self.config.resynthesis_floor;
        if resynthesized {
            self.outcome = self.pipeline.run(&self.pair);
            self.coverage = Self::coverage_state(&self.pipeline, &self.outcome, &self.pair);
        } else {
            let join_start = Instant::now();
            let (predicted, metrics) = self.pipeline.join_with_transformations(
                &self.pair,
                self.outcome
                    .transformations
                    .transformations
                    .iter()
                    .map(|c| &c.transformation),
            );
            let join_time = join_start.elapsed();
            self.outcome.predicted_pairs = predicted;
            self.outcome.metrics = metrics;
            self.outcome.candidate_pairs += delta.len();
            self.outcome.join_time = join_time;
            for (covered, fresh) in self
                .outcome
                .transformations
                .transformations
                .iter_mut()
                .zip(self.coverage.covered_rows())
            {
                covered.covered_rows = fresh.clone();
            }
            self.outcome.transformations.total_pairs = self.coverage.rows();
        }
        AppendReport {
            appended_rows: delta.len(),
            delta_quality,
            resynthesized,
        }
    }

    /// The accumulated column pair (base plus every append).
    pub fn pair(&self) -> &ColumnPair {
        &self.pair
    }

    /// The current join outcome. After a re-synthesizing append this is
    /// bit-identical to a fresh [`JoinPipeline::run`] on [`Self::pair`];
    /// after a kept append it reflects the retained transformation set
    /// re-applied to the grown pair.
    pub fn outcome(&self) -> &JoinOutcome {
        &self.outcome
    }

    /// The incrementally maintained coverage state.
    pub fn coverage(&self) -> &IncrementalCoverage {
        &self.coverage
    }

    /// The underlying pipeline.
    pub fn pipeline(&self) -> &JoinPipeline {
        &self.pipeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::JoinPipelineConfig;

    fn aligned_pair(rows: &[(&str, &str)]) -> ColumnPair {
        ColumnPair::aligned(
            "incremental",
            rows.iter().map(|(s, _)| s.to_string()).collect(),
            rows.iter().map(|(_, t)| t.to_string()).collect(),
        )
    }

    fn staff_rows() -> Vec<(&'static str, &'static str)> {
        vec![
            ("Chen, Amy", "A Chen"),
            ("Smith, Bob", "B Smith"),
            ("Jones, Carol", "C Jones"),
            ("Brown, Dan", "D Brown"),
        ]
    }

    fn golden_config() -> JoinPipelineConfig {
        JoinPipelineConfig {
            matching: RowMatchingStrategy::Golden,
            ..JoinPipelineConfig::default()
        }
    }

    fn assert_outcomes_identical(actual: &JoinOutcome, expected: &JoinOutcome) {
        assert_eq!(actual.transformations, expected.transformations);
        assert_eq!(actual.predicted_pairs, expected.predicted_pairs);
        assert_eq!(actual.metrics, expected.metrics);
        assert_eq!(actual.candidate_pairs, expected.candidate_pairs);
    }

    #[test]
    fn incremental_coverage_matches_from_scratch_oracle() {
        let base: Vec<(String, String)> = staff_rows()
            .iter()
            .map(|(s, t)| (s.to_string(), t.to_string()))
            .collect();
        let pipeline = JoinPipeline::new(golden_config());
        let outcome = pipeline.run(&aligned_pair(&staff_rows()));
        let transformations: Vec<Transformation> = outcome
            .transformations
            .transformations
            .iter()
            .map(|c| c.transformation.clone())
            .collect();
        assert!(!transformations.is_empty(), "fixture must synthesize");

        let mut incremental = IncrementalCoverage::new(
            transformations.clone(),
            &base[..2],
            NormalizeOptions::default(),
            true,
            1,
        );
        incremental.append_rows(&base[2..3]);
        incremental.append_rows(&base[3..]);

        let pairs = PairSet::from_strings(&base, &NormalizeOptions::default());
        let oracle = compute_coverage(&transformations, &pairs, true, 1);
        assert_eq!(incremental.covered_rows(), &oracle.covered_rows[..]);
        assert_eq!(incremental.rows(), base.len());
    }

    #[test]
    fn covered_append_keeps_transformations_and_rejoins() {
        let mut join = IncrementalJoin::new(
            golden_config(),
            IncrementalJoinConfig {
                resynthesis_floor: 1.0,
            },
            aligned_pair(&staff_rows()),
        );
        let before: Vec<String> = join
            .outcome()
            .transformations
            .transformations
            .iter()
            .map(|c| c.transformation.to_string())
            .collect();
        let report = join.append(&[("Davis, Erin".to_string(), "E Davis".to_string())]);
        assert_eq!(report.appended_rows, 1);
        assert_eq!(report.delta_quality, 1.0, "same-format row must be covered");
        assert!(!report.resynthesized);
        let after: Vec<String> = join
            .outcome()
            .transformations
            .transformations
            .iter()
            .map(|c| c.transformation.to_string())
            .collect();
        assert_eq!(before, after, "kept append must not change the programs");
        assert_eq!(join.pair().source.len(), 5);
        assert_eq!(join.outcome().candidate_pairs, 5);
        assert!(
            join.outcome().predicted_pairs.contains(&(4, 4)),
            "re-join must pick up the appended row: {:?}",
            join.outcome().predicted_pairs
        );
    }

    #[test]
    fn uncovered_append_resynthesizes_bit_identically_to_full_run() {
        let mut join = IncrementalJoin::new(
            golden_config(),
            IncrementalJoinConfig {
                resynthesis_floor: 1.0,
            },
            aligned_pair(&staff_rows()),
        );
        // A format family the "Lastname, Firstname" programs cannot cover.
        let delta = vec![
            ("2024-01-02".to_string(), "02/01/2024".to_string()),
            ("2024-03-04".to_string(), "04/03/2024".to_string()),
        ];
        let report = join.append(&delta);
        assert!(report.delta_quality < 1.0, "delta must be uncovered");
        assert!(report.resynthesized);
        let fresh = JoinPipeline::new(golden_config()).run(join.pair());
        assert_outcomes_identical(join.outcome(), &fresh);
    }

    #[test]
    fn floor_zero_never_resynthesizes() {
        let mut join = IncrementalJoin::new(
            golden_config(),
            IncrementalJoinConfig {
                resynthesis_floor: 0.0,
            },
            aligned_pair(&staff_rows()),
        );
        let report = join.append(&[("2024-01-02".to_string(), "02/01/2024".to_string())]);
        assert!(!report.resynthesized, "floor 0.0 must keep the set");
        assert!(report.delta_quality < 1.0);
    }

    #[test]
    fn empty_append_is_a_noop() {
        let mut join = IncrementalJoin::new(
            golden_config(),
            IncrementalJoinConfig::default(),
            aligned_pair(&staff_rows()),
        );
        let before = join.outcome().clone();
        let report = join.append(&[]);
        assert_eq!(report.appended_rows, 0);
        assert_eq!(report.delta_quality, 1.0);
        assert!(!report.resynthesized);
        assert_outcomes_identical(join.outcome(), &before);
    }

    #[test]
    #[should_panic(expected = "requires RowMatchingStrategy::Golden")]
    fn ngram_matching_rejected() {
        let _ = IncrementalJoin::new(
            JoinPipelineConfig::default(),
            IncrementalJoinConfig::default(),
            aligned_pair(&staff_rows()),
        );
    }

    #[test]
    #[should_panic(expected = "resynthesis_floor")]
    fn out_of_range_floor_rejected() {
        let _ = IncrementalJoin::new(
            golden_config(),
            IncrementalJoinConfig {
                resynthesis_floor: 1.5,
            },
            aligned_pair(&staff_rows()),
        );
    }
}
