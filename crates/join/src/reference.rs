//! The retained serial equi-join oracle.
//!
//! This is the pre-fingerprint `JoinPipeline::equi_join` loop, kept
//! verbatim as the differential oracle for the parallel fingerprint join in
//! [`crate::pipeline`]: the target column hashed by owned normalized
//! strings, a transformation-outer apply loop over all source rows, and a
//! global seen-set dedup in discovery order. The production join must
//! produce bit-identical, identically ordered predicted pairs at any
//! thread count; `crates/join/tests/proptest_join.rs` holds it to that.

use std::collections::HashMap;
use tjoin_datasets::{row_id, ColumnPair};
use tjoin_text::{normalize_for_matching, NormalizeOptions};
use tjoin_units::Transformation;

/// Applies every transformation to every source row and hash-joins the
/// transformed values against the (normalized) target column, keyed by
/// owned strings (the retained oracle). A source row matching several
/// target rows yields all pairs (many-to-many, as the paper assumes when
/// the relationship is unspecified).
pub fn equi_join_reference<'a, I>(
    pair: &ColumnPair,
    transformations: I,
    normalize: &NormalizeOptions,
) -> Vec<(u32, u32)>
where
    I: IntoIterator<Item = &'a Transformation>,
{
    pair.assert_row_indexable();
    // Hash the target column on normalized values.
    let mut target_index: HashMap<String, Vec<u32>> = HashMap::new();
    for (row, value) in pair.target.iter().enumerate() {
        target_index
            .entry(normalize_for_matching(value, normalize))
            .or_default()
            .push(row_id(row));
    }

    let sources_normalized: Vec<String> = pair
        .source
        .iter()
        .map(|v| normalize_for_matching(v, normalize))
        .collect();

    let mut predicted: Vec<(u32, u32)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for transformation in transformations {
        for (src_row, src_value) in sources_normalized.iter().enumerate() {
            let Some(out) = transformation.apply(src_value) else {
                continue;
            };
            if let Some(targets) = target_index.get(&out) {
                for &tgt_row in targets {
                    if seen.insert((row_id(src_row), tgt_row)) {
                        predicted.push((row_id(src_row), tgt_row));
                    }
                }
            }
        }
    }
    predicted
}

#[cfg(test)]
mod tests {
    use super::*;
    use tjoin_units::Unit;

    #[test]
    fn oracle_joins_the_paper_example() {
        let pair = ColumnPair::aligned(
            "staff",
            vec!["Rafiei, Davood".into(), "Bowling, Michael".into()],
            vec!["D Rafiei".into(), "M Bowling".into()],
        );
        let t = Transformation::new(vec![
            Unit::split_substr(' ', 1, 0, 1),
            Unit::literal(" "),
            Unit::split(',', 0),
        ]);
        let predicted = equi_join_reference(&pair, [&t], &NormalizeOptions::default());
        assert_eq!(predicted, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn oracle_dedups_across_transformations() {
        let pair = ColumnPair::aligned("x", vec!["ab".into()], vec!["ab".into()]);
        let t1 = Transformation::single(Unit::substr(0, 2));
        let t2 = Transformation::single(Unit::split(',', 0));
        let predicted = equi_join_reference(&pair, [&t1, &t2], &NormalizeOptions::default());
        assert_eq!(predicted, vec![(0, 0)]);
    }
}
