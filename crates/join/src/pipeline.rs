//! The end-to-end join pipeline.

use crate::evaluate::{evaluate_join, JoinMetrics};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::{Duration, Instant};
use tjoin_core::{SynthesisConfig, SynthesisEngine};
use tjoin_datasets::ColumnPair;
use tjoin_matching::{golden_pairs, NGramMatcher, NGramMatcherConfig};
use tjoin_text::normalize_for_matching;
use tjoin_units::{Transformation, TransformationSet};

/// How candidate joinable row pairs are obtained before synthesis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RowMatchingStrategy {
    /// The representative-n-gram matcher (Algorithm 1).
    NGram(NGramMatcherConfig),
    /// The ground-truth mapping carried by the dataset (oracle mode).
    Golden,
}

impl Default for RowMatchingStrategy {
    fn default() -> Self {
        RowMatchingStrategy::NGram(NGramMatcherConfig::default())
    }
}

/// Configuration of the end-to-end pipeline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JoinPipelineConfig {
    /// Row-matching strategy.
    pub matching: RowMatchingStrategy,
    /// Synthesis configuration (placeholder bound, pruning, sampling, ...).
    pub synthesis: SynthesisConfig,
    /// Minimum support a transformation needs (as a fraction of the candidate
    /// pairs) to be applied in the join step — the paper uses 5 % on most
    /// datasets and 2 % on Open data.
    pub join_min_support: f64,
}

impl JoinPipelineConfig {
    /// The paper's default end-to-end setting: n-gram matching, default
    /// synthesis, 5 % join support.
    pub fn paper_default() -> Self {
        Self {
            matching: RowMatchingStrategy::default(),
            synthesis: SynthesisConfig::default(),
            join_min_support: 0.05,
        }
    }
}

/// The result of running the pipeline on one column pair.
#[derive(Debug, Clone)]
pub struct JoinOutcome {
    /// The transformations applied during the join (after support filtering).
    pub transformations: TransformationSet,
    /// Predicted joinable row pairs `(source_row, target_row)`.
    pub predicted_pairs: Vec<(u32, u32)>,
    /// Join quality against the golden mapping.
    pub metrics: JoinMetrics,
    /// Number of candidate pairs handed to synthesis.
    pub candidate_pairs: usize,
    /// Wall-clock time spent in row matching.
    pub matching_time: Duration,
    /// Wall-clock time spent in transformation discovery.
    pub synthesis_time: Duration,
    /// Wall-clock time spent applying transformations and equi-joining.
    pub join_time: Duration,
}

/// The end-to-end join pipeline.
#[derive(Debug, Clone, Default)]
pub struct JoinPipeline {
    config: JoinPipelineConfig,
}

impl JoinPipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: JoinPipelineConfig) -> Self {
        config.synthesis.validate();
        assert!((0.0..=1.0).contains(&config.join_min_support));
        Self { config }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &JoinPipelineConfig {
        &self.config
    }

    /// Runs the full pipeline on a column pair.
    pub fn run(&self, pair: &ColumnPair) -> JoinOutcome {
        // 1. Row matching.
        let match_start = Instant::now();
        let candidate_values: Vec<(String, String)> = match &self.config.matching {
            RowMatchingStrategy::NGram(cfg) => {
                NGramMatcher::new(cfg.clone()).candidate_value_pairs(pair)
            }
            RowMatchingStrategy::Golden => golden_pairs(pair)
                .into_iter()
                .map(|(s, t)| {
                    (
                        pair.source[s as usize].clone(),
                        pair.target[t as usize].clone(),
                    )
                })
                .collect(),
        };
        let matching_time = match_start.elapsed();

        // 2. Transformation discovery.
        let synth_start = Instant::now();
        let engine = SynthesisEngine::new(self.config.synthesis.clone());
        let result = engine.discover_from_strings(&candidate_values);
        let synthesis_time = synth_start.elapsed();

        // 3. Support filtering.
        let transformations = result.cover.filter_by_support(self.config.join_min_support);

        // 4. Transformed equi-join.
        let join_start = Instant::now();
        let predicted_pairs = self.equi_join(
            pair,
            transformations.iter().map(|t| &t.transformation),
        );
        let join_time = join_start.elapsed();

        // 5. Evaluation.
        let metrics = evaluate_join(&predicted_pairs, &pair.golden);

        JoinOutcome {
            transformations,
            predicted_pairs,
            metrics,
            candidate_pairs: candidate_values.len(),
            matching_time,
            synthesis_time,
            join_time,
        }
    }

    /// Joins a column pair given an explicit transformation list (used to
    /// evaluate baselines such as Auto-Join under the same join machinery).
    pub fn join_with_transformations<'a, I>(
        &self,
        pair: &ColumnPair,
        transformations: I,
    ) -> (Vec<(u32, u32)>, JoinMetrics)
    where
        I: IntoIterator<Item = &'a Transformation>,
    {
        let predicted = self.equi_join(pair, transformations);
        let metrics = evaluate_join(&predicted, &pair.golden);
        (predicted, metrics)
    }

    /// Applies every transformation to every source row and hash-joins the
    /// transformed values against the (normalized) target column. A source
    /// row matching several target rows yields all pairs (many-to-many, as
    /// the paper assumes when the relationship is unspecified).
    fn equi_join<'a, I>(&self, pair: &ColumnPair, transformations: I) -> Vec<(u32, u32)>
    where
        I: IntoIterator<Item = &'a Transformation>,
    {
        let normalize = &self.config.synthesis.normalize;
        // Hash the target column on normalized values.
        let mut target_index: HashMap<String, Vec<u32>> = HashMap::new();
        for (row, value) in pair.target.iter().enumerate() {
            target_index
                .entry(normalize_for_matching(value, normalize))
                .or_default()
                .push(row as u32);
        }

        let sources_normalized: Vec<String> = pair
            .source
            .iter()
            .map(|v| normalize_for_matching(v, normalize))
            .collect();

        let mut predicted: Vec<(u32, u32)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for transformation in transformations {
            for (src_row, src_value) in sources_normalized.iter().enumerate() {
                let Some(out) = transformation.apply(src_value) else {
                    continue;
                };
                if let Some(targets) = target_index.get(&out) {
                    for &tgt_row in targets {
                        if seen.insert((src_row as u32, tgt_row)) {
                            predicted.push((src_row as u32, tgt_row));
                        }
                    }
                }
            }
        }
        predicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tjoin_units::Unit;

    fn staff_pair() -> ColumnPair {
        ColumnPair::aligned(
            "staff",
            vec![
                "Rafiei, Davood".into(),
                "Nascimento, Mario".into(),
                "Gingrich, Douglas".into(),
                "Prus-Czarnecki, Andrzej".into(),
                "Bowling, Michael".into(),
                "Gosgnach, Simon".into(),
            ],
            vec![
                "D Rafiei".into(),
                "M Nascimento".into(),
                "D Gingrich".into(),
                "A Prus-czarnecki".into(),
                "M Bowling".into(),
                "S Gosgnach".into(),
            ],
        )
    }

    #[test]
    fn end_to_end_join_on_paper_example() {
        let pipeline = JoinPipeline::new(JoinPipelineConfig::paper_default());
        let outcome = pipeline.run(&staff_pair());
        assert!(outcome.candidate_pairs >= 6);
        assert!(
            outcome.metrics.recall >= 0.99,
            "recall {} with {} transformations",
            outcome.metrics.recall,
            outcome.transformations.len()
        );
        assert!(outcome.metrics.precision >= 0.8, "precision {}", outcome.metrics.precision);
        assert!(outcome.metrics.f1 > 0.85);
    }

    #[test]
    fn golden_matching_mode() {
        let config = JoinPipelineConfig {
            matching: RowMatchingStrategy::Golden,
            ..JoinPipelineConfig::paper_default()
        };
        let pipeline = JoinPipeline::new(config);
        let outcome = pipeline.run(&staff_pair());
        assert_eq!(outcome.candidate_pairs, 6);
        assert!((outcome.metrics.recall - 1.0).abs() < 1e-9);
    }

    #[test]
    fn support_threshold_filters_one_off_rules() {
        // One noisy row: its bespoke transformation (if any) must not survive
        // a 30% support threshold over 6 candidate pairs.
        let mut pair = staff_pair();
        pair.source.push("Zzz, Qqq".into());
        pair.target.push("completely different".into());
        pair.golden.push((6, 6));
        let config = JoinPipelineConfig {
            matching: RowMatchingStrategy::Golden,
            join_min_support: 0.3,
            ..JoinPipelineConfig::paper_default()
        };
        let outcome = JoinPipeline::new(config).run(&pair);
        for t in outcome.transformations.iter() {
            assert!(t.coverage() >= 2);
        }
        // The noisy row is simply not joined.
        assert!(outcome.metrics.recall < 1.0);
        assert!(outcome.metrics.precision > 0.9);
    }

    #[test]
    fn join_with_explicit_transformations() {
        let pipeline = JoinPipeline::new(JoinPipelineConfig::paper_default());
        let t = Transformation::new(vec![
            Unit::split_substr(' ', 1, 0, 1),
            Unit::literal(" "),
            Unit::split(',', 0),
        ]);
        let (pairs, metrics) = pipeline.join_with_transformations(&staff_pair(), [&t]);
        assert_eq!(pairs.len(), 6);
        assert!((metrics.f1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_pair_yields_empty_outcome() {
        let pipeline = JoinPipeline::new(JoinPipelineConfig::paper_default());
        let outcome = pipeline.run(&ColumnPair::default());
        assert!(outcome.predicted_pairs.is_empty());
        assert_eq!(outcome.metrics.f1, 0.0);
    }

    #[test]
    fn many_to_many_targets_all_reported() {
        // Two target rows share the same value; a matching source row must
        // pair with both.
        let pair = ColumnPair {
            name: "m2m".into(),
            source: vec!["abc, def".into(), "ghi, jkl".into()],
            target: vec!["abc".into(), "abc".into(), "ghi".into()],
            golden: vec![(0, 0), (0, 1), (1, 2)],
        };
        let pipeline = JoinPipeline::new(JoinPipelineConfig {
            matching: RowMatchingStrategy::Golden,
            join_min_support: 0.0,
            ..JoinPipelineConfig::paper_default()
        });
        let outcome = pipeline.run(&pair);
        assert!(outcome.predicted_pairs.contains(&(0, 0)));
        assert!(outcome.predicted_pairs.contains(&(0, 1)));
        assert!((outcome.metrics.recall - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn invalid_support_rejected() {
        let _ = JoinPipeline::new(JoinPipelineConfig {
            join_min_support: 2.0,
            ..JoinPipelineConfig::paper_default()
        });
    }
}
