//! The end-to-end join pipeline.
//!
//! The transformed equi-join (step 4) runs as a planned parallel scan: both
//! columns are normalized exactly once, the target column is indexed by the
//! 64-bit [`fingerprint64`] of each normalized value (no owned-string keys),
//! and the apply loop is chunked over contiguous source-row ranges across
//! [`SynthesisConfig::threads`] workers. Probes confirm fingerprint hits
//! with an exact string comparison, so a fingerprint collision can never
//! produce a wrong pair. Predicted-pair dedup keys include the source row,
//! making per-row probes independent; a transformation-major assembly
//! reproduces the serial discovery order, so output is bit-identical at any
//! thread count to the retained oracle
//! [`crate::reference::equi_join_reference`].

use crate::evaluate::{evaluate_join, JoinMetrics};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};
use tjoin_core::{SynthesisConfig, SynthesisEngine};
use tjoin_datasets::{row_id, ColumnPair};
use tjoin_matching::{golden_pairs, MatchAbort, NGramMatcher, NGramMatcherConfig};
use tjoin_text::{
    chunk_map_rows_budgeted, fault, fingerprint64, BudgetExceeded, BudgetToken, CellText,
    ColumnArena, FaultSite, FxHashMap, FxHashSet, GramCorpus, RunBudget,
};
use tjoin_units::{Transformation, TransformationSet};

/// How candidate joinable row pairs are obtained before synthesis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RowMatchingStrategy {
    /// The representative-n-gram matcher (Algorithm 1).
    NGram(NGramMatcherConfig),
    /// The ground-truth mapping carried by the dataset (oracle mode).
    Golden,
}

impl Default for RowMatchingStrategy {
    fn default() -> Self {
        RowMatchingStrategy::NGram(NGramMatcherConfig::default())
    }
}

/// Configuration of the end-to-end pipeline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JoinPipelineConfig {
    /// Row-matching strategy.
    pub matching: RowMatchingStrategy,
    /// Synthesis configuration (placeholder bound, pruning, sampling, ...).
    pub synthesis: SynthesisConfig,
    /// Minimum support a transformation needs (as a fraction of the candidate
    /// pairs) to be applied in the join step — the paper uses 5 % on most
    /// datasets and 2 % on Open data.
    pub join_min_support: f64,
}

impl JoinPipelineConfig {
    /// The paper's default end-to-end setting: n-gram matching, default
    /// synthesis, 5 % join support.
    pub fn paper_default() -> Self {
        Self {
            matching: RowMatchingStrategy::default(),
            synthesis: SynthesisConfig::default(),
            join_min_support: 0.05,
        }
    }

    /// Builder-style setter applying one thread budget to every parallel
    /// stage of the pipeline: the row matcher's scan, the synthesis
    /// coverage phase, and the equi-join apply loop. Results are
    /// bit-identical at any value (only wall-clock changes).
    pub fn with_threads(mut self, threads: usize) -> Self {
        let threads = threads.max(1);
        self.synthesis = self.synthesis.with_threads(threads);
        if let RowMatchingStrategy::NGram(cfg) = &mut self.matching {
            cfg.threads = threads;
        }
        self
    }
}

/// The result of running the pipeline on one column pair.
#[derive(Debug, Clone)]
pub struct JoinOutcome {
    /// The transformations applied during the join (after support filtering).
    pub transformations: TransformationSet,
    /// Predicted joinable row pairs `(source_row, target_row)`.
    pub predicted_pairs: Vec<(u32, u32)>,
    /// Join quality against the golden mapping.
    pub metrics: JoinMetrics,
    /// Number of candidate pairs handed to synthesis.
    pub candidate_pairs: usize,
    /// Wall-clock time spent in row matching.
    pub matching_time: Duration,
    /// Wall-clock time spent in transformation discovery.
    pub synthesis_time: Duration,
    /// Wall-clock time spent applying transformations and equi-joining.
    pub join_time: Duration,
}

/// Which pipeline phase a pair failure or budget overrun is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairPhase {
    /// Row matching (Algorithm 1 or golden materialization).
    Matching,
    /// Transformation discovery.
    Synthesis,
    /// The transformed equi-join and evaluation.
    Join,
    /// Outside any phase — the batch scheduler's backstop containment (a
    /// panic between phases, e.g. an injected slot fault).
    Scheduler,
}

impl fmt::Display for PairPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PairPhase::Matching => write!(f, "matching"),
            PairPhase::Synthesis => write!(f, "synthesis"),
            PairPhase::Join => write!(f, "join"),
            PairPhase::Scheduler => write!(f, "scheduler"),
        }
    }
}

/// A contained per-pair failure: the phase whose execution panicked (or hit
/// a sticky corpus failure) and the panic's message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairError {
    /// The phase the failure is attributed to.
    pub phase: PairPhase,
    /// The contained panic's (or corpus failure's) message.
    pub message: String,
}

impl fmt::Display for PairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pair failed in {}: {}", self.phase, self.message)
    }
}

/// The isolation status of one pair's pipeline run: graceful degradation is
/// per pair, never per process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PairStatus {
    /// Every phase completed; the outcome is the unguarded pipeline's, bit
    /// for bit.
    Ok,
    /// A phase panicked (or depended on a failed corpus artifact); the
    /// outcome carries whatever earlier phases completed.
    Failed(PairError),
    /// The pair's [`RunBudget`] tripped in the given phase; the outcome
    /// carries whatever earlier phases completed.
    TimedOut {
        /// The phase that observed the trip.
        phase: PairPhase,
        /// The budget axis that tripped (first cause, sticky).
        exceeded: BudgetExceeded,
    },
}

impl PairStatus {
    /// Whether every phase completed.
    pub fn is_ok(&self) -> bool {
        matches!(self, PairStatus::Ok)
    }
}

/// A [`JoinOutcome`] plus the isolation status that produced it (see
/// [`JoinPipeline::run_guarded`]).
#[derive(Debug, Clone)]
pub struct GuardedJoinOutcome {
    /// The pair's outcome — complete when `status.is_ok()`, otherwise the
    /// phases that finished before the failure/overrun (later-phase fields
    /// keep their empty defaults).
    pub outcome: JoinOutcome,
    /// What happened to the pair.
    pub status: PairStatus,
}

/// The end-to-end join pipeline.
#[derive(Debug, Clone, Default)]
pub struct JoinPipeline {
    config: JoinPipelineConfig,
}

impl JoinPipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: JoinPipelineConfig) -> Self {
        config.synthesis.validate();
        assert!((0.0..=1.0).contains(&config.join_min_support));
        Self { config }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &JoinPipelineConfig {
        &self.config
    }

    /// Runs the full pipeline on a column pair.
    pub fn run(&self, pair: &ColumnPair) -> JoinOutcome {
        self.run_impl(pair, None)
    }

    /// Runs the full pipeline with the row-matching stage served from a
    /// shared [`GramCorpus`] (see
    /// [`NGramMatcher::find_candidates_in`]): the pair's columns are
    /// interned once per repository instead of re-normalized and re-indexed
    /// per call. The outcome is bit-identical to [`Self::run`] — only
    /// wall-clock changes. Under [`RowMatchingStrategy::Golden`] the corpus
    /// is unused.
    pub fn run_with_corpus(&self, pair: &ColumnPair, corpus: &GramCorpus) -> JoinOutcome {
        self.run_impl(pair, Some(corpus))
    }

    fn run_impl(&self, pair: &ColumnPair, corpus: Option<&GramCorpus>) -> JoinOutcome {
        // 1. Row matching.
        let match_start = Instant::now();
        let candidate_values = self
            .candidate_values(pair, corpus, None)
            .unwrap_or_else(|abort| panic!("{abort}"));
        let matching_time = match_start.elapsed();

        // 2. Transformation discovery.
        let synth_start = Instant::now();
        let engine = SynthesisEngine::new(self.config.synthesis.clone());
        let result = engine.discover_from_strings(&candidate_values);
        let synthesis_time = synth_start.elapsed();

        // 3. Support filtering.
        let transformations = result.cover.filter_by_support(self.config.join_min_support);

        // 4. Transformed equi-join.
        let join_start = Instant::now();
        let predicted_pairs = self.equi_join(
            pair,
            transformations.iter().map(|t| &t.transformation),
        );
        let join_time = join_start.elapsed();

        // 5. Evaluation.
        let metrics = evaluate_join(&predicted_pairs, &pair.golden);

        JoinOutcome {
            transformations,
            predicted_pairs,
            metrics,
            candidate_pairs: candidate_values.len(),
            matching_time,
            synthesis_time,
            join_time,
        }
    }

    /// The matching stage shared by [`Self::run`] and [`Self::run_guarded`]:
    /// candidate (source, target) value pairs under the configured strategy,
    /// optionally corpus-served and budget-checked.
    fn candidate_values(
        &self,
        pair: &ColumnPair,
        corpus: Option<&GramCorpus>,
        budget: Option<&BudgetToken>,
    ) -> Result<Vec<(String, String)>, MatchAbort> {
        match &self.config.matching {
            RowMatchingStrategy::NGram(cfg) => {
                NGramMatcher::new(cfg.clone()).try_candidate_value_pairs(pair, corpus, budget)
            }
            RowMatchingStrategy::Golden => {
                if let Some(token) = budget {
                    token.check()?;
                }
                // Invariant is local (audited): `as usize` widens `u32`
                // golden row ids (lossless), and `golden_pairs` clamps the
                // mapping to rows present in both columns before this map.
                Ok(golden_pairs(pair)
                    .into_iter()
                    .map(|(s, t)| {
                        (
                            pair.source[s as usize].clone(),
                            pair.target[t as usize].clone(),
                        )
                    })
                    .collect())
            }
        }
    }

    /// The outcome shape of a pair that completed no phase: empty
    /// transformation set, no predictions, and the metrics of predicting
    /// nothing against the pair's golden mapping.
    pub(crate) fn empty_outcome(pair: &ColumnPair) -> JoinOutcome {
        JoinOutcome {
            transformations: TransformationSet::default(),
            predicted_pairs: Vec::new(),
            metrics: evaluate_join(&[], &pair.golden),
            candidate_pairs: 0,
            matching_time: Duration::ZERO,
            synthesis_time: Duration::ZERO,
            join_time: Duration::ZERO,
        }
    }

    /// Runs the full pipeline with per-pair fault isolation and an optional
    /// [`RunBudget`] — the batch layer's per-pair unit of graceful
    /// degradation:
    ///
    /// * **Panic containment.** Each phase runs under `catch_unwind`; a
    ///   panicking phase (or a sticky shared-corpus build failure) yields
    ///   [`PairStatus::Failed`] carrying the phase and the original panic
    ///   message, with the outcome fields of every *completed* phase intact.
    /// * **Budgets.** `budget` (if any) starts its clock here: the pair's
    ///   rows and bytes are charged once at admission (so cap overruns are
    ///   deterministic and thread-invariant), and the wall-clock deadline is
    ///   checked cooperatively at the matcher scan, coverage scan,
    ///   selection, and join loop boundaries. A trip yields
    ///   [`PairStatus::TimedOut`] with the phase metrics completed so far.
    /// * **Fault-free equivalence.** When nothing fails and no budget trips,
    ///   the outcome is bit-identical to [`Self::run`] /
    ///   [`Self::run_with_corpus`] and the status is [`PairStatus::Ok`] —
    ///   the guarded path runs the same phase code, not a fork of it.
    ///
    /// Panics originating *outside* the guarded phases (e.g. a misconfigured
    /// pipeline's validation assertions) still propagate; the batch runner
    /// adds a scheduler-level backstop around the whole call.
    pub fn run_guarded(
        &self,
        pair: &ColumnPair,
        corpus: Option<&GramCorpus>,
        budget: Option<&RunBudget>,
    ) -> GuardedJoinOutcome {
        let token_storage = budget.map(|b| b.token());
        let token = token_storage.as_ref();
        let mut outcome = Self::empty_outcome(pair);

        // Admission: charge the pair's size against the deterministic caps
        // before any work. An oversized pair is rejected identically on
        // every run at every thread count.
        if let Some(token) = token {
            let rows = pair.source.len() + pair.target.len();
            let bytes: usize = pair
                .source
                .iter()
                .chain(pair.target.iter())
                .map(|cell| cell.len())
                .sum();
            if let Err(exceeded) = token.charge_rows(rows).and_then(|()| token.charge_bytes(bytes))
            {
                return GuardedJoinOutcome {
                    outcome,
                    status: PairStatus::TimedOut { phase: PairPhase::Matching, exceeded },
                };
            }
        }

        // 1. Row matching.
        let match_start = Instant::now();
        let matched = catch_unwind(AssertUnwindSafe(|| {
            fault::fire(FaultSite::MatchPhase);
            self.candidate_values(pair, corpus, token)
        }));
        outcome.matching_time = match_start.elapsed();
        let candidate_values = match matched {
            Ok(Ok(values)) => values,
            Ok(Err(MatchAbort::Budget(exceeded))) => {
                return GuardedJoinOutcome {
                    outcome,
                    status: PairStatus::TimedOut { phase: PairPhase::Matching, exceeded },
                };
            }
            Ok(Err(MatchAbort::Corpus(failure))) => {
                return GuardedJoinOutcome {
                    outcome,
                    status: PairStatus::Failed(PairError {
                        phase: PairPhase::Matching,
                        message: failure.to_string(),
                    }),
                };
            }
            Err(payload) => {
                return GuardedJoinOutcome {
                    outcome,
                    status: PairStatus::Failed(PairError {
                        phase: PairPhase::Matching,
                        message: fault::panic_message(&*payload),
                    }),
                };
            }
        };
        outcome.candidate_pairs = candidate_values.len();

        // 2. Transformation discovery.
        let synth_start = Instant::now();
        let engine = SynthesisEngine::new(self.config.synthesis.clone());
        let synthesized = catch_unwind(AssertUnwindSafe(|| {
            fault::fire(FaultSite::SynthesisPhase);
            engine.discover_from_strings_budgeted(&candidate_values, token)
        }));
        outcome.synthesis_time = synth_start.elapsed();
        let result = match synthesized {
            Ok(Ok(result)) => result,
            Ok(Err(exceeded)) => {
                return GuardedJoinOutcome {
                    outcome,
                    status: PairStatus::TimedOut { phase: PairPhase::Synthesis, exceeded },
                };
            }
            Err(payload) => {
                return GuardedJoinOutcome {
                    outcome,
                    status: PairStatus::Failed(PairError {
                        phase: PairPhase::Synthesis,
                        message: fault::panic_message(&*payload),
                    }),
                };
            }
        };

        // 3. Support filtering (infallible bookkeeping).
        outcome.transformations = result.cover.filter_by_support(self.config.join_min_support);

        // 4–5. Transformed equi-join and evaluation.
        let join_start = Instant::now();
        let joined = catch_unwind(AssertUnwindSafe(|| {
            fault::fire(FaultSite::JoinPhase);
            self.equi_join_budgeted(
                pair,
                outcome.transformations.iter().map(|t| &t.transformation),
                token,
            )
        }));
        outcome.join_time = join_start.elapsed();
        match joined {
            Ok(Ok(predicted)) => {
                outcome.predicted_pairs = predicted;
                outcome.metrics = evaluate_join(&outcome.predicted_pairs, &pair.golden);
                GuardedJoinOutcome { outcome, status: PairStatus::Ok }
            }
            Ok(Err(exceeded)) => GuardedJoinOutcome {
                outcome,
                status: PairStatus::TimedOut { phase: PairPhase::Join, exceeded },
            },
            Err(payload) => GuardedJoinOutcome {
                outcome,
                status: PairStatus::Failed(PairError {
                    phase: PairPhase::Join,
                    message: fault::panic_message(&*payload),
                }),
            },
        }
    }

    /// Joins a column pair given an explicit transformation list (used to
    /// evaluate baselines such as Auto-Join under the same join machinery).
    pub fn join_with_transformations<'a, I>(
        &self,
        pair: &ColumnPair,
        transformations: I,
    ) -> (Vec<(u32, u32)>, JoinMetrics)
    where
        I: IntoIterator<Item = &'a Transformation>,
    {
        let predicted = self.equi_join(pair, transformations);
        let metrics = evaluate_join(&predicted, &pair.golden);
        (predicted, metrics)
    }

    /// Applies every transformation to every source row and hash-joins the
    /// transformed values against the target column on 64-bit fingerprints
    /// of normalized values, confirming each hit with an exact string
    /// comparison. A source row matching several target rows yields all
    /// pairs (many-to-many, as the paper assumes when the relationship is
    /// unspecified).
    ///
    /// The apply loop is chunked over contiguous source-row ranges across
    /// [`SynthesisConfig::threads`] workers; output is bit-identical (same
    /// pairs, same order) to [`crate::reference::equi_join_reference`] at
    /// any thread count — see the module docs.
    pub fn equi_join<'a, I>(&self, pair: &ColumnPair, transformations: I) -> Vec<(u32, u32)>
    where
        I: IntoIterator<Item = &'a Transformation>,
    {
        // Invariant is local (audited): the only abort source in
        // `equi_join_budgeted` is a tripped budget token, and the budget
        // is `None` on this line.
        self.equi_join_budgeted(pair, transformations, None)
            .expect("unbudgeted equi-join cannot abort")
    }

    /// [`Self::equi_join`] with cooperative budget checks at the
    /// transformation (serial path) and source-chunk (parallel path) loop
    /// boundaries. With `budget == None` or a live token the result is
    /// bit-identical to [`Self::equi_join`]; a tripped token aborts
    /// all-or-nothing — no truncated pair list is ever returned.
    pub fn equi_join_budgeted<'a, I>(
        &self,
        pair: &ColumnPair,
        transformations: I,
        budget: Option<&BudgetToken>,
    ) -> Result<Vec<(u32, u32)>, BudgetExceeded>
    where
        I: IntoIterator<Item = &'a Transformation>,
    {
        pair.assert_row_indexable();
        let transformations: Vec<&Transformation> = transformations.into_iter().collect();
        if transformations.is_empty() || pair.source.is_empty() || pair.target.is_empty() {
            return Ok(Vec::new());
        }
        let normalize = &self.config.synthesis.normalize;

        // Normalize each column exactly once, streaming into a columnar
        // arena: one contiguous buffer per column instead of one String per
        // cell, and probes compare against slices of it. Chunks normalize
        // into per-worker arenas concatenated in chunk order, bit-identical
        // to the serial append at any thread count. The u32 capacity check
        // subsumes `assert_row_indexable`; exceeding it panics with the
        // typed message (contained per-pair by `run_guarded`).
        let threads = self.config.synthesis.threads;
        let targets_normalized =
            ColumnArena::try_normalized_parallel(pair.target.as_slice(), normalize, threads)
                .unwrap_or_else(|e| panic!("{e}"));
        let sources_normalized =
            ColumnArena::try_normalized_parallel(pair.source.as_slice(), normalize, threads)
                .unwrap_or_else(|e| panic!("{e}"));

        // Fingerprint index over the target column: rows bucketed by the
        // 64-bit fingerprint of their normalized value, in ascending row
        // order (the same within-bucket order as the oracle's string map).
        let mut target_index: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for (row, value) in targets_normalized.cells().enumerate() {
            target_index
                .entry(fingerprint64(value))
                .or_default()
                .push(row_id(row));
        }

        let workers = self
            .config
            .synthesis
            .threads
            .min(sources_normalized.len())
            .max(1);
        // Invariant is local (audited): every `as usize` on a target row id
        // below (serial and parallel paths) widens a `u32` drawn from the
        // target fingerprint index, which is built over `targets_normalized`
        // itself after its row count passed `checked_row_count`.
        if workers <= 1 {
            // Serial fast path: the oracle's transformation-major loop with
            // fingerprint probes — no per-row hit buffers or assembly pass.
            // Emission order is the oracle's by construction; the parallel
            // path below reproduces it via assembly, and the differential
            // suite pins both to the oracle.
            let mut predicted: Vec<(u32, u32)> = Vec::new();
            let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
            for transformation in &transformations {
                if let Some(token) = budget {
                    token.check()?;
                }
                for (src_row, src_value) in sources_normalized.cells().enumerate() {
                    let Some(out) = transformation.apply(src_value) else {
                        continue;
                    };
                    let Some(rows) = target_index.get(&fingerprint64(&out)) else {
                        continue;
                    };
                    for &tgt_row in rows {
                        if targets_normalized.cell(tgt_row as usize) == out
                            && seen.insert((row_id(src_row), tgt_row))
                        {
                            predicted.push((row_id(src_row), tgt_row));
                        }
                    }
                }
            }
            return Ok(predicted);
        }

        let join_row = |src_value: &str| -> RowJoinHits {
            let mut seen: FxHashSet<u32> = FxHashSet::default();
            let mut hits: RowJoinHits = Vec::new();
            for (t_idx, transformation) in transformations.iter().enumerate() {
                let Some(out) = transformation.apply(src_value) else {
                    continue;
                };
                let Some(rows) = target_index.get(&fingerprint64(&out)) else {
                    continue;
                };
                // Exact-string confirm: a fingerprint collision bucket can
                // hold rows of a different value; they are filtered here.
                let new: Vec<u32> = rows
                    .iter()
                    .copied()
                    .filter(|&r| targets_normalized.cell(r as usize) == out && seen.insert(r))
                    .collect();
                if !new.is_empty() {
                    hits.push((t_idx, new));
                }
            }
            hits
        };

        // Contiguous source-row chunks across the thread budget,
        // concatenated in order — the serial per-row sequence. Workers
        // index the shared source arena; no cell text crosses threads.
        let per_row: Vec<RowJoinHits> =
            chunk_map_rows_budgeted(sources_normalized.len(), workers, budget, |row| {
                join_row(sources_normalized.cell(row))
            })?;

        // Assembly in the oracle's transformation-major order. Each row's
        // hits are sorted by transformation index, so one cursor per row
        // makes this linear in the output.
        let mut cursors = vec![0usize; per_row.len()];
        let mut predicted: Vec<(u32, u32)> = Vec::new();
        for t_idx in 0..transformations.len() {
            for (src_row, hits) in per_row.iter().enumerate() {
                let cursor = &mut cursors[src_row];
                if *cursor < hits.len() && hits[*cursor].0 == t_idx {
                    let src = row_id(src_row);
                    for &tgt_row in &hits[*cursor].1 {
                        predicted.push((src, tgt_row));
                    }
                    *cursor += 1;
                }
            }
        }
        Ok(predicted)
    }
}

/// One source row's probe result: for each transformation index that
/// predicted something new, the newly matched target rows in bucket order.
/// Transformation indices appear in increasing order.
type RowJoinHits = Vec<(usize, Vec<u32>)>;

#[cfg(test)]
mod tests {
    use super::*;
    use tjoin_units::Unit;

    fn staff_pair() -> ColumnPair {
        ColumnPair::aligned(
            "staff",
            vec![
                "Rafiei, Davood".into(),
                "Nascimento, Mario".into(),
                "Gingrich, Douglas".into(),
                "Prus-Czarnecki, Andrzej".into(),
                "Bowling, Michael".into(),
                "Gosgnach, Simon".into(),
            ],
            vec![
                "D Rafiei".into(),
                "M Nascimento".into(),
                "D Gingrich".into(),
                "A Prus-czarnecki".into(),
                "M Bowling".into(),
                "S Gosgnach".into(),
            ],
        )
    }

    #[test]
    fn end_to_end_join_on_paper_example() {
        let pipeline = JoinPipeline::new(JoinPipelineConfig::paper_default());
        let outcome = pipeline.run(&staff_pair());
        assert!(outcome.candidate_pairs >= 6);
        assert!(
            outcome.metrics.recall >= 0.99,
            "recall {} with {} transformations",
            outcome.metrics.recall,
            outcome.transformations.len()
        );
        assert!(outcome.metrics.precision >= 0.8, "precision {}", outcome.metrics.precision);
        assert!(outcome.metrics.f1 > 0.85);
    }

    #[test]
    fn golden_matching_mode() {
        let config = JoinPipelineConfig {
            matching: RowMatchingStrategy::Golden,
            ..JoinPipelineConfig::paper_default()
        };
        let pipeline = JoinPipeline::new(config);
        let outcome = pipeline.run(&staff_pair());
        assert_eq!(outcome.candidate_pairs, 6);
        assert!((outcome.metrics.recall - 1.0).abs() < 1e-9);
    }

    #[test]
    fn support_threshold_filters_one_off_rules() {
        // One noisy row: its bespoke transformation (if any) must not survive
        // a 30% support threshold over 6 candidate pairs.
        let mut pair = staff_pair();
        pair.source.push("Zzz, Qqq".into());
        pair.target.push("completely different".into());
        pair.golden.push((6, 6));
        let config = JoinPipelineConfig {
            matching: RowMatchingStrategy::Golden,
            join_min_support: 0.3,
            ..JoinPipelineConfig::paper_default()
        };
        let outcome = JoinPipeline::new(config).run(&pair);
        for t in outcome.transformations.iter() {
            assert!(t.coverage() >= 2);
        }
        // The noisy row is simply not joined.
        assert!(outcome.metrics.recall < 1.0);
        assert!(outcome.metrics.precision > 0.9);
    }

    #[test]
    fn join_with_explicit_transformations() {
        let pipeline = JoinPipeline::new(JoinPipelineConfig::paper_default());
        let t = Transformation::new(vec![
            Unit::split_substr(' ', 1, 0, 1),
            Unit::literal(" "),
            Unit::split(',', 0),
        ]);
        let (pairs, metrics) = pipeline.join_with_transformations(&staff_pair(), [&t]);
        assert_eq!(pairs.len(), 6);
        assert!((metrics.f1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_pair_yields_empty_outcome() {
        let pipeline = JoinPipeline::new(JoinPipelineConfig::paper_default());
        let outcome = pipeline.run(&ColumnPair::default());
        assert!(outcome.predicted_pairs.is_empty());
        assert_eq!(outcome.metrics.f1, 0.0);
    }

    #[test]
    fn many_to_many_targets_all_reported() {
        // Two target rows share the same value; a matching source row must
        // pair with both.
        let pair = ColumnPair {
            name: "m2m".into(),
            source: vec!["abc, def".into(), "ghi, jkl".into()],
            target: vec!["abc".into(), "abc".into(), "ghi".into()],
            golden: vec![(0, 0), (0, 1), (1, 2)],
        };
        let pipeline = JoinPipeline::new(JoinPipelineConfig {
            matching: RowMatchingStrategy::Golden,
            join_min_support: 0.0,
            ..JoinPipelineConfig::paper_default()
        });
        let outcome = pipeline.run(&pair);
        assert!(outcome.predicted_pairs.contains(&(0, 0)));
        assert!(outcome.predicted_pairs.contains(&(0, 1)));
        assert!((outcome.metrics.recall - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn invalid_support_rejected() {
        let _ = JoinPipeline::new(JoinPipelineConfig {
            join_min_support: 2.0,
            ..JoinPipelineConfig::paper_default()
        });
    }

    #[test]
    fn fingerprint_join_bit_identical_to_reference() {
        // Enough rows for real chunking, duplicated target values for
        // fan-out, and two transformations whose outputs overlap so the
        // cross-transformation dedup is exercised.
        let mut source: Vec<String> = Vec::new();
        let mut target: Vec<String> = Vec::new();
        for i in 0..29 {
            source.push(format!("last{i:02}, first{i:02}"));
            target.push(format!("f last{i:02}"));
        }
        target[7] = target[3].clone(); // duplicate target value
        source.push(String::new());
        target.push("orphan".into());
        let pair = ColumnPair::aligned("fp", source, target);

        let t1 = Transformation::new(vec![
            Unit::split_substr(' ', 1, 0, 1),
            Unit::literal(" "),
            Unit::split(',', 0),
        ]);
        // Same outputs as t1 by a different program ("f" is a fixed-offset
        // substring of every source row): the cross-transformation dedup
        // rejects every one of its predictions.
        let t2 = Transformation::new(vec![
            Unit::substr(8, 9),
            Unit::literal(" "),
            Unit::split(',', 0),
        ]);
        let base = JoinPipelineConfig {
            matching: RowMatchingStrategy::Golden,
            ..JoinPipelineConfig::paper_default()
        };
        let oracle = crate::reference::equi_join_reference(
            &pair,
            [&t1, &t2],
            &base.synthesis.normalize,
        );
        for threads in [1usize, 2, 3, 4, 16] {
            let pipeline = JoinPipeline::new(base.clone().with_threads(threads));
            assert_eq!(
                pipeline.equi_join(&pair, [&t1, &t2]),
                oracle,
                "diverged at {threads} threads"
            );
        }
        assert!(!oracle.is_empty());
    }

    #[test]
    fn all_duplicate_target_values_fan_out_through_fingerprint_index() {
        // Every target row holds the same value: one covered source row
        // predicts pairs with all of them, in ascending target-row order.
        let pair = ColumnPair {
            name: "dup".into(),
            source: vec!["abc, def".into()],
            target: vec!["abc".into(), "abc".into(), "abc".into(), "abc".into()],
            golden: vec![(0, 0), (0, 1), (0, 2), (0, 3)],
        };
        let t = Transformation::single(Unit::split(',', 0));
        for threads in [1usize, 4] {
            let pipeline =
                JoinPipeline::new(JoinPipelineConfig::paper_default().with_threads(threads));
            let predicted = pipeline.equi_join(&pair, [&t]);
            assert_eq!(predicted, vec![(0, 0), (0, 1), (0, 2), (0, 3)]);
            assert_eq!(
                predicted,
                crate::reference::equi_join_reference(
                    &pair,
                    [&t],
                    &pipeline.config().synthesis.normalize
                )
            );
        }
    }

    #[test]
    fn empty_columns_join_to_nothing() {
        let t = Transformation::single(Unit::substr(0, 2));
        let pipeline = JoinPipeline::new(JoinPipelineConfig::paper_default().with_threads(4));
        let no_source = ColumnPair {
            name: "ns".into(),
            source: vec![],
            target: vec!["ab".into()],
            golden: vec![],
        };
        let no_target = ColumnPair {
            name: "nt".into(),
            source: vec!["ab".into()],
            target: vec![],
            golden: vec![],
        };
        assert!(pipeline.equi_join(&no_source, [&t]).is_empty());
        assert!(pipeline.equi_join(&no_target, [&t]).is_empty());
        assert!(pipeline.equi_join(&staff_pair(), []).is_empty());
    }

    #[test]
    fn pipeline_outcome_thread_invariant() {
        let pair = staff_pair();
        let outcome_1 = JoinPipeline::new(JoinPipelineConfig::paper_default()).run(&pair);
        let outcome_4 =
            JoinPipeline::new(JoinPipelineConfig::paper_default().with_threads(4)).run(&pair);
        assert_eq!(outcome_1.predicted_pairs, outcome_4.predicted_pairs);
        assert_eq!(outcome_1.metrics, outcome_4.metrics);
        assert_eq!(outcome_1.candidate_pairs, outcome_4.candidate_pairs);
    }

    #[test]
    fn guarded_run_matches_unguarded_when_fault_free() {
        let pair = staff_pair();
        for threads in [1, 4] {
            let pipeline =
                JoinPipeline::new(JoinPipelineConfig::paper_default().with_threads(threads));
            let plain = pipeline.run(&pair);
            let guarded = pipeline.run_guarded(&pair, None, None);
            assert_eq!(guarded.status, PairStatus::Ok);
            assert_eq!(guarded.outcome.predicted_pairs, plain.predicted_pairs);
            assert_eq!(guarded.outcome.metrics, plain.metrics);
            assert_eq!(guarded.outcome.candidate_pairs, plain.candidate_pairs);
            assert_eq!(
                guarded.outcome.transformations.transformations,
                plain.transformations.transformations
            );
        }
    }

    #[test]
    fn guarded_run_with_unlimited_budget_matches_unguarded() {
        let pair = staff_pair();
        let pipeline = JoinPipeline::new(JoinPipelineConfig::paper_default().with_threads(4));
        let plain = pipeline.run(&pair);
        let budget = RunBudget::unlimited()
            .with_byte_cap(u64::MAX)
            .with_row_cap(u64::MAX);
        let guarded = pipeline.run_guarded(&pair, None, Some(&budget));
        assert_eq!(guarded.status, PairStatus::Ok);
        assert_eq!(guarded.outcome.predicted_pairs, plain.predicted_pairs);
        assert_eq!(guarded.outcome.metrics, plain.metrics);
    }

    #[test]
    fn row_cap_rejects_pair_at_admission() {
        let pair = staff_pair();
        let pipeline = JoinPipeline::new(JoinPipelineConfig::paper_default().with_threads(2));
        let budget = RunBudget::unlimited().with_row_cap(1);
        let guarded = pipeline.run_guarded(&pair, None, Some(&budget));
        assert_eq!(
            guarded.status,
            PairStatus::TimedOut {
                phase: PairPhase::Matching,
                exceeded: BudgetExceeded::Rows,
            }
        );
        assert!(guarded.outcome.predicted_pairs.is_empty());
        assert_eq!(guarded.outcome.candidate_pairs, 0);
        // Metrics reflect predicting nothing, not garbage.
        assert_eq!(guarded.outcome.metrics.true_positives, 0);
    }

    #[test]
    fn zero_deadline_times_out_deterministically() {
        let pair = staff_pair();
        let pipeline = JoinPipeline::new(JoinPipelineConfig::paper_default().with_threads(2));
        let budget = RunBudget::unlimited().with_deadline(Duration::ZERO);
        for _ in 0..3 {
            let guarded = pipeline.run_guarded(&pair, None, Some(&budget));
            match guarded.status {
                PairStatus::TimedOut { exceeded: BudgetExceeded::Deadline, .. } => {}
                other => panic!("expected deadline timeout, got {other:?}"),
            }
        }
    }

    #[test]
    fn byte_cap_rejects_pair_thread_invariantly() {
        let pair = staff_pair();
        let mut statuses = Vec::new();
        for threads in [1, 2, 4] {
            let pipeline =
                JoinPipeline::new(JoinPipelineConfig::paper_default().with_threads(threads));
            let budget = RunBudget::unlimited().with_byte_cap(8);
            statuses.push(pipeline.run_guarded(&pair, None, Some(&budget)).status);
        }
        for status in &statuses {
            assert_eq!(
                *status,
                PairStatus::TimedOut {
                    phase: PairPhase::Matching,
                    exceeded: BudgetExceeded::Bytes,
                }
            );
        }
    }
}
